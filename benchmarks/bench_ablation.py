"""E4–E8, E12 — the Section III-D optimization ablations.

Each bench toggles exactly one optimization on a capacity-scaled device
(same scaling as Table I) and asserts the direction plus a tolerant
magnitude against the paper's quoted range.

The paper quotes each effect as a *range across graphs* without naming
which graph gave which end; every ablation here runs on the workload
whose mini-scale memory regime matches the effect's mechanism (see
EXPERIMENTS.md "scale distortions" for why one workload per effect):

* unzipping (III-D1) → Barabási–Albert (scattered reads, layout-bound);
* merge-loop reads (III-D3) → Watts–Strogatz (read-throughput-bound);
* read-only cache (III-D4) → LiveJournal stand-in (reuse-heavy).
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import (ablation_cpu_preprocess,
                                     ablation_merge_variant,
                                     ablation_readonly_cache,
                                     ablation_sort_u64, ablation_unzip,
                                     ablation_warp_reduction)
from repro.bench.runner import scaled_device
from repro.graphs.datasets import get
from repro.gpusim.device import GTX_980


def _setup(name):
    w = get(name)
    g = w.build(seed=0)
    return g, scaled_device(GTX_980, g, w)


@pytest.fixture(scope="module")
def ba_setup():
    return _setup("ba")


@pytest.fixture(scope="module")
def ws_setup():
    return _setup("ws")


@pytest.fixture(scope="module")
def lj_setup():
    return _setup("livejournal")


def _record(benchmark, fn, setup):
    graph, device = setup
    result = benchmark.pedantic(lambda: fn(graph, device),
                                rounds=1, iterations=1)
    benchmark.extra_info.update({
        "measured_speedup": round(result.measured_speedup, 3),
        "paper_range": f"{result.paper_speedup_lo}-{result.paper_speedup_hi}",
        "section": result.paper_section,
    })
    return result


def test_unzip(benchmark, ba_setup):
    """III-D1: SoA layout, paper 13–32% faster kernel."""
    r = _record(benchmark, ablation_unzip, ba_setup)
    assert 1.10 < r.measured_speedup < 1.6


def test_sort64(benchmark, ba_setup):
    """III-D2: u64 radix sort, paper ≈5× faster sort step.  At mini
    scale a comparison sort's log factor is smaller, so the measured
    ratio compresses toward ~2–4× (documented in EXPERIMENTS.md)."""
    r = _record(benchmark, ablation_sort_u64, ba_setup)
    assert r.measured_speedup > 1.8


def test_read_saving(benchmark, ws_setup):
    """III-D3: one-read merge loop, paper 36–48% faster (mini scale
    overshoots somewhat — the extra loads also thrash the unscaled L1)."""
    r = _record(benchmark, ablation_merge_variant, ws_setup)
    assert 1.3 < r.measured_speedup < 3.0


def test_ro_cache(benchmark, lj_setup):
    """III-D4: read-only cache on Maxwell, paper 17–66% faster."""
    r = _record(benchmark, ablation_readonly_cache, lj_setup)
    assert 1.17 < r.measured_speedup < 1.8


def test_warp_reduction(benchmark, ba_setup):
    """III-D5: reported only — the paper saw ~30% on an early kernel and
    no benefit on the final one; we report the measured effect on the
    preliminary kernel without asserting a direction."""
    r = _record(benchmark, ablation_warp_reduction, ba_setup)
    assert 0.5 < r.measured_speedup < 2.0


def test_cpu_preprocess(benchmark, ba_setup):
    """III-D6: the † path trades speed for 2× capacity — slower than the
    all-GPU pipeline, but only in the preprocessing phase."""
    r = _record(benchmark, ablation_cpu_preprocess, ba_setup)
    assert r.measured_speedup > 1.0


def test_fallback_doubles_capacity(benchmark, ba_setup):
    """III-D6's point: a card that OOMs on the direct path finishes via
    the fallback."""
    from repro.core.forward_gpu import gpu_count_triangles
    from repro.core.options import GpuOptions
    from repro.errors import OutOfDeviceMemoryError
    from repro.gpusim.device import GTX_980 as GTX
    from repro.gpusim.memory import DeviceMemory

    graph, _ = ba_setup
    device = GTX.with_memory(int(graph.num_arcs * 8 * 1.7))

    def run():
        with pytest.raises(OutOfDeviceMemoryError):
            gpu_count_triangles(graph, device=device,
                                memory=DeviceMemory(device),
                                options=GpuOptions(cpu_preprocess="never"))
        return gpu_count_triangles(graph, device=device,
                                   memory=DeviceMemory(device))

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res.used_cpu_fallback
    assert res.triangles > 0

"""E13 — baselines and related work (Sections II-A and V).

* Forward beats edge-iterator on skewed graphs (the Section II-A reason
  for choosing it) and both beat node-iterator;
* the approximation algorithms trade a few percent of accuracy for
  their speed/memory (Section V's framing);
* pytest-benchmark additionally wall-clocks the library's real
  implementations (generator, CPU counters, matmul) — the numbers a
  downstream user of this Python library would actually experience.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import baseline_experiment
from repro.cpu.edge_iterator import edge_iterator_count
from repro.cpu.forward import forward_count_cpu
from repro.cpu.matmul import matmul_count
from repro.cpu.node_iterator import node_iterator_count
from repro.graphs.datasets import get
from repro.graphs.generators import rmat


@pytest.fixture(scope="module")
def skewed():
    return get("kron17").build(seed=0)


def test_baseline_comparison(benchmark, skewed, capsys):
    result = benchmark.pedantic(lambda: baseline_experiment(skewed),
                                rounds=1, iterations=1)
    benchmark.extra_info.update({
        "forward_ms": round(result.forward_ms, 2),
        "edge_iterator_ms": round(result.edge_iterator_ms, 2),
        "node_iterator_ms": round(result.node_iterator_ms, 2),
        "doulion_error_pct": round(result.doulion_error_pct, 1),
        "birthday_error_pct": round(result.birthday_error_pct, 1),
    })
    with capsys.disabled():
        print("\n ", result.summary())
    # Section II-A ordering on a skewed graph.
    assert result.forward_ms < result.edge_iterator_ms
    assert result.edge_iterator_ms < result.node_iterator_ms
    # Section V: approximations land within a few(-ish) percent.
    assert result.doulion_error_pct < 20.0
    assert result.birthday_error_pct < 60.0


# --------------------------------------------------------------------- #
# wall-clock benches of the real Python implementations
# --------------------------------------------------------------------- #

def test_wallclock_forward_cpu(benchmark, skewed):
    result = benchmark(lambda: forward_count_cpu(skewed).triangles)
    assert result > 0


def test_wallclock_matmul(benchmark, skewed):
    result = benchmark(lambda: matmul_count(skewed).triangles)
    assert result > 0


def test_wallclock_edge_iterator(benchmark, skewed):
    result = benchmark(lambda: edge_iterator_count(skewed).triangles)
    assert result > 0


def test_wallclock_rmat_generator(benchmark):
    g = benchmark(lambda: rmat(12, edge_factor=16, seed=1))
    assert g.num_edges > 0


def test_wallclock_gpu_simulation(benchmark, skewed):
    """One full simulated-GPU pipeline run (the simulator's own cost)."""
    from repro.core.forward_gpu import gpu_count_triangles
    res = benchmark.pedantic(lambda: gpu_count_triangles(skewed),
                             rounds=1, iterations=1)
    assert res.triangles > 0

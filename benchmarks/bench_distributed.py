"""E15 — distributed partitioned counting vs. the paper's Section III-E.

Section VI wonders whether graph splitting "could give a better
multi-GPU solution … However, it is not clear if the obtained speedup
would compensate the overhead caused by the splitting phase."

This bench *answers the open question with measurements*, and the answer
at mini scale is **no for speed, yes for capacity**: the ≤3-subset
vertex-partition scheme carries an inherent ≥2.7× arc-redundancy
(every triple/pair subset re-visits its arcs), which four devices cannot
amortize — but the same scheme counts graphs that overflow a single
device outright, with near-perfect load balance and no serial
preprocessing phase.
"""

from __future__ import annotations

import pytest

from repro.core.distributed import distributed_count_triangles
from repro.core.forward_gpu import gpu_count_triangles
from repro.core.multi_gpu import multi_gpu_count_triangles
from repro.bench.runner import scaled_device
from repro.errors import OutOfDeviceMemoryError
from repro.graphs.datasets import get
from repro.gpusim.device import TESLA_C2050
from repro.gpusim.memory import DeviceMemory


@pytest.fixture(scope="module")
def setup():
    # WS: the suite's most preprocessing-bound workload (paper quad
    # speedup 1.02x — the Amdahl cap in action).
    w = get("ws")
    g = w.build(seed=0)
    return g, scaled_device(TESLA_C2050, g, w)


@pytest.fixture(scope="module")
def runs(setup):
    graph, device = setup
    one = gpu_count_triangles(graph, device=device,
                              memory=DeviceMemory(device))
    amdahl = multi_gpu_count_triangles(graph, device=device, num_gpus=4)
    split = distributed_count_triangles(graph, device=device, num_gpus=4,
                                        num_parts=6)
    return one, amdahl, split


def test_distributed_comparison(benchmark, setup, runs, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    one, amdahl, split = runs
    redundancy = split.redundant_arc_work / max(one.num_forward_arcs * 2, 1)
    benchmark.extra_info.update({
        "single_ms": round(one.total_ms, 3),
        "section_IIIE_ms": round(amdahl.total_ms, 3),
        "distributed_ms": round(split.total_ms, 3),
        "redundancy": round(redundancy, 2),
        "answer_to_section_VI": "overhead not compensated (speed); "
                                "capacity benefit real",
    })
    with capsys.disabled():
        print(f"\n  single C2050: {one.total_ms:.3f} ms "
              f"(preproc fraction {one.timeline.preprocessing_fraction:.2f})")
        print(f"  Section III-E x4: {amdahl.total_ms:.3f} ms "
              f"({one.total_ms / amdahl.total_ms:.2f}x)")
        print(f"  distributed x4:   {split.total_ms:.3f} ms "
              f"({one.total_ms / split.total_ms:.2f}x, load balance "
              f"{split.load_balance:.2f}, redundancy {redundancy:.1f}x arcs)")


def test_all_schemes_agree(check, runs):
    def body():
        one, amdahl, split = runs
        assert one.triangles == amdahl.triangles == split.triangles
    check(body)


def test_splitting_overhead_not_compensated(check, runs):
    """The measured answer to Section VI's speed question: the simple
    vertex-partition scheme's redundancy outweighs its extra
    parallelism, so it does NOT beat the broadcast scheme on time."""
    def body():
        one, amdahl, split = runs
        redundancy = split.redundant_arc_work / max(
            one.num_forward_arcs * 2, 1)
        assert redundancy > 2.5          # inherent to the ≤3-subset scheme
        assert split.total_ms > amdahl.total_ms
    check(body)


def test_load_balance_is_good(check, runs):
    """What the scheme *does* deliver: independent jobs spread almost
    perfectly (no serial phase)."""
    def body():
        _, _, split = runs
        assert split.load_balance > 0.7
    check(body)


def test_capacity_beyond_single_device(check, setup):
    """The other Section VI hope, confirmed: graphs that overflow one
    device — beyond even the † fallback — are counted by splitting."""
    graph, device = setup
    tiny = device.with_memory(int(graph.num_arcs * 8 * 0.55))

    def body():
        with pytest.raises(OutOfDeviceMemoryError):
            gpu_count_triangles(graph, device=tiny,
                                memory=DeviceMemory(tiny))
        res = distributed_count_triangles(graph, device=tiny, num_gpus=4,
                                          num_parts=8)
        assert res.largest_subgraph_arcs < graph.num_arcs
        assert res.triangles > 0
    check(body)

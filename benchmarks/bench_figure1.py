"""E3 — regenerate **Figure 1** (runtime vs. size, Kronecker R-MAT).

The four series (CPU, C2050, 4×C2050, GTX 980) come from the same runs
as the Kronecker Table I rows.  Asserted shape properties (the ones the
paper's log-log plot carries):

* CPU is the top line everywhere;
* every series grows monotonically with graph size;
* the 4-GPU line peels away from the single C2050 as graphs grow
  (counting dominates more and more).
"""

from __future__ import annotations

import pytest

from repro.bench import figures
from repro.graphs.datasets import kronecker_names
from conftest import bench_row_names


@pytest.fixture(scope="module")
def kron_rows(row_cache):
    names = [n for n in kronecker_names() if n in set(bench_row_names())]
    if len(names) < 3:
        pytest.skip("figure 1 needs at least three Kronecker rows "
                    "(REPRO_BENCH_ROWS excludes them)")
    return [row_cache.get(n) for n in names]


def test_figure1_rendered(kron_rows, capsys, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(figures.render_figure1(kron_rows))
        print(figures.figure1_csv(kron_rows))


def test_figure1_shape(check, kron_rows):
    def body():
        problems = figures.check_figure1_shape(kron_rows)
        assert not problems, "\n".join(problems)
    check(body)


def test_runtime_growth_tracks_size(check, kron_rows):
    """Both series grow by orders of magnitude across the sweep — the
    log-log lines of the figure have real slope."""
    def body():
        first, last = kron_rows[0], kron_rows[-1]
        size_ratio = last.num_arcs / first.num_arcs
        assert size_ratio > 8
        assert last.cpu_ms / first.cpu_ms > size_ratio / 4
        assert last.gtx980.total_ms / first.gtx980.total_ms > 2
    check(body)

"""E9 — the Section III-C launch-configuration grid search.

The paper sweeps threads/block ∈ {32..1024} × blocks/SM ∈ {1..16} and
finds 64 × 8 (512 threads/SM) optimal or near-optimal on every device,
with other 512-threads/SM combinations equivalent on the GTX 980 but
*not* on the older Fermi parts.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import grid_search
from repro.gpusim.device import GTX_980, TESLA_C2050


@pytest.fixture(scope="module")
def gtx_grid(kron_graph):
    return grid_search(kron_graph, device=GTX_980)


def test_grid_search_gtx980(benchmark, kron_graph, gtx_grid, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["best"] = str(gtx_grid.best)
    with capsys.disabled():
        print()
        print(gtx_grid.summary())


def test_paper_config_is_near_optimal(check, gtx_grid):
    """64 × 8 within 10% of the sweep's best point."""
    def body():
        (_, _), best_ms = gtx_grid.best
        assert gtx_grid.paper_config_ms() <= best_ms * 1.10
    check(body)


def test_low_occupancy_is_much_worse(check, gtx_grid):
    """One 32-thread block per SM cannot hide memory latency."""
    def body():
        assert gtx_grid.points[(32, 1)] > 4 * gtx_grid.paper_config_ms()
    check(body)


def test_512_threads_per_sm_equivalence_on_gtx980(check, gtx_grid):
    """Section III-C: 'on GTX 980 a similar performance can be achieved
    with other combinations giving 512 threads per multiprocessor'."""
    def body():
        ref = gtx_grid.paper_config_ms()
        for tpb, bps in ((32, 16), (256, 2)):
            if (tpb, bps) in gtx_grid.points:
                assert gtx_grid.points[(tpb, bps)] == pytest.approx(
                    ref, rel=0.15)
    check(body)


def test_c2050_prefers_the_same_config(benchmark, kron_graph):
    grid = benchmark.pedantic(
        lambda: grid_search(kron_graph, device=TESLA_C2050,
                            tpb_values=(32, 64, 256),
                            bps_values=(1, 2, 8)),
        rounds=1, iterations=1)
    (_, _), best_ms = grid.best
    assert grid.paper_config_ms() <= best_ms * 1.10


def test_nvs5200m_prefers_the_same_config(benchmark, kron_graph):
    """Section III-C: the (64, 8) optimum holds on all three devices,
    including the little mobile part the kernel was developed on."""
    from repro.gpusim.device import NVS_5200M

    grid = benchmark.pedantic(
        lambda: grid_search(kron_graph, device=NVS_5200M,
                            tpb_values=(32, 64, 256),
                            bps_values=(1, 2, 8)),
        rounds=1, iterations=1)
    (_, _), best_ms = grid.best
    assert grid.paper_config_ms() <= best_ms * 1.10
    assert grid.points[(32, 1)] > 2 * grid.paper_config_ms()

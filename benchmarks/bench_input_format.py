"""E10 — the Section III-A input-format experiment.

The paper's LiveJournal numbers: an adjacency-list-optimized CPU count
runs ~12 s, the edge-array-optimized one ~14 s, while converting an edge
array *to* the adjacency representation costs ~7 s.  The shape that
justifies the edge-array input: the format penalty (~2 s) is much
smaller than the conversion a CSR-consuming implementation would force
on edge-array data (~7 s).
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import input_format_experiment
from repro.graphs.datasets import get


@pytest.fixture(scope="module")
def result():
    graph = get("livejournal").build(seed=0)
    return input_format_experiment(graph)


def test_input_format(benchmark, result, capsys):
    graph = get("livejournal").build(seed=0)
    r = benchmark.pedantic(lambda: input_format_experiment(graph),
                           rounds=1, iterations=1)
    benchmark.extra_info.update({
        "adjacency_input_ms": round(r.adjacency_input_ms, 2),
        "edge_array_input_ms": round(r.edge_array_input_ms, 2),
        "conversion_ms": round(r.conversion_ms, 2),
    })
    with capsys.disabled():
        print("\n ", r.summary())


def test_edge_array_penalty_is_small(check, result):
    """Edge-array input costs at most ~25% over adjacency input
    (paper: 14 s vs 12 s ≈ 17%)."""
    def body():
        penalty = result.edge_array_input_ms / result.adjacency_input_ms
        assert 1.0 < penalty < 1.25
    check(body)


def test_conversion_dwarfs_the_penalty(check, result):
    """Converting to CSR costs more than the format penalty it would
    remove (paper: 7 s vs 2 s)."""
    def body():
        penalty_ms = result.edge_array_input_ms - result.adjacency_input_ms
        assert result.conversion_ms > 1.5 * penalty_ms
    check(body)

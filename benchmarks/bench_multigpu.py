"""E11 — Section III-E multi-GPU scaling vs. Amdahl's law.

The paper: preprocessing fractions range 0.08–0.76 across the suite,
bounding 4-GPU speedups between 3.23× and 1.22×; Kronecker graphs (huge
triangles-to-edges ratios → counting-dominated) scale best.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import amdahl_experiment
from repro.graphs.datasets import get

#: Workload → scale multiplier over its mini default.  The Kronecker row
#: gets 4× so it escapes the fixed-overhead regime (at 20 k arcs its
#: preprocessing fraction is launch-overhead-inflated, which would mask
#: the triangle-density effect this experiment is about).
WORKLOADS = {"internet": 1.0, "kron18": 4.0, "ba": 1.0, "ws": 1.0}


@pytest.fixture(scope="module")
def points():
    return {}


@pytest.mark.parametrize("name", list(WORKLOADS))
def test_amdahl_point(benchmark, points, name, capsys):
    w = get(name)
    g = w.build(scale=w.default_scale * WORKLOADS[name], seed=0)
    point = benchmark.pedantic(lambda: amdahl_experiment(g, name=name),
                               rounds=1, iterations=1)
    points[name] = point
    benchmark.extra_info.update({
        "preprocessing_fraction": round(point.preprocessing_fraction, 3),
        "amdahl_limit": round(point.amdahl_limit, 2),
        "measured": round(point.measured_quad_speedup, 2),
    })
    with capsys.disabled():
        print("\n ", point.summary())
    # Measured speedup respects the Amdahl envelope (small tolerance for
    # the broadcast cost shifting between phases).
    assert point.measured_quad_speedup <= point.amdahl_limit * 1.05
    # And it's not degenerate: broadcasting cannot make 4 GPUs much
    # slower than one.
    assert point.measured_quad_speedup > 0.5


def test_kron_beats_ws(check, points):
    """The paper's Section III-E observation about triangle-rich graphs,
    asserted between the two exact synthetic generators (the real-graph
    stand-ins' counting phases are inflated at mini scale — distortion 1
    in EXPERIMENTS.md — which would turn this into a test of the
    stand-ins rather than of the Amdahl effect)."""
    def body():
        if len(points) < len(WORKLOADS):
            pytest.skip("per-point benches did not all run")
        assert (points["kron18"].measured_quad_speedup
                > points["ws"].measured_quad_speedup)
        # and the Kronecker row has the lower preprocessing fraction,
        # which is the paper's stated mechanism
        assert (points["kron18"].preprocessing_fraction
                < points["ws"].preprocessing_fraction)
    check(body)


def test_fraction_predicts_speedup(check, points):
    """Lower preprocessing fraction → higher measured quad speedup
    (rank agreement between the model's two columns)."""
    def body():
        if len(points) < len(WORKLOADS):
            pytest.skip("per-point benches did not all run")
        ordered = sorted(points.values(),
                         key=lambda p: p.preprocessing_fraction)
        speedups = [p.measured_quad_speedup for p in ordered]
        # monotone non-increasing within a small tolerance
        for a, b in zip(speedups, speedups[1:]):
            assert b <= a + 0.15
    check(body)

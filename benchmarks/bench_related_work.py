"""E14 — Section V related-work comparisons.

Two comparisons with divergent-finding documentation (EXPERIMENTS.md):

* **vs. Green et al. [15]** on the co-paper workloads (the two graphs
  shared with that paper): our reimplementation of the warp-parallel
  intersection *strategy*, idealized (free load balancing, charged
  binning), is measured here.  The paper reports a 2× advantage for its
  simple kernel; our simulator finds the idealized strategy *faster* —
  the advantage the paper measured therefore lies in the comparator's
  system overheads, not the intersection strategy itself.  Asserted:
  both kernels agree exactly; the ratio is recorded, not direction-
  asserted.
* **vs. Leist et al. [13]** on BA and WS (the two graphs shared with
  that paper): forward wins by a wide margin over the thread-per-vertex
  wedge-checking lower bound, as published (45×/7× there).
"""

from __future__ import annotations

import pytest

from repro.bench.related import compare_with_green, compare_with_leist
from repro.bench.runner import scaled_device
from repro.graphs.datasets import get
from repro.gpusim.device import GTX_980


def _setup(name):
    w = get(name)
    g = w.build(seed=0)
    return g, scaled_device(GTX_980, g, w)


@pytest.mark.parametrize("name", ["citeseer", "dblp"])
def test_green_comparison(benchmark, name, capsys):
    graph, device = _setup(name)
    result = benchmark.pedantic(lambda: compare_with_green(graph, device),
                                rounds=1, iterations=1)
    benchmark.extra_info.update({
        "pipeline_ratio": round(result.pipeline_ratio, 3),
        "kernel_ratio": round(result.kernel_ratio, 3),
        "paper_claim": "Polak ~2x faster",
        "finding": "idealized strategy faster in simulation",
    })
    with capsys.disabled():
        print(f"\n  {name}: {result.summary()}")
    # Exactness is asserted; the time ratio is a documented divergence.
    assert result.triangles > 0
    assert 0.1 < result.pipeline_ratio < 10.0


@pytest.mark.parametrize("name", ["ba", "ws"])
def test_leist_comparison(benchmark, name, capsys):
    graph, device = _setup(name)
    result = benchmark.pedantic(lambda: compare_with_leist(graph, device),
                                rounds=1, iterations=1)
    benchmark.extra_info.update({
        "advantage": round(result.advantage, 1),
        "paper_claim": "45x (BA) / 7x (WS)",
    })
    with capsys.disabled():
        print(f"\n  {name}: {result.summary()}")
    # The paper's direction: forward beats thread-per-vertex wedge
    # checking by a wide margin on both graphs.
    assert result.advantage > 5.0

"""E16 — scale-convergence sweep: validate the methodology itself.

EXPERIMENTS.md blames every deviation on specific mini-scale
distortions; if that story is right, the dimensionless observables must
drift *toward* the paper's values as the workload scale grows.  This
bench measures one synthetic workload (ws — generator exact at every
scale) at a 4× scale ladder and asserts exactly that drift.
"""

from __future__ import annotations

import pytest

from repro.bench.sweep import scale_sweep
from repro.graphs.datasets import get


@pytest.fixture(scope="module")
def sweep():
    base = get("ws").default_scale
    return scale_sweep("ws", scales=(base / 4, base / 2, base))


def test_sweep_rendered(benchmark, sweep, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    paper = sweep.paper
    benchmark.extra_info.update({
        f"scale_{p.scale:.5f}": f"{p.gtx980_speedup:.1f}x / "
                                f"{p.cache_hit_pct:.1f}%"
        for p in sweep.points})
    benchmark.extra_info["paper"] = (f"{paper.gtx980_speedup}x / "
                                     f"{paper.cache_hit_pct}%")
    with capsys.disabled():
        print()
        print(sweep.summary())


def test_speedup_converges_toward_paper(check, sweep):
    """Growing scale must not drift the GTX speedup *away* from the
    paper's full-scale value."""
    def body():
        assert sweep.converges("gtx980_speedup",
                               sweep.paper.gtx980_speedup,
                               tolerance=0.25)
    check(body)


def test_preprocessing_fraction_falls_with_scale(check, sweep):
    """Fixed launch overheads amortize as graphs grow, so the
    preprocessing fraction must fall — the distortion-2 story."""
    def body():
        fractions = [p.preprocessing_fraction for p in sweep.points]
        assert fractions[-1] < fractions[0]
    check(body)


def test_work_grows_superlinearly(check, sweep):
    """O(m√m): quadrupling the graph should more than quadruple arcs'
    worth of speedup denominator — checked via arc counts only (the
    generator's density rule)."""
    def body():
        arcs = [p.num_arcs for p in sweep.points]
        assert arcs[-1] > 3.0 * arcs[0]
    check(body)

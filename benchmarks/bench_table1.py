"""E1 — regenerate **Table I** (the paper's main result).

One bench per workload row; each runs the full measurement protocol
(CPU forward + Tesla C2050 + 4×C2050 + GTX 980 on capacity-scaled
simulated devices) and records the paper-vs-measured cells in
``extra_info``.  The final test prints the assembled table and asserts
the paper's headline claims:

* C2050 speedups in the 8–16× band, GTX 980 in 15–35× (with the
  documented slack for mini-scale stand-ins),
* 4-GPU speedups within Amdahl's envelope (≤ 2.8×-ish),
* the ``†`` memory-pressure pattern exactly as published.
"""

from __future__ import annotations

import pytest

from repro.bench import calibration, tables
from repro.bench.runner import RowResult
from conftest import bench_row_names

_collected: dict[str, RowResult] = {}


@pytest.mark.parametrize("name", bench_row_names())
def test_table1_row(benchmark, row_cache, name):
    row = benchmark.pedantic(lambda: row_cache.get(name),
                             rounds=1, iterations=1)
    _collected[name] = row
    paper = row.workload.paper
    benchmark.extra_info.update({
        "arcs": row.num_arcs,
        "triangles": row.triangles,
        "cpu_ms_simulated": round(row.cpu_ms, 3),
        "c2050_speedup": round(row.c2050_speedup, 2),
        "c2050_speedup_paper": paper.c2050_speedup,
        "quad_speedup": round(row.quad_speedup, 2),
        "quad_speedup_paper": paper.quad_speedup,
        "gtx980_speedup": round(row.gtx980_speedup, 2),
        "gtx980_speedup_paper": paper.gtx980_speedup,
        "dagger_c2050": row.dagger_c2050,
    })
    # Row-level sanity: every backend agreed on the count (the runner
    # already cross-checks), and the GPUs actually beat the CPU.
    assert row.triangles > 0 or row.workload.name == "none"
    assert row.c2050_speedup > 1.0
    assert row.gtx980_speedup > 1.0
    # GTX 980 beats the C2050 (the paper's consistent ordering).
    assert row.gtx980_speedup > row.c2050_speedup


def test_table1_assembled_and_bands(check, row_cache, capsys):
    def body():
        rows = [_collected.get(n) or row_cache.get(n)
                for n in bench_row_names()]
        with capsys.disabled():
            print()
            print("=== TABLE I (paper vs measured) ===")
            print(tables.render_table1(rows))
        problems = [p for r in rows for p in calibration.check_row(r)]
        assert not problems, "\n".join(problems)
    check(body)


def test_table1_dagger_pattern(check, row_cache):
    """Orkut and Kronecker 21 — and only they — overflow the 3 GB C2050;
    the 4 GB GTX 980 never falls back (Table I's † pattern)."""
    def body():
        rows = [_collected.get(n) or row_cache.get(n)
                for n in bench_row_names()]
        problems = calibration.check_daggers(rows)
        assert not problems, "\n".join(problems)
    check(body)

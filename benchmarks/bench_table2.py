"""E2 — regenerate **Table II** (GTX 980 profiling: cache hit rate and
sustained DRAM bandwidth during the counting kernel).

Shares the Table I row cache; the assertions encode the paper's
qualitative findings:

* hit rates sit in a healthy band (paper: 64–83%, "75–80% is a good
  result");
* Barabási–Albert is the worst cache citizen of the suite (64.45% in the
  paper — its random preferential attachments have no locality);
* sustained bandwidth is a sizable fraction of the 224 GB/s peak but
  nowhere near it ("about half", Section IV).
"""

from __future__ import annotations

import pytest

from repro.bench import tables
from repro.bench.calibration import BANDWIDTH_FRACTION_OF_PEAK, CACHE_HIT_PCT
from conftest import bench_row_names


@pytest.fixture(scope="module")
def rows(row_cache):
    return [row_cache.get(n) for n in bench_row_names()]


def test_table2_assembled(rows, capsys, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info.update({
        r.workload.name: f"{r.cache_hit_pct:.1f}% / {r.bandwidth_gbs:.0f} GB/s"
        for r in rows})
    with capsys.disabled():
        print()
        print("=== TABLE II (paper vs measured) ===")
        print(tables.render_table2(rows))


def test_hit_rates_in_band(check, rows):
    def body():
        for r in rows:
            assert CACHE_HIT_PCT.check(r.cache_hit_pct), (
                f"{r.workload.name}: {r.cache_hit_pct:.1f}%")
    check(body)


def test_ba_is_the_worst_cache_citizen(check, rows):
    def body():
        by_name = {r.workload.name: r for r in rows}
        if "ba" not in by_name or len(rows) < 3:
            pytest.skip("needs the ba row plus context")
        ba = by_name["ba"].cache_hit_pct
        others = [r.cache_hit_pct for r in rows if r.workload.name != "ba"]
        assert ba <= min(others) + 1.0  # worst, up to a point of noise
    check(body)


def test_bandwidth_fraction_of_peak(check, rows):
    """Only DRAM-bound kernels are held to the 'about half of peak'
    claim — small mini-scale rows go compute/LSU-bound, where reported
    DRAM throughput is legitimately low."""
    def body():
        checked = 0
        for r in rows:
            if r.gtx980.kernel_timing.bound != "dram":
                continue
            checked += 1
            frac = r.bandwidth_gbs / r.gtx980.device.peak_bandwidth_gbs
            assert BANDWIDTH_FRACTION_OF_PEAK.check(frac), (
                f"{r.workload.name}: {r.bandwidth_gbs:.0f} GB/s = "
                f"{frac:.2f} peak")
        if len(rows) >= 8:
            assert checked >= 4, "too few DRAM-bound rows to check"
    check(body)

"""Shared fixtures for the paper-reproduction benches.

``table1_rows`` runs each Table I workload once per session (CPU +
C2050 + 4×C2050 + GTX 980) and caches the result — Table I, Table II and
Figure 1 all read from the same cache, like in the paper.

Environment knobs:

* ``REPRO_SCALE``   — global workload-size multiplier (default 1.0);
* ``REPRO_BENCH_ROWS`` — comma-separated workload names to restrict the
  Table I sweep (default: all 13).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.runner import RowResult, run_workload
from repro.graphs.datasets import WORKLOADS, get


def bench_row_names() -> list[str]:
    raw = os.environ.get("REPRO_BENCH_ROWS", "")
    if not raw:
        return list(WORKLOADS)
    names = [n.strip() for n in raw.split(",") if n.strip()]
    for n in names:
        get(n)  # validate
    return names


class _RowCache:
    def __init__(self):
        self._rows: dict[str, RowResult] = {}

    def get(self, name: str) -> RowResult:
        if name not in self._rows:
            self._rows[name] = run_workload(name)
        return self._rows[name]

    def all(self) -> list[RowResult]:
        return [self.get(n) for n in bench_row_names()]


@pytest.fixture(scope="session")
def row_cache() -> _RowCache:
    return _RowCache()


@pytest.fixture
def check(benchmark):
    """Run an assertion body under the benchmark fixture so the test
    still executes with ``--benchmark-only`` (which skips tests that
    never touch ``benchmark``)."""
    def run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)
    return run


@pytest.fixture(scope="session")
def ba_graph():
    """The memory-bound ablation workload (worst cache behaviour in
    Table II, so every Section III-D effect is visible)."""
    return get("ba").build(seed=0)


@pytest.fixture(scope="session")
def kron_graph():
    """A mid-size Kronecker graph for the cheaper experiments."""
    return get("kron18").build(seed=0)

#!/usr/bin/env python
"""Figure-1-style scaling study on Kronecker R-MAT graphs.

Sweeps the R-MAT scale, counts on the CPU baseline and two simulated
GPUs, and prints the log-log series the paper plots in Figure 1 — plus
the per-scale speedups, so the "15 to 35 times" headline can be watched
developing as graphs grow.

Run:  python examples/kronecker_scaling.py [max_scale]
"""

import sys

import repro


def main(max_scale: int = 12) -> None:
    print(f"{'scale':>5} {'nodes':>7} {'arcs':>9} {'triangles':>11} "
          f"{'CPU ms':>9} {'C2050 ms':>9} {'GTX980 ms':>9} "
          f"{'C2050 x':>8} {'GTX x':>7}")
    for scale in range(8, max_scale + 1):
        graph = repro.generators.rmat(scale, edge_factor=16, seed=1)
        cpu = repro.forward_count_cpu(graph)
        tesla = repro.gpu_count_triangles(graph, device=repro.TESLA_C2050)
        gtx = repro.gpu_count_triangles(graph, device=repro.GTX_980)
        assert cpu.triangles == tesla.triangles == gtx.triangles
        print(f"{scale:>5} {graph.num_nodes:>7} {graph.num_arcs:>9} "
              f"{cpu.triangles:>11,} {cpu.elapsed_ms:>9.2f} "
              f"{tesla.total_ms:>9.3f} {gtx.total_ms:>9.3f} "
              f"{cpu.elapsed_ms / tesla.total_ms:>8.1f} "
              f"{cpu.elapsed_ms / gtx.total_ms:>7.1f}")
    print("\nNote how the GPU advantage grows with size: small graphs are "
          "launch-overhead bound\n(the paper's graphs are 20M-230M arcs, "
          "where the advantage saturates at 8-35x).")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)

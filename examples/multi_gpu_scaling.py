#!/usr/bin/env python
"""Multi-GPU scaling and Amdahl's law (paper Section III-E).

Counts one triangle-rich graph and one triangle-poor graph on 1, 2 and
4 simulated Tesla C2050s, showing how the serial preprocessing phase
caps the multi-GPU speedup — and why the paper's best quad results come
from Kronecker graphs ("large triangles to edges ratios").

Run:  python examples/multi_gpu_scaling.py
"""

import repro


def study(name: str) -> None:
    graph = repro.datasets.get(name).build(seed=3)
    single = repro.gpu_count_triangles(graph, device=repro.TESLA_C2050)
    f = single.timeline.preprocessing_fraction
    print(f"\n{name}: {graph.num_arcs:,} arcs, "
          f"{single.triangles:,} triangles "
          f"(triangles/arcs = {single.triangles / graph.num_arcs:.2f})")
    print(f"  preprocessing fraction on one GPU: {f:.2f}")
    print(f"  {'GPUs':>5} {'total ms':>10} {'speedup':>8} {'Amdahl max':>11}")
    print(f"  {1:>5} {single.total_ms:>10.3f} {'1.00':>8} {'1.00':>11}")
    for n in (2, 4):
        multi = repro.multi_gpu_count_triangles(graph,
                                                device=repro.TESLA_C2050,
                                                num_gpus=n)
        assert multi.triangles == single.triangles
        speedup = single.total_ms / multi.total_ms
        amdahl = 1.0 / (f + (1.0 - f) / n)
        print(f"  {n:>5} {multi.total_ms:>10.3f} {speedup:>8.2f} "
              f"{amdahl:>11.2f}")


def main() -> None:
    print("Multi-GPU scaling under Amdahl's law (Section III-E)")
    study("kron18")   # triangle-rich: counting dominates, scales well
    study("ws")       # modest ratio: preprocessing caps the speedup
    print("\nThe Kronecker graph's counting phase dominates, so splitting "
          "it over 4 GPUs pays;\nthe Watts-Strogatz graph spends its time "
          "in the serial preprocessing instead.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""A tour of the paper's Section III-D optimizations, one toggle at a time.

Starts from the fully-optimized pipeline and switches each optimization
off in isolation, printing what it costs — the ablation study behind the
paper's implementation section, runnable as a script.

Run:  python examples/optimization_tour.py
"""

import repro
from repro.core.options import GpuOptions
from repro.gpusim.simt import LaunchConfig


def run(graph, device, options, label: str, baseline_ms=None) -> float:
    res = repro.gpu_count_triangles(graph, device=device, options=options)
    delta = ""
    if baseline_ms is not None:
        delta = f"  ({res.kernel_timing.kernel_ms / baseline_ms:.2f}x kernel)"
    print(f"  {label:<42} total {res.total_ms:8.3f} ms, "
          f"kernel {res.kernel_timing.kernel_ms:8.4f} ms{delta}")
    return res.kernel_timing.kernel_ms


def main() -> None:
    # The BA workload — the suite's most memory-hungry cache citizen.
    graph = repro.datasets.get("ba").build(scale=1 / 128, seed=1)
    device = repro.GTX_980
    print(f"graph: {graph}  device: {device.name}\n")

    base = run(graph, device, GpuOptions(),
               "paper's final configuration")
    print()
    run(graph, device, GpuOptions(unzip=False),
        "III-D1 off: AoS edge array", base)
    run(graph, device, GpuOptions(sort_as_u64=False),
        "III-D2 off: comparison pair sort", base)
    run(graph, device, GpuOptions(merge_variant="preliminary"),
        "III-D3 off: two reads per merge iteration", base)
    run(graph, device, GpuOptions(use_readonly_cache=False),
        "III-D4 off: no const __restrict__", base)
    run(graph, device,
        GpuOptions(launch=LaunchConfig(64, 8, simulated_warp_size=16)),
        "III-D5 on: simulated 16-lane warps", base)
    run(graph, device, GpuOptions(cpu_preprocess="always"),
        "III-D6 forced: CPU preprocessing (†)", base)
    print()
    run(graph, device, GpuOptions(launch=LaunchConfig(32, 1)),
        "III-C detuned: 32 threads x 1 block/SM", base)


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Counting graphs that do not fit in GPU memory.

Demonstrates the paper's two answers to its "biggest limitation":

1. the Section III-D6 fallback (the ``†`` rows of Table I): CPU
   preprocessing halves what the device must hold;
2. the Section VI future-work idea, implemented here: split the graph
   into vertex-partition subgraphs, count each independently on the
   device, and combine exactly.

Run:  python examples/out_of_memory.py
"""

import repro
from repro.core.options import GpuOptions
from repro.core.partitioned import partitioned_count_triangles
from repro.errors import OutOfDeviceMemoryError
from repro.gpusim.memory import DeviceMemory


def main() -> None:
    graph = repro.datasets.get("kron18").build(scale=1 / 128, seed=9)
    truth = repro.forward_count_cpu(graph).triangles
    print(f"graph: {graph}, {truth:,} triangles")

    # A card with memory for only ~60% of the preprocessing working set.
    small_card = repro.GTX_980.with_memory(int(graph.num_arcs * 8 * 1.4))
    print(f"device: {small_card.name} with only "
          f"{small_card.memory_bytes / 1e6:.1f} MB")

    # Direct pipeline: out of memory at the radix sort's double buffer.
    try:
        repro.gpu_count_triangles(graph, device=small_card,
                                  memory=DeviceMemory(small_card),
                                  options=GpuOptions(cpu_preprocess="never"))
        raise AssertionError("should not fit")
    except OutOfDeviceMemoryError as exc:
        print(f"direct pipeline: OOM ({exc})")

    # Fallback 1: CPU preprocessing (Section III-D6).
    res = repro.gpu_count_triangles(graph, device=small_card,
                                    memory=DeviceMemory(small_card))
    assert res.triangles == truth and res.used_cpu_fallback
    print(f"† CPU-preprocessing fallback: {res.triangles:,} triangles "
          f"in {res.total_ms:.2f} ms simulated")

    # Fallback 2 (future work, Section VI): an even smaller card that the
    # † path cannot save — partitioned counting still finishes.
    tiny_card = repro.GTX_980.with_memory(int(graph.num_arcs * 8 * 0.55))
    print(f"\nshrinking to {tiny_card.memory_bytes / 1e6:.1f} MB "
          f"(beyond what † can handle)...")
    try:
        repro.gpu_count_triangles(graph, device=tiny_card,
                                  memory=DeviceMemory(tiny_card))
        raise AssertionError("should not fit")
    except OutOfDeviceMemoryError:
        print("† fallback: OOM too")

    def gpu_counter(subgraph):
        return repro.gpu_count_triangles(
            subgraph, device=tiny_card,
            memory=DeviceMemory(tiny_card)).triangles

    part = partitioned_count_triangles(graph, num_parts=8,
                                       counter=gpu_counter, seed=1)
    assert part.triangles == truth
    print(f"partitioned counting (8 vertex buckets): {part.triangles:,} "
          f"triangles")
    print(f"  {part.subgraph_counts} induced subgraph counts, largest "
          f"{part.largest_subgraph_arcs:,} arcs")
    print(f"  splitting overhead: {part.redundant_arc_work:,} arc-visits "
          f"vs {graph.num_arcs:,} in the whole graph "
          f"({part.redundant_arc_work / graph.num_arcs:.1f}x)")


if __name__ == "__main__":
    main()

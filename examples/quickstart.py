#!/usr/bin/env python
"""Quickstart: count triangles on CPU and on the simulated GPU.

Covers the library's core loop in ~40 lines:

1. generate a graph in the paper's edge-array format,
2. count with the sequential *forward* baseline (exact),
3. count on a simulated GTX 980 with the paper's full pipeline,
4. read the simulated timing, cache and speedup numbers back.

Run:  python examples/quickstart.py
"""

import repro


def main() -> None:
    # An R-MAT graph (the paper's synthetic scaling family): 2^12 nodes,
    # edge factor 16, deterministic under the seed.
    graph = repro.generators.rmat(scale=12, edge_factor=16, seed=7)
    print(f"graph: {graph}")

    # --- CPU baseline: the paper's own forward implementation -------- #
    cpu = repro.forward_count_cpu(graph)
    print(f"CPU forward:   {cpu.triangles:,} triangles in "
          f"{cpu.elapsed_ms:.1f} ms (modelled Xeon X5650, "
          f"{cpu.merge_steps:,} merge steps)")

    # --- simulated GPU: preprocessing + CountTriangles kernel -------- #
    gpu = repro.gpu_count_triangles(graph, device=repro.GTX_980)
    assert gpu.triangles == cpu.triangles, "backends must agree"
    print(f"GTX 980 (sim): {gpu.triangles:,} triangles in "
          f"{gpu.total_ms:.2f} ms simulated "
          f"({cpu.elapsed_ms / gpu.total_ms:.1f}x speedup)")

    # --- what the profiler would say (the paper's Table II) ---------- #
    print(f"  counting kernel: {gpu.kernel_timing.kernel_ms:.3f} ms, "
          f"{gpu.kernel_timing.bound}-bound")
    print(f"  read-only cache hit rate: {gpu.cache_hit_rate:.1%}")
    print(f"  sustained DRAM bandwidth: {gpu.bandwidth_gbs:.0f} GB/s")
    print(f"  preprocessing fraction:   "
          f"{gpu.timeline.preprocessing_fraction:.0%}")

    # --- phase breakdown (the paper's measurement window) ------------ #
    print("  timeline:")
    for event in gpu.timeline.events:
        print(f"    {event.phase:<10} {event.name:<28} {event.ms:8.4f} ms")


if __name__ == "__main__":
    main()

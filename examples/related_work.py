#!/usr/bin/env python
"""Kernel strategy shoot-out: the paper's kernel vs. the Section V rival.

Runs the paper's thread-per-edge two-pointer kernel and a warp-per-edge
parallel-intersection kernel (the strategy of Green et al. [15]) on the
same preprocessed graph, then prints both nvprof-style profiles side by
side — the memory-system numbers show *why* each one is fast or slow,
which is the whole point of simulating instead of estimating.

Spoiler (see EXPERIMENTS.md E14): in this simulator the idealized rival
strategy wins on co-paper-like graphs — its lanes probe one shared list
and coalesce, while the paper's kernel scatters 32 lanes across 32
unrelated lists.  The paper measured the opposite against the rival's
*full system*; the difference is that system's overhead, not the
strategy.

Run:  python examples/related_work.py
"""

import repro
from repro.core.count_kernel import count_triangles_kernel
from repro.core.preprocess import preprocess
from repro.core.warp_intersect_kernel import warp_intersect_kernel
from repro.gpusim.memory import DeviceMemory
from repro.gpusim.profiler import format_kernel_profile
from repro.gpusim.simt import LaunchConfig, SimtEngine
from repro.gpusim.timing import Timeline, time_kernel


def main() -> None:
    # A co-paper-style graph (union of author cliques, like Citeseer).
    graph = repro.generators.clique_cover(2000, 700, mean_group_size=14,
                                          seed=3)
    device = repro.GTX_980
    print(f"graph: {graph}  device: {device.name}\n")

    memory = DeviceMemory(device)
    pre = preprocess(graph, device, memory, Timeline())

    engine_a = SimtEngine(device, LaunchConfig())
    res_a = count_triangles_kernel(engine_a, pre)
    timing_a = time_kernel(engine_a.report)
    print(format_kernel_profile(engine_a.report, timing_a,
                                name="CountTriangles (paper, "
                                     "thread-per-edge merge)"))

    engine_b = SimtEngine(device, LaunchConfig())
    res_b = warp_intersect_kernel(engine_b, pre)
    timing_b = time_kernel(engine_b.report)
    print(format_kernel_profile(engine_b.report, timing_b,
                                name="WarpIntersect (Green-style, "
                                     "warp-per-edge binary search)"))

    assert res_a.triangles == res_b.triangles
    ratio = timing_b.kernel_ms / timing_a.kernel_ms
    print(f"both count {res_a.triangles:,} triangles; "
          f"warp-intersect / two-pointer time = {ratio:.2f}")
    print("note the transactions-per-request rows above: that asymmetry "
          "is the entire story.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""One deliberately buggy kernel per sanitizer checker.

Drives the SIMT engine by hand (the way the counting kernels do) and
plants the three classic CUDA bugs ``compute-sanitizer`` exists for:

* an out-of-bounds read past an adjacency array      -> **memcheck**
* a read from ``cudaMalloc``-style uninitialized memory -> **initcheck**
* two warps bumping one counter without ``atomicAdd``   -> **racecheck**

Each run uses report mode, so execution continues and the findings
accumulate into one ``==SANITIZE==`` sheet; the last section shows the
strict-mode behaviour (a typed exception at the first finding) and that
the shipped pipeline is clean under the same checkers.

Run:  python examples/sanitize_demo.py
"""

import numpy as np

import repro
from repro.core.options import GpuOptions
from repro.errors import MemcheckError
from repro.gpusim.memory import DeviceMemory
from repro.gpusim.simt import LaunchConfig, SimtEngine
from repro.sanitize import Sanitizer


def fresh_engine(sanitizer):
    device = repro.GTX_980
    memory = DeviceMemory(device)
    memory.sanitizer = sanitizer
    engine = SimtEngine(device, LaunchConfig(32, 1), sanitizer=sanitizer)
    return memory, engine


def main() -> None:
    san = Sanitizer(mode="report")
    memory, engine = fresh_engine(san)
    ws = engine.warp_size

    # -- memcheck: lane 3 walks one element past its adjacency list. ---- #
    adj = memory.alloc("adj", np.arange(16, dtype=np.int64))
    engine.read(adj, np.array([2, 16]), np.array([0, 3]))
    engine.end_step("setup", np.array([0, 3]), 4)

    # -- initcheck: summing a result buffer nobody wrote. --------------- #
    result = memory.alloc_empty("result", 8, np.int64)
    engine.read(result, np.arange(8), np.arange(8))
    engine.end_step("reduce", np.arange(8), 2)

    # -- racecheck: warps 0 and 1 both bump counter[5], no atomicAdd. --- #
    counts = memory.alloc("counts", np.zeros(8, np.int64))
    engine.write(counts, np.array([5]), np.array([1]), np.array([0]))
    engine.write(counts, np.array([5]), np.array([1]), np.array([ws]))
    engine.end_step("merge", np.array([0, ws]), 6)

    print(san.format_report())
    assert san.counts() == {"memcheck": 1, "initcheck": 1, "racecheck": 1}

    # -- strict mode raises the typed error instead. -------------------- #
    strict = Sanitizer(mode="strict")
    memory, engine = fresh_engine(strict)
    adj = memory.alloc("adj", np.arange(16, dtype=np.int64))
    try:
        engine.read(adj, np.array([99]), np.array([0]))
    except MemcheckError as exc:
        print(f"\nstrict mode: {type(exc).__name__}: {exc}")

    # -- and the real pipeline is clean under all three checkers. ------- #
    graph = repro.generators.barabasi_albert(300, 8, seed=0)
    run = repro.gpu_count_triangles(graph,
                                    options=GpuOptions(sanitize="strict"))
    print(f"\nclean pipeline: {run.triangles} triangles, "
          f"{len(run.sanitizer_reports)} findings under strict mode")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""A multi-tenant triangle-counting service on a simulated GPU fleet.

The paper's pipeline answers one query; this example runs it as a
*service*: a 60-second deterministic trace of counting jobs — a zipf-
skewed mix of R-MAT graphs plus one "whale" too large for any device —
replayed against a fleet of four GTX 980s with

* memory-aware admission control (the whale is routed to the
  partitioned/distributed path instead of failing),
* a per-device LRU cache of preprocessed graphs (preprocessing is
  70–90% of a run, so repeat queries get dramatically cheaper),
* one injected device failure mid-job: the job retries on another
  device after exponential backoff and produces the identical count,

then replays an *overload* trace (10x the rate, the whole fleet dying
mid-window) with and without the serving control plane — the plane
answers the stranded tail on the approximate degraded tier instead of
dropping it.

Run:  python examples/serving_simulation.py        (~30 s wall)
"""

from repro.bench.experiments import serve_experiment
from repro.bench.serve_scale import run_serve_scale


def main() -> None:
    print("replaying a 60 s trace against 4x GTX 980 "
          "(3 replays: scout, faulted, cache-off)...\n")
    exp = serve_experiment(fleet_spec="gtx980x4",
                           duration_ms=60_000.0,
                           rate_per_s=2.0,
                           seed=0)

    print(exp.report.format_report())

    r = exp.report
    victim = next(j for j in r.jobs if j.attempts > 0)
    print(f"injected failure: device #{exp.fault_device} died at "
          f"{exp.fault_at_ms:.1f} ms with job {victim.job_id} in flight;")
    print(f"  the job retried on device #{victim.device_index} and "
          f"finished with the same count ({victim.triangles:,} triangles)")

    nc = exp.report_nocache
    print(f"\npreprocessing cache: {r.total_service_ms:.1f} ms total device "
          f"time vs {nc.total_service_ms:.1f} ms with the cache disabled "
          f"({exp.cache_service_win:.2f}x less work, "
          f"{r.cache_hit_rate:.0%} hit rate)")
    print(f"  on the single-device path alone (the jobs the cache can "
          f"help): {r.fast_path_service_ms:.1f} ms vs "
          f"{nc.fast_path_service_ms:.1f} ms "
          f"({nc.fast_path_service_ms / r.fast_path_service_ms:.1f}x)")
    assert len(r.lost) == 0, "no job may be lost to the injected failure"

    print("\nnow the overload story: 10x the rate, every device failing "
          "mid-window,\nseed scheduler vs the serving control plane...\n")
    scale = run_serve_scale(fleet_spec="gtx980x4", duration_ms=10_000.0,
                            rate_multiplier=10.0, burst=1.0, seed=0)
    print(scale.summary())
    degraded = scale.plane_report.degraded
    if degraded:
        j = degraded[0]
        print(f"  e.g. job {j.job_id} (shed: {j.shed.reason}) answered "
              f"approximately:")
        print(f"    {{'estimate': {j.estimate:.1f}, "
              f"'error_bound': {j.error_bound:.1f}, "
              f"'tier': '{j.tier}', 'method': '{j.approx_method}'}}")
    assert len(scale.plane_report.lost) == 0
    assert len(scale.plane_report.shed) == 0
    assert scale.identical, "exact answers must match the seed replay"


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Network analysis: clustering coefficients of a social graph.

The paper's motivation (Section I): triangle counts underpin the
clustering coefficient and the transitivity ratio used in network
analysis.  This example plays the downstream analyst:

1. build a LiveJournal-like social network (power-law configuration
   model stand-in, like the paper's SNAP workload),
2. compute the full clustering report through the GPU-backed counter,
3. contrast it against an Erdős–Rényi null model of the same size —
   the classic "is this network clustered?" question,
4. list the most locally-clustered high-degree users.

Run:  python examples/social_network.py
"""

import numpy as np

import repro
from repro.graphs import stats


def gpu_counter(graph):
    """Triangle counts via the simulated GTX 980 pipeline."""
    return repro.gpu_count_triangles(graph, device=repro.GTX_980).triangles


def main() -> None:
    # A mini social network with realistic degree skew.
    social = repro.datasets.get("livejournal").build(scale=1 / 1024, seed=42)
    print(f"social network: {social.num_nodes:,} users, "
          f"{social.num_edges:,} friendships")

    report = repro.clustering_report(social, counter=gpu_counter)
    print(f"  triangles:            {report.triangles:,}")
    print(f"  transitivity:         {report.transitivity:.4f}")
    print(f"  average clustering:   {report.average_clustering:.4f}")

    # Null model: same nodes and edges, no social structure.
    null = repro.generators.erdos_renyi_gnm(social.num_nodes,
                                            social.num_edges, seed=42)
    null_report = repro.clustering_report(null, counter=gpu_counter)
    print(f"random graph with the same size:")
    print(f"  triangles:            {null_report.triangles:,}")
    print(f"  transitivity:         {null_report.transitivity:.4f}")
    if null_report.transitivity > 0:
        ratio = report.transitivity / null_report.transitivity
        print(f"  => the social network is {ratio:.1f}x more clustered "
              f"than chance")

    # Per-user view via the GPU pipeline: one atomicAdd per triangle
    # corner gives every user's local count in a single kernel pass.
    gpu_local = repro.gpu_local_counts(social)
    local = gpu_local.local_clustering
    degrees = social.degrees()
    hubs = np.argsort(-degrees)[:200]
    tight = hubs[np.argsort(-local[hubs])[:5]]
    print("top hub users by local clustering (GPU-computed):")
    for user in tight:
        print(f"  user {int(user):>6}: degree {int(degrees[user]):>4}, "
              f"local clustering {local[user]:.3f}")

    # And the triangles themselves, enumerated (forward listing).
    listing = repro.list_triangles(social, limit=5_000_000)
    print(f"listed {listing.count:,} friendship triangles; first three: "
          f"{[tuple(map(int, t)) for t in listing.triangles[:3]]}")


if __name__ == "__main__":
    main()

"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
``pip install -e . --no-use-pep517`` works on environments without the
``wheel`` package (PEP 660 editable builds need it, the legacy
``setup.py develop`` path does not).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("Reproduction of 'Counting Triangles in Large Graphs on GPU' "
                 "(Polak, IPDPSW 2016) on a simulated CUDA substrate"),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    entry_points={"console_scripts": [
        "repro-bench = repro.bench.cli:main",
        "repro-lint = repro.sanitize.lint:main",
        "repro-analyze = repro.analyze.cli:main",
    ]},
)

"""repro — reproduction of *Counting Triangles in Large Graphs on GPU*
(Adam Polak, IPDPSW 2016) on a simulated CUDA substrate.

Quickstart::

    import repro

    g = repro.generators.rmat(scale=10, edge_factor=16, seed=7)
    cpu = repro.forward_count_cpu(g)           # the paper's CPU baseline
    gpu = repro.gpu_count_triangles(g)         # simulated GTX 980
    assert gpu.triangles == cpu.triangles
    print(gpu.triangles, gpu.total_ms, "ms simulated,",
          f"{cpu.elapsed_ms / gpu.total_ms:.1f}x speedup")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.types import TriangleCount
from repro.errors import (ReproError, GraphFormatError, DeviceError,
                          OutOfDeviceMemoryError, InvalidLaunchError,
                          WorkloadError, CalibrationError, KernelFault)
from repro.graphs import EdgeArray, CSRGraph, datasets, generators, io, stats
from repro.gpusim import (DeviceSpec, CpuSpec, TESLA_C2050, GTX_980,
                          NVS_5200M, XEON_X5650, DEVICES, LaunchConfig)
from repro.core import (GpuOptions, gpu_count_triangles, GpuRunResult,
                        multi_gpu_count_triangles, clustering_report,
                        ClusteringReport, hybrid_count_triangles,
                        partitioned_count_triangles,
                        distributed_count_triangles,
                        gpu_local_counts, LocalCountResult)
from repro.cpu import (forward_count_cpu, edge_iterator_count,
                       node_iterator_count, compact_forward_count,
                       forward_hashed_count, matmul_count, approx,
                       list_triangles, TriangleListing)
from repro.serve import (Fleet, FleetDevice, FleetScheduler, JobQueue,
                         PreprocessCache, ServeJob, ServeReport,
                         TraceConfig, generate_trace, serve_trace)

__version__ = "1.0.0"

__all__ = [
    "TriangleCount",
    # errors
    "ReproError", "GraphFormatError", "DeviceError",
    "OutOfDeviceMemoryError", "InvalidLaunchError", "WorkloadError",
    "CalibrationError", "KernelFault",
    # graphs
    "EdgeArray", "CSRGraph", "datasets", "generators", "io", "stats",
    # devices
    "DeviceSpec", "CpuSpec", "TESLA_C2050", "GTX_980", "NVS_5200M",
    "XEON_X5650", "DEVICES", "LaunchConfig",
    # core
    "GpuOptions", "gpu_count_triangles", "GpuRunResult",
    "multi_gpu_count_triangles", "clustering_report", "ClusteringReport",
    "hybrid_count_triangles", "partitioned_count_triangles",
    "distributed_count_triangles", "gpu_local_counts",
    "LocalCountResult",
    # cpu
    "forward_count_cpu", "edge_iterator_count", "node_iterator_count",
    "compact_forward_count", "forward_hashed_count",
    "matmul_count", "approx", "list_triangles", "TriangleListing",
    # serve
    "Fleet", "FleetDevice", "FleetScheduler", "JobQueue",
    "PreprocessCache", "ServeJob", "ServeReport", "TraceConfig",
    "generate_trace", "serve_trace",
    "__version__",
]

"""``repro.analyze`` — dataflow-based static analysis for the repro.

This package replaces the flat ``repro-lint`` AST walker with a real
analysis stack: per-function CFGs (:mod:`repro.analyze.cfg`), a
dataflow engine (:mod:`repro.analyze.dataflow`), a plugin check
registry (:mod:`repro.analyze.registry`) and structured findings with
text/JSON/SARIF emitters (:mod:`repro.analyze.emit`) plus committed
baselines (:mod:`repro.analyze.baseline`).  The legacy SAN101–SAN105
rules live on unchanged (same ids, same suppressions, same findings)
as plugins in :mod:`repro.analyze.checks.invariants`;
``repro.sanitize.lint`` remains as a thin shim over this driver.

Driver entry points: :func:`analyze_source` for one module's text,
:func:`analyze_paths` for trees of files; both apply the suppression
comments and return sorted :class:`~repro.analyze.findings.Finding`
lists inside an :class:`AnalysisResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

import repro.analyze.checks  # noqa: F401  (registers the built-ins)
from repro.analyze.context import ModuleContext
from repro.analyze.findings import Finding
from repro.analyze.registry import (CheckSpec, all_checks, check_ids,
                                    get_check, rule_catalog)

__all__ = [
    "AnalysisResult", "Finding", "CheckSpec",
    "analyze_source", "analyze_file", "analyze_paths",
    "all_checks", "check_ids", "get_check", "rule_catalog",
    "LEGACY_RULES",
]

#: The rules the pre-refactor ``repro-lint`` walker implemented (plus
#: SAN100, its bare-suppression fix); the ``repro.sanitize.lint`` shim
#: restricts itself to these for backward compatibility.
LEGACY_RULES = ("SAN100", "SAN101", "SAN102", "SAN103", "SAN104", "SAN105")


@dataclass(frozen=True)
class AnalysisResult:
    """Findings plus the parse-failure records of one analyzer run.

    ``errors`` are SAN000 records (files that did not parse); they are
    reported like findings but drive the exit-code-2 usage/parse
    contract instead of the exit-code-1 findings gate.
    """

    findings: tuple[Finding, ...]
    errors: tuple[Finding, ...] = ()
    files: int = 0

    @property
    def all_findings(self) -> tuple[Finding, ...]:
        return tuple(sorted(self.errors + self.findings))


def _selected(checks: Sequence[str] | None) -> tuple[CheckSpec, ...]:
    if checks is None:
        return all_checks()
    return tuple(get_check(check_id) for check_id in checks)


def analyze_source(source: str, path: str,
                   checks: Sequence[str] | None = None) -> AnalysisResult:
    """Analyze one module's source text.  ``path`` is used for
    reporting, the package-based check exemptions, and baselines."""
    try:
        ctx = ModuleContext(source, path)
    except SyntaxError as exc:
        record = Finding(path=path, line=exc.lineno or 1,
                         col=exc.offset or 0, rule="SAN000",
                         message=f"syntax error: {exc.msg}")
        return AnalysisResult(findings=(), errors=(record,), files=1)
    findings: list[Finding] = []
    for spec in _selected(checks):
        if not spec.applies_to(ctx.parts):
            continue
        findings.extend(f for f in spec.run(ctx) if not ctx.suppressed(f))
    return AnalysisResult(findings=tuple(sorted(findings)), files=1)


def analyze_file(path: str | Path,
                 checks: Sequence[str] | None = None) -> AnalysisResult:
    path = Path(path)
    return analyze_source(path.read_text(encoding="utf-8"), str(path),
                          checks=checks)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Every ``.py`` under each path (files are analyzed directly),
    deterministic order."""
    files: list[Path] = []
    for spec in paths:
        p = Path(spec)
        files.extend(sorted(p.rglob("*.py")) if p.is_dir() else [p])
    return files


def analyze_paths(paths: Sequence[str | Path],
                  checks: Sequence[str] | None = None) -> AnalysisResult:
    """Analyze every ``.py`` under each path."""
    findings: list[Finding] = []
    errors: list[Finding] = []
    files = 0
    for file in iter_python_files(paths):
        result = analyze_file(file, checks=checks)
        findings.extend(result.findings)
        errors.extend(result.errors)
        files += result.files
    return AnalysisResult(findings=tuple(sorted(findings)),
                          errors=tuple(sorted(errors)), files=files)

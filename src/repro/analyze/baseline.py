"""Committed finding baselines — adopt the analyzer without a
flag-day cleanup.

A baseline file records the findings a tree is *known* to contain (the
seeded teaching examples in ``examples/``, legacy debt being burned
down).  The gate then distinguishes:

* **new** findings — not in the baseline; these fail CI;
* **matched** findings — baselined, reported informationally;
* **stale** entries — baselined but no longer reported; surfaced (and
  failed) so the baseline shrinks monotonically instead of rotting —
  run ``repro-analyze --update-baseline`` after fixing the debt.

Matching is a multiset over ``(path, rule, line)``: messages may be
reworded without churning the baseline, but a finding moving to a
different line must be re-acknowledged deliberately.  Paths are stored
POSIX-style relative to the repo root so the file is stable across
checkouts and operating systems.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path, PurePosixPath

from repro.analyze.findings import Finding
from repro.errors import AnalysisError

BASELINE_FORMAT = "repro-analyze-baseline/v1"

Key = tuple[str, str, int]


def _norm(path: str) -> str:
    return str(PurePosixPath(*Path(path).parts))


def _key(finding: Finding) -> Key:
    return (_norm(finding.path), finding.rule, finding.line)


def load(path: str | Path) -> Counter[Key]:
    """Baseline entries as a multiset of ``(path, rule, line)`` keys."""
    try:
        raw = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
    try:
        doc = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise AnalysisError(
            f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != BASELINE_FORMAT:
        raise AnalysisError(
            f"baseline {path} is not a {BASELINE_FORMAT!r} document")
    entries = doc.get("findings")
    if not isinstance(entries, list):
        raise AnalysisError(f"baseline {path}: 'findings' must be a list")
    keys: Counter[Key] = Counter()
    for i, entry in enumerate(entries):
        if (not isinstance(entry, dict)
                or not isinstance(entry.get("path"), str)
                or not isinstance(entry.get("rule"), str)
                or not isinstance(entry.get("line"), int)):
            raise AnalysisError(
                f"baseline {path}: entry {i} needs string 'path'/'rule' "
                "and integer 'line'")
        keys[(_norm(entry["path"]), entry["rule"], entry["line"])] += 1
    return keys


def save(path: str | Path, findings: list[Finding]) -> None:
    """Write the current findings as the new baseline (sorted,
    message included for human review — matching ignores it)."""
    entries = [{"path": _norm(f.path), "rule": f.rule, "line": f.line,
                "message": f.message} for f in sorted(findings)]
    doc = {"format": BASELINE_FORMAT, "findings": entries}
    Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")


def split(findings: list[Finding], baseline: Counter[Key],
          ) -> tuple[list[Finding], list[Finding], list[Key]]:
    """``(new, matched, stale)`` relative to the baseline multiset."""
    remaining = Counter(baseline)
    new: list[Finding] = []
    matched: list[Finding] = []
    for finding in sorted(findings):
        key = _key(finding)
        if remaining[key] > 0:
            remaining[key] -= 1
            matched.append(finding)
        else:
            new.append(finding)
    stale = sorted(remaining.elements())
    return new, matched, stale

"""Per-function control-flow graphs over the Python AST.

The flat walker this subsystem replaced saw a function as a bag of
nodes; every path-sensitive contract (buffer freed on one exit path but
not another, a use after a conditional free, a wait on a stream whose
events were only issued on some branch) was inexpressible.  This module
builds a conventional basic-block CFG that the dataflow engine
(:mod:`repro.analyze.dataflow`) iterates to a fixpoint.

Granularity and conventions
---------------------------
* A :class:`Block` holds *simple* statements only.  Compound statements
  contribute a synthetic header element instead of themselves:

  - ``if``/``while`` — an ``ast.Expr`` wrapping the test (so dataflow
    sees the names the condition reads);
  - ``for`` — an ``ast.Assign`` of the loop target from the iterable
    (the binding a real iteration performs, which is what taint and
    reaching-definition transfer functions need);
  - ``with`` — an ``ast.Assign`` per ``as`` binding (or a bare ``Expr``
    of the context manager when there is none).

  Synthetic nodes carry the source location of the statement they
  summarize (``ast.copy_location``).
* ``return`` edges to :attr:`CFG.exit_id`; ``raise`` edges to the
  innermost enclosing handlers or, outside any ``try``, to
  :attr:`CFG.raise_id` (kept separate so "leak on early *return*"
  checks can ignore exceptional exits).
* Every block created inside a ``try`` body gets an edge to each
  handler entry — the conservative "any statement may raise" reading.
* Nested ``def``/``class`` bodies are opaque single statements; each
  function gets its own CFG.

The builder is deliberately small: it models exactly the control
constructs the repo's kernel/pipeline code uses (``if``/``for``/
``while``/``try``/``with``/``match``, early returns, ``break``/
``continue``) and nothing speculative.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


@dataclass
class Block:
    """One basic block: straight-line statements plus successor ids."""

    id: int
    label: str = ""
    stmts: list[ast.stmt] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)

    def add_succ(self, block_id: int) -> None:
        if block_id not in self.succs:
            self.succs.append(block_id)


@dataclass
class CFG:
    """A function (or module) body as basic blocks.

    ``entry_id`` is where execution starts; ``exit_id`` collects normal
    termination (every ``return`` plus falling off the end);
    ``raise_id`` collects unhandled ``raise`` statements.
    """

    blocks: dict[int, Block]
    entry_id: int
    exit_id: int
    raise_id: int

    def block(self, block_id: int) -> Block:
        return self.blocks[block_id]

    def preds(self) -> dict[int, list[int]]:
        """Predecessor ids per block (derived, deterministic order)."""
        preds: dict[int, list[int]] = {bid: [] for bid in self.blocks}
        for block in self.blocks.values():
            for succ in block.succs:
                preds[succ].append(block.id)
        return preds

    def rpo(self) -> list[int]:
        """Reverse postorder from the entry (unreachable blocks last,
        in id order, so fixpoint iteration still covers them)."""
        seen: set[int] = set()
        order: list[int] = []

        def visit(block_id: int) -> None:
            if block_id in seen:
                return
            seen.add(block_id)
            for succ in self.blocks[block_id].succs:
                visit(succ)
            order.append(block_id)

        visit(self.entry_id)
        ordered = list(reversed(order))
        ordered += [bid for bid in sorted(self.blocks) if bid not in seen]
        return ordered


def _header_expr(node: ast.stmt, test: ast.expr) -> ast.stmt:
    expr = ast.Expr(value=test)
    return ast.copy_location(expr, node)


def _header_assign(node: ast.stmt, target: ast.expr,
                   value: ast.expr) -> ast.stmt:
    assign = ast.Assign(targets=[target], value=value)
    return ast.copy_location(assign, node)


class _Builder:
    """Single-use CFG construction state."""

    def __init__(self) -> None:
        self.blocks: dict[int, Block] = {}
        self.exit_id = self._new("exit")
        self.raise_id = self._new("raise")
        #: (continue target, break target) per enclosing loop.
        self.loops: list[tuple[int, int]] = []
        #: handler-entry ids per enclosing ``try``.
        self.handlers: list[list[int]] = []

    def _new(self, label: str) -> int:
        block = Block(id=len(self.blocks), label=label)
        self.blocks[block.id] = block
        return block.id

    def _edge(self, src: int | None, dst: int) -> None:
        if src is not None:
            self.blocks[src].add_succ(dst)

    def _fresh(self, label: str, *preds: int | None) -> int:
        block_id = self._new(label)
        for pred in preds:
            self._edge(pred, block_id)
        if self.handlers:
            # Conservative: any statement inside a try body may raise.
            for handler in self.handlers[-1]:
                self._edge(block_id, handler)
        return block_id

    def build(self, stmts: list[ast.stmt]) -> CFG:
        entry = self._fresh("entry")
        end = self.emit(stmts, entry)
        self._edge(end, self.exit_id)
        return CFG(blocks=self.blocks, entry_id=entry,
                   exit_id=self.exit_id, raise_id=self.raise_id)

    def emit(self, stmts: list[ast.stmt], cur: int | None) -> int | None:
        """Emit a statement sequence; returns the open block afterwards,
        or ``None`` when every path terminated (return/raise/break)."""
        for stmt in stmts:
            if cur is None:
                # Unreachable code after a terminator still gets blocks
                # (no predecessors), so its nodes stay analyzable.
                cur = self._fresh("unreachable")
            cur = self._stmt(stmt, cur)
        return cur

    def _stmt(self, stmt: ast.stmt, cur: int) -> int | None:
        if isinstance(stmt, ast.If):
            return self._if(stmt, cur)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, cur)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, cur)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, cur)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, cur)
        if isinstance(stmt, ast.Return):
            self.blocks[cur].stmts.append(stmt)
            self._edge(cur, self.exit_id)
            return None
        if isinstance(stmt, ast.Raise):
            self.blocks[cur].stmts.append(stmt)
            if self.handlers:
                for handler in self.handlers[-1]:
                    self._edge(cur, handler)
            else:
                self._edge(cur, self.raise_id)
            return None
        if isinstance(stmt, ast.Break):
            self._edge(cur, self.loops[-1][1] if self.loops
                       else self.exit_id)
            return None
        if isinstance(stmt, ast.Continue):
            self._edge(cur, self.loops[-1][0] if self.loops
                       else self.exit_id)
            return None
        # Simple statement (incl. nested def/class, treated opaquely).
        self.blocks[cur].stmts.append(stmt)
        return cur

    def _if(self, stmt: ast.If, cur: int) -> int | None:
        self.blocks[cur].stmts.append(_header_expr(stmt, stmt.test))
        body_end = self.emit(stmt.body, self._fresh("if-body", cur))
        if stmt.orelse:
            else_end = self.emit(stmt.orelse, self._fresh("if-else", cur))
        else:
            else_end = cur
        if body_end is None and else_end is None:
            return None
        return self._fresh("if-join", body_end, else_end)

    def _loop(self, stmt: ast.While | ast.For | ast.AsyncFor,
              cur: int) -> int:
        header = self._fresh("loop-header", cur)
        if isinstance(stmt, ast.While):
            self.blocks[header].stmts.append(_header_expr(stmt, stmt.test))
        else:
            self.blocks[header].stmts.append(
                _header_assign(stmt, stmt.target, stmt.iter))
        after = self._fresh("loop-after")
        self.loops.append((header, after))
        body_end = self.emit(stmt.body, self._fresh("loop-body", header))
        self.loops.pop()
        self._edge(body_end, header)
        if stmt.orelse:
            else_end = self.emit(stmt.orelse,
                                 self._fresh("loop-else", header))
            self._edge(else_end, after)
        else:
            self._edge(header, after)
        return after

    def _try(self, stmt: ast.Try, cur: int) -> int | None:
        handler_entries = []
        for handler in stmt.handlers:
            entry = self._new("except")
            if handler.name:
                name = ast.Name(id=handler.name, ctx=ast.Store())
                bound = handler.type if handler.type is not None \
                    else ast.Constant(value=None)
                self.blocks[entry].stmts.append(ast.copy_location(
                    ast.Assign(targets=[ast.copy_location(name, handler)],
                               value=bound), handler))
            handler_entries.append(entry)

        self.handlers.append(handler_entries)
        body_end = self.emit(stmt.body, self._fresh("try-body", cur))
        if stmt.orelse:
            body_end = self.emit(stmt.orelse, body_end)
        self.handlers.pop()

        ends: list[int | None] = [body_end]
        for handler, entry in zip(stmt.handlers, handler_entries):
            ends.append(self.emit(handler.body, entry))
        live = [e for e in ends if e is not None]
        if stmt.finalbody:
            if not live and not stmt.handlers:
                # try/finally where the body always terminates: the
                # finally still runs on the way out.
                live = []
            fin = self._fresh("finally", *live)
            return self.emit(stmt.finalbody, fin)
        if not live:
            return None
        return self._fresh("try-join", *live)

    def _with(self, stmt: ast.With | ast.AsyncWith, cur: int) -> int | None:
        for item in stmt.items:
            if item.optional_vars is not None:
                self.blocks[cur].stmts.append(_header_assign(
                    stmt, item.optional_vars, item.context_expr))
            else:
                self.blocks[cur].stmts.append(
                    _header_expr(stmt, item.context_expr))
        return self.emit(stmt.body, cur)

    def _match(self, stmt: ast.Match, cur: int) -> int | None:
        self.blocks[cur].stmts.append(_header_expr(stmt, stmt.subject))
        ends: list[int | None] = [cur]  # no case may match
        for case in stmt.cases:
            ends.append(self.emit(case.body,
                                  self._fresh("match-case", cur)))
        live = [e for e in ends if e is not None]
        if not live:
            return None
        return self._fresh("match-join", *live)


def build_cfg(node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module,
              ) -> CFG:
    """Build the CFG of one function body (or a module's top level)."""
    return _Builder().build(list(node.body))

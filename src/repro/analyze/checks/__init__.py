"""Check plugins.  Importing this package registers every built-in
check with :mod:`repro.analyze.registry`; a new check is a new module
here plus an import below — the driver discovers it through the
registry, never by name.
"""

from __future__ import annotations

from repro.analyze.checks import (  # noqa: F401  (import-for-effect)
    geometry,
    invariants,
    lifetime,
    racecheck,
    streams,
    transfers,
)

__all__ = ["geometry", "invariants", "lifetime", "racecheck",
           "streams", "transfers"]

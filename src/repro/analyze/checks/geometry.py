"""SAN204b — constant-fold ``LaunchConfig`` geometry against the
``DeviceSpec`` catalog limits.

``LaunchConfig.validate`` rejects impossible geometry at run time — but
a sweep config or example that only runs on CI's smallest preset can
ship a geometry that no device in the catalog accepts and nobody
executes until a user does.  This check folds integer-constant
expressions in ``LaunchConfig(...)`` call sites (literals, unary minus,
``+ - * // % **`` arithmetic) and flags a geometry only when it is
invalid on *every* catalog device: occupancy limits differ per device,
so a geometry one preset accepts is a tuning choice, not a bug.

The limits are read from :mod:`repro.gpusim.device` at check time (the
catalog of ``DeviceSpec`` instances plus the hard
``max_threads_per_block`` cap), not duplicated here — a new preset
widens the accepted envelope automatically.  Non-constant operands
fold to "unknown" and the dimension is skipped; this is a static
complement to ``validate``, not a replacement.
"""

from __future__ import annotations

import ast
from functools import lru_cache

from repro.analyze.context import ModuleContext
from repro.analyze.findings import Finding
from repro.analyze.registry import CheckSpec, register


def _fold_int(expr: ast.expr) -> int | None:
    """Fold an integer-constant expression, or ``None`` if unknown."""
    if isinstance(expr, ast.Constant):
        if isinstance(expr.value, bool) or not isinstance(expr.value, int):
            return None
        return int(expr.value)
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
        inner = _fold_int(expr.operand)
        return None if inner is None else -inner
    if isinstance(expr, ast.BinOp):
        left, right = _fold_int(expr.left), _fold_int(expr.right)
        if left is None or right is None:
            return None
        try:
            if isinstance(expr.op, ast.Add):
                return left + right
            if isinstance(expr.op, ast.Sub):
                return left - right
            if isinstance(expr.op, ast.Mult):
                return left * right
            if isinstance(expr.op, ast.FloorDiv):
                return left // right
            if isinstance(expr.op, ast.Mod):
                return left % right
            if isinstance(expr.op, ast.Pow) and right >= 0 and right < 64:
                return left ** right
        except (ZeroDivisionError, OverflowError, ValueError):
            return None
    return None


@lru_cache(maxsize=1)
def _catalog_limits() -> tuple[tuple[tuple[int, int, int, int], ...], int]:
    """``((warp, max_tpb, max_bps, max_tps) per device, hard tpb cap)``
    from the live device catalog."""
    from repro.gpusim import device as device_mod

    devices = [value for value in vars(device_mod).values()
               if isinstance(value, device_mod.DeviceSpec)]
    limits = tuple(sorted(
        (spec.warp_size, spec.max_threads_per_block,
         spec.max_blocks_per_sm, spec.max_threads_per_sm)
        for spec in devices))
    hard_cap = max((spec.max_threads_per_block for spec in devices),
                   default=1024)
    return limits, hard_cap


#: LaunchConfig's positional signature.
_FIELDS = ("threads_per_block", "blocks_per_sm", "simulated_warp_size")


def _geometry(call: ast.Call) -> dict[str, int]:
    values: dict[str, int] = {}
    for position, arg in enumerate(call.args[:len(_FIELDS)]):
        folded = _fold_int(arg)
        if folded is not None:
            values[_FIELDS[position]] = folded
    for kw in call.keywords:
        if kw.arg in _FIELDS:
            folded = _fold_int(kw.value)
            if folded is not None:
                values[kw.arg] = folded
    return values


def _geometry_errors(values: dict[str, int]) -> list[str]:
    """Reasons the geometry is invalid on every catalog device
    (empty when at least one device accepts it)."""
    limits, hard_cap = _catalog_limits()
    if not limits:
        return []
    tpb = values.get("threads_per_block")
    bps = values.get("blocks_per_sm")
    sws = values.get("simulated_warp_size")

    errors: list[str] = []
    if tpb is not None:
        if tpb < 1:
            errors.append(f"threads_per_block={tpb} must be positive")
        elif tpb > hard_cap:
            errors.append(f"threads_per_block={tpb} exceeds the hardware "
                          f"cap {hard_cap} on every catalog device")
        elif not any(tpb % warp == 0 for warp, _t, _b, _s in limits):
            warps = sorted({warp for warp, _t, _b, _s in limits})
            errors.append(f"threads_per_block={tpb} is not a multiple of "
                          f"any catalog warp size {warps}")
    if bps is not None:
        max_bps = max(b for _w, _t, b, _s in limits)
        if bps < 1:
            errors.append(f"blocks_per_sm={bps} must be positive")
        elif bps > max_bps:
            errors.append(f"blocks_per_sm={bps} exceeds max_blocks_per_sm="
                          f"{max_bps} on every catalog device")
    if tpb is not None and bps is not None and tpb >= 1 and bps >= 1:
        max_tps = max(s for _w, _t, _b, s in limits)
        if tpb * bps > max_tps:
            errors.append(f"threads_per_block*blocks_per_sm={tpb * bps} "
                          f"exceeds max_threads_per_sm={max_tps} on every "
                          "catalog device")
    if sws is not None:
        if sws < 1:
            errors.append(f"simulated_warp_size={sws} must be positive")
        elif not any(warp % sws == 0 for warp, _t, _b, _s in limits):
            warps = sorted({warp for warp, _t, _b, _s in limits})
            errors.append(f"simulated_warp_size={sws} does not divide any "
                          f"catalog warp size {warps}")
    return errors


def _run_san204b(ctx: ModuleContext) -> list[Finding]:
    out: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None)
        if name != "LaunchConfig":
            continue
        for reason in _geometry_errors(_geometry(node)):
            out.append(SAN204B.finding(
                ctx.path, node.lineno, node.col_offset,
                f"launch geometry rejected by every DeviceSpec in the "
                f"catalog: {reason}"))
    return out


SAN204B = register(CheckSpec(
    id="SAN204b", name="launch-geometry",
    summary="constant LaunchConfig geometry invalid on every DeviceSpec "
            "in the catalog",
    severity="error", run=_run_san204b))

"""SAN100–SAN105 — the simulator-invariant rules, rebased onto the
plugin framework.

Same ids, same suppressions, same findings (file:line:rule) as the
pre-refactor flat walker in ``repro.sanitize.lint`` — pinned by
``tests/test_sanitize.py`` — plus the two fixes that motivated the
rebase: SAN100 (a suppression comment that names no rule id is an
explicit error instead of silently waiving nothing-or-everything) and
the SAN103 import-alias blind spot (``from numpy import random`` /
``from numpy.random import rand`` now resolve through the import
table instead of escaping the ``np.random.*`` attribute match).
"""

from __future__ import annotations

import ast

from repro.analyze.context import ModuleContext, scope_nodes
from repro.analyze.findings import Finding
from repro.analyze.registry import CheckSpec, register

_ALLOC_METHODS = {"alloc", "alloc_empty", "try_alloc"}
_READ_ATTRS = {"read", "read_compacted"}
_END_ATTRS = {"end_step", "end_step_warps"}
_SAFE_RANDOM = {"default_rng", "Generator", "SeedSequence", "BitGenerator"}

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


# --------------------------------------------------------------------- #
# SAN100 — bare suppressions (parsed by the context)
# --------------------------------------------------------------------- #

def _run_san100(ctx: ModuleContext) -> list[Finding]:
    return list(ctx.bare_suppressions)


SAN100 = register(CheckSpec(
    id="SAN100", name="bare-suppression",
    summary="suppression comment (# san-ok / repro-lint: allow=) "
            "missing the rule id it waives",
    severity="error", run=_run_san100))


# --------------------------------------------------------------------- #
# SAN101 — DeviceBuffer payload access outside the model
# --------------------------------------------------------------------- #

def _annotation_mentions_devicebuffer(ann: ast.AST | None) -> bool:
    if ann is None:
        return False
    try:
        text = ast.unparse(ann)
    except Exception:
        return False
    return "DeviceBuffer" in text


def _buffer_names(nodes: list[ast.AST],
                  scope: ast.AST | list[ast.AST]) -> set[str]:
    """Names bound to DeviceBuffers in this scope, by dataflow:
    results of allocator calls, and parameters annotated DeviceBuffer."""
    names: set[str] = set()
    if isinstance(scope, _FUNC_NODES):
        args = scope.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs
                    + [a for a in (args.vararg, args.kwarg) if a]):
            if _annotation_mentions_devicebuffer(arg.annotation):
                names.add(arg.arg)
    for node in nodes:
        value: ast.expr | None = None
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        elif isinstance(node, ast.NamedExpr):
            value, targets = node.value, [node.target]
        if value is None:
            continue
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in _ALLOC_METHODS):
            for tgt in targets:
                if isinstance(tgt, ast.Name):
                    names.add(tgt.id)
    return names


def _run_san101(ctx: ModuleContext) -> list[Finding]:
    out: list[Finding] = []
    for scope in ctx.scopes():
        nodes = scope_nodes(scope)
        buffers = _buffer_names(nodes, scope)
        if not buffers:
            continue
        for node in nodes:
            if (isinstance(node, ast.Attribute) and node.attr == "data"
                    and isinstance(node.value, ast.Name)
                    and node.value.id in buffers):
                out.append(SAN101.finding(
                    ctx.path, node.lineno, node.col_offset,
                    f"direct payload access {node.value.id}.data bypasses "
                    "the memory model; use engine.read/write or "
                    "gpusim.thrustlike"))
    return out


SAN101 = register(CheckSpec(
    id="SAN101", name="payload-access",
    summary="DeviceBuffer payload (.data) accessed outside repro.gpusim",
    severity="error", run=_run_san101,
    skip_parts=("gpusim", "sanitize")))


# --------------------------------------------------------------------- #
# SAN102 — engine reads with no end_step accounting in scope
# --------------------------------------------------------------------- #

def _is_read_attr(node: ast.AST) -> bool:
    return isinstance(node, ast.Attribute) and node.attr in _READ_ATTRS


def _san102_scope(ctx: ModuleContext,
                  nodes: list[ast.AST]) -> list[Finding]:
    read_aliases: set[str] = set()
    end_aliases: set[str] = set()
    for node in nodes:
        if not isinstance(node, (ast.Assign, ast.NamedExpr)):
            continue
        value = node.value
        targets = node.targets if isinstance(node, ast.Assign) \
            else [node.target]
        candidates = [value]
        if isinstance(value, ast.IfExp):  # read = a.read_compacted if c else a.read
            candidates = [value.body, value.orelse]
        for cand in candidates:
            if _is_read_attr(cand):
                read_aliases.update(t.id for t in targets
                                    if isinstance(t, ast.Name))
            elif (isinstance(cand, ast.Attribute)
                  and cand.attr in _END_ATTRS):
                end_aliases.update(t.id for t in targets
                                   if isinstance(t, ast.Name))

    reads: list[ast.Call] = []
    has_end = False
    for node in nodes:
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            # file.read() / stream.read(n) are not engine reads — the
            # engine signature is read(buf, indices, thread_ids).
            if func.attr in _READ_ATTRS and len(node.args) >= 2:
                reads.append(node)
            elif func.attr in _END_ATTRS:
                has_end = True
        elif isinstance(func, ast.Name):
            if func.id in read_aliases and len(node.args) >= 2:
                reads.append(node)
            elif func.id in end_aliases:
                has_end = True

    if not reads or has_end:
        return []
    first = min(reads, key=lambda c: (c.lineno, c.col_offset))
    return [SAN102.finding(
        ctx.path, first.lineno, first.col_offset,
        "engine read(s) in a scope that never calls end_step/"
        "end_step_warps — this traffic is invisible to the timing model")]


def _run_san102(ctx: ModuleContext) -> list[Finding]:
    out: list[Finding] = []
    for scope in ctx.scopes():
        out.extend(_san102_scope(ctx, scope_nodes(scope)))
    return out


SAN102 = register(CheckSpec(
    id="SAN102", name="unaccounted-reads",
    summary="engine read without end_step/end_step_warps in its scope",
    severity="error", run=_run_san102))


# --------------------------------------------------------------------- #
# SAN103 — global-state np.random outside the generators
# --------------------------------------------------------------------- #

def _run_san103(ctx: ModuleContext) -> list[Finding]:
    out: list[Finding] = []
    bases = ctx.numpy_random_bases
    members = ctx.numpy_random_members
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Attribute):
            # np.random.<attr> / numpy.random.<attr>
            legacy = (isinstance(node.value, ast.Attribute)
                      and node.value.attr == "random"
                      and isinstance(node.value.value, ast.Name)
                      and node.value.value.id in ("np", "numpy"))
            # <alias>.<attr> where alias is the numpy.random module
            # (from numpy import random / import numpy.random as nr)
            aliased = (isinstance(node.value, ast.Name)
                       and node.value.id in bases)
            if (legacy or aliased) and node.attr not in _SAFE_RANDOM:
                out.append(SAN103.finding(
                    ctx.path, node.lineno, node.col_offset,
                    f"np.random.{node.attr} draws from global state; "
                    "use a seeded np.random.default_rng passed down "
                    "explicitly"))
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            # <name>(...) where name came from `from numpy.random import ...`
            member = members.get(node.func.id)
            if member is not None and member not in _SAFE_RANDOM:
                out.append(SAN103.finding(
                    ctx.path, node.lineno, node.col_offset,
                    f"np.random.{member} (imported as {node.func.id}) "
                    "draws from global state; use a seeded "
                    "np.random.default_rng passed down explicitly"))
    return out


SAN103 = register(CheckSpec(
    id="SAN103", name="global-random",
    summary="legacy np.random API outside repro.graphs.generators",
    severity="error", run=_run_san103,
    skip_parts=("generators",)))


# --------------------------------------------------------------------- #
# SAN104 — direct SimtEngine construction outside the runtime
# --------------------------------------------------------------------- #

def _run_san104(ctx: ModuleContext) -> list[Finding]:
    out: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None)
        if name != "SimtEngine":
            continue
        out.append(SAN104.finding(
            ctx.path, node.lineno, node.col_offset,
            "direct SimtEngine construction bypasses the unified runtime; "
            "use repro.runtime.launch (full lifecycle) or "
            "repro.runtime.build_engine (harness timing)"))
    return out


SAN104 = register(CheckSpec(
    id="SAN104", name="engine-construction",
    summary="direct SimtEngine construction outside repro.gpusim/runtime",
    severity="error", run=_run_san104,
    skip_parts=("gpusim", "runtime")))


# --------------------------------------------------------------------- #
# SAN105 — StreamTimeline cursor pokes outside the runtime
# --------------------------------------------------------------------- #

def _run_san105(ctx: ModuleContext) -> list[Finding]:
    out: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Attribute)
                and node.attr == "_cursors"):
            continue
        out.append(SAN105.finding(
            ctx.path, node.lineno, node.col_offset,
            "._cursors is StreamTimeline-internal state; use "
            "stream_time() to read a stream clock and wait_for() to "
            "record ordering"))
    return out


SAN105 = register(CheckSpec(
    id="SAN105", name="cursor-pokes",
    summary="StreamTimeline._cursors accessed outside repro.runtime",
    severity="error", run=_run_san105,
    skip_parts=("runtime",)))

"""SAN203b — DeviceMemory buffer lifetime over the per-function CFG.

``DeviceMemory`` hands out buffers through ``alloc``/``alloc_empty``/
``try_alloc`` and reclaims them through ``free`` (or ``free_all``).
Three path-sensitive lifetime bugs are expressible once the CFG exists:

* **use-after-free** — a buffer name read on a path where every
  reaching definition has already been freed;
* **double-free** — ``free(x)`` on a path where ``x`` is definitely
  freed already;
* **leak on early return** — a function that demonstrably owns a
  buffer (it frees it on *some* path) returns on another path with the
  buffer definitely live and not escaping through the return value.

The lattice is per-name status sets over ``{"alloc", "freed"}`` with
union join, so merge points degrade to *maybe*-freed and only
*definite* facts are reported — ``if cond: mem.free(x)`` followed by a
use is maybe-freed and stays silent.  Exceptional exits are ignored for
the leak rule (``raise`` paths go to the CFG's raise sink, not the
exit), matching the "early *return*" contract in the rule name.
Ownership transfer is recognized structurally: names that appear in any
``return``/``yield`` value, are stored into an attribute/subscript, or
are declared ``global``/``nonlocal`` escape the function and are never
leak candidates.
"""

from __future__ import annotations

import ast

from repro.analyze.cfg import CFG, Block
from repro.analyze.context import FunctionNode, ModuleContext
from repro.analyze.dataflow import bindings, fixpoint, walk_shallow
from repro.analyze.findings import Finding
from repro.analyze.registry import CheckSpec, register

_ALLOC_METHODS = {"alloc", "alloc_empty", "try_alloc"}

State = dict[str, frozenset[str]]

_ALLOCATED = frozenset({"alloc"})
#: ``try_alloc`` may return ``None`` — the binding is tracked (frees of
#: it are real) but never *definitely* allocated, so the leak rule
#: stays quiet on the untested-None early-return shape.
_MAYBE_ALLOCATED = frozenset({"alloc", "maybe-none"})
_FREED = frozenset({"freed"})


def _freed_names(stmt: ast.stmt) -> list[tuple[ast.Call, str]]:
    """``(call, buffer name)`` for each ``X.free(name)`` in ``stmt``."""
    out: list[tuple[ast.Call, str]] = []
    for node in walk_shallow(stmt):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "free"
                and len(node.args) == 1
                and isinstance(node.args[0], ast.Name)):
            out.append((node, node.args[0].id))
    return out


def _frees_everything(stmt: ast.stmt) -> bool:
    return any(isinstance(node, ast.Call)
               and isinstance(node.func, ast.Attribute)
               and node.func.attr == "free_all"
               for node in walk_shallow(stmt))


def _alloc_status(expr: ast.expr) -> frozenset[str] | None:
    if (isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in _ALLOC_METHODS):
        return (_MAYBE_ALLOCATED if expr.func.attr == "try_alloc"
                else _ALLOCATED)
    return None


def _join(a: State, b: State) -> State:
    merged = dict(a)
    for name, status in b.items():
        merged[name] = merged.get(name, frozenset()) | status
    return merged


def _apply(stmt: ast.stmt, state: State) -> State:
    """Transfer of one statement (no reporting)."""
    out = dict(state)
    for _call, name in _freed_names(stmt):
        if name in out:
            out[name] = _FREED
    if _frees_everything(stmt):
        for name in out:
            out[name] = _FREED
    for names, value in bindings(stmt):
        status = _alloc_status(value)
        for name in names:
            if status is not None:
                out[name] = status
            else:
                out.pop(name, None)  # rebound to a non-buffer value
    return out


def _unit_nodes(unit: FunctionNode | ast.Module) -> list[ast.AST]:
    """Every node of the unit's own body, nested defs excluded."""
    nodes: list[ast.AST] = []
    for stmt in unit.body:
        nodes.extend(walk_shallow(stmt))
    return nodes


def _escaping_names(unit: FunctionNode | ast.Module) -> set[str]:
    """Names whose buffer may outlive the unit: returned, yielded,
    stored into attributes/subscripts, or declared global/nonlocal."""
    escaping: set[str] = set()
    for node in _unit_nodes(unit):
        if isinstance(node, ast.Return) and node.value is not None:
            escaping.update(n.id for n in ast.walk(node.value)
                            if isinstance(n, ast.Name))
        elif isinstance(node, (ast.Yield, ast.YieldFrom)) \
                and node.value is not None:
            escaping.update(n.id for n in ast.walk(node.value)
                            if isinstance(n, ast.Name))
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            escaping.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    escaping.update(n.id for n in ast.walk(target.value
                                    if isinstance(target, ast.Attribute)
                                    else target)
                                    if isinstance(n, ast.Name))
    return escaping


def _owned_names(unit: FunctionNode | ast.Module) -> set[str]:
    """Names the unit frees on at least one path — proof it owns the
    reclamation, which is what makes a live buffer at return a leak."""
    owned: set[str] = set()
    for node in _unit_nodes(unit):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "free"
                and len(node.args) == 1
                and isinstance(node.args[0], ast.Name)):
            owned.add(node.args[0].id)
    return owned


def _loads(stmt: ast.stmt, skip: set[int]) -> list[ast.Name]:
    return [node for node in walk_shallow(stmt)
            if isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and id(node) not in skip]


def _report_unit(ctx: ModuleContext, unit: FunctionNode | ast.Module,
                 cfg: CFG) -> list[Finding]:
    in_states = fixpoint(cfg, {}, _block_transfer, _join)
    is_function = not isinstance(unit, ast.Module)
    leak_candidates = (_owned_names(unit) - _escaping_names(unit)
                       if is_function else set())
    out: list[Finding] = []
    for block in cfg.blocks.values():
        state = dict(in_states[block.id])
        for stmt in block.stmts:
            frees = _freed_names(stmt)
            free_args = {id(call.args[0]) for call, _name in frees}
            for node in _loads(stmt, skip=free_args):
                if state.get(node.id) == _FREED:
                    out.append(SAN203B.finding(
                        ctx.path, node.lineno, node.col_offset,
                        f"use of buffer {node.id!r} after it was freed "
                        "on every path reaching this statement"))
            for call, name in frees:
                if state.get(name) == _FREED:
                    out.append(SAN203B.finding(
                        ctx.path, call.lineno, call.col_offset,
                        f"double free of buffer {name!r}: already freed "
                        "on every path reaching this statement"))
            if isinstance(stmt, ast.Return):
                returned: set[str] = set()
                if stmt.value is not None:
                    returned = {n.id for n in ast.walk(stmt.value)
                                if isinstance(n, ast.Name)}
                for name in sorted(leak_candidates - returned):
                    if state.get(name) == _ALLOCATED:
                        out.append(SAN203B.finding(
                            ctx.path, stmt.lineno, stmt.col_offset,
                            f"buffer {name!r} leaks on this early "
                            "return: still allocated here, but freed "
                            "on the function's other paths"))
            state = _apply(stmt, state)
    return out


def _block_transfer(block: Block, state: State) -> State:
    out = dict(state)
    for stmt in block.stmts:
        out = _apply(stmt, out)
    return out


def _run_san203b(ctx: ModuleContext) -> list[Finding]:
    out: list[Finding] = []
    units: list[FunctionNode | ast.Module] = [ctx.tree]
    units.extend(ctx.functions)
    for unit in units:
        out.extend(_report_unit(ctx, unit, ctx.cfg(unit)))
    return out


SAN203B = register(CheckSpec(
    id="SAN203b", name="buffer-lifetime",
    summary="device buffer use-after-free, double-free, or leak on "
            "early return (path-sensitive)",
    severity="error", run=_run_san203b,
    skip_parts=("gpusim",)))

"""SAN201 — static racecheck: engine stores whose target index is not
derived from thread/warp/worklist identity.

The dynamic racecheck (PR 3) observes one execution: it catches a
cross-warp same-element store only when the colliding indices actually
occur in the inputs we ran.  The contract it enforces, though, holds on
*every* path: the counting kernels write ``result_buf`` at their own
thread id, and any ``engine.write`` whose index expression carries no
provenance from warp/lane/worklist identity can collide across warps on
some input.  This check is the static complement: a taint analysis over
the per-function CFG seeds identity from

* parameters and locals with identity names (``tid``, ``lanes``,
  ``warp_id``, ``worklist``, …),
* iteration-space constructors (``np.arange``, ``range``),

and propagates through arithmetic, indexing, ``astype``/``reshape``
chains and ``np.concatenate``-style recombinations.  A ``write`` or
``atomic_add`` whose index argument is untainted at the call site is
flagged.  ``atomic_add`` with a data-derived index *is* well-defined on
real hardware — when that is the design (e.g. one atomicAdd per
triangle corner), say so with ``# san-ok: SAN201`` at the call site,
exactly like the dynamic racecheck's atomics exemption.
"""

from __future__ import annotations

import ast

from repro.analyze.context import ModuleContext
from repro.analyze.dataflow import bindings, propagate_taint, walk_shallow
from repro.analyze.findings import Finding
from repro.analyze.registry import CheckSpec, register

#: Exact local/parameter names treated as thread/warp/worklist identity.
IDENTITY_NAMES = frozenset({
    "tid", "tids", "thread_id", "thread_ids",
    "lane", "lanes", "lane_id", "lane_ids",
    "warp", "warps", "warp_id", "warp_ids", "warp_of",
    "worklist", "active_lanes", "live_lanes",
})

#: Store methods with the engine signature
#: ``(buf, indices, values, thread_ids)``.
_STORE_ATTRS = {"write", "atomic_add"}

#: Methods whose result keeps the receiver's provenance.
_CHAIN_ATTRS = {"astype", "reshape", "copy", "ravel", "flatten", "view"}

#: Free functions / np members whose result is identity iff every array
#: argument is.
_COMBINE_NAMES = {"concatenate", "hstack", "vstack", "stack", "repeat",
                  "tile", "sort", "unique", "minimum", "maximum"}

#: Constructors of the iteration space itself.
_ITERSPACE_NAMES = {"arange", "range"}


def _expr_tainted(expr: ast.expr, tainted: frozenset[str]) -> bool:
    """Does ``expr`` derive from warp/lane/worklist identity?"""
    if isinstance(expr, ast.Name):
        return expr.id in tainted or expr.id in IDENTITY_NAMES
    if isinstance(expr, ast.Attribute):
        return expr.attr in IDENTITY_NAMES
    if isinstance(expr, ast.Subscript):
        # Values keep the *base*'s provenance: tid[mask] is identity,
        # vertex_ids[tid] is data (indexed *by* identity, not of it).
        return _expr_tainted(expr.value, tainted)
    if isinstance(expr, ast.BinOp):
        return (_expr_tainted(expr.left, tainted)
                or _expr_tainted(expr.right, tainted))
    if isinstance(expr, ast.UnaryOp):
        return _expr_tainted(expr.operand, tainted)
    if isinstance(expr, ast.IfExp):
        return (_expr_tainted(expr.body, tainted)
                or _expr_tainted(expr.orelse, tainted))
    if isinstance(expr, (ast.Tuple, ast.List)):
        return bool(expr.elts) and all(_expr_tainted(e, tainted)
                                       for e in expr.elts)
    if isinstance(expr, ast.Starred):
        return _expr_tainted(expr.value, tainted)
    if isinstance(expr, ast.NamedExpr):
        return _expr_tainted(expr.value, tainted)
    if isinstance(expr, ast.Call):
        func = expr.func
        name = (func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None)
        if name in _ITERSPACE_NAMES:
            return True
        if name in _COMBINE_NAMES:
            args: list[ast.expr] = []
            for arg in expr.args:
                if isinstance(arg, (ast.Tuple, ast.List)):
                    args.extend(arg.elts)
                else:
                    args.append(arg)
            return bool(args) and all(_expr_tainted(a, tainted)
                                      for a in args)
        if (name in _CHAIN_ATTRS and isinstance(func, ast.Attribute)):
            return _expr_tainted(func.value, tainted)
        return False
    return False


def _param_seeds(node: ast.FunctionDef | ast.AsyncFunctionDef,
                 ) -> frozenset[str]:
    args = node.args
    names = [a.arg for a in (args.posonlyargs + args.args
                             + args.kwonlyargs)]
    return frozenset(n for n in names if n in IDENTITY_NAMES)


def _store_calls(stmt: ast.stmt) -> list[ast.Call]:
    return [node for node in walk_shallow(stmt)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _STORE_ATTRS
            and len(node.args) >= 3]


def _run_san201(ctx: ModuleContext) -> list[Finding]:
    out: list[Finding] = []
    units: list[tuple[ast.FunctionDef | ast.AsyncFunctionDef | ast.Module,
                      frozenset[str]]] = [(ctx.tree, frozenset())]
    units += [(fn, _param_seeds(fn)) for fn in ctx.functions]
    for node, seeds in units:
        cfg = ctx.cfg(node)
        in_states = propagate_taint(cfg, seeds, _expr_tainted)
        for block in cfg.blocks.values():
            tainted = set(in_states[block.id])
            for stmt in block.stmts:
                for call in _store_calls(stmt):
                    index = call.args[1]
                    if not _expr_tainted(index, frozenset(tainted)):
                        assert isinstance(call.func, ast.Attribute)
                        out.append(SAN201.finding(
                            ctx.path, call.lineno, call.col_offset,
                            f"engine.{call.func.attr} index "
                            f"{ast.unparse(index)!r} is not derived from "
                            "warp/lane/worklist identity — cross-warp "
                            "same-element hazard on some input; index by "
                            "thread identity, or mark a deliberate "
                            "atomicAdd design with '# san-ok: SAN201'"))
                for names, value in bindings(stmt):
                    carries = _expr_tainted(value, frozenset(tainted))
                    for name in names:
                        (tainted.add if carries
                         else tainted.discard)(name)
    return out


SAN201 = register(CheckSpec(
    id="SAN201", name="static-racecheck",
    summary="engine write/atomic_add index not derived from "
            "warp/lane/worklist identity (cross-warp hazard)",
    severity="error", run=_run_san201,
    skip_parts=("gpusim", "sanitize")))

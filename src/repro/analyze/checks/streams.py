"""SAN202 — stream-wait hygiene over ``StreamTimeline.wait_for`` edges.

The executed pipelines (PR 7) order real work with
``timeline.wait_for(stream, upstream)`` — the ``cudaStreamWaitEvent``
analogue: the waiting stream advances to everything *already issued* on
the upstream.  Two static bug shapes follow directly from that
semantics:

* **self-wait** — ``wait_for(s, s)`` is always a no-op and means the
  author confused the waiter with the upstream;
* **unrecorded event** — waiting on a non-default stream on which the
  scope never issued an event (``add_on(..., stream=u)``) before the
  wait: the edge pins to an empty clock, so the intended ordering
  silently does not exist.  A *pair* of reversed waits with nothing
  issued in between (``wait_for(a, b)`` … ``wait_for(b, a)``) is the
  degenerate cycle form of the same bug and is reported as a cycle.

Stream operands are matched symbolically (the unparsed expression, with
``DEFAULT_STREAM``/``0`` canonicalized), so ``pipe.copy_stream``-style
ids resolve without constant folding.  Arithmetic stream ids (the
multi-GPU ring's ``wait_for(d, d - 1)``) are out of scope and skipped —
intraprocedural symbol matching cannot prove anything about them.
Waits on the default stream are always fine: host program order always
has issued work.  Symbolic upstreams are only checked in scopes that
issue their own ``add_on`` events; a helper that merely receives stream
ids cannot be judged intraprocedurally.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analyze.context import ModuleContext, scope_nodes
from repro.analyze.findings import Finding
from repro.analyze.registry import CheckSpec, register

_DEFAULT_KEYS = {"0", "DEFAULT_STREAM"}


def _stream_key(expr: ast.expr) -> str | None:
    """Canonical symbolic key of a stream operand, or ``None`` when the
    expression is not a symbol we can reason about (arithmetic, calls)."""
    if isinstance(expr, ast.Constant):
        if isinstance(expr.value, bool) or not isinstance(expr.value, int):
            return None
        return str(int(expr.value))
    if isinstance(expr, (ast.Name, ast.Attribute)):
        try:
            text = ast.unparse(expr)
        except Exception:
            return None
        if text == "DEFAULT_STREAM" or text.endswith(".DEFAULT_STREAM"):
            return "0"
        return text
    return None


@dataclass(frozen=True)
class _Wait:
    call: ast.Call
    stream: str | None
    upstream: str | None
    upstream_constant: bool


def _called_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _add_on_stream_key(call: ast.Call) -> str | None:
    """The stream an ``add_on(name, ms, phase, stream)`` call issues on."""
    for kw in call.keywords:
        if kw.arg == "stream":
            return _stream_key(kw.value)
    if len(call.args) >= 4:
        return _stream_key(call.args[3])
    return "0"


def _scope_findings(ctx: ModuleContext,
                    nodes: list[ast.AST]) -> list[Finding]:
    waits: list[_Wait] = []
    issues: list[tuple[int, str | None]] = []  # (line, stream key)
    for node in nodes:
        if not isinstance(node, ast.Call):
            continue
        name = _called_name(node)
        if name == "wait_for" and len(node.args) == 2:
            upstream = node.args[1]
            waits.append(_Wait(
                call=node,
                stream=_stream_key(node.args[0]),
                upstream=_stream_key(upstream),
                upstream_constant=isinstance(upstream, ast.Constant)))
        elif name == "add_on":
            issues.append((node.lineno, _add_on_stream_key(node)))
        elif name == "add":
            issues.append((node.lineno, "0"))

    if not waits:
        return []
    out: list[Finding] = []
    waits.sort(key=lambda w: (w.call.lineno, w.call.col_offset))
    scope_issues_events = any(key not in _DEFAULT_KEYS
                              for _line, key in issues)

    def issued_before(key: str, line: int) -> bool:
        return any(k == key and issue_line < line
                   for issue_line, k in issues)

    # Degenerate cycles: a reversed wait pair with nothing issued on the
    # second wait's upstream between the two edges.
    cycle_members: set[int] = set()
    for i, first in enumerate(waits):
        for second in waits[i + 1:]:
            if None in (first.stream, first.upstream,
                        second.stream, second.upstream):
                continue
            if (first.stream, first.upstream) != (second.upstream,
                                                  second.stream):
                continue
            issued_between = any(
                k == second.upstream
                and first.call.lineno <= issue_line <= second.call.lineno
                for issue_line, k in issues)
            if issued_between:
                continue
            cycle_members.update({id(first.call), id(second.call)})
            out.append(SAN202.finding(
                ctx.path, second.call.lineno, second.call.col_offset,
                f"stream-wait cycle {first.stream} -> {first.upstream} "
                f"-> {first.stream} with no event recorded on stream "
                f"{second.upstream} between the edges (line "
                f"{first.call.lineno} and here) — the reversed wait "
                "pins to an empty clock"))

    for wait in waits:
        if wait.stream is not None and wait.stream == wait.upstream:
            out.append(SAN202.finding(
                ctx.path, wait.call.lineno, wait.call.col_offset,
                f"stream {wait.stream} waits on itself — wait_for(s, s) "
                "is a no-op; name the upstream stream the work was "
                "issued on"))
            continue
        if id(wait.call) in cycle_members:
            continue
        if wait.upstream is None or wait.upstream in _DEFAULT_KEYS:
            continue  # arithmetic ids / host order are out of scope
        if not wait.upstream_constant and not scope_issues_events:
            continue  # helper receiving stream ids; cannot judge here
        if not issued_before(wait.upstream, wait.call.lineno):
            out.append(SAN202.finding(
                ctx.path, wait.call.lineno, wait.call.col_offset,
                f"wait on stream {wait.upstream} but no event was "
                "recorded on it in this scope (unrecorded event) — "
                "the edge pins to an empty clock; issue the add_on "
                "before the wait_for"))
    return out


def _run_san202(ctx: ModuleContext) -> list[Finding]:
    out: list[Finding] = []
    for scope in ctx.scopes():
        out.extend(_scope_findings(ctx, scope_nodes(scope)))
    return out


SAN202 = register(CheckSpec(
    id="SAN202", name="stream-waits",
    summary="stream-wait cycle, self-wait, or wait on a stream with no "
            "recorded events (unrecorded event)",
    severity="error", run=_run_san202))

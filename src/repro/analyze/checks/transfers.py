"""SAN205b — H2D/D2H transfer cost computed but never stamped on a
timeline.

``DeviceMemory.h2d_ms``/``d2h_ms`` *model* a transfer: they return the
milliseconds the copy would take and mutate nothing.  The cost only
exists once something stamps it — normally as an argument inside a
``StreamTimeline.add``/``add_on`` call.  A transfer modeled and then
dropped is the simulator analogue of a real H2D the profiler never
sees: Table 1 and the figure-1 walls silently under-report copy time.

Two shapes are flagged:

* a bare expression statement — ``mem.h2d_ms(edges.nbytes)`` computed
  and immediately discarded;
* an assignment whose value is exactly the transfer call and whose
  bound name is never read afterwards in the enclosing scope.

Anything else (the call as an argument to another call, in arithmetic,
returned, folded into a forecast) is assumed used — downstream code
like the serving plane's admission forecasts legitimately consumes
transfer costs without a timeline.
"""

from __future__ import annotations

import ast

from repro.analyze.context import ModuleContext, scope_nodes
from repro.analyze.findings import Finding
from repro.analyze.registry import CheckSpec, register

_TRANSFER_ATTRS = {"h2d_ms", "d2h_ms"}


def _is_transfer(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _TRANSFER_ATTRS)


def _scope_findings(ctx: ModuleContext,
                    nodes: list[ast.AST]) -> list[Finding]:
    out: list[Finding] = []
    # Pass 1: names read anywhere in this scope (Load context).
    reads: dict[str, int] = {}
    for node in nodes:
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            reads[node.id] = reads.get(node.id, 0) + 1

    for node in nodes:
        if isinstance(node, ast.Expr) and _is_transfer(node.value):
            call = node.value
            assert isinstance(call, ast.Call)
            assert isinstance(call.func, ast.Attribute)
            out.append(SAN205B.finding(
                ctx.path, call.lineno, call.col_offset,
                f"{call.func.attr} result discarded — the modeled "
                "transfer cost never reaches a timeline; pass it to "
                "StreamTimeline.add/add_on (or drop the call)"))
        elif isinstance(node, ast.Assign) and _is_transfer(node.value):
            call = node.value
            assert isinstance(call, ast.Call)
            assert isinstance(call.func, ast.Attribute)
            names = [t.id for t in node.targets
                     if isinstance(t, ast.Name)]
            if not names:
                continue
            if all(not reads.get(name) for name in names):
                out.append(SAN205B.finding(
                    ctx.path, call.lineno, call.col_offset,
                    f"{call.func.attr} result bound to "
                    f"{', '.join(repr(n) for n in names)} but never "
                    "read — the modeled transfer cost is never stamped "
                    "on a timeline"))
    return out


def _run_san205b(ctx: ModuleContext) -> list[Finding]:
    out: list[Finding] = []
    for scope in ctx.scopes():
        out.extend(_scope_findings(ctx, scope_nodes(scope)))
    return out


SAN205B = register(CheckSpec(
    id="SAN205b", name="untimed-transfers",
    summary="h2d_ms/d2h_ms transfer cost computed but never stamped on "
            "a StreamTimeline",
    severity="error", run=_run_san205b,
    skip_parts=("gpusim",)))

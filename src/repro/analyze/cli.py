"""``repro-analyze`` — the static-analysis command line.

Exit-code contract (pinned by ``tests/test_cli_commands.py``):

* ``0`` — clean: no findings (or every finding baselined);
* ``1`` — findings: at least one new (non-baselined) finding, or a
  stale baseline entry that should be burned down;
* ``2`` — usage or parse error: bad flags, unreadable baseline,
  unknown rule id, or analyzed source that does not parse (SAN000).

``repro-lint`` remains as a thin shim over this driver restricted to
the legacy SAN100–SAN105 rules; everything new (SAN2xx, SARIF,
baselines) lives here.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import IO

from repro.analyze import LEGACY_RULES, analyze_paths, check_ids
from repro.analyze import baseline as baseline_mod
from repro.analyze.emit import emit_json, emit_sarif, emit_text
from repro.analyze.findings import Finding
from repro.analyze.registry import rule_catalog
from repro.errors import AnalysisError

_FORMATS = ("text", "json", "sarif")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Dataflow-based static analysis for the repro "
                    "(CFG + plugin checks SAN100-SAN205b).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze "
                             "(default: src)")
    parser.add_argument("--format", choices=_FORMATS, default="text",
                        help="output format (default: text)")
    parser.add_argument("--output", metavar="FILE",
                        help="write the report to FILE instead of stdout")
    parser.add_argument("--baseline", metavar="FILE",
                        help="baseline file: matching findings are "
                             "reported but do not gate")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite --baseline from the current "
                             "findings and exit 0")
    parser.add_argument("--rules", metavar="IDS",
                        help="comma-separated rule ids to run "
                             "(default: all registered)")
    parser.add_argument("--legacy-only", action="store_true",
                        help="run only the legacy repro-lint rules "
                             "(SAN100-SAN105)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def run(argv: list[str] | None = None,
        out: IO[str] | None = None) -> int:
    stream = out if out is not None else sys.stdout
    parser = _build_parser()
    ns = parser.parse_args(argv)

    if ns.list_rules:
        for rule, summary in sorted(rule_catalog().items()):
            print(f"{rule}  {summary}", file=stream)
        return 0

    checks: list[str] | None = None
    if ns.legacy_only:
        checks = list(LEGACY_RULES)
    if ns.rules:
        requested = [r.strip() for r in ns.rules.split(",") if r.strip()]
        known = set(check_ids())
        unknown = [r for r in requested if r not in known]
        if unknown:
            raise AnalysisError(
                f"unknown rule id(s): {', '.join(unknown)}; "
                f"known: {', '.join(check_ids())}")
        checks = requested
    if ns.update_baseline and not ns.baseline:
        raise AnalysisError("--update-baseline requires --baseline FILE")

    result = analyze_paths(ns.paths, checks=checks)
    findings = list(result.findings)

    if ns.update_baseline:
        baseline_mod.save(ns.baseline, findings)
        print(f"baseline {ns.baseline} updated: "
              f"{len(findings)} finding(s) recorded", file=stream)
        # Parse errors still surface even when rewriting the baseline.
        for record in result.errors:
            print(record.format(), file=sys.stderr)
        return 2 if result.errors else 0

    new, matched, stale = findings, [], []  # type: ignore[var-annotated]
    if ns.baseline:
        known_baseline = baseline_mod.load(ns.baseline)
        new, matched, stale = baseline_mod.split(findings, known_baseline)

    report = sorted(list(result.errors) + new)
    if ns.format == "text":
        rendered = emit_text(report)
        if matched:
            rendered += (f"{len(matched)} baselined finding(s) "
                         "suppressed by the baseline\n")
        for path, rule, line in stale:
            rendered += (f"stale baseline entry: {path}:{line} {rule} "
                         "no longer reported — refresh with "
                         "--update-baseline\n")
    elif ns.format == "json":
        rendered = emit_json(report, files=result.files)
    else:
        rendered = emit_sarif(report)

    if ns.output:
        Path(ns.output).write_text(rendered, encoding="utf-8")
    else:
        stream.write(rendered)

    if result.errors:
        for record in result.errors:
            print(record.format(), file=sys.stderr)
        return 2
    return 1 if new or stale else 0


def main(argv: list[str] | None = None) -> int:
    """Console entry point wrapping :func:`run` into the 0/1/2 exit
    contract (argparse's own usage failures land on 2 already)."""
    try:
        return run(argv)
    except AnalysisError as exc:
        print(f"repro-analyze: error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro-analyze: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

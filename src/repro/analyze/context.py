"""Per-module analysis context shared by every check.

One :class:`ModuleContext` is built per analyzed file: the parsed tree,
a parent map, suppression tables (with the SAN100 bare-suppression
diagnostics), the legacy scope decomposition the SAN101/SAN102 rules
are specified over, numpy import aliases for SAN103, and a cache of
per-function CFGs so several checks can share one construction.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from functools import cached_property
from pathlib import Path

from repro.analyze.cfg import CFG, build_cfg
from repro.analyze.findings import Finding

_RULE_RE = re.compile(r"SAN\d{3}\w*")

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


class ModuleContext:
    """Everything a check needs to analyze one module.

    Raises ``SyntaxError`` from the constructor when the source does
    not parse — the driver turns that into a SAN000 record and the
    exit-code-2 contract.
    """

    def __init__(self, source: str, path: str):
        self.source = source
        self.path = path
        self.tree: ast.Module = ast.parse(source, filename=path)
        self.parts: tuple[str, ...] = Path(path).parts
        (self.line_suppressions, self.module_allow,
         self.bare_suppressions) = _suppressions(source, path)

    # ------------------------------------------------------------- #
    # structure
    # ------------------------------------------------------------- #

    @cached_property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child -> parent for every node in the tree."""
        parent_of: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                parent_of[child] = node
        return parent_of

    @cached_property
    def functions(self) -> list[FunctionNode]:
        """Every function in the module, nested ones included, in
        source order."""
        return [node for node in ast.walk(self.tree)
                if isinstance(node, _FUNC_NODES)]

    @cached_property
    def outermost_functions(self) -> list[FunctionNode]:
        """Functions with no enclosing function (methods count)."""
        found: list[FunctionNode] = []

        def visit(node: ast.AST, in_func: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, _FUNC_NODES):
                    if not in_func:
                        found.append(child)
                    visit(child, True)
                else:
                    visit(child, in_func)

        visit(self.tree, False)
        return found

    @cached_property
    def module_scope_roots(self) -> list[ast.AST]:
        """Every node reachable from the module without entering a
        function body — the module pseudo-scope."""
        roots: list[ast.AST] = []
        stack: list[ast.AST] = [self.tree]
        while stack:
            for child in ast.iter_child_nodes(stack.pop()):
                if isinstance(child, _FUNC_NODES):
                    continue
                roots.append(child)
                stack.append(child)
        return roots

    def scopes(self) -> list[ast.AST | list[ast.AST]]:
        """The legacy scope decomposition (module pseudo-scope first,
        then each outermost function) that SAN101/SAN102 are specified
        over; see :func:`scope_nodes`."""
        out: list[ast.AST | list[ast.AST]] = [self.module_scope_roots]
        out.extend(self.outermost_functions)
        return out

    def cfg(self, node: FunctionNode | ast.Module) -> CFG:
        """The (cached) CFG of one function body or the module."""
        cache = self._cfg_cache
        key = id(node)
        if key not in cache:
            cache[key] = build_cfg(node)
        return cache[key]

    @cached_property
    def _cfg_cache(self) -> dict[int, CFG]:
        return {}

    # ------------------------------------------------------------- #
    # numpy.random import aliases (SAN103)
    # ------------------------------------------------------------- #

    @cached_property
    def numpy_random_bases(self) -> set[str]:
        """Names bound to the ``numpy.random`` *module* itself
        (``from numpy import random [as r]``, ``import numpy.random
        as nr``)."""
        bases: set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy.random" and alias.asname:
                        bases.add(alias.asname)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            bases.add(alias.asname or "random")
        return bases

    @cached_property
    def numpy_random_members(self) -> dict[str, str]:
        """Local name -> original member for ``from numpy.random
        import rand [as r]`` style imports."""
        members: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ImportFrom) \
                    and node.module == "numpy.random":
                for alias in node.names:
                    members[alias.asname or alias.name] = alias.name
        return members

    # ------------------------------------------------------------- #
    # suppression application
    # ------------------------------------------------------------- #

    def suppressed(self, finding: Finding) -> bool:
        if finding.rule in self.module_allow:
            return True
        return finding.rule in self.line_suppressions.get(finding.line,
                                                          set())


def scope_nodes(scope: ast.AST | list[ast.AST]) -> list[ast.AST]:
    """Flat node list of one legacy scope.  The module pseudo-scope is
    already pruned of function bodies; a function scope keeps its
    nested helpers (an ``end_step`` in the outer loop covers reads in
    an inner ``_adj_read``)."""
    if isinstance(scope, list):
        return scope
    return list(ast.walk(scope))


def _suppressions(source: str, path: str,
                  ) -> tuple[dict[int, set[str]], set[str], list[Finding]]:
    """Parse suppression comments.

    Returns ``(line -> waived rules, module-wide waived rules, SAN100
    findings)``.  A ``san-ok`` or ``repro-lint: allow=`` comment that
    names no rule id is the SAN100 lint error: historically a bare
    ``# san-ok`` silently waived nothing (or, depending on comment
    position, read as waiving everything) — now it is an explicit
    finding and still waives nothing.
    """
    per_line: dict[int, set[str]] = {}
    module: set[str] = set()
    bare: list[Finding] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            text = tok.string
            if "repro-lint:" in text and "allow=" in text:
                rules = _RULE_RE.findall(text.split("allow=", 1)[1])
                if rules:
                    module.update(rules)
                else:
                    bare.append(Finding(
                        path=path, line=tok.start[0], col=tok.start[1],
                        rule="SAN100",
                        message="suppression missing rule id: "
                                "'repro-lint: allow=' must name the "
                                "rule(s) it waives, e.g. allow=SAN101"))
            elif "san-ok" in text:
                rules = _RULE_RE.findall(text.split("san-ok", 1)[1])
                if rules:
                    per_line.setdefault(tok.start[0], set()).update(rules)
                else:
                    bare.append(Finding(
                        path=path, line=tok.start[0], col=tok.start[1],
                        rule="SAN100",
                        message="suppression missing rule id: "
                                "'# san-ok' must name the rule it "
                                "waives, e.g. '# san-ok: SAN101'"))
    except tokenize.TokenError:
        pass  # syntax problems surface via ast.parse instead
    return per_line, module, bare

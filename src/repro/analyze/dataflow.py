"""Intraprocedural dataflow over the CFG — the analyzer's engine room.

Three layers:

* :func:`fixpoint` — the generic forward worklist solver.  A check
  supplies a lattice (``join``) and a per-block transfer function; the
  solver iterates in reverse postorder until nothing changes.
  Termination holds whenever the transfer functions are monotone over a
  finite lattice — every lattice in this package is a finite powerset,
  and ``tests/test_analyze.py`` pins termination on a synthetic loop.
* :class:`ReachingDefinitions` — the classic gen/kill instance: which
  assignments of each name can reach each block entry.  This is the
  general form of the ad-hoc alias chasing the old SAN102 walker did.
* :func:`propagate_taint` — forward may-taint of *names* from a seed
  predicate over expressions (used by the SAN201 static racecheck to
  track which values derive from warp/lane/worklist identity).

All transfer helpers understand the synthetic header nodes the CFG
builder plants for compound statements (loop-target assigns, condition
reads), so path-sensitive facts flow through ``if``/``for``/``try``
shapes without special cases in the checks.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator, Mapping, TypeVar

from repro.analyze.cfg import CFG, Block

S = TypeVar("S")


def fixpoint(cfg: CFG, entry_state: S,
             transfer: Callable[[Block, S], S],
             join: Callable[[S, S], S]) -> dict[int, S]:
    """Forward dataflow to a fixpoint; returns the *entry* state of
    every reachable block (unreachable blocks get ``entry_state``)."""
    order = cfg.rpo()
    position = {block_id: i for i, block_id in enumerate(order)}
    preds = cfg.preds()
    in_states: dict[int, S] = {cfg.entry_id: entry_state}
    out_states: dict[int, S] = {}

    worklist = list(order)
    while worklist:
        worklist.sort(key=lambda b: position[b])
        block_id = worklist.pop(0)
        block = cfg.block(block_id)
        pred_outs = [out_states[p] for p in preds[block_id]
                     if p in out_states]
        if block_id == cfg.entry_id:
            state = entry_state
            for out in pred_outs:  # loop back-edges into the entry
                state = join(state, out)
        elif pred_outs:
            state = pred_outs[0]
            for out in pred_outs[1:]:
                state = join(state, out)
        else:
            state = entry_state
        in_states[block_id] = state
        out = transfer(block, state)
        if block_id not in out_states or out_states[block_id] != out:
            out_states[block_id] = out
            for succ in block.succs:
                if succ not in worklist:
                    worklist.append(succ)
    for block_id in cfg.blocks:
        in_states.setdefault(block_id, entry_state)
    return in_states


# --------------------------------------------------------------------- #
# assignment plumbing shared by the instances
# --------------------------------------------------------------------- #

_OPAQUE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                 ast.Lambda)


def walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into function/class bodies —
    those are separate analysis units with their own CFGs.  An opaque
    node is still yielded itself (a ``def`` is a statement of the
    enclosing block) but contributes nothing below it; callers walking
    a function *unit* iterate its ``body`` statements instead of the
    ``FunctionDef`` node."""
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, _OPAQUE_NODES):
            continue
        stack.extend(ast.iter_child_nodes(current))


def assigned_names(target: ast.expr) -> list[str]:
    """Plain names bound by an assignment target (tuples unpacked;
    attribute/subscript targets contribute nothing — they are stores
    into existing objects, not bindings)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for elt in target.elts:
            names.extend(assigned_names(elt))
        return names
    if isinstance(target, ast.Starred):
        return assigned_names(target.value)
    return []


def bindings(stmt: ast.stmt) -> Iterator[tuple[list[str], ast.expr]]:
    """``(bound names, value expression)`` pairs of one statement,
    including walrus expressions nested anywhere inside it."""
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            yield assigned_names(target), stmt.value
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        yield assigned_names(stmt.target), stmt.value
    elif isinstance(stmt, ast.AugAssign):
        yield assigned_names(stmt.target), stmt.value
    for node in walk_shallow(stmt):
        if isinstance(node, ast.NamedExpr):
            yield assigned_names(node.target), node.value


class ReachingDefinitions:
    """Which ``(block, statement index)`` definition sites of each name
    may reach each block entry.

    State shape: ``name -> frozenset[(block_id, stmt_index)]``; join is
    per-name union; an assignment kills previous sites (strong update).
    """

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self._in = fixpoint(cfg, self._empty(), self._transfer, self._join)

    @staticmethod
    def _empty() -> Mapping[str, frozenset[tuple[int, int]]]:
        return {}

    @staticmethod
    def _join(a: Mapping[str, frozenset[tuple[int, int]]],
              b: Mapping[str, frozenset[tuple[int, int]]],
              ) -> Mapping[str, frozenset[tuple[int, int]]]:
        merged = dict(a)
        for name, sites in b.items():
            merged[name] = merged.get(name, frozenset()) | sites
        return merged

    @staticmethod
    def _transfer(block: Block,
                  state: Mapping[str, frozenset[tuple[int, int]]],
                  ) -> Mapping[str, frozenset[tuple[int, int]]]:
        out = dict(state)
        for index, stmt in enumerate(block.stmts):
            for names, _value in bindings(stmt):
                for name in names:
                    out[name] = frozenset({(block.id, index)})
        return out

    def at_entry(self, block_id: int,
                 ) -> Mapping[str, frozenset[tuple[int, int]]]:
        return self._in[block_id]

    def sites(self, name: str) -> frozenset[tuple[int, int]]:
        """Definition sites of ``name`` reaching the exit block."""
        return self._in[self.cfg.exit_id].get(name, frozenset())


def propagate_taint(cfg: CFG, seeds: frozenset[str],
                    expr_tainted: Callable[[ast.expr, frozenset[str]], bool],
                    ) -> dict[int, frozenset[str]]:
    """Forward may-taint of names; returns tainted-name sets at each
    block entry.  ``expr_tainted(expr, tainted)`` decides whether a
    right-hand side carries the taint given the currently tainted
    names; assignments of untainted values perform a strong update
    (the name drops out on that path)."""

    def transfer(block: Block, state: frozenset[str]) -> frozenset[str]:
        tainted = set(state)
        for stmt in block.stmts:
            for names, value in bindings(stmt):
                carries = expr_tainted(value, frozenset(tainted))
                for name in names:
                    if carries:
                        tainted.add(name)
                    else:
                        tainted.discard(name)
        return frozenset(tainted)

    return fixpoint(cfg, seeds, transfer,
                    lambda a, b: a | b)

"""Finding emitters: classic text, machine JSON, and SARIF 2.1.0.

All three are deterministic — findings are emitted in sorted order and
JSON renders with sorted keys — so re-running the analyzer over
unchanged sources produces byte-identical output (pinned by a
hypothesis test).  The SARIF document carries the full rule catalog
from the registry in ``tool.driver.rules``, which is what lets code
hosts render rule help inline next to annotations.
"""

from __future__ import annotations

import json
from pathlib import PurePosixPath

from repro.analyze.findings import Finding
from repro.analyze.registry import all_checks

JSON_FORMAT = "repro-analyze/v1"
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                 "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

#: Finding severity -> SARIF result level.  ``note`` is a valid SARIF
#: level of its own; the mapping is currently the identity but kept
#: explicit so a future severity rename cannot silently emit an
#: off-vocabulary level.
_SARIF_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def _sorted(findings: list[Finding]) -> list[Finding]:
    return sorted(findings)


def _counts(findings: list[Finding]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return counts


def emit_text(findings: list[Finding]) -> str:
    """Classic ``path:line:col: RULE message`` lines plus a summary."""
    ordered = _sorted(findings)
    lines = [finding.format() for finding in ordered]
    if ordered:
        counts = _counts(ordered)
        summary = ", ".join(f"{rule}×{n}"
                            for rule, n in sorted(counts.items()))
        lines.append(f"{len(ordered)} finding"
                     f"{'' if len(ordered) == 1 else 's'} ({summary})")
    else:
        lines.append("clean: no findings")
    return "\n".join(lines) + "\n"


def emit_json(findings: list[Finding], *, files: int = 0) -> str:
    ordered = _sorted(findings)
    doc = {
        "format": JSON_FORMAT,
        "files": files,
        "counts": _counts(ordered),
        "findings": [finding.to_json() for finding in ordered],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def _sarif_rules() -> list[dict[str, object]]:
    rules: list[dict[str, object]] = []
    for spec in all_checks():
        rules.append({
            "id": spec.id,
            "name": spec.name,
            "shortDescription": {"text": spec.summary},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS[spec.severity]},
        })
    return rules


def emit_sarif(findings: list[Finding]) -> str:
    """A single-run SARIF 2.1.0 log of the findings."""
    rules = _sarif_rules()
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    results: list[dict[str, object]] = []
    for finding in _sorted(findings):
        result: dict[str, object] = {
            "ruleId": finding.rule,
            "level": _SARIF_LEVELS.get(finding.severity, "error"),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": str(PurePosixPath(*_parts(finding.path)))},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                },
            }],
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "repro-analyze",
                "informationUri":
                    "https://example.invalid/repro/docs/analysis.md",
                "rules": rules,
            }},
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def _parts(path: str) -> tuple[str, ...]:
    from pathlib import Path

    parts = Path(path).parts
    return parts if parts else (".",)

"""Structured finding records — the analyzer's one output type.

Every check produces :class:`Finding` values; emitters
(:mod:`repro.analyze.emit`), the baseline filter
(:mod:`repro.analyze.baseline`) and the ``repro-lint`` shim all consume
them.  The ``path:line:col: RULE message`` text rendering is kept
byte-compatible with the pre-refactor flat walker so existing tooling
(editors, CI grep) keeps working.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Finding severities, ordered most to least severe.  They map onto the
#: SARIF ``level`` vocabulary; *every* severity gates (exit code 1)
#: unless suppressed or baselined — severity is reporting metadata, not
#: a gate bypass.
SEVERITIES = ("error", "warning", "note")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Ordering is ``(path, line, col, rule)`` so sorted finding lists are
    deterministic for identical inputs (the byte-identity contract of
    the emitters).
    """

    path: str
    line: int
    col: int
    rule: str
    message: str = field(compare=False)
    severity: str = field(default="error", compare=False)

    def format(self) -> str:
        """The classic ``path:line:col: RULE message`` line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, object]:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "severity": self.severity,
                "message": self.message}

"""Plugin check registry — the analyzer's analogue of the KernelSpec
registry (:mod:`repro.runtime.spec`).

A check, to the driver, is: a SAN rule id, a one-line summary, a
severity, the package parts it is exempt in, and a ``run`` callable
over a :class:`~repro.analyze.context.ModuleContext`.  Registering two
checks under one id is a typed error
(:class:`~repro.errors.CheckRegistrationError`), mirroring the kernel
registry's duplicate-name contract.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable

from repro.analyze.context import ModuleContext
from repro.analyze.findings import SEVERITIES, Finding
from repro.errors import AnalysisError, CheckRegistrationError

_ID_RE = re.compile(r"^SAN\d{3}[a-z]?$")

CheckFn = Callable[[ModuleContext], list[Finding]]


@dataclass(frozen=True)
class CheckSpec:
    """Declarative description of one static check.

    Attributes
    ----------
    id : str
        Rule id (``SAN201``); the suppression and baseline key.
    name : str
        Short slug used in SARIF rule metadata (``static-racecheck``).
    summary : str
        One line for ``--list-rules`` and the docs table.
    severity : str
        ``error`` / ``warning`` / ``note`` — SARIF level; every
        severity gates unless suppressed or baselined.
    run : callable
        ``ModuleContext -> list[Finding]``.
    skip_parts : tuple of str
        Path components (package names) the check is exempt in, e.g.
        SAN101 does not apply inside ``gpusim`` (which *is* the model).
    """

    id: str
    name: str
    summary: str
    severity: str
    run: CheckFn = field(repr=False)
    skip_parts: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not _ID_RE.match(self.id):
            raise CheckRegistrationError(
                self.id, "rule ids look like SAN201 or SAN203b")
        if self.severity not in SEVERITIES:
            raise CheckRegistrationError(
                self.id, f"severity {self.severity!r} not in {SEVERITIES}")

    def applies_to(self, parts: tuple[str, ...]) -> bool:
        return not any(part in parts for part in self.skip_parts)

    def finding(self, path: str, node_line: int, node_col: int,
                message: str) -> Finding:
        """A :class:`Finding` stamped with this check's id/severity."""
        return Finding(path=path, line=node_line, col=node_col,
                       rule=self.id, message=message,
                       severity=self.severity)


_REGISTRY: dict[str, CheckSpec] = {}


def register(spec: CheckSpec) -> CheckSpec:
    """Add ``spec`` to the registry (idempotent for the same object);
    a different spec under an existing id is a typed error."""
    existing = _REGISTRY.get(spec.id)
    if existing is not None and existing is not spec:
        raise CheckRegistrationError(
            spec.id, f"check id already registered by {existing.name!r}; "
                     f"refusing to shadow it with {spec.name!r}")
    _REGISTRY[spec.id] = spec
    return spec


def check_ids() -> tuple[str, ...]:
    """Registered rule ids, sorted."""
    return tuple(sorted(_REGISTRY))


def all_checks() -> tuple[CheckSpec, ...]:
    return tuple(_REGISTRY[check_id] for check_id in check_ids())


def get_check(check_id: str) -> CheckSpec:
    spec = _REGISTRY.get(check_id)
    if spec is None:
        raise AnalysisError(
            f"unknown check {check_id!r}; registered: {check_ids()}")
    return spec


def rule_catalog() -> dict[str, str]:
    """id -> one-line summary (the ``--list-rules`` table)."""
    return {spec.id: spec.summary for spec in all_checks()}

"""Repo-level analysis runs — the fixed ``src`` + ``examples`` sweep
gated by the committed baseline.

``repro-analyze`` takes arbitrary paths; the bench CLI and the
reproduction bundle instead want *the repo's own cleanliness* as a
single verdict, independent of the caller's working directory.  This
module resolves the checkout root from the installed package location,
analyzes the canonical trees with repo-root-relative paths (the form
the committed baseline stores), and reports new/matched/stale findings
plus parse errors in one record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import repro
from repro.analyze import analyze_source, iter_python_files
from repro.analyze.baseline import Key
from repro.analyze.baseline import load as load_baseline
from repro.analyze.baseline import split as split_baseline
from repro.analyze.emit import emit_sarif
from repro.analyze.findings import Finding

#: The trees a repo-cleanliness run covers, relative to the root.
ANALYZED_TREES = ("src", "examples")

#: The committed baseline the run is gated by, relative to the root.
BASELINE_PATH = "configs/lint_baseline.json"


def repo_root() -> Path:
    """The checkout root, derived from the package location
    (``src/repro/__init__.py`` -> two parents up)."""
    return Path(repro.__file__).resolve().parents[2]


@dataclass(frozen=True)
class RepoAnalysis:
    """One repo-cleanliness verdict."""

    new: tuple[Finding, ...]
    matched: tuple[Finding, ...]
    stale: tuple[Key, ...]
    errors: tuple[Finding, ...]
    files: int
    baseline_path: str | None
    sarif: str = field(repr=False, default="")

    @property
    def ok(self) -> bool:
        return not (self.new or self.stale or self.errors)

    def summary(self) -> str:
        lines = [f"files={self.files} new={len(self.new)} "
                 f"baselined={len(self.matched)} stale={len(self.stale)} "
                 f"parse-errors={len(self.errors)} "
                 f"ok={'yes' if self.ok else 'NO'}"]
        lines.extend(f.format() for f in sorted(self.errors + self.new))
        lines.extend(f"stale baseline entry: {path}:{line} {rule}"
                     for path, rule, line in self.stale)
        return "\n".join(lines)

    def to_json(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            "files": self.files,
            "baseline": self.baseline_path,
            "new": [f.to_json() for f in sorted(self.new)],
            "baselined": len(self.matched),
            "stale": [{"path": p, "rule": r, "line": ln}
                      for p, r, ln in self.stale],
            "parse_errors": [f.to_json() for f in sorted(self.errors)],
        }


def run_repo_analysis(root: Path | None = None) -> RepoAnalysis:
    """Analyze the repo's canonical trees against its baseline."""
    root = root if root is not None else repo_root()
    trees = [root / tree for tree in ANALYZED_TREES
             if (root / tree).exists()]
    findings: list[Finding] = []
    errors: list[Finding] = []
    files = 0
    for file in iter_python_files(trees):
        rel = file.relative_to(root).as_posix()
        result = analyze_source(file.read_text(encoding="utf-8"), rel)
        findings.extend(result.findings)
        errors.extend(result.errors)
        files += result.files

    baseline_file = root / BASELINE_PATH
    if baseline_file.exists():
        baseline = load_baseline(baseline_file)
        new, matched, stale = split_baseline(findings, baseline)
        baseline_path: str | None = BASELINE_PATH
    else:
        new, matched, stale = list(findings), [], []
        baseline_path = None
    report = sorted(errors + new)
    return RepoAnalysis(new=tuple(sorted(new)),
                        matched=tuple(sorted(matched)),
                        stale=tuple(stale), errors=tuple(sorted(errors)),
                        files=files, baseline_path=baseline_path,
                        sarif=emit_sarif(report))

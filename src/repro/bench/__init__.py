"""Benchmark harness: regenerates every table and figure of the paper.

* :mod:`~repro.bench.runner` — runs one Table I row (CPU + all device
  configurations) and returns measured numbers next to the published ones;
* :mod:`~repro.bench.tables` — ASCII/CSV renderers for Tables I and II;
* :mod:`~repro.bench.figures` — the Figure 1 Kronecker scaling series;
* :mod:`~repro.bench.calibration` — the timing-model constants' single
  source of truth and the band checks;
* :mod:`~repro.bench.cli` — the ``repro-bench`` command.

The ``benchmarks/`` directory at the repository root drives this package
through pytest-benchmark; EXPERIMENTS.md records one full run.
"""

from repro.bench.runner import RowResult, run_workload, run_table1
from repro.bench import tables, figures, calibration

__all__ = ["RowResult", "run_workload", "run_table1", "tables", "figures",
           "calibration"]

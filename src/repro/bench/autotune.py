"""Autotuner: measure a declared sweep grid, emit winning configs.

This is the config-driven generalization of the Section III-C launch
grid search (E9): instead of one hard-coded (threads/block × blocks/SM)
sweep, it measures any :class:`~repro.bench.sweepconfig.SweepConfig`
grid — launch geometry × kernel × engine × scale per device — and picks
one winner per device by the configured objective:

* ``kernel_ms`` — simulated kernel milliseconds (deterministic, the
  committed ``configs/tuned.json`` uses this);
* ``host_s`` — measured host wall-clock of the same run (machine-local;
  the ``engine`` axis only matters here, since both engines are
  bit-identical in everything simulated).

The winners serialize as ``configs/tuned.json``
(:func:`SweepReport.tuned_doc`), which the serve scheduler consumes via
:class:`repro.serve.tuned.TunedConfigs` — per-device launch/kernel
overrides that change simulated timing, never counts.

:func:`repro.bench.experiments.grid_search` is now a thin wrapper over
:func:`measure_launch_grid` with the paper's grid, so the E9 bench and
the autotuner share one measurement path.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from time import perf_counter

from repro.bench.sweepconfig import SweepConfig, SweepPoint
from repro.core.forward_gpu import gpu_count_triangles
from repro.core.options import GpuOptions
from repro.errors import ReproError
from repro.graphs.datasets import get
from repro.graphs.edgearray import EdgeArray
from repro.gpusim.device import DEVICES, DeviceSpec
from repro.gpusim.memory import DeviceMemory
from repro.gpusim.simt import LaunchConfig
from repro.runtime import kernel_option_field
from repro.utils import env_scale

#: The tuned.json format marker (validated by the serve-side loader).
TUNED_FORMAT = "repro-tuned/v1"


@dataclass(frozen=True)
class SweepRow:
    """One measured grid cell."""

    point: SweepPoint
    kernel_ms: float
    host_s: float
    triangles: int

    def objective_value(self, objective: str) -> float:
        if objective == "kernel_ms":
            return self.kernel_ms
        if objective == "host_s":
            return self.host_s
        raise ReproError(f"unknown objective {objective!r}")

    def summary(self) -> str:
        return (f"{self.point.label():<44} kernel={self.kernel_ms:9.4f} ms "
                f"host={self.host_s:6.3f} s")


@dataclass
class SweepReport:
    """All measured cells of one sweep, plus the skipped ones."""

    config: SweepConfig
    rows: list[SweepRow] = field(default_factory=list)
    #: (point, reason) for launch configs a device cannot run.
    skipped: list[tuple[SweepPoint, str]] = field(default_factory=list)

    def best_per_device(self) -> dict[str, SweepRow]:
        """The winning row per device, by the config's objective.

        Ties break toward the earlier grid point (deterministic: the
        grid expands in declared axis order).
        """
        best: dict[str, SweepRow] = {}
        for row in self.rows:
            cur = best.get(row.point.device)
            if cur is None or (row.objective_value(self.config.objective)
                               < cur.objective_value(self.config.objective)):
                best[row.point.device] = row
        return best

    def tuned_doc(self) -> dict:
        """The ``configs/tuned.json`` document."""
        winners = {}
        for device, row in sorted(self.best_per_device().items()):
            winners[device] = {
                "kernel": row.point.kernel,
                "engine": row.point.engine,
                "threads_per_block": row.point.threads_per_block,
                "blocks_per_sm": row.point.blocks_per_sm,
                "kernel_ms": round(row.kernel_ms, 4),
            }
        return {
            "format": TUNED_FORMAT,
            "sweep": {**self.config.doc(),
                      "measured_points": len(self.rows),
                      "skipped_points": len(self.skipped)},
            "devices": winners,
        }

    def write_tuned(self, path: str) -> str:
        """Write :meth:`tuned_doc` to ``path`` (creating directories)."""
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(self.tuned_doc(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    def summary(self) -> str:
        lines = [f"sweep {self.config.name!r} on {self.config.workload}: "
                 f"{len(self.rows)} points measured, "
                 f"{len(self.skipped)} skipped (invalid launch), "
                 f"objective {self.config.objective}"]
        for device, row in sorted(self.best_per_device().items()):
            lines.append(
                f"  {device:<9} -> {row.point.kernel}/{row.point.engine} "
                f"{row.point.threads_per_block}x{row.point.blocks_per_sm} "
                f"({row.kernel_ms:.4f} ms simulated)")
        return "\n".join(lines)


def measure_point(graph: EdgeArray, device: DeviceSpec,
                  point: SweepPoint) -> SweepRow:
    """Measure one grid cell: one full pipeline run on a fresh memory.

    ``kernel_ms`` is the simulated counting-kernel time (the E9 metric);
    ``host_s`` is the measured host wall-clock of the same run.
    """
    options = GpuOptions(kernel=kernel_option_field(point.kernel),
                         engine=point.engine,
                         launch=LaunchConfig(point.threads_per_block,
                                             point.blocks_per_sm))
    t0 = perf_counter()
    run = gpu_count_triangles(graph, device=device,
                              memory=DeviceMemory(device), options=options)
    host_s = perf_counter() - t0
    return SweepRow(point=point, kernel_ms=run.kernel_timing.kernel_ms,
                    host_s=host_s, triangles=run.triangles)


def measure_launch_grid(graph: EdgeArray, device: DeviceSpec,
                        points: list[SweepPoint],
                        progress=None) -> tuple[list[SweepRow],
                                                list[tuple[SweepPoint, str]]]:
    """Measure ``points`` on one graph/device, skipping invalid launches."""
    rows: list[SweepRow] = []
    skipped: list[tuple[SweepPoint, str]] = []
    for point in points:
        launch = LaunchConfig(point.threads_per_block, point.blocks_per_sm)
        try:
            launch.validate(device)
        except ReproError as exc:
            skipped.append((point, str(exc)))
            continue
        row = measure_point(graph, device, point)
        if progress is not None:
            progress(row)
        rows.append(row)
    return rows, skipped


def run_sweep(config: SweepConfig, progress=None) -> SweepReport:
    """Measure the full grid of ``config``.

    Graphs build once per distinct scale (the workload's default scale ×
    the grid multiplier × ``REPRO_SCALE``); every (device, kernel,
    engine, launch) cell then reuses them.  Triangle counts are
    cross-checked across all cells of a scale — a tuner that changed the
    answer would be measuring a different computation.
    """
    workload = get(config.workload)
    graphs: dict[float, EdgeArray] = {}
    for s in config.scales:
        if s not in graphs:
            graphs[s] = workload.build(
                scale=workload.default_scale * s * env_scale(),
                seed=config.seed)

    report = SweepReport(config=config)
    truth: dict[float, int] = {}
    by_device: dict[str, list[SweepPoint]] = {}
    for point in config.points():
        by_device.setdefault(point.device, []).append(point)
    for device_name, points in by_device.items():
        device = DEVICES[device_name]
        for scale in config.scales:
            scale_points = [p for p in points if p.scale == scale]
            rows, skipped = measure_launch_grid(
                graphs[scale], device, scale_points, progress=progress)
            for row in rows:
                want = truth.setdefault(scale, row.triangles)
                if row.triangles != want:
                    raise ReproError(
                        f"sweep point {row.point.label()} counted "
                        f"{row.triangles} triangles, other points say {want}")
            report.rows.extend(rows)
            report.skipped.extend(skipped)
    if not report.rows:
        raise ReproError(
            f"sweep {config.name!r} measured no points: every grid cell "
            f"was an invalid launch for its device")
    return report

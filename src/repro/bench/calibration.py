"""Timing-model calibration: provenance of every constant, band checks.

DESIGN.md §5's honesty rule: all *counts* are measured by execution; the
constants below convert counts to simulated time.  They come from
published hardware specifications except the two marked CALIBRATED,
which were fit **once** against the paper's headline bands (Table I) and
then frozen — no per-experiment fitting.

This module also implements the band checks the benches assert: the
paper's summary claims (8–16× on the C2050, 15–35× on the GTX 980, up to
2.8× for four cards, cache hits in the ~65–85% region, bandwidth around
half of peak) expressed as tolerant predicates over a measured run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.runner import RowResult

#: Constant provenance, keyed by (owner, field).
PROVENANCE: dict[tuple[str, str], str] = {
    ("DeviceSpec", "num_sms/cores_per_sm/clock_ghz"):
        "vendor datasheets (GF100, GM204, GF108)",
    ("DeviceSpec", "memory_bytes/peak_bandwidth_gbs/pcie_gbs"):
        "vendor datasheets",
    ("DeviceSpec", "l1/l2 geometry"):
        "architecture whitepapers (Fermi/Maxwell tuning guides)",
    ("DeviceSpec", "dram_efficiency"):
        "CALIBRATED once: achieved/peak DRAM ratio for scattered reads; "
        "the paper observes 'about half' of peak on the GTX 980",
    ("DeviceSpec", "l2_bandwidth_gbs/lsu_transactions_per_cycle/"
                   "latency_hiding_warps"):
        "architecture microbenchmark literature (order-of-magnitude)",
    ("CpuSpec", "ns_per_merge_step"):
        "CALIBRATED once against the Table I speedup bands, then frozen",
    ("CpuSpec", "ns_per_pass_element/ns_per_sort_compare"):
        "single-thread streaming/sorting throughput of a Westmere core",
}


@dataclass(frozen=True)
class Band:
    """A tolerant acceptance interval for a dimensionless ratio."""

    lo: float
    hi: float
    #: multiplicative slack applied at check time: mini-scale runs distort
    #: ratios (shorter adjacency lists, launch-overhead floors), so bands
    #: get one global widening factor rather than per-row excuses.
    slack: float = 1.6

    def check(self, value: float, extra_slack: float = 1.0) -> bool:
        """Is ``value`` inside the band, widened (both sides) by the
        global slack times any caller-supplied extra?"""
        widen = self.slack * extra_slack
        return self.lo / widen <= value <= self.hi * widen


#: The paper's abstract/Section V claims.
C2050_SPEEDUP = Band(8.0, 16.84)
GTX980_SPEEDUP = Band(15.0, 35.54)
QUAD_SPEEDUP = Band(0.9, 2.82)
CACHE_HIT_PCT = Band(64.0, 83.0, slack=1.25)
#: "about half" of the 224 GB/s peak.
BANDWIDTH_FRACTION_OF_PEAK = Band(0.25, 0.70, slack=1.4)


#: Extra multiplicative slack for the real-graph stand-in rows.  Their
#: hub adjacency lists shrink with the mini scale until they fit the
#: per-SM cache, which inflates hit rates and hence GPU speedups in a way
#: full-size graphs would not (see EXPERIMENTS.md, "scale distortions").
#: Synthetic rows keep the tight band: their list-length structure
#: survives miniaturization (BA's m=50 lists are the same size at any n).
REAL_STANDIN_EXTRA_SLACK = 3.0

#: Below this many arcs a row sits in the fixed-overhead regime (kernel
#: launches, PCIe setup) where speedup bands are meaningless — the
#: paper's *smallest* graph has 5M arcs.  Such rows still run and print,
#: but are exempt from the speedup bands.
MIN_ARCS_FOR_SPEEDUP_BANDS = 20_000


@dataclass(frozen=True)
class BandCheck:
    """One band check of one row, as a structured record.

    The reproduction bundle (:mod:`repro.bench.reproduce`) serializes
    these into ``artifacts/summary.json`` — every measured number next
    to the paper's quoted band, with an explicit pass/fail — while
    :func:`check_row` keeps its original return-the-violations-as-strings
    contract for the benches.
    """

    name: str                 # e.g. "c2050_speedup"
    workload: str
    value: float
    lo: float                 # the paper's quoted band, un-widened
    hi: float
    #: False when the band does not apply to this row (tiny graph in the
    #: fixed-overhead regime, device config not run, kernel not
    #: DRAM-bound); non-applicable checks never count as failures.
    applies: bool
    passed: bool
    detail: str = ""

    def to_json(self) -> dict:
        return {
            "name": self.name, "workload": self.workload,
            "value": round(self.value, 4),
            "paper_lo": self.lo, "paper_hi": self.hi,
            "applies": self.applies, "passed": self.passed,
            "detail": self.detail,
        }


def row_checks(row: RowResult) -> list[BandCheck]:
    """Every band check of one measured Table I row, pass or fail.

    Speedup bands apply only to rows large enough to escape the
    fixed-overhead regime; the bandwidth band applies only when the
    counting kernel is actually DRAM-bound (the regime the paper's
    "about half of peak" observation describes).
    """
    name = row.workload.name
    in_regime = row.num_arcs >= MIN_ARCS_FOR_SPEEDUP_BANDS
    extra = REAL_STANDIN_EXTRA_SLACK if row.workload.kind == "real" else 1.0
    checks = []

    def add(check_name, value, band, applies, extra_slack=1.0, detail=""):
        applies = bool(applies)          # plain bool (numpy leaks here)
        checks.append(BandCheck(
            name=check_name, workload=name, value=float(value),
            lo=band.lo, hi=band.hi, applies=applies,
            passed=(not applies) or bool(band.check(value, extra_slack)),
            detail=detail))

    add("c2050_speedup", row.c2050_speedup, C2050_SPEEDUP,
        applies=bool(row.c2050) and in_regime, extra_slack=extra,
        detail=f"{name}: C2050 speedup {row.c2050_speedup:.1f}x outside "
               f"{C2050_SPEEDUP.lo}-{C2050_SPEEDUP.hi} band")
    add("gtx980_speedup", row.gtx980_speedup, GTX980_SPEEDUP,
        applies=bool(row.gtx980) and in_regime, extra_slack=extra,
        detail=f"{name}: GTX980 speedup {row.gtx980_speedup:.1f}x outside "
               f"{GTX980_SPEEDUP.lo}-{GTX980_SPEEDUP.hi} band")
    add("quad_speedup", row.quad_speedup, QUAD_SPEEDUP,
        applies=bool(row.quad) and in_regime,
        detail=f"{name}: quad speedup {row.quad_speedup:.2f}x outside "
               f"{QUAD_SPEEDUP.lo}-{QUAD_SPEEDUP.hi} band")
    add("cache_hit_pct", row.cache_hit_pct, CACHE_HIT_PCT,
        applies=bool(row.gtx980) and in_regime,
        detail=f"{name}: cache hit {row.cache_hit_pct:.1f}% outside "
               f"{CACHE_HIT_PCT.lo}-{CACHE_HIT_PCT.hi}% band")
    if row.gtx980:
        frac = row.bandwidth_gbs / row.gtx980.device.peak_bandwidth_gbs
        dram_bound = row.gtx980.kernel_timing.bound == "dram"
        add("bandwidth_fraction", frac, BANDWIDTH_FRACTION_OF_PEAK,
            applies=dram_bound and in_regime,
            detail=f"{name}: bandwidth {row.bandwidth_gbs:.0f} GB/s = "
                   f"{frac:.2f} of peak, outside the 'about half' band")
    return checks


def check_row(row: RowResult) -> list[str]:
    """Return the band violations of one measured Table I row (the
    human-readable strings of :func:`row_checks`'s failures)."""
    return [c.detail for c in row_checks(row) if c.applies and not c.passed]


def check_daggers(rows: list[RowResult]) -> list[str]:
    """The ``†`` pattern must match Table I exactly: Orkut and
    Kronecker 21 on the C2050 (single and quad), nothing on the GTX 980."""
    problems = []
    for row in rows:
        paper = row.workload.paper
        if row.c2050 and row.dagger_c2050 != paper.dagger_c2050:
            problems.append(
                f"{row.workload.name}: C2050 dagger measured "
                f"{row.dagger_c2050}, paper {paper.dagger_c2050}")
        if row.gtx980 and row.gtx980.used_cpu_fallback:
            problems.append(
                f"{row.workload.name}: GTX 980 took the fallback; the "
                f"paper's 4 GB card never did")
    return problems

"""``repro-bench`` — regenerate the paper's tables and figures.

Examples::

    repro-bench table1                  # all 13 rows, all devices
    repro-bench table1 -w ba -w ws      # selected rows
    repro-bench table2                  # GTX 980 profiling columns
    repro-bench figure1                 # Kronecker scaling plot (ASCII)
    repro-bench ablations               # Section III-D effects
    repro-bench gridsearch              # Section III-C launch sweep
    repro-bench inputformat multigpu baselines related
    repro-bench profile -w orkut       # nvprof-style kernel metrics
    repro-bench serve                   # multi-tenant serving simulation
    repro-bench serve --tuned configs/tuned.json   # with autotuned configs
    repro-bench serve-scale             # control-plane overload bench
    repro-bench tune --config configs/sweep.toml   # autotune the sweep grid
    repro-bench kernelzoo --out BENCH_kernelzoo.json  # auto-pick calibration
    repro-bench reproduce --preset tiny # one-command artifact bundle
    repro-bench all --csv out_dir       # everything + CSV dumps

``REPRO_SCALE`` scales every workload (default mini scale; see DESIGN §6).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.bench import calibration, figures, tables
from repro.bench.experiments import (amdahl_experiment, baseline_experiment,
                                     grid_search, input_format_experiment,
                                     run_all_ablations)
from repro.bench.runner import run_table1
from repro.graphs.datasets import WORKLOADS, get, kronecker_names
from repro.runtime import kernel_names

_COMMANDS = ("table1", "table2", "figure1", "ablations", "gridsearch",
             "inputformat", "multigpu", "baselines", "related", "profile",
             "sweep", "serve", "serve-scale", "wallclock", "overlap",
             "kernelzoo", "sanitize", "analyze", "tune", "reproduce", "all")
#: ``all`` expands to every experiment except the bundle (which would
#: re-run everything a second time into ``artifacts/``) and the static
#: analyzer (which needs the repo checkout, not an installed package).
_ALL_EXCLUDES = ("all", "reproduce", "analyze")


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-bench",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    # No ``choices=`` here: argparse's SystemExit hides the command list
    # behind a usage dump.  main() validates and prints it instead.
    p.add_argument("commands", nargs="+", metavar="command",
                   help=f"which experiment(s) to run "
                        f"(choices: {', '.join(_COMMANDS)})")
    p.add_argument("-w", "--workload", action="append", dest="workloads",
                   choices=list(WORKLOADS),
                   help="restrict table1/table2 to specific rows")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--csv", metavar="DIR",
                   help="also write machine-readable CSVs into DIR")
    p.add_argument("--no-quad", action="store_true",
                   help="skip the 4-GPU configuration (faster)")
    p.add_argument("--fleet", default="gtx980x4", metavar="SPEC",
                   help="serve: fleet composition, e.g. gtx980x4 or "
                        "gtx980x2,c2050 (default: %(default)s)")
    p.add_argument("--duration", type=float, default=60.0, metavar="SEC",
                   help="serve: simulated trace length in seconds "
                        "(default: %(default)s)")
    p.add_argument("--rate", type=float, default=2.0, metavar="JOBS_PER_S",
                   help="serve: mean arrival rate (default: %(default)s)")
    p.add_argument("--rate-multiplier", type=float, default=None,
                   metavar="X",
                   help="serve/serve-scale: scale the arrival rate "
                        "(default: 1 for serve, 10 for serve-scale)")
    p.add_argument("--burst", type=float, default=None, metavar="X",
                   help="serve/serve-scale: burstiness factor, >= 1 "
                        "(default: 1 for serve, 4 for serve-scale)")
    p.add_argument("--serve-baseline", metavar="FILE",
                   help="serve-scale: committed BENCH_serve.json to "
                        "regression-check against")
    p.add_argument("--p99-tolerance", type=float, default=1.2, metavar="X",
                   help="serve-scale: allowed plane-p99 drift factor vs "
                        "the baseline (default: %(default)s)")
    p.add_argument("--out", metavar="FILE",
                   help="wallclock/overlap/serve-scale/kernelzoo: also "
                        "write the report as JSON "
                        "(e.g. BENCH_kernel.json)")
    p.add_argument("--repeats", type=int, default=3, metavar="N",
                   help="wallclock: timed runs per engine per row "
                        "(default: %(default)s)")
    p.add_argument("--kernel", action="append", dest="kernels",
                   choices=list(kernel_names()), metavar="NAME",
                   help="wallclock: kernel(s) to measure — repeat the flag "
                        f"to widen the matrix (choices: "
                        f"{', '.join(kernel_names())}; default: merge)")
    p.add_argument("--min-speedup", type=float, default=None, metavar="X",
                   help="wallclock: exit nonzero if any row's "
                        "compacted-vs-lockstep speedup is below X")
    p.add_argument("--baseline", metavar="FILE",
                   help="wallclock/overlap/kernelzoo: committed "
                        "BENCH_*.json to regression-check against "
                        "(speedup drift for wallclock, exact simulated "
                        "ms for overlap/kernelzoo)")
    p.add_argument("--baseline-tolerance", type=float, default=1.5,
                   metavar="X",
                   help="wallclock: allowed speedup drift factor vs the "
                        "baseline (default: %(default)s)")
    p.add_argument("--drift", type=float, default=0.10, metavar="X",
                   help="overlap: allowed relative gap between the "
                        "executed makespan and the modeled pipelined_ms "
                        "(default: %(default)s)")
    p.add_argument("--min-savings", type=float, default=None, metavar="X",
                   help="overlap: exit nonzero if any pipeline row's "
                        "executed savings fraction is below X")
    p.add_argument("--chunks", type=int, default=8, metavar="N",
                   help="overlap: chunk count of the executed pipeline "
                        "(default: %(default)s)")
    p.add_argument("--strict", action="store_true",
                   help="sanitize: run the matrix in strict mode (typed "
                        "errors at the first finding)")
    p.add_argument("--config", metavar="FILE",
                   help="tune/reproduce: sweep config, TOML or JSON "
                        "(default for tune: configs/sweep.toml)")
    p.add_argument("--tuned", metavar="FILE",
                   help="serve: apply per-device tuned configs "
                        "(e.g. configs/tuned.json) to every launch")
    p.add_argument("--preset", choices=("tiny", "full"), default="full",
                   help="reproduce: artifact profile (default: %(default)s)")
    p.add_argument("--out-dir", default="artifacts", metavar="DIR",
                   help="reproduce: artifact directory "
                        "(default: %(default)s)")
    return p


def _write(csv_dir: str | None, filename: str, content: str) -> None:
    if not csv_dir:
        return
    os.makedirs(csv_dir, exist_ok=True)
    path = os.path.join(csv_dir, filename)
    with open(path, "w") as fh:
        fh.write(content)
    print(f"  wrote {path}")


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    unknown = [c for c in args.commands if c not in _COMMANDS]
    if unknown:
        print(f"repro-bench: unknown command(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(f"valid commands: {', '.join(_COMMANDS)}", file=sys.stderr)
        return 2
    commands = set(args.commands)
    if "all" in commands:
        commands = set(_COMMANDS) - set(_ALL_EXCLUDES)
    configs = ("c2050", "gtx980") if args.no_quad else ("c2050", "quad",
                                                        "gtx980")

    if "reproduce" in commands:
        from repro.bench.reproduce import run_reproduce
        result = run_reproduce(preset_name=args.preset, seed=args.seed,
                               out_dir=args.out_dir,
                               config_path=args.config)
        commands -= {"reproduce"}
        if not result.ok:
            print(f"  FAIL: see "
                  f"{os.path.join(args.out_dir, 'summary.json')}")
            return 1
        if not commands:
            return 0

    rows = None
    if commands & {"table1", "table2", "figure1"}:
        names = args.workloads or list(WORKLOADS)
        if "figure1" in commands:
            names = list(dict.fromkeys(names + kronecker_names()))
        rows = run_table1(names, seed=args.seed, configs=configs)

    if "table1" in commands:
        print("\n=== TABLE I — experimental results (paper vs measured) ===")
        print(tables.render_table1(rows))
        problems = [p for r in rows for p in calibration.check_row(r)]
        problems += calibration.check_daggers(rows)
        for p in problems:
            print("  band-check:", p)
        if not problems:
            print("  all band checks passed")
        _write(args.csv, "table1.csv", tables.table1_csv(rows))

    if "table2" in commands:
        print("\n=== TABLE II — GTX 980 profiling (paper vs measured) ===")
        print(tables.render_table2(rows))

    if "figure1" in commands:
        kron_rows = [r for r in rows
                     if r.workload.name in set(kronecker_names())]
        print("\n=== FIGURE 1 — Kronecker scaling ===")
        print(figures.render_figure1(kron_rows))
        for p in figures.check_figure1_shape(kron_rows):
            print("  shape-check:", p)
        _write(args.csv, "figure1.csv", figures.figure1_csv(kron_rows))

    if "ablations" in commands:
        print("\n=== Section III-D ablations ===")
        print("  (each on its designated workload, capacity-scaled device —"
              " see EXPERIMENTS.md)")
        for result in run_all_ablations(seed=args.seed):
            print(" ", result.summary())

    if "gridsearch" in commands:
        print("\n=== Section III-C launch grid search ===")
        g = get("kron17").build(seed=args.seed)
        print(grid_search(g).summary())

    if "inputformat" in commands:
        print("\n=== Section III-A input format ===")
        g = get("livejournal").build(seed=args.seed)
        print(" ", input_format_experiment(g).summary())

    if "multigpu" in commands:
        print("\n=== Section III-E multi-GPU Amdahl ===")
        for name in ("internet", "kron18", "ba", "ws"):
            g = get(name).build(seed=args.seed)
            print(" ", amdahl_experiment(g, name=name).summary())

    if "related" in commands:
        from repro.bench.related import compare_with_green, compare_with_leist
        from repro.bench.runner import scaled_device
        from repro.gpusim.device import GTX_980
        print("\n=== Section V related work ===")
        for name in ("citeseer", "dblp"):
            w = get(name)
            g = w.build(seed=args.seed)
            r = compare_with_green(g, scaled_device(GTX_980, g, w))
            print(f"  vs Green [15] on {name}: {r.summary()}")
        for name in ("ba", "ws"):
            w = get(name)
            g = w.build(seed=args.seed)
            r = compare_with_leist(g, scaled_device(GTX_980, g, w))
            print(f"  vs Leist [13] on {name}: {r.summary()}")

    if "sweep" in commands:
        from repro.bench.sweep import scale_sweep
        print("\n=== scale-convergence sweep (E16) ===")
        for name in (args.workloads or ["ws"]):
            print(scale_sweep(name, seed=args.seed).summary())

    if "profile" in commands:
        from repro.bench.runner import scaled_device
        from repro.gpusim.device import GTX_980
        print("\n=== nvprof-style kernel profile ===")
        for name in (args.workloads or ["livejournal"]):
            w = get(name)
            g = w.build(seed=args.seed)
            dev = scaled_device(GTX_980, g, w)
            from repro.core.forward_gpu import gpu_count_triangles
            from repro.gpusim.memory import DeviceMemory
            run = gpu_count_triangles(g, device=dev,
                                      memory=DeviceMemory(dev))
            print(run.profile())

    if "serve" in commands:
        from repro.bench.experiments import serve_experiment
        print("\n=== serving mode — multi-tenant trace replay ===")
        tuned = None
        if args.tuned:
            from repro.serve import TunedConfigs
            tuned = TunedConfigs.load(args.tuned)
            print("  " + tuned.summary().replace("\n", "\n  "))
        exp = serve_experiment(fleet_spec=args.fleet,
                               duration_ms=args.duration * 1000.0,
                               rate_per_s=args.rate, seed=args.seed,
                               rate_multiplier=args.rate_multiplier or 1.0,
                               burst=args.burst or 1.0, tuned=tuned)
        print(exp.report.format_report())
        print(" ", exp.summary())
        _write(args.csv, "serve_jobs.csv", exp.report.jobs_csv())

    if "serve-scale" in commands:
        from repro.bench.serve_scale import baseline_problems as serve_drift
        from repro.bench.serve_scale import run_serve_scale
        print("\n=== serve-scale — control-plane overload bench ===")
        res = run_serve_scale(fleet_spec=args.fleet,
                              duration_ms=args.duration * 1000.0,
                              rate_per_s=args.rate, seed=args.seed,
                              rate_multiplier=args.rate_multiplier or 10.0,
                              burst=args.burst or 4.0)
        print("  -- seed replay (plane off) --")
        print(res.seed_report.format_report())
        print("  -- plane replay --")
        print(res.plane_report.format_report())
        print(" ", res.summary())
        doc = res.doc()
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(res.json_str())
            print(f"  wrote {args.out}")
        _write(args.csv, "serve_scale.json", res.json_str())
        _write(args.csv, "serve_scale_jobs.csv",
               res.plane_report.jobs_csv())
        plane = doc["plane_replay"]
        if plane["lost"] or plane["unanswered"] or not res.identical:
            print("  FAIL: plane replay lost/unanswered jobs or exact "
                  "answers diverged")
            return 1
        if args.serve_baseline:
            with open(args.serve_baseline) as fh:
                baseline_doc = json.load(fh)
            drift = serve_drift(doc, baseline_doc,
                                p99_tolerance=args.p99_tolerance)
            for p in drift:
                print("  baseline-check:", p)
            if drift:
                print(f"  FAIL: regressed vs {args.serve_baseline}")
                return 1
            print(f"  baseline check passed ({args.serve_baseline}, "
                  f"p99 tolerance {args.p99_tolerance:g}x)")

    if "wallclock" in commands:
        from repro.bench.wallclock import DEFAULT_ROWS, run_wallclock
        print("\n=== engine wall-clock — lockstep oracle vs compacted ===")
        wc_rows = DEFAULT_ROWS
        if args.workloads:
            wanted = set(args.workloads)
            wc_rows = tuple(r for r in DEFAULT_ROWS if r[0] in wanted)
        report = run_wallclock(wc_rows,
                               kernels=tuple(args.kernels or ("merge",)),
                               repeats=args.repeats,
                               seed=args.seed,
                               progress=lambda r: print("  " + r.summary(),
                                                        flush=True))
        print(f"  min speedup: {report.min_speedup:.2f}x")
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(report.json_str())
            print(f"  wrote {args.out}")
        _write(args.csv, "wallclock.json", report.json_str())
        if any(not r.identical for r in report.rows):
            print("  FAIL: engines disagreed (see identical=False rows)")
            return 1
        if (args.min_speedup is not None
                and report.min_speedup < args.min_speedup):
            print(f"  FAIL: min speedup {report.min_speedup:.2f}x below "
                  f"required {args.min_speedup:.2f}x")
            return 1
        if args.baseline:
            from repro.bench.wallclock import (baseline_new_rows,
                                               baseline_problems)
            with open(args.baseline) as fh:
                baseline_doc = json.load(fh)
            for cell in baseline_new_rows(report, baseline_doc):
                print(f"  baseline-check: {cell}: new cell (not in "
                      "baseline; adopted at the next regeneration)")
            drift = baseline_problems(report, baseline_doc,
                                      tolerance=args.baseline_tolerance)
            for p in drift:
                print("  baseline-check:", p)
            if drift:
                print(f"  FAIL: speedup drifted beyond "
                      f"{args.baseline_tolerance:g}x of {args.baseline}")
                return 1
            print(f"  baseline check passed ({args.baseline}, "
                  f"tolerance {args.baseline_tolerance:g}x)")

    if "overlap" in commands:
        from repro.bench.overlap import run_overlap
        print("\n=== executed overlap — measured schedule vs model ===")
        report = run_overlap(chunks=args.chunks, seed=args.seed,
                             progress=lambda r: print("  " + r.summary(),
                                                      flush=True))
        print(f"  max model drift: {report.max_drift * 100:.2f}%   "
              f"min savings: {report.min_savings_frac * 100:.2f}%")
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(report.json_str())
            print(f"  wrote {args.out}")
        _write(args.csv, "overlap.json", report.json_str())
        gate_problems = report.problems(drift=args.drift)
        for p in gate_problems:
            print("  gate-check:", p)
        if gate_problems:
            print("  FAIL: executed-overlap contracts violated")
            return 1
        if (args.min_savings is not None
                and report.min_savings_frac < args.min_savings):
            print(f"  FAIL: min savings {report.min_savings_frac:.4f} "
                  f"below required {args.min_savings:g}")
            return 1
        if args.baseline:
            from repro.bench.overlap import baseline_problems as ov_drift
            with open(args.baseline) as fh:
                baseline_doc = json.load(fh)
            ov_problems = ov_drift(report, baseline_doc)
            for p in ov_problems:
                print("  baseline-check:", p)
            if ov_problems:
                print(f"  FAIL: simulated schedule diverged from "
                      f"{args.baseline}")
                return 1
            print(f"  baseline check passed ({args.baseline})")

    if "kernelzoo" in commands:
        from repro.bench.kernelzoo import baseline_problems as kz_drift
        from repro.bench.kernelzoo import run_kernelzoo
        print("\n=== kernelzoo — per-kernel timings over the "
              "calibration zoo ===")
        report = run_kernelzoo(
            seed=args.seed,
            progress=lambda c: print("  " + c.summary(), flush=True))
        gate_problems = report.problems()
        for p in gate_problems:
            print("  gate-check:", p)
        if gate_problems:
            print("  FAIL: kernelzoo identity/self-consistency violated")
            return 1
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(report.json_str())
            print(f"  wrote {args.out}")
        _write(args.csv, "kernelzoo.json", report.json_str())
        if args.baseline:
            with open(args.baseline) as fh:
                baseline_doc = json.load(fh)
            kz_problems = kz_drift(report, baseline_doc)
            for p in kz_problems:
                print("  baseline-check:", p)
            if kz_problems:
                print(f"  FAIL: calibration diverged from {args.baseline}; "
                      "regenerate it deliberately if the timing model "
                      "changed")
                return 1
            print(f"  baseline check passed ({args.baseline})")

    if "analyze" in commands:
        from repro.analyze.run import run_repo_analysis
        print("\n=== analyze — static invariants "
              "(CFG dataflow, SAN100-SAN205b) ===")
        analysis = run_repo_analysis()
        print("  " + analysis.summary().replace("\n", "\n  "))
        if not analysis.ok:
            print("  FAIL: new static-analysis findings (or stale "
                  "baseline entries); see repro-analyze")
            return 1

    if "sanitize" in commands:
        from repro.sanitize.matrix import run_sanitize_matrix
        print("\n=== sanitize — clean-kernel matrix "
              "(memcheck+initcheck+racecheck) ===")
        sm = run_sanitize_matrix(strict=args.strict, seed=args.seed,
                                 progress=lambda c: print("  " + c.summary(),
                                                          flush=True))
        print(f"  mode={sm.mode} cells={len(sm.cells)} "
              f"findings={sm.findings} ok={sm.ok}")
        if not sm.ok:
            print("  FAIL: sanitizer findings or identity mismatch on "
                  "clean kernels")
            return 1

    if "tune" in commands:
        from repro.bench.autotune import run_sweep
        from repro.bench.sweepconfig import load_sweep_config
        print("\n=== autotune — config-driven sweep ===")
        config_path = args.config or "configs/sweep.toml"
        config = load_sweep_config(config_path)
        print(f"  config: {config_path}")
        report = run_sweep(config,
                           progress=lambda r: print("  " + r.summary(),
                                                    flush=True))
        print(report.summary())
        if config.emit_tuned:
            path = report.write_tuned(config.emit_tuned)
            print(f"  wrote {path}")
        _write(args.csv, "tuned.json",
               json.dumps(report.tuned_doc(), indent=2, sort_keys=True)
               + "\n")

    if "baselines" in commands:
        print("\n=== Sections II-A / V baselines & approximations ===")
        g = get("kron17").build(seed=args.seed)
        print(" ", baseline_experiment(g, seed=args.seed).summary())

    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Section III experiments: ablations, grid search, format and baselines.

Shared between the pytest benches (``benchmarks/``) and the CLI.  Each
function returns a small result object carrying measured numbers next to
the paper's quoted range, so callers can both print and assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.forward_gpu import gpu_count_triangles
from repro.core.multi_gpu import multi_gpu_count_triangles
from repro.core.options import GpuOptions
from repro.cpu.compact_forward import compact_forward_count
from repro.cpu.edge_iterator import edge_iterator_count
from repro.cpu.forward import forward_count_cpu
from repro.cpu.node_iterator import node_iterator_count
from repro.cpu.approx import birthday_paradox_count, doulion_count
from repro.cpu.matmul import matmul_count
from repro.errors import ReproError
from repro.graphs.edgearray import EdgeArray
from repro.gpusim.device import GTX_980, TESLA_C2050, XEON_X5650, DeviceSpec
from repro.gpusim.memory import DeviceMemory
from repro.gpusim.simt import LaunchConfig


@dataclass(frozen=True)
class AblationResult:
    """One optimization's measured effect vs. the paper's quoted range."""

    name: str
    paper_section: str
    baseline_ms: float        # with the optimization ON (the fast side)
    ablated_ms: float         # with it OFF
    paper_speedup_lo: float   # the paper's quoted improvement range
    paper_speedup_hi: float
    note: str = ""

    @property
    def measured_speedup(self) -> float:
        """How much the optimization helps (ablated / baseline)."""
        return self.ablated_ms / self.baseline_ms if self.baseline_ms else 0.0

    def summary(self) -> str:
        return (f"{self.name:<22} ({self.paper_section}): "
                f"{self.measured_speedup:5.2f}x measured, paper "
                f"{self.paper_speedup_lo:.2f}-{self.paper_speedup_hi:.2f}x"
                + (f"  [{self.note}]" if self.note else ""))


def _kernel_ms(graph, device, options):
    return gpu_count_triangles(graph, device=device,
                               memory=DeviceMemory(device),
                               options=options).kernel_timing.kernel_ms


def ablation_unzip(graph: EdgeArray,
                   device: DeviceSpec = GTX_980) -> AblationResult:
    """E4 / Section III-D1: SoA vs AoS edge array (paper: 13–32%)."""
    fast = _kernel_ms(graph, device, GpuOptions())
    slow = _kernel_ms(graph, device, GpuOptions(unzip=False))
    return AblationResult("unzipping edges", "III-D1", fast, slow, 1.13, 1.32)


def ablation_sort_u64(graph: EdgeArray,
                      device: DeviceSpec = GTX_980) -> AblationResult:
    """E5 / Section III-D2: u64 radix sort vs pair comparison sort
    (paper: ≈5× on the sort step)."""
    def sort_ms(options):
        res = gpu_count_triangles(graph, device=device,
                                  memory=DeviceMemory(device),
                                  options=options)
        return sum(e.ms for e in res.timeline.events if "sort" in e.name)

    fast = sort_ms(GpuOptions())
    slow = sort_ms(GpuOptions(sort_as_u64=False))
    return AblationResult("64-bit radix sort", "III-D2", fast, slow, 4.0, 6.0,
                          note="sort step only")


def ablation_merge_variant(graph: EdgeArray,
                           device: DeviceSpec = GTX_980) -> AblationResult:
    """E6 / Section III-D3: one-read merge loop (paper: 36–48%)."""
    fast = _kernel_ms(graph, device, GpuOptions())
    slow = _kernel_ms(graph, device, GpuOptions(merge_variant="preliminary"))
    return AblationResult("avoiding extra reads", "III-D3", fast, slow,
                          1.36, 1.48)


def ablation_readonly_cache(graph: EdgeArray,
                            device: DeviceSpec = GTX_980) -> AblationResult:
    """E7 / Section III-D4: read-only cache (paper: 17–66% on
    Kepler/Maxwell; no effect on Fermi)."""
    if device.caches_global_loads_by_default:
        raise ReproError("read-only-cache ablation needs a Kepler/Maxwell part")
    fast = _kernel_ms(graph, device, GpuOptions())
    slow = _kernel_ms(graph, device, GpuOptions(use_readonly_cache=False))
    return AblationResult("read-only data cache", "III-D4", fast, slow,
                          1.17, 1.66)


def ablation_warp_reduction(graph: EdgeArray,
                            device: DeviceSpec = GTX_980) -> AblationResult:
    """E8 / Section III-D5: simulated half warps on the *preliminary*
    kernel (paper: helped ~30% at earlier development stages; the final
    kernel does not benefit)."""
    prelim = GpuOptions(merge_variant="preliminary")
    full = _kernel_ms(graph, device, prelim)
    half = _kernel_ms(graph, device, prelim.but(
        launch=LaunchConfig(64, 8, simulated_warp_size=16)))
    return AblationResult("warp-size reduction", "III-D5", half, full,
                          1.0, 1.3, note="on the preliminary kernel")


def ablation_cpu_preprocess(graph: EdgeArray,
                            device: DeviceSpec = GTX_980) -> AblationResult:
    """E12 / Section III-D6: forced CPU preprocessing vs all-GPU.

    (Here the 'optimization' is running everything on the GPU; the paper
    uses the CPU path only under memory pressure, trading speed for 2×
    capacity.)"""
    def total_ms(options):
        return gpu_count_triangles(graph, device=device,
                                   memory=DeviceMemory(device),
                                   options=options).total_ms

    fast = total_ms(GpuOptions())
    slow = total_ms(GpuOptions(cpu_preprocess="always"))
    return AblationResult("GPU preprocessing", "III-D6", fast, slow,
                          1.0, 3.0, note="† path is the slow side")


#: Designated workload per ablation: the paper quotes ranges across
#: graphs; at mini scale each effect is cleanest on the workload whose
#: memory regime matches its mechanism (EXPERIMENTS.md, "scale
#: distortions").
ABLATION_WORKLOADS = {
    ablation_unzip: "ba",
    ablation_sort_u64: "ba",
    ablation_merge_variant: "ws",
    ablation_readonly_cache: "livejournal",
    ablation_warp_reduction: "ba",
    ablation_cpu_preprocess: "ba",
}


def run_all_ablations(seed: int = 0) -> list[AblationResult]:
    """Every Section III-D ablation, each on its designated workload and
    a Table-I-style capacity-scaled GTX 980."""
    from repro.bench.runner import scaled_device
    from repro.graphs.datasets import get

    results = []
    graphs: dict[str, tuple] = {}
    for fn, name in ABLATION_WORKLOADS.items():
        if name not in graphs:
            w = get(name)
            g = w.build(seed=seed)
            graphs[name] = (g, scaled_device(GTX_980, g, w))
        g, dev = graphs[name]
        results.append(fn(g, dev))
    return results


# ---------------------------------------------------------------------- #
# E9: launch grid search (Section III-C)
# ---------------------------------------------------------------------- #

@dataclass
class GridSearchResult:
    """Kernel time per (threads_per_block, blocks_per_sm) point."""

    device: DeviceSpec
    points: dict = field(default_factory=dict)   # (tpb, bps) -> kernel ms

    @property
    def best(self) -> tuple[tuple[int, int], float]:
        key = min(self.points, key=self.points.get)
        return key, self.points[key]

    def paper_config_ms(self) -> float:
        return self.points[(64, 8)]

    def summary(self) -> str:
        lines = [f"launch grid search on {self.device.name}:"]
        for (tpb, bps), ms in sorted(self.points.items()):
            star = " <= paper's choice" if (tpb, bps) == (64, 8) else ""
            lines.append(f"  {tpb:>5} thr/blk x {bps:>2} blk/SM "
                         f"({tpb * bps:>5} thr/SM): {ms:9.4f} ms{star}")
        (tpb, bps), ms = self.best
        lines.append(f"  best: {tpb} x {bps} at {ms:.4f} ms")
        return "\n".join(lines)


def grid_search(graph: EdgeArray,
                device: DeviceSpec = GTX_980,
                tpb_values: tuple[int, ...] = (32, 64, 256, 1024),
                bps_values: tuple[int, ...] = (1, 2, 8, 16),
                ) -> GridSearchResult:
    """E9: sweep the launch configuration (paper sweeps 32–1024 × 1–16
    and lands on 64 × 8 ⇒ 512 threads/SM on every device).

    A thin wrapper over the autotuner's measurement path
    (:func:`repro.bench.autotune.measure_launch_grid`): the hard-coded
    paper grid and any ``configs/sweep.toml`` grid run through the same
    code, so the E9 numbers are one declared config away from any wider
    sweep (see docs/reproducibility.md).
    """
    from repro.bench.autotune import measure_launch_grid
    from repro.bench.sweepconfig import SweepPoint

    points = [SweepPoint(device=device.name, kernel="merge",
                         engine="compacted", threads_per_block=tpb,
                         blocks_per_sm=bps, scale=1.0)
              for tpb in tpb_values for bps in bps_values]
    rows, _skipped = measure_launch_grid(graph, device, points)
    result = GridSearchResult(device=device)
    for row in rows:
        result.points[(row.point.threads_per_block,
                       row.point.blocks_per_sm)] = row.kernel_ms
    return result


# ---------------------------------------------------------------------- #
# E10: input format (Section III-A)
# ---------------------------------------------------------------------- #

@dataclass(frozen=True)
class InputFormatResult:
    """The 12 s / 14 s / 7 s trade-off shape on the LiveJournal stand-in."""

    adjacency_input_ms: float   # count, input already CSR
    edge_array_input_ms: float  # count, input an edge array (paper's choice)
    conversion_ms: float        # edge array -> CSR conversion alone

    def summary(self) -> str:
        return (f"input format (III-A): adjacency-input count "
                f"{self.adjacency_input_ms:.1f} ms, edge-array-input count "
                f"{self.edge_array_input_ms:.1f} ms, edges->CSR conversion "
                f"{self.conversion_ms:.1f} ms (paper shape: 12 s / 14 s / 7 s)")


def input_format_experiment(graph: EdgeArray,
                            cpu=XEON_X5650) -> InputFormatResult:
    """E10: the edge-array-input penalty is small; the conversion a CSR
    consumer would force on edge-array data is not."""
    edge_run = forward_count_cpu(graph, cpu=cpu)
    # Adjacency-optimized variant: lists arrive sorted, so the per-arc
    # radix sort drops out of preprocessing; the counting phase is
    # identical.
    m_fwd = edge_run.num_forward_arcs
    sort_ms = (m_fwd * np.log2(max(m_fwd, 2)) * cpu.ns_per_sort_compare) * 1e-6
    adjacency_ms = edge_run.elapsed_ms - sort_ms
    # Conversion: full edge array -> CSR = sort all m arcs + two passes.
    m = graph.num_arcs
    conversion_ms = (m * np.log2(max(m, 2)) * cpu.ns_per_sort_compare
                     + 2 * m * cpu.ns_per_pass_element) * 1e-6
    return InputFormatResult(adjacency_input_ms=adjacency_ms,
                             edge_array_input_ms=edge_run.elapsed_ms,
                             conversion_ms=conversion_ms)


# ---------------------------------------------------------------------- #
# E11: multi-GPU Amdahl check (Section III-E)
# ---------------------------------------------------------------------- #

@dataclass(frozen=True)
class AmdahlPoint:
    workload_name: str
    preprocessing_fraction: float
    amdahl_limit: float          # 1 / (f + (1-f)/4)
    measured_quad_speedup: float

    def summary(self) -> str:
        return (f"{self.workload_name:<12} preprocess fraction "
                f"{self.preprocessing_fraction:.2f} -> Amdahl limit "
                f"{self.amdahl_limit:.2f}x, measured "
                f"{self.measured_quad_speedup:.2f}x")


def amdahl_experiment(graph: EdgeArray, name: str = "",
                      device: DeviceSpec = TESLA_C2050,
                      num_gpus: int = 4) -> AmdahlPoint:
    """E11: measured 4-GPU speedup vs. the bound the preprocessing
    fraction implies (paper: fractions 0.08–0.76 ⇒ limits 3.23–1.22)."""
    one = gpu_count_triangles(graph, device=device,
                              memory=DeviceMemory(device))
    four = multi_gpu_count_triangles(graph, device=device, num_gpus=num_gpus)
    f = one.timeline.preprocessing_fraction
    return AmdahlPoint(
        workload_name=name or f"{graph.num_arcs}-arc graph",
        preprocessing_fraction=f,
        amdahl_limit=1.0 / (f + (1.0 - f) / num_gpus),
        measured_quad_speedup=one.total_ms / four.total_ms)


# ---------------------------------------------------------------------- #
# E13: baseline and approximation comparison (Sections II-A, V)
# ---------------------------------------------------------------------- #

@dataclass(frozen=True)
class BaselineComparison:
    triangles: int
    forward_ms: float
    compact_forward_ms: float
    edge_iterator_ms: float
    node_iterator_ms: float
    doulion_error_pct: float
    birthday_error_pct: float

    def summary(self) -> str:
        return ("exact baselines [modelled ms]: "
                f"forward {self.forward_ms:.1f}, compact-forward "
                f"{self.compact_forward_ms:.1f}, edge-iterator "
                f"{self.edge_iterator_ms:.1f}, node-iterator "
                f"{self.node_iterator_ms:.1f}; approx errors: DOULION "
                f"{self.doulion_error_pct:.1f}%, birthday "
                f"{self.birthday_error_pct:.1f}%")


def baseline_experiment(graph: EdgeArray, seed: int = 0) -> BaselineComparison:
    truth = matmul_count(graph).triangles
    fwd = forward_count_cpu(graph)
    if fwd.triangles != truth:
        raise ReproError("forward disagrees with the algebraic oracle")
    cf = compact_forward_count(graph)
    ei = edge_iterator_count(graph)
    ni = node_iterator_count(graph)
    dl = doulion_count(graph, p=0.5, seed=seed)
    bd = birthday_paradox_count(graph, edge_reservoir=1000,
                                wedge_reservoir=1000, seed=seed)

    def err(estimate):
        return abs(estimate - truth) / truth * 100.0 if truth else 0.0

    return BaselineComparison(
        triangles=truth,
        forward_ms=fwd.elapsed_ms,
        compact_forward_ms=cf.elapsed_ms,
        edge_iterator_ms=ei.elapsed_ms,
        node_iterator_ms=ni.elapsed_ms,
        doulion_error_pct=err(dl.estimate),
        birthday_error_pct=err(bd.triangle_estimate))


# ---------------------------------------------------------------------- #
# serving-mode trace replay (repro-bench serve)
# ---------------------------------------------------------------------- #

@dataclass(frozen=True)
class ServeExperiment:
    """Cache-on vs cache-off replays of one deterministic trace.

    ``report`` is the primary (cache-enabled) replay with one injected
    device failure; ``report_nocache`` replays the identical trace on a
    fresh fleet with caching disabled, isolating the preprocessing
    cache's effect on total device service time.
    """

    report: object                # ServeReport, cache on + injected fault
    report_nocache: object       # ServeReport, cache off, no fault
    fault_device: int
    fault_at_ms: float

    @property
    def cache_service_win(self) -> float:
        on = self.report.total_service_ms
        return self.report_nocache.total_service_ms / on if on else 0.0

    def summary(self) -> str:
        r = self.report
        return (f"serve: {r.summary()}; cache cuts device service time "
                f"{self.cache_service_win:.2f}x "
                f"(fault injected on device #{self.fault_device} "
                f"@ {self.fault_at_ms:.1f} ms)")


def serve_experiment(fleet_spec: str = "gtx980x4",
                     duration_ms: float = 60_000.0,
                     rate_per_s: float = 2.0,
                     seed: int = 0,
                     rate_multiplier: float = 1.0,
                     burst: float = 1.0,
                     tuned=None) -> ServeExperiment:
    """Replay a deterministic trace against a simulated fleet.

    Runs three replays of the *same* trace: a fault-free pass to locate
    a job execution window to aim the injected failure at, the primary
    cache-enabled pass with that failure (the faulted job retries on
    another device with an identical count), and a cache-disabled pass
    for the service-time comparison.

    ``tuned`` is an optional :class:`repro.serve.tuned.TunedConfigs`
    (e.g. loaded from ``configs/tuned.json``) applied to every replay;
    per the tuned contract it shifts simulated timings, never counts, so
    the fault-retry identity assertion below holds with or without it.
    """
    from repro.serve import (Fleet, TraceConfig, build_graph_pool,
                             generate_trace, serve_trace, size_fleet_memory)

    config = TraceConfig(seed=seed, duration_ms=duration_ms,
                         rate_per_s=rate_per_s,
                         rate_multiplier=rate_multiplier, burst=burst)
    pool = build_graph_pool(config)
    # Size capacity against the weakest card so the whale overflows all.
    probe = Fleet.parse(fleet_spec)
    weakest = min(probe, key=lambda d: d.spec.memory_bytes)
    memory = size_fleet_memory(pool, config, weakest.spec)

    def replay(inject=None, cache=True):
        fleet = Fleet.parse(fleet_spec, memory_bytes=memory)
        if inject is not None:
            fleet.inject_failure(*inject)
        return serve_trace(fleet, generate_trace(config, pool),
                           cache_enabled=cache, tuned=tuned)

    # Fault-free scout pass: aim the failure mid-window of a fast-path
    # job so the retry machinery provably engages.
    scout = replay()
    victim = next(j for j in scout.done
                  if j.device_index >= 0 and j.finish_ms > j.start_ms)
    fault_at = (victim.start_ms + victim.finish_ms) / 2
    report = replay(inject=(victim.device_index, fault_at))
    # Same injected fault on the cache-off pass: the comparison must
    # isolate the cache, not the fleet-shrinking effect of the failure.
    nocache = replay(inject=(victim.device_index, fault_at), cache=False)

    mismatched = [a.job_id for a, b in zip(report.jobs, scout.jobs)
                  if a.status == "done" and b.status == "done"
                  and a.triangles != b.triangles]
    if mismatched:
        raise ReproError(
            f"fault retry changed triangle counts for jobs {mismatched}")
    return ServeExperiment(report=report, report_nocache=nocache,
                           fault_device=victim.device_index,
                           fault_at_ms=fault_at)

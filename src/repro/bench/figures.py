"""Figure 1: runtime vs. graph size for the Kronecker R-MAT family.

The paper plots wall-clock milliseconds (log) against node count (log)
for four series: CPU, one Tesla C2050, four C2050s, one GTX 980.  The
reproduction plots simulated milliseconds at mini scale; the claims the
figure carries — straight near-parallel lines (polynomial scaling), the
CPU line far above, the quad line peeling away from the single C2050 as
graphs grow — are scale-free.
"""

from __future__ import annotations

import io
import math

from repro.bench.runner import RowResult, run_workload
from repro.graphs.datasets import kronecker_names

SERIES = ("cpu", "c2050", "quad", "gtx980")
_LABEL = {"cpu": "CPU", "c2050": "Tesla C2050", "quad": "4x Tesla C2050",
          "gtx980": "GTX 980"}


def run_figure1(seed: int = 0, verbose: bool = True) -> list[RowResult]:
    """Measure every Kronecker row (the figure shares Table I's data)."""
    rows = []
    for name in kronecker_names():
        if verbose:
            print(f"[figure1] running {name} ...", flush=True)
        rows.append(run_workload(name, seed=seed))
    return rows


def series_points(rows: list[RowResult]) -> dict[str, list[tuple[int, float]]]:
    """(nodes, ms) points per series, in ascending node order."""
    out: dict[str, list[tuple[int, float]]] = {s: [] for s in SERIES}
    for row in sorted(rows, key=lambda r: r.num_nodes):
        out["cpu"].append((row.num_nodes, row.cpu_ms))
        if row.c2050:
            out["c2050"].append((row.num_nodes, row.c2050.total_ms))
        if row.quad:
            out["quad"].append((row.num_nodes, row.quad.total_ms))
        if row.gtx980:
            out["gtx980"].append((row.num_nodes, row.gtx980.total_ms))
    return out


def figure1_csv(rows: list[RowResult]) -> str:
    out = io.StringIO()
    out.write("name,nodes,arcs,cpu_ms,c2050_ms,quad_ms,gtx980_ms\n")
    for r in sorted(rows, key=lambda x: x.num_nodes):
        out.write(f"{r.workload.name},{r.num_nodes},{r.num_arcs},"
                  f"{r.cpu_ms:.4f},"
                  f"{r.c2050.total_ms if r.c2050 else ''},"
                  f"{r.quad.total_ms if r.quad else ''},"
                  f"{r.gtx980.total_ms if r.gtx980 else ''}\n")
    return out.getvalue()


def render_figure1(rows: list[RowResult], width: int = 72,
                   height: int = 24) -> str:
    """ASCII log-log scatter of the four series (the paper's Figure 1)."""
    pts = series_points(rows)
    all_xy = [(x, y) for series in pts.values() for (x, y) in series if y > 0]
    if not all_xy:
        return "(no data)\n"
    lx = [math.log10(x) for x, _ in all_xy]
    ly = [math.log10(y) for _, y in all_xy]
    x0, x1 = min(lx), max(lx)
    y0, y1 = min(ly), max(ly)
    x1 = x1 if x1 > x0 else x0 + 1
    y1 = y1 if y1 > y0 else y0 + 1

    grid = [[" "] * width for _ in range(height)]
    marks = {"cpu": "C", "c2050": "t", "quad": "q", "gtx980": "G"}
    for series, mark in marks.items():
        for x, y in pts[series]:
            if y <= 0:
                continue
            col = int((math.log10(x) - x0) / (x1 - x0) * (width - 1))
            rrow = int((math.log10(y) - y0) / (y1 - y0) * (height - 1))
            grid[height - 1 - rrow][col] = mark

    out = io.StringIO()
    out.write("Figure 1 — time [ms, log] vs nodes [log], Kronecker R-MAT\n")
    out.write(f"  legend: C={_LABEL['cpu']}  t={_LABEL['c2050']}  "
              f"q={_LABEL['quad']}  G={_LABEL['gtx980']}\n")
    out.write("  " + "-" * width + "\n")
    for line in grid:
        out.write("  |" + "".join(line) + "\n")
    out.write("  " + "-" * width + "\n")
    out.write(f"  x: 10^{x0:.1f} .. 10^{x1:.1f} nodes;  "
              f"y: 10^{y0:.2f} .. 10^{y1:.2f} ms\n")
    return out.getvalue()


def check_figure1_shape(rows: list[RowResult]) -> list[str]:
    """The figure's qualitative claims; returns a list of violations.

    * the CPU series sits above every GPU series at every size;
    * every series grows monotonically with graph size (mild noise at
      the overhead-dominated low end is tolerated via a 10% slack);
    * the 4-GPU advantage over one C2050 widens as graphs grow.
    """
    problems = []
    pts = series_points(rows)
    for (x, cpu_ms), (_, t_ms), (_, g_ms) in zip(
            pts["cpu"], pts["c2050"], pts["gtx980"]):
        if not (cpu_ms > t_ms and cpu_ms > g_ms):
            problems.append(f"CPU not slowest at {x} nodes")
    for series, series_pts in pts.items():
        for (xa, ya), (xb, yb) in zip(series_pts, series_pts[1:]):
            if yb < ya * 0.9:
                problems.append(
                    f"{series} shrank from {ya:.3g} to {yb:.3g} ms "
                    f"between {xa} and {xb} nodes")
    quad_gain = [one / four for (_, one), (_, four)
                 in zip(pts["c2050"], pts["quad"])]
    if len(quad_gain) >= 2 and not quad_gain[-1] > quad_gain[0]:
        problems.append("quad advantage does not widen with size")
    return problems

"""Kernel-zoo sweep: every registered intersection kernel over a graph
zoo spanning the (degree_skew, density) plane.

This is the *calibration source* of ``GpuOptions(kernel="auto")``:
``repro-bench kernelzoo`` measures every sweepable kernel's simulated
``kernel_ms`` on each zoo graph, records the per-graph winner, and
commits the result as ``BENCH_kernelzoo.json``.
:mod:`repro.core.autopick` then picks kernels for *new* graphs by
nearest-neighbour lookup in (degree_skew, density) space — so the pick
is measured, not folklore, and regenerating the file after a timing-
model change re-derives the whole policy.

Two contracts are gated here and in CI:

* **identity** — every kernel reports the same triangle count on every
  zoo graph (the registry-wide bit-exactness promise);
* **self-consistency** — on the bench's own graphs the auto-pick must
  return the committed winner (the nearest cell is the graph itself, so
  anything else means the lookup or the artifact is broken).

Every quantity is *simulated* milliseconds — deterministic for a fixed
(zoo, seed) — so the baseline check demands near-exact equality, like
``repro-bench overlap``.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass

import numpy as np

from repro.core.autopick import (KERNELZOO_FORMAT, KernelZooCalibration,
                                 allowed_kernels, pick_kernel)
from repro.core.forward_gpu import gpu_count_triangles
from repro.core.options import GpuOptions
from repro.errors import ReproError
from repro.graphs.edgearray import EdgeArray
from repro.graphs.generators import (barabasi_albert, complete_graph,
                                     configuration_model, erdos_renyi_gnm,
                                     powerlaw_degree_sequence, rmat,
                                     watts_strogatz)
from repro.graphs.stats import degree_skew, density


def _zoo(seed: int) -> tuple[tuple[str, str, EdgeArray], ...]:
    """The calibration graphs: (name, family, graph) spanning the
    (degree_skew, density) plane.

    Families, not sizes, are the point: BA and R-MAT give heavy tails
    at two densities, G(n,m) and Watts–Strogatz give flat degree
    distributions, and the complete graph pins the density=1, skew=0
    corner.  All are small enough that the zoo sweeps in seconds at CI
    scale.
    """
    return (
        ("ba_sparse", "ba", barabasi_albert(600, 8, seed=seed)),
        ("ba_dense", "ba", barabasi_albert(300, 24, seed=seed + 1)),
        ("rmat_s9", "rmat", rmat(9, seed=seed + 2)),
        ("gnm_flat", "gnm", erdos_renyi_gnm(600, 4800, seed=seed + 3)),
        ("ws_ring", "ws", watts_strogatz(600, 16, 0.05, seed=seed + 4)),
        ("config_pl", "config", configuration_model(
            powerlaw_degree_sequence(1500, 2.1, seed=seed + 5),
            seed=seed + 5)),
        ("complete", "complete", complete_graph(96)),
    )


@dataclass
class ZooCell:
    """One zoo graph's full kernel sweep."""

    graph: str
    family: str
    nodes: int
    arcs: int
    triangles: int
    degree_skew: float
    density: float
    #: ``GpuOptions.kernel`` value -> simulated kernel_ms.
    kernel_ms: dict[str, float]
    winner: str
    #: counts agreed across every kernel (the identity gate).
    identical: bool

    def to_json(self) -> dict:
        return {
            "graph": self.graph,
            "family": self.family,
            "nodes": self.nodes,
            "arcs": self.arcs,
            "triangles": self.triangles,
            "degree_skew": round(self.degree_skew, 6),
            "density": round(self.density, 6),
            "kernels": {k: {"kernel_ms": ms}
                        for k, ms in sorted(self.kernel_ms.items())},
            "winner": self.winner,
            "identical": self.identical,
        }

    def summary(self) -> str:
        timings = " ".join(f"{k}={ms:8.4f}ms"
                           for k, ms in sorted(self.kernel_ms.items()))
        return (f"{self.graph:<10} skew={self.degree_skew:5.2f} "
                f"dens={self.density:6.4f} {timings} "
                f"winner={self.winner} identical={self.identical}")


@dataclass
class KernelZooReport:
    """The full sweep — what ``BENCH_kernelzoo.json`` serializes."""

    cells: list
    device: str
    seed: int

    def to_json(self) -> dict:
        return {
            "format": KERNELZOO_FORMAT,
            "benchmark": "kernelzoo",
            "device": self.device,
            "seed": self.seed,
            "host": {
                "python": platform.python_version(),
                "numpy": np.__version__,
                "machine": platform.machine(),
            },
            "cells": [c.to_json() for c in self.cells],
        }

    def json_str(self) -> str:
        return json.dumps(self.to_json(), indent=2) + "\n"

    def calibration(self) -> KernelZooCalibration:
        """This report as the calibration the auto-pick consumes."""
        return KernelZooCalibration.from_doc(self.to_json(),
                                             source="<kernelzoo run>")

    def problems(self) -> list[str]:
        """The acceptance gates (empty = every contract held)."""
        out = []
        for c in self.cells:
            if not c.identical:
                out.append(f"{c.graph}: kernels disagreed on the triangle "
                           "count")
        # Self-consistency: the pick on a zoo graph is that graph's own
        # measured winner (nearest cell at distance zero).
        cal = self.calibration()
        for name, _family, graph in _zoo(self.seed):
            cell = next(c for c in self.cells if c.graph == name)
            picked = pick_kernel(graph, GpuOptions(kernel="auto"),
                                 calibration=cal)
            if picked != cell.winner:
                out.append(f"{name}: auto-pick chose {picked!r}, measured "
                           f"winner is {cell.winner!r}")
        return out

    def format_report(self) -> str:
        lines = [f"==BENCH== kernelzoo (device={self.device}, "
                 f"seed={self.seed})"]
        for c in self.cells:
            lines.append("  " + c.summary())
        return "\n".join(lines) + "\n"


def run_zoo_cell(name: str, family: str, graph: EdgeArray, *,
                 device_name: str = "gtx980") -> ZooCell:
    """Sweep every sweepable kernel over one graph (default options, so
    the SoA layout is on and ``warp_intersect`` participates)."""
    from repro.gpusim.device import DEVICES

    device = DEVICES[device_name]
    base = GpuOptions()
    kernel_ms: dict[str, float] = {}
    counts: dict[str, int] = {}
    for field in sorted(allowed_kernels(base)):
        run = gpu_count_triangles(graph, device=device,
                                  options=base.but(kernel=field))
        kernel_ms[field] = run.kernel_timing.kernel_ms
        counts[field] = run.triangles
    winner = min((ms, k) for k, ms in kernel_ms.items())[1]
    triangles = next(iter(counts.values()))
    return ZooCell(
        graph=name, family=family, nodes=graph.num_nodes,
        arcs=graph.num_arcs, triangles=triangles,
        degree_skew=degree_skew(graph), density=density(graph),
        kernel_ms=kernel_ms, winner=winner,
        identical=len(set(counts.values())) == 1)


def run_kernelzoo(*, seed: int = 0, device_name: str = "gtx980",
                  progress=None) -> KernelZooReport:
    """Run the full zoo sweep."""
    cells = []
    for name, family, graph in _zoo(seed):
        cell = run_zoo_cell(name, family, graph, device_name=device_name)
        cells.append(cell)
        if progress is not None:
            progress(cell)
    return KernelZooReport(cells=cells, device=device_name, seed=seed)


def baseline_problems(report: KernelZooReport, baseline_doc: dict,
                      tolerance: float = 1e-6) -> list[str]:
    """Compare a fresh sweep against the committed calibration.

    Near-exact equality (everything is deterministic simulated ms);
    the relative ``tolerance`` absorbs float-formatting noise only.  A
    mismatch means the timing model or a kernel changed — regenerate
    ``BENCH_kernelzoo.json`` deliberately if that was intended, since
    the auto-pick policy is derived from it.
    """
    if tolerance < 0:
        raise ReproError(f"tolerance must be >= 0, got {tolerance}")

    def close(a: float, b: float) -> bool:
        return abs(a - b) <= tolerance * max(abs(a), abs(b), 1e-12)

    if baseline_doc.get("format") != KERNELZOO_FORMAT:
        return [f"baseline is not a {KERNELZOO_FORMAT!r} document"]
    baseline = {c["graph"]: c for c in baseline_doc.get("cells", [])}
    problems = []
    for c in report.cells:
        want = baseline.get(c.graph)
        if want is None:
            problems.append(f"{c.graph}: no matching baseline cell")
            continue
        if want.get("winner") != c.winner:
            problems.append(f"{c.graph}: winner {c.winner!r} != baseline "
                            f"{want.get('winner')!r}")
        if int(want.get("triangles", -1)) != c.triangles:
            problems.append(f"{c.graph}: triangles {c.triangles} != "
                            f"baseline {want.get('triangles')}")
        want_ms = {k: v["kernel_ms"]
                   for k, v in want.get("kernels", {}).items()}
        for k, ms in c.kernel_ms.items():
            if k not in want_ms:
                problems.append(f"{c.graph}: kernel {k!r} missing from "
                                "baseline (regenerate the calibration)")
            elif not close(ms, float(want_ms[k])):
                problems.append(f"{c.graph}: {k} kernel_ms {ms:g} != "
                                f"baseline {want_ms[k]:g}")
    for name in baseline:
        if all(c.graph != name for c in report.cells):
            problems.append(f"{name}: baseline cell not re-measured "
                            "(zoo shrank?)")
    return problems

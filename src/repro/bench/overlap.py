"""Executed-overlap harness: measured stream schedules vs the model.

The runtime has two *executed* async schedules (as opposed to the
phase-sum what-ifs the :class:`~repro.runtime.stream.StreamTimeline`
always modeled):

* the chunked double-buffered ``†`` pipeline
  (:mod:`repro.runtime.pipeline`) — CPU host pass overlapping the
  forward-arc H2D on real streams with ``wait_for`` edges;
* the ring exchange of :mod:`repro.gpusim.multigpu` — multi-GPU
  broadcast replaced by chunked store-and-forward on per-link streams.

This harness pins the contracts both schedules must keep:

* **identity** — triangle counts *and* the full ``counters()`` dict are
  bit-identical between serial and pipelined execution, and between
  broadcast and ring exchange (a schedule only moves bytes and events;
  perf that changes results is a bug, not a result);
* **protocol** — the *reported* serial totals are unchanged (the chunked
  events sum to the serial phase totals: the paper's measurement
  protocol stays the source of every reported number);
* **overlap is real** — the executed pipelined ``makespan_ms`` is no
  worse than the serial total and within ``drift`` (default 10%) of the
  modeled ``pipelined_ms``, i.e. the model the repo has been quoting is
  the schedule the runtime actually runs;
* **ring wins** — for ``num_gpus >= 3`` the ring exchange's measured
  makespan beats broadcast's (store-and-forward pays ``B·(N+k-2)/N``
  on the critical path vs the host-mediated ``2B``).

``repro-bench overlap`` writes the result as ``BENCH_overlap.json``;
CI re-runs the harness and compares against the committed file.  Every
quantity here is *simulated* milliseconds — deterministic for a given
(workload, seed, scale) — so the baseline check demands near-exact
equality, not a drift band.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass

import numpy as np

from repro.core.forward_gpu import gpu_count_triangles
from repro.core.multi_gpu import multi_gpu_count_triangles
from repro.core.options import GpuOptions
from repro.errors import ReproError
from repro.graphs.datasets import WORKLOADS
from repro.runtime import PipelinedPlan, StreamTimeline

#: Pipeline rows: ``†``-protocol workloads (cpu_preprocess forced, the
#: Section III-D6 leg) where the host pass is the phase worth hiding.
PIPELINE_ROWS: tuple[str, ...] = ("kron17", "internet", "ba", "ws")

#: Exchange rows: (workload, num_gpus) cells for broadcast vs ring.
EXCHANGE_ROWS: tuple[tuple[str, int], ...] = (
    ("kron17", 2), ("kron17", 3), ("kron17", 4))


@dataclass
class PipelineRow:
    """One workload's serial-vs-pipelined measurement (single GPU, †)."""

    workload: str
    nodes: int
    arcs: int
    triangles: int
    chunks: int
    total_ms: float            # serial protocol total (both modes report it)
    modeled_ms: float          # serial timeline's pipelined_ms() what-if
    makespan_ms: float         # measured end-to-end of the executed schedule
    identical: bool            # counts + counters() equal across modes
    protocol_kept: bool        # pipelined run's serial total == serial's

    @property
    def drift(self) -> float:
        """Relative gap between measured makespan and the model."""
        if not self.modeled_ms:
            return 0.0
        return abs(self.makespan_ms - self.modeled_ms) / self.modeled_ms

    @property
    def savings_frac(self) -> float:
        """Fraction of the serial total the executed overlap removes."""
        if not self.total_ms:
            return 0.0
        return (self.total_ms - self.makespan_ms) / self.total_ms

    def to_json(self) -> dict:
        return {
            "kind": "pipeline",
            "workload": self.workload,
            "nodes": self.nodes,
            "arcs": self.arcs,
            "triangles": self.triangles,
            "chunks": self.chunks,
            "total_ms": self.total_ms,
            "modeled_ms": self.modeled_ms,
            "makespan_ms": self.makespan_ms,
            "drift": round(self.drift, 6),
            "savings_frac": round(self.savings_frac, 6),
            "identical": self.identical,
            "protocol_kept": self.protocol_kept,
        }

    def summary(self) -> str:
        return (f"{self.workload:<10} serial={self.total_ms:8.4f}ms "
                f"makespan={self.makespan_ms:8.4f}ms "
                f"model={self.modeled_ms:8.4f}ms "
                f"drift={self.drift * 100:5.2f}% "
                f"saved={self.savings_frac * 100:5.2f}% "
                f"identical={self.identical}")


@dataclass
class ExchangeRow:
    """One (workload, k) cell's broadcast-vs-ring measurement."""

    workload: str
    num_gpus: int
    triangles: int
    broadcast_total_ms: float      # the paper's reported serial protocol
    broadcast_makespan_ms: float   # concurrent one-source copies
    ring_makespan_ms: float        # executed store-and-forward schedule
    identical: bool                # counts + per-device counters equal

    @property
    def ring_wins(self) -> bool:
        return self.ring_makespan_ms < self.broadcast_makespan_ms

    def to_json(self) -> dict:
        return {
            "kind": "exchange",
            "workload": self.workload,
            "num_gpus": self.num_gpus,
            "triangles": self.triangles,
            "broadcast_total_ms": self.broadcast_total_ms,
            "broadcast_makespan_ms": self.broadcast_makespan_ms,
            "ring_makespan_ms": self.ring_makespan_ms,
            "ring_wins": self.ring_wins,
            "identical": self.identical,
        }

    def summary(self) -> str:
        return (f"{self.workload:<10} k={self.num_gpus} "
                f"bcast={self.broadcast_makespan_ms:8.4f}ms "
                f"ring={self.ring_makespan_ms:8.4f}ms "
                f"serial={self.broadcast_total_ms:8.4f}ms "
                f"ring_wins={self.ring_wins} identical={self.identical}")


@dataclass
class OverlapReport:
    """The full harness result — what ``BENCH_overlap.json`` serializes."""

    pipeline_rows: list
    exchange_rows: list
    device: str
    multi_device: str
    chunks: int
    seed: int

    @property
    def max_drift(self) -> float:
        return max((r.drift for r in self.pipeline_rows), default=0.0)

    @property
    def min_savings_frac(self) -> float:
        return min((r.savings_frac for r in self.pipeline_rows), default=0.0)

    def problems(self, drift: float = 0.10) -> list[str]:
        """The acceptance gates (empty = every contract held)."""
        out = []
        for r in self.pipeline_rows:
            if not r.identical:
                out.append(f"{r.workload}: pipelined run diverged "
                           "(counts/counters not identical)")
            if not r.protocol_kept:
                out.append(f"{r.workload}: pipelined run changed the "
                           "reported serial total")
            if r.makespan_ms > r.total_ms + 1e-9:
                out.append(f"{r.workload}: makespan {r.makespan_ms:.4f}ms "
                           f"exceeds serial total {r.total_ms:.4f}ms")
            if r.drift > drift:
                out.append(f"{r.workload}: measured makespan drifts "
                           f"{r.drift * 100:.2f}% from the modeled "
                           f"pipelined_ms (gate {drift * 100:.0f}%)")
        for r in self.exchange_rows:
            if not r.identical:
                out.append(f"{r.workload} k={r.num_gpus}: ring exchange "
                           "diverged (counts/counters not identical)")
            if r.num_gpus >= 3 and not r.ring_wins:
                out.append(f"{r.workload} k={r.num_gpus}: ring makespan "
                           f"{r.ring_makespan_ms:.4f}ms does not beat "
                           f"broadcast {r.broadcast_makespan_ms:.4f}ms")
        return out

    def to_json(self) -> dict:
        return {
            "benchmark": "executed_overlap",
            "device": self.device,
            "multi_device": self.multi_device,
            "chunks": self.chunks,
            "seed": self.seed,
            "host": {
                "python": platform.python_version(),
                "numpy": np.__version__,
                "machine": platform.machine(),
            },
            "max_drift": round(self.max_drift, 6),
            "min_savings_frac": round(self.min_savings_frac, 6),
            "rows": ([r.to_json() for r in self.pipeline_rows]
                     + [r.to_json() for r in self.exchange_rows]),
        }

    def json_str(self) -> str:
        return json.dumps(self.to_json(), indent=2) + "\n"

    def format_report(self) -> str:
        lines = [f"==BENCH== executed overlap (device={self.device}, "
                 f"multi={self.multi_device}, chunks={self.chunks})"]
        lines.append("  -- pipelined † execution (serial vs executed) --")
        for row in self.pipeline_rows:
            lines.append("  " + row.summary())
        lines.append("  -- multi-GPU exchange (broadcast vs ring) --")
        for row in self.exchange_rows:
            lines.append("  " + row.summary())
        lines.append(f"  max model drift: {self.max_drift * 100:.2f}%   "
                     f"min savings: {self.min_savings_frac * 100:.2f}%")
        return "\n".join(lines) + "\n"


def run_pipeline_row(name: str, *, chunks: int = 8, seed: int = 0,
                     device_name: str = "gtx980") -> PipelineRow:
    """Measure one workload serial vs pipelined under the ``†`` protocol.

    Both runs force ``cpu_preprocess="always"`` so the serial side pays
    the same Section III-D6 host pass the pipeline overlaps — the only
    difference between the two is the schedule.
    """
    from repro.gpusim.device import DEVICES

    if name not in WORKLOADS:
        raise ReproError(f"unknown workload {name!r}")
    graph = WORKLOADS[name].build(seed=seed)
    device = DEVICES[device_name]
    options = GpuOptions(cpu_preprocess="always")

    serial = gpu_count_triangles(graph, device=device, options=options)
    pipelined = gpu_count_triangles(graph, device=device, options=options,
                                    mode="pipelined",
                                    pipeline=PipelinedPlan(chunks=chunks))

    assert isinstance(serial.timeline, StreamTimeline)
    assert isinstance(pipelined.timeline, StreamTimeline)
    identical = (serial.triangles == pipelined.triangles
                 and serial.kernel_report.counters()
                 == pipelined.kernel_report.counters())
    protocol_kept = abs(serial.total_ms - pipelined.total_ms) < 1e-12

    return PipelineRow(
        workload=name, nodes=graph.num_nodes,
        arcs=serial.num_forward_arcs, triangles=serial.triangles,
        chunks=chunks,
        total_ms=serial.total_ms,
        modeled_ms=serial.timeline.pipelined_ms(),
        makespan_ms=pipelined.timeline.makespan_ms,
        identical=identical, protocol_kept=protocol_kept)


def run_exchange_row(name: str, num_gpus: int, *, seed: int = 0,
                     device_name: str = "c2050") -> ExchangeRow:
    """Measure one (workload, k) cell, broadcast vs ring exchange."""
    from repro.gpusim.device import DEVICES

    if name not in WORKLOADS:
        raise ReproError(f"unknown workload {name!r}")
    graph = WORKLOADS[name].build(seed=seed)
    device = DEVICES[device_name]

    runs = {}
    for mode in ("broadcast", "ring"):
        runs[mode] = multi_gpu_count_triangles(graph, device=device,
                                               num_gpus=num_gpus,
                                               exchange=mode)
    bcast, ring = runs["broadcast"], runs["ring"]
    assert isinstance(bcast.timeline, StreamTimeline)
    assert isinstance(ring.timeline, StreamTimeline)
    identical = (bcast.triangles == ring.triangles
                 and [rep.counters() for rep, _ in bcast.per_device]
                 == [rep.counters() for rep, _ in ring.per_device])

    return ExchangeRow(
        workload=name, num_gpus=num_gpus, triangles=bcast.triangles,
        broadcast_total_ms=bcast.total_ms,
        broadcast_makespan_ms=bcast.timeline.makespan_ms,
        ring_makespan_ms=ring.timeline.makespan_ms,
        identical=identical)


def baseline_problems(report: OverlapReport, baseline_doc: dict,
                      tolerance: float = 1e-6) -> list[str]:
    """Compare a fresh report against a committed ``BENCH_overlap.json``.

    Every figure here is simulated milliseconds — deterministic for a
    given (workload, seed, scale) — so unlike the wall-clock harness
    this check demands near-exact equality (relative ``tolerance``
    absorbs float-formatting noise only).  A mismatch means the timing
    model, the schedule, or the workload changed; regenerate the file
    deliberately if that was intended.
    """
    if tolerance < 0:
        raise ReproError(f"tolerance must be >= 0, got {tolerance}")

    def close(a: float, b: float) -> bool:
        return abs(a - b) <= tolerance * max(abs(a), abs(b), 1e-12)

    baseline: dict[tuple, dict] = {}
    for row in baseline_doc.get("rows", []):
        if row.get("kind") == "exchange":
            baseline[("exchange", row["workload"], row["num_gpus"])] = row
        else:
            baseline[("pipeline", row["workload"])] = row

    problems = []
    for r in report.pipeline_rows:
        want = baseline.get(("pipeline", r.workload))
        if want is None:
            problems.append(f"{r.workload}: no matching baseline row")
            continue
        for key, have in (("total_ms", r.total_ms),
                          ("modeled_ms", r.modeled_ms),
                          ("makespan_ms", r.makespan_ms),
                          ("triangles", float(r.triangles))):
            if not close(have, float(want[key])):
                problems.append(f"{r.workload}: {key} {have:g} != "
                                f"baseline {want[key]:g}")
    for r in report.exchange_rows:
        want = baseline.get(("exchange", r.workload, r.num_gpus))
        if want is None:
            problems.append(f"{r.workload} k={r.num_gpus}: "
                            "no matching baseline row")
            continue
        for key, have in (("broadcast_total_ms", r.broadcast_total_ms),
                          ("broadcast_makespan_ms", r.broadcast_makespan_ms),
                          ("ring_makespan_ms", r.ring_makespan_ms),
                          ("triangles", float(r.triangles))):
            if not close(have, float(want[key])):
                problems.append(f"{r.workload} k={r.num_gpus}: {key} "
                                f"{have:g} != baseline {want[key]:g}")
    return problems


def run_overlap(pipeline_rows=PIPELINE_ROWS, exchange_rows=EXCHANGE_ROWS, *,
                chunks: int = 8, seed: int = 0,
                device_name: str = "gtx980",
                multi_device_name: str = "c2050",
                progress=None) -> OverlapReport:
    """Run the harness: pipeline rows then exchange rows."""
    measured_p = []
    for name in pipeline_rows:
        row = run_pipeline_row(name, chunks=chunks, seed=seed,
                               device_name=device_name)
        if progress is not None:
            progress(row)
        measured_p.append(row)
    measured_x = []
    for name, k in exchange_rows:
        xrow = run_exchange_row(name, k, seed=seed,
                                device_name=multi_device_name)
        if progress is not None:
            progress(xrow)
        measured_x.append(xrow)
    return OverlapReport(pipeline_rows=measured_p, exchange_rows=measured_x,
                         device=device_name, multi_device=multi_device_name,
                         chunks=chunks, seed=seed)

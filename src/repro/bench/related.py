"""Section V related-work comparisons (E14).

Three comparison points from the paper's Section V, regenerated as far
as the substitution honestly allows:

* **Green et al. [15]** (warp-parallel intersections): we implement the
  core strategy as a kernel (:mod:`repro.core.warp_intersect_kernel`)
  and compare full pipelines.  The comparator's real system also paid
  binning/multi-launch overheads, charged here as an extra
  classification pass, a length-class sort and per-class launches.
  NOTE the honest finding recorded in EXPERIMENTS.md: the *idealized*
  strategy is faster than the paper's kernel in our simulator — the
  warp-per-edge layout coalesces where thread-per-edge scatters — so
  the paper's measured 2× advantage must come from implementation
  overheads beyond the strategy itself.
* **Leist et al. [13]** (thread-per-vertex clustering coefficients):
  modelled analytically — its work is the full wedge count with
  scattered closure checks, which at any scale dwarfs the forward
  merge work on skewed graphs.  Simulating it in lockstep is
  deliberately avoided (a single hub vertex serializes hundreds of
  thousands of steps onto one lane — the very reason the approach
  lost).
* **Chatterjee [14]** (reported ~20 s for 2 000-node graphs): orders of
  magnitude off any of the above; noted, not implemented.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.options import GpuOptions
from repro.core.preprocess import preprocess
from repro.errors import ReproError
from repro.graphs.edgearray import EdgeArray
from repro.gpusim import thrustlike
from repro.gpusim.device import DeviceSpec, GTX_980
from repro.gpusim.memory import DeviceMemory
from repro.gpusim.timing import LAUNCH_OVERHEAD_MS, Timeline, time_kernel
from repro.runtime import build_engine, dispatch_kernel, get_kernel

#: Length classes the comparator bins edges into (one launch each).
GREEN_BIN_CLASSES = 8


@dataclass(frozen=True)
class GreenComparison:
    """Pipeline-level comparison against the warp-parallel strategy."""

    triangles: int
    polak_total_ms: float
    green_total_ms: float
    polak_kernel_ms: float
    green_kernel_ms: float
    green_search_probes: int

    @property
    def pipeline_ratio(self) -> float:
        """green / polak total time (the paper reports ≈2)."""
        return self.green_total_ms / self.polak_total_ms

    @property
    def kernel_ratio(self) -> float:
        return self.green_kernel_ms / self.polak_kernel_ms

    def summary(self) -> str:
        return (f"Polak pipeline {self.polak_total_ms:.3f} ms vs "
                f"Green-style {self.green_total_ms:.3f} ms "
                f"(ratio {self.pipeline_ratio:.2f}, kernel-only "
                f"{self.kernel_ratio:.2f}; paper reports ≈2)")


def compare_with_green(graph: EdgeArray,
                       device: DeviceSpec = GTX_980) -> GreenComparison:
    """Run both pipelines on the same preprocessed structures."""
    # --- Polak pipeline ------------------------------------------------ #
    opts = GpuOptions()
    mem = DeviceMemory(device)
    tl_polak = Timeline()
    pre = preprocess(graph, device, mem, tl_polak)
    engine = build_engine(device, opts)
    res_polak = dispatch_kernel(get_kernel("merge"), engine, pre, opts)
    t_polak = time_kernel(engine.report)
    tl_polak.add("CountTriangles", t_polak.kernel_ms, phase="count")
    mem.free_all()

    # --- Green-style pipeline ------------------------------------------ #
    mem = DeviceMemory(device)
    tl_green = Timeline()
    pre = preprocess(graph, device, mem, tl_green)
    # Binning: classify each edge by ceil(log2 |shorter list|) (one pass
    # + node gathers), stable-sort edges by class, then launch once per
    # non-empty class.
    m_fwd = pre.num_forward_arcs
    tl_green.add("bin classify",
                 thrustlike.stream_ms(device, 8 * m_fwd, 3.0))
    tl_green.add("bin sort",
                 thrustlike.stream_ms(device, 8 * m_fwd,
                                      2.0 * np.log2(max(GREEN_BIN_CLASSES, 2))))
    tl_green.add("per-bin launches",
                 GREEN_BIN_CLASSES * LAUNCH_OVERHEAD_MS)
    engine_g = build_engine(device, opts)
    res_green = dispatch_kernel(get_kernel("warp_intersect"), engine_g,
                                pre, opts)
    t_green = time_kernel(engine_g.report)
    tl_green.add("WarpIntersect", t_green.kernel_ms, phase="count")
    mem.free_all()

    if res_polak.triangles != res_green.triangles:
        raise ReproError("the two kernels disagree on the count")
    return GreenComparison(
        triangles=res_polak.triangles,
        polak_total_ms=tl_polak.total_ms,
        green_total_ms=tl_green.total_ms,
        polak_kernel_ms=t_polak.kernel_ms,
        green_kernel_ms=t_green.kernel_ms,
        green_search_probes=res_green.search_probes)


@dataclass(frozen=True)
class LeistComparison:
    """Analytic comparison against thread-per-vertex wedge checking."""

    forward_kernel_ms: float
    leist_model_ms: float
    wedges: int
    merge_steps: int

    @property
    def advantage(self) -> float:
        """forward-over-Leist speedup (paper: ~45× on BA, ~7× on WS,
        already divided by 2 for the clustering-coefficient extras)."""
        return self.leist_model_ms / self.forward_kernel_ms

    def summary(self) -> str:
        return (f"forward kernel {self.forward_kernel_ms:.3f} ms vs "
                f"Leist-style model {self.leist_model_ms:.3f} ms "
                f"({self.advantage:.0f}x advantage; wedges/merge-steps = "
                f"{self.wedges / max(self.merge_steps, 1):.1f})")


def compare_with_leist(graph: EdgeArray,
                       device: DeviceSpec = GTX_980) -> LeistComparison:
    """Analytic model of the [13] approach vs. our measured kernel.

    The thread-per-vertex kernel performs one closure check per wedge
    (two scattered reads plus a ~log(deg) binary search).  Work is
    bounded below by the wedge count; we charge only the reads at the
    device's scattered-access throughput and give the comparator perfect
    occupancy — a lower bound that still loses by a wide margin on
    skewed graphs, which is the paper's point.
    """
    from repro.cpu.forward import forward_count_cpu
    from repro.graphs.stats import wedge_counts

    opts = GpuOptions()
    mem = DeviceMemory(device)
    tl = Timeline()
    pre = preprocess(graph, device, mem, tl)
    engine = build_engine(device, opts)
    dispatch_kernel(get_kernel("merge"), engine, pre, opts)
    t_forward = time_kernel(engine.report)
    mem.free_all()

    wedges = int(wedge_counts(graph).sum())
    deg_max = int(graph.degrees().max()) if graph.num_nodes else 1
    reads_per_wedge = 2 + np.log2(max(deg_max, 2))
    # One 32 B sector per scattered read, at effective DRAM bandwidth.
    bytes_total = wedges * reads_per_wedge * device.sector_bytes
    eff_bw = device.peak_bandwidth_gbs * device.dram_efficiency * 1e9
    leist_ms = bytes_total / eff_bw * 1e3

    merge_steps = forward_count_cpu(graph).merge_steps
    return LeistComparison(forward_kernel_ms=t_forward.kernel_ms,
                           leist_model_ms=leist_ms,
                           wedges=wedges, merge_steps=merge_steps)

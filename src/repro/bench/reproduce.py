"""One-command reproduction bundle: ``scripts/reproduce_all``.

One invocation regenerates every headline artifact of the reproduction —
Table I, Table II, Figure 1, the ``==SERVE==`` report, the serve-scale
overload bench, the engine wall-clock bench and the autotuned per-device
configs — and writes the lot into one output directory:

* ``summary.json`` — machine-readable: every measured number next to
  the paper's quoted band, with an explicit pass/fail per band check;
* ``report.md`` — the same content rendered for humans;
* ``manifest.json`` — environment/seed manifest (Python, numpy,
  platform, git SHA, ``REPRO_SCALE``, per-experiment RNG seeds, the
  sweep config that produced ``tuned.json``);
* the per-experiment files (``table1.csv``, ``figure1.csv``,
  ``BENCH_kernel.json``, ``BENCH_serve.json``, ``serve_jobs.csv``,
  ``tuned.json``) — see ``ARTIFACTS.md`` for each file's schema.

Two presets: ``full`` reproduces the committed artifacts (all 13
Table I rows, the committed bench configs, the ``configs/sweep.toml``
grid); ``tiny`` is the CI smoke profile (quarter scale, a 6-row subset,
short traces, a 2x2 sweep grid) that exercises every code path in a
couple of minutes.

Determinism contract: everything simulated is bit-reproducible for a
fixed (preset, seed, ``REPRO_SCALE``); host wall-clock numbers and
timestamps are not, and are confined to the keys in
:data:`VOLATILE_KEYS` so :func:`deterministic_doc` can strip them —
two runs of the same preset agree byte-for-byte on the stripped
document (``tests/test_reproduce.py`` pins this).
"""

from __future__ import annotations

import argparse
import io
import json
import os
import platform
import subprocess
import sys
from contextlib import contextmanager
from dataclasses import dataclass, field
from datetime import datetime, timezone

import numpy as np

from repro.bench import figures, tables
from repro.bench.autotune import SweepReport, run_sweep
from repro.bench.calibration import check_daggers, row_checks
from repro.bench.runner import RowResult, run_table1
from repro.bench.serve_scale import report_doc, run_serve_scale
from repro.bench.sweepconfig import SweepConfig, load_sweep_config
from repro.bench.wallclock import run_wallclock
from repro.graphs.datasets import kronecker_names
from repro.serve.tuned import TunedConfigs
from repro.utils import env_scale

#: summary.json format marker (bump on breaking schema changes).
SUMMARY_FORMAT = "repro-summary/v1"

#: Keys whose values are host-machine- or time-of-day-dependent.  They
#: are the *only* nondeterministic content in the bundle;
#: :func:`deterministic_doc` strips them so byte-identity across runs is
#: testable.  ``identical``/band verdicts never live under these keys.
VOLATILE_KEYS = frozenset({
    "generated_at", "git_sha", "host",
    "host_s", "host_seconds", "host_profile",
    "lockstep_s", "compacted_s", "lockstep_runs", "compacted_runs",
    "speedup", "min_speedup",
})

#: Committed baselines the ``full`` preset regression-checks against.
KERNEL_BASELINE = "BENCH_kernel.json"
SERVE_BASELINE = "BENCH_serve.json"

#: Every file the bundle writes: filename -> (producer, description).
#: ``ARTIFACTS.md`` documents the same inventory; a test pins the two
#: against each other so the docs cannot drift.
ARTIFACT_FILES: dict[str, tuple[str, str]] = {
    "manifest.json": (
        "repro.bench.reproduce.environment_manifest",
        "environment/seed manifest: versions, git SHA, scale, RNG seeds"),
    "summary.json": (
        "repro.bench.reproduce.run_reproduce",
        "machine-readable results: measured values vs paper bands, "
        "pass/fail per check"),
    "report.md": (
        "repro.bench.reproduce.render_report",
        "human-readable rendering of summary.json"),
    "table1.csv": (
        "repro.bench.tables.table1_csv",
        "Table I rows, paper vs measured, one line per workload"),
    "figure1.csv": (
        "repro.bench.figures.figure1_csv",
        "Figure 1 series points (nodes vs ms per device)"),
    "BENCH_kernel.json": (
        "repro.bench.wallclock.WallclockReport.json_str",
        "engine wall-clock bench (lockstep vs compacted host seconds)"),
    "BENCH_serve.json": (
        "repro.bench.serve_scale.ServeScaleResult.json_str",
        "serve-scale overload bench, seed vs control-plane replays"),
    "serve_jobs.csv": (
        "repro.serve.metrics.ServeReport.jobs_csv",
        "per-job ledger of the primary serving replay"),
    "tuned.json": (
        "repro.bench.autotune.SweepReport.write_tuned",
        "autotuner winners per device (consumed by the serve scheduler)"),
    "analysis.sarif": (
        "repro.analyze.run.run_repo_analysis",
        "static-analysis findings (SARIF 2.1.0) of the analyzed trees, "
        "baseline-gated"),
}


# ---------------------------------------------------------------------- #
# presets
# ---------------------------------------------------------------------- #

@dataclass(frozen=True)
class Preset:
    """One reproduction profile (see module docstring)."""

    name: str
    #: extra multiplier applied on top of the ambient ``REPRO_SCALE``.
    factor: float
    #: Table I rows to run (``None`` = the full 13-row set).
    table1_workloads: tuple[str, ...] | None
    configs: tuple[str, ...]
    serve_duration_ms: float
    serve_scale_duration_ms: float
    wallclock_rows: tuple[tuple[str, float | None], ...]
    wallclock_repeats: int
    sweep_tpb: tuple[int, ...]
    sweep_bps: tuple[int, ...]
    #: compare against the committed BENCH_*.json files (only meaningful
    #: when the run uses the committed configs, i.e. the full preset).
    compare_baselines: bool


FULL = Preset(
    name="full", factor=1.0, table1_workloads=None,
    configs=("c2050", "quad", "gtx980"),
    serve_duration_ms=60_000.0, serve_scale_duration_ms=30_000.0,
    wallclock_rows=(("ba", 0.0078125), ("ba", 0.015625),
                    ("kron18", 0.0078125), ("kron20", None),
                    ("internet", None), ("ws", None)),
    wallclock_repeats=3,
    sweep_tpb=(32, 64, 256, 1024), sweep_bps=(1, 2, 8, 16),
    compare_baselines=True)

TINY = Preset(
    name="tiny", factor=0.25,
    table1_workloads=("ba", "ws", "internet", "kron16", "kron17", "kron18"),
    configs=("c2050", "quad", "gtx980"),
    serve_duration_ms=10_000.0, serve_scale_duration_ms=10_000.0,
    wallclock_rows=(("ba", 0.0078125), ("ws", None)),
    wallclock_repeats=1,
    sweep_tpb=(64, 256), sweep_bps=(2, 8),
    compare_baselines=False)

PRESETS = {p.name: p for p in (TINY, FULL)}


@contextmanager
def scaled(factor: float):
    """Multiply the ambient ``REPRO_SCALE`` by ``factor`` for the block."""
    if factor == 1.0:
        yield
        return
    old = os.environ.get("REPRO_SCALE")
    os.environ["REPRO_SCALE"] = repr(env_scale() * factor)
    try:
        yield
    finally:
        if old is None:
            os.environ.pop("REPRO_SCALE", None)
        else:
            os.environ["REPRO_SCALE"] = old


# ---------------------------------------------------------------------- #
# manifest + determinism
# ---------------------------------------------------------------------- #

def _git_sha() -> str | None:
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def environment_manifest(preset: Preset, seed: int,
                         sweep: SweepConfig,
                         sweep_source: str) -> dict:
    """The seed/environment ledger stamped into every artifact set.

    Must be called *inside* the :func:`scaled` context so ``env_scale``
    records the effective scale the experiments actually ran at.
    """
    return {
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "preset": preset.name,
        "scale_factor": preset.factor,
        "env_scale": env_scale(),
        "seeds": {
            "table1": seed, "figure1": seed, "serve": seed,
            "serve_scale": seed, "wallclock": seed, "sweep": sweep.seed,
        },
        "sweep_config": {"source": sweep_source, **sweep.doc()},
    }


def _np_default(obj):
    """json.dumps fallback for numpy scalars (counters, counts)."""
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


def _dumps(doc) -> str:
    return json.dumps(doc, indent=2, sort_keys=True,
                      default=_np_default) + "\n"


def deterministic_doc(doc):
    """``doc`` with every :data:`VOLATILE_KEYS` entry removed,
    recursively — the byte-reproducible core of the bundle."""
    if isinstance(doc, dict):
        return {k: deterministic_doc(v) for k, v in doc.items()
                if k not in VOLATILE_KEYS}
    if isinstance(doc, list):
        return [deterministic_doc(v) for v in doc]
    return doc


# ---------------------------------------------------------------------- #
# sections
# ---------------------------------------------------------------------- #

def _check(name: str, passed: bool, detail: str) -> dict:
    return {"name": name, "passed": bool(passed), "detail": detail}


def _row_doc(row: RowResult) -> dict:
    """One Table I/II row: measured values next to the published ones."""
    paper = row.workload.paper
    return {
        "workload": row.workload.name,
        "kind": row.workload.kind,
        "scale": row.scale,
        "nodes": row.num_nodes,
        "arcs": row.num_arcs,
        "triangles": row.triangles,
        "measured": {
            "cpu_ms": round(row.cpu_ms, 4),
            "c2050_ms": round(row.c2050.total_ms, 4) if row.c2050 else None,
            "quad_ms": round(row.quad.total_ms, 4) if row.quad else None,
            "gtx980_ms": round(row.gtx980.total_ms, 4) if row.gtx980 else None,
            "c2050_speedup": round(row.c2050_speedup, 4),
            "quad_speedup": round(row.quad_speedup, 4),
            "gtx980_speedup": round(row.gtx980_speedup, 4),
            "cache_hit_pct": round(row.cache_hit_pct, 4),
            "bandwidth_gbs": round(row.bandwidth_gbs, 4),
            "dagger_c2050": row.dagger_c2050,
            "dagger_quad": row.dagger_quad,
        },
        "paper": {
            "cpu_ms": paper.cpu_ms,
            "c2050_ms": paper.c2050_ms,
            "quad_ms": paper.quad_ms,
            "gtx980_ms": paper.gtx980_ms,
            "c2050_speedup": paper.c2050_speedup,
            "quad_speedup": paper.quad_speedup,
            "gtx980_speedup": paper.gtx980_speedup,
            "cache_hit_pct": paper.cache_hit_pct,
            "bandwidth_gbs": paper.bandwidth_gbs,
            "dagger_c2050": paper.dagger_c2050,
            "dagger_quad": paper.dagger_quad,
        },
    }


def _table1_section(rows: list[RowResult]) -> dict:
    checks = [c.to_json() for r in rows for c in row_checks(r)]
    dagger_problems = check_daggers(rows)
    applicable = [c for c in checks if c["applies"]]
    return {
        "rows": [_row_doc(r) for r in rows],
        "band_checks": checks,
        "dagger_problems": dagger_problems,
        "ok": (all(c["passed"] for c in applicable)
               and not dagger_problems),
    }


def _figure1_section(kron_rows: list[RowResult]) -> dict:
    from repro.bench.calibration import MIN_ARCS_FOR_SPEEDUP_BANDS

    # Shape claims (CPU slowest, monotone growth, widening quad gain)
    # only hold outside the fixed-overhead regime — same gate as the
    # Table I speedup bands.  Tiny-preset graphs may all fall below it;
    # the section then reports applies=False rather than fake failures.
    in_regime = [r for r in kron_rows
                 if r.num_arcs >= MIN_ARCS_FOR_SPEEDUP_BANDS]
    applies = len(in_regime) >= 3
    problems = figures.check_figure1_shape(in_regime) if applies else []
    return {
        "series": {name: [[nodes, round(ms, 4)] for nodes, ms in pts]
                   for name, pts in figures.series_points(kron_rows).items()},
        "points": len(kron_rows),
        "points_in_regime": len(in_regime),
        "applies": applies,
        "shape_problems": problems,
        "ok": not problems,
    }


def _serve_section(exp, preset: Preset, seed: int) -> dict:
    rep = report_doc(exp.report)
    win = exp.cache_service_win
    checks = [
        _check("serve_no_lost_jobs", rep["lost"] == 0,
               f"{rep['lost']} job(s) lost in the primary replay"),
        _check("serve_fault_retried", rep["faults"] >= 1,
               "the injected device fault must surface in the metrics"),
        _check("serve_cache_wins", win >= 0.99,
               f"cache-on service time must not exceed cache-off "
               f"(win {win:.3f}x)"),
    ]
    return {
        "config": {"fleet": "gtx980x4",
                   "duration_ms": preset.serve_duration_ms,
                   "rate_per_s": 2.0, "seed": seed},
        "report": rep,
        "report_nocache": report_doc(exp.report_nocache),
        "cache_service_win": round(win, 4),
        "fault_device": exp.fault_device,
        "fault_at_ms": round(exp.fault_at_ms, 4),
        "checks": checks,
        "ok": all(c["passed"] for c in checks),
    }


def _serve_scale_section(res, preset: Preset) -> dict:
    from repro.bench.serve_scale import baseline_problems

    doc = res.doc()
    plane = doc["plane_replay"]
    checks = [
        _check("plane_no_lost_jobs", plane["lost"] == 0,
               f"plane replay lost {plane['lost']} job(s)"),
        _check("plane_all_answered", plane["unanswered"] == 0,
               f"plane replay left {plane['unanswered']} job(s) unanswered"),
        _check("exact_identical", doc["exact_identical"],
               "plane exact answers must match the seed replay bit for bit"),
    ]
    drift: list[str] = []
    if preset.compare_baselines and os.path.exists(SERVE_BASELINE):
        with open(SERVE_BASELINE) as fh:
            drift = baseline_problems(doc, json.load(fh))
        checks.append(_check(
            "serve_baseline_drift", not drift,
            "; ".join(drift) or f"within tolerance of {SERVE_BASELINE}"))
    return {"doc": doc, "baseline_problems": drift, "checks": checks,
            "ok": all(c["passed"] for c in checks)}


def _wallclock_section(report, preset: Preset) -> dict:
    from repro.bench.wallclock import baseline_problems

    identical = all(r.identical for r in report.rows)
    checks = [
        _check("engines_identical", identical,
               "compacted and lockstep must agree on counts and counters"),
        # Detail stays value-free: the measured ratio is host-dependent
        # and lives under the volatile ``min_speedup`` key in ``doc``.
        _check("compacted_not_slower", report.min_speedup >= 1.0,
               "min compacted-vs-lockstep speedup must be >= 1.0 "
               "(measured value: doc.rows[*].speedup)"),
    ]
    drift: list[str] = []
    if preset.compare_baselines and os.path.exists(KERNEL_BASELINE):
        with open(KERNEL_BASELINE) as fh:
            drift = baseline_problems(report, json.load(fh))
        checks.append(_check(
            "wallclock_baseline_drift", not drift,
            "; ".join(drift) or f"within tolerance of {KERNEL_BASELINE}"))
    return {"doc": report.to_json(), "baseline_problems": drift,
            "checks": checks, "ok": all(c["passed"] for c in checks)}


def _analyze_section(analysis) -> dict:
    """Static-analyzer cleanliness of the checkout the bundle ran from."""
    checks = [
        _check("analyzer_clean", analysis.ok,
               f"{len(analysis.new)} new finding(s), "
               f"{len(analysis.stale)} stale baseline entr(y/ies), "
               f"{len(analysis.errors)} parse error(s) over "
               f"{analysis.files} file(s) "
               f"[{len(analysis.matched)} baselined]"),
    ]
    return {"doc": analysis.to_json(), "checks": checks,
            "ok": all(c["passed"] for c in checks)}


def _tune_section(sweep_report: SweepReport, tuned_path: str) -> dict:
    """Autotune results + the round-trip check into the serve loader."""
    tuned_doc = sweep_report.tuned_doc()
    checks = []
    try:
        tuned = TunedConfigs.load(tuned_path)
        missing = [d for d in tuned_doc["devices"]
                   if tuned.entry_for(d) is None]
        checks.append(_check(
            "tuned_roundtrip", not missing,
            f"serve-side loader must resolve every tuned device "
            f"(missing: {missing})" if missing else
            f"serve-side loader resolves all "
            f"{len(tuned_doc['devices'])} tuned device(s)"))
    except Exception as exc:   # noqa: BLE001 — verdict, not control flow
        checks.append(_check("tuned_roundtrip", False,
                             f"TunedConfigs.load failed: {exc}"))
    # The paper lands on 64x8 (512 threads/SM) and reports all ~512/SM
    # geometries equivalent; when the grid contains that point, the
    # winner must not beat it by more than 10%.
    best = sweep_report.best_per_device()
    for device, row in sorted(best.items()):
        paper_point = [r for r in sweep_report.rows
                       if r.point.device == device
                       and r.point.kernel == row.point.kernel
                       and r.point.engine == row.point.engine
                       and r.point.scale == row.point.scale
                       and (r.point.threads_per_block,
                            r.point.blocks_per_sm) == (64, 8)]
        if paper_point:
            ratio = paper_point[0].kernel_ms / max(row.kernel_ms, 1e-12)
            checks.append(_check(
                f"paper_launch_competitive_{device}", ratio <= 1.10,
                f"64x8 is {ratio:.3f}x the best point "
                f"({row.point.threads_per_block}x"
                f"{row.point.blocks_per_sm}) on {device}"))
    return {
        "doc": tuned_doc,
        "rows": [{"point": r.point.label(),
                  "kernel_ms": round(r.kernel_ms, 4),
                  "host_s": round(r.host_s, 4),
                  "triangles": r.triangles} for r in sweep_report.rows],
        "skipped": [{"point": p.label(), "reason": reason}
                    for p, reason in sweep_report.skipped],
        "checks": checks,
        "ok": all(c["passed"] for c in checks),
    }


# ---------------------------------------------------------------------- #
# the bundle
# ---------------------------------------------------------------------- #

@dataclass
class ReproduceResult:
    """Everything one reproduction run produced."""

    summary: dict
    report_md: str
    out_dir: str
    files: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.summary.get("ok"))


def _resolve_sweep(preset: Preset, seed: int,
                   config_path: str | None) -> tuple[SweepConfig, str]:
    """The sweep to run: an explicit ``--config`` wins; the full preset
    picks up the committed ``configs/sweep.toml``; otherwise the
    preset's built-in grid."""
    if config_path:
        return load_sweep_config(config_path), config_path
    if preset.compare_baselines and os.path.exists("configs/sweep.toml"):
        return load_sweep_config("configs/sweep.toml"), "configs/sweep.toml"
    return SweepConfig(
        name=f"reproduce-{preset.name}", workload="kron17", seed=seed,
        objective="kernel_ms", devices=("gtx980", "c2050"),
        kernels=("merge", "warp_intersect"), engines=("compacted",),
        threads_per_block=preset.sweep_tpb, blocks_per_sm=preset.sweep_bps,
        scales=(1.0,)), "<built-in>"


def run_reproduce(preset_name: str = "full", seed: int = 0,
                  out_dir: str = "artifacts",
                  config_path: str | None = None,
                  verbose: bool = True) -> ReproduceResult:
    """Run every experiment of the preset and write the artifact set."""
    if preset_name not in PRESETS:
        raise ValueError(f"unknown preset {preset_name!r} "
                         f"(valid: {', '.join(PRESETS)})")
    preset = PRESETS[preset_name]

    def say(msg: str) -> None:
        if verbose:
            print(msg, flush=True)

    with scaled(preset.factor):
        sweep_config, sweep_source = _resolve_sweep(preset, seed,
                                                    config_path)
        manifest = environment_manifest(preset, seed, sweep_config,
                                        sweep_source)
        say(f"[reproduce] preset={preset.name} seed={seed} "
            f"env_scale={manifest['env_scale']:g} -> {out_dir}/")

        say("[reproduce] table1/table2/figure1 ...")
        names = list(preset.table1_workloads or [])
        rows = run_table1(names or None, seed=seed, configs=preset.configs,
                          verbose=verbose)
        kron = set(kronecker_names())
        kron_rows = [r for r in rows if r.workload.name in kron]

        say("[reproduce] serve ...")
        from repro.bench.experiments import serve_experiment
        exp = serve_experiment(duration_ms=preset.serve_duration_ms,
                               seed=seed)

        say("[reproduce] serve-scale ...")
        res = run_serve_scale(duration_ms=preset.serve_scale_duration_ms,
                              seed=seed)

        say("[reproduce] wallclock ...")
        wc = run_wallclock(preset.wallclock_rows,
                           repeats=preset.wallclock_repeats, seed=seed,
                           progress=(lambda r: say("  " + r.summary()))
                           if verbose else None)

        say(f"[reproduce] autotune sweep ({sweep_source}) ...")
        sweep_report = run_sweep(sweep_config)

        say("[reproduce] static analysis ...")
        from repro.analyze.run import run_repo_analysis
        analysis = run_repo_analysis()

        os.makedirs(out_dir, exist_ok=True)
        tuned_path = os.path.join(out_dir, "tuned.json")
        sweep_report.write_tuned(tuned_path)

        sections = {
            "table1": _table1_section(rows),
            "figure1": _figure1_section(kron_rows),
            "serve": _serve_section(exp, preset, seed),
            "serve_scale": _serve_scale_section(res, preset),
            "wallclock": _wallclock_section(wc, preset),
            "tune": _tune_section(sweep_report, tuned_path),
            "analyze": _analyze_section(analysis),
        }
        summary = {
            "format": SUMMARY_FORMAT,
            "manifest": manifest,
            "sections": sections,
            "volatile_keys": sorted(VOLATILE_KEYS),
            "ok": all(s["ok"] for s in sections.values()),
        }

        report_md = render_report(summary, rows, kron_rows, exp, res, wc,
                                  sweep_report)
        files = _write_artifacts(out_dir, summary, report_md, rows,
                                 kron_rows, exp, res, wc, analysis)
    result = ReproduceResult(summary=summary, report_md=report_md,
                             out_dir=out_dir, files=files)
    say(f"[reproduce] {'PASS' if result.ok else 'FAIL'}: "
        f"{len(files)} artifact(s) in {out_dir}/")
    return result


def _write_artifacts(out_dir, summary, report_md, rows, kron_rows, exp,
                     res, wc, analysis) -> list[str]:
    content = {
        "manifest.json": _dumps(summary["manifest"]),
        "summary.json": _dumps(summary),
        "report.md": report_md,
        "table1.csv": tables.table1_csv(rows),
        "figure1.csv": figures.figure1_csv(kron_rows),
        "BENCH_kernel.json": wc.json_str(),
        "BENCH_serve.json": res.json_str(),
        "serve_jobs.csv": exp.report.jobs_csv(),
        "analysis.sarif": analysis.sarif,
        # tuned.json already written by SweepReport.write_tuned.
    }
    files = []
    for filename, text in content.items():
        path = os.path.join(out_dir, filename)
        with open(path, "w") as fh:
            fh.write(text)
        files.append(path)
    return sorted(files + [os.path.join(out_dir, "tuned.json")])


def render_report(summary, rows, kron_rows, exp, res, wc,
                  sweep_report: SweepReport) -> str:
    """The human-readable ``report.md``."""
    m = summary["manifest"]
    s = summary["sections"]
    out = io.StringIO()
    out.write("# Reproduction report — Counting Triangles in Large "
              "Graphs on GPU\n\n")
    out.write(f"**Verdict: {'PASS' if summary['ok'] else 'FAIL'}** — "
              "every number below is from the simulated substrate at "
              "mini scale; see ARTIFACTS.md for schemas.\n\n")

    out.write("## Manifest\n\n")
    for key in ("generated_at", "git_sha", "python", "numpy", "platform",
                "preset", "scale_factor", "env_scale"):
        out.write(f"- `{key}`: `{m[key]}`\n")
    out.write(f"- seeds: `{json.dumps(m['seeds'], sort_keys=True)}`\n")
    out.write(f"- sweep config: `{m['sweep_config']['source']}` "
              f"(`{m['sweep_config']['name']}` on "
              f"`{m['sweep_config']['workload']}`)\n\n")

    def verdict(section):
        return "PASS" if section["ok"] else "FAIL"

    out.write(f"## Table I / Table II — {verdict(s['table1'])}\n\n")
    out.write("```text\n" + tables.render_table1(rows) + "\n```\n\n")
    out.write("```text\n" + tables.render_table2(rows) + "\n```\n\n")
    applicable = [c for c in s["table1"]["band_checks"] if c["applies"]]
    failed = [c for c in applicable if not c["passed"]]
    out.write(f"Band checks: {len(applicable)} applicable, "
              f"{len(applicable) - len(failed)} passed.\n")
    for c in failed:
        out.write(f"- FAIL `{c['name']}`: {c['detail']}\n")
    for p in s["table1"]["dagger_problems"]:
        out.write(f"- FAIL dagger pattern: {p}\n")
    out.write("\n")

    out.write(f"## Figure 1 — {verdict(s['figure1'])}\n\n")
    out.write("```text\n" + figures.render_figure1(kron_rows) + "```\n\n")
    if not s["figure1"]["applies"]:
        out.write(f"Shape checks skipped: only "
                  f"{s['figure1']['points_in_regime']} point(s) above the "
                  f"fixed-overhead regime at this scale.\n")
    for p in s["figure1"]["shape_problems"]:
        out.write(f"- FAIL shape: {p}\n")
    out.write("\n")

    out.write(f"## Serving — {verdict(s['serve'])}\n\n")
    out.write("```text\n" + exp.report.format_report() + "\n```\n\n")
    out.write(exp.summary() + "\n\n")

    out.write(f"## Serve-scale (overload) — {verdict(s['serve_scale'])}\n\n")
    out.write(res.summary() + "\n\n")

    out.write(f"## Engine wall-clock — {verdict(s['wallclock'])}\n\n")
    out.write("```text\n" + wc.format_report() + "```\n\n")

    out.write(f"## Autotune — {verdict(s['tune'])}\n\n")
    out.write("```text\n" + sweep_report.summary() + "\n```\n\n")

    out.write(f"## Static analysis — {verdict(s['analyze'])}\n\n")
    a = s["analyze"]["doc"]
    out.write(f"{a['files']} file(s) analyzed; {len(a['new'])} new "
              f"finding(s), {a['baselined']} baselined "
              f"(`{a['baseline']}`), {len(a['stale'])} stale baseline "
              "entr(y/ies); full SARIF log in `analysis.sarif`.\n\n")

    for name, section in s.items():
        for c in section.get("checks", []):
            mark = "x" if c["passed"] else " "
            out.write(f"- [{mark}] `{name}.{c['name']}`\n")
    out.write("\n## Artifacts\n\n")
    out.write("| file | producer | description |\n|---|---|---|\n")
    for filename, (producer, desc) in ARTIFACT_FILES.items():
        out.write(f"| `{filename}` | `{producer}` | {desc} |\n")
    return out.getvalue()


# ---------------------------------------------------------------------- #
# CLI (scripts/reproduce_all and ``repro-bench reproduce``)
# ---------------------------------------------------------------------- #

def build_parser(prog: str = "reproduce_all") -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog=prog,
        description="Regenerate every artifact of the reproduction in "
                    "one run (see ARTIFACTS.md).")
    p.add_argument("--scale", choices=sorted(PRESETS), default="full",
                   help="preset: 'tiny' is the CI smoke profile, 'full' "
                        "reproduces the committed artifacts "
                        "(default: %(default)s)")
    p.add_argument("--seed", type=int, default=0,
                   help="RNG seed for every experiment (default: 0)")
    p.add_argument("--out-dir", default="artifacts", metavar="DIR",
                   help="artifact output directory (default: %(default)s)")
    p.add_argument("--config", metavar="FILE",
                   help="sweep config (TOML/JSON) for the autotune stage "
                        "(default: configs/sweep.toml for --scale full, "
                        "a built-in grid otherwise)")
    p.add_argument("-q", "--quiet", action="store_true",
                   help="suppress progress output")
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    result = run_reproduce(preset_name=args.scale, seed=args.seed,
                           out_dir=args.out_dir, config_path=args.config,
                           verbose=not args.quiet)
    for path in result.files:
        print(f"  wrote {path}")
    print(f"reproduce: {'PASS' if result.ok else 'FAIL'} "
          f"(summary: {os.path.join(result.out_dir, 'summary.json')})")
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())

"""Experiment runner: one Table I row = CPU + C2050 + 4×C2050 + GTX 980.

Scaling policy (DESIGN.md §6 and EXPERIMENTS.md): workloads run at their
mini ``scale``; each simulated device's *capacity-bound* resources
(global memory, L2) shrink by the **measured arc ratio**
``arcs(mini) / arcs(paper)`` so footprint/capacity matches the full-size
experiment — this is what re-triggers the paper's ``†`` fallback on the
3 GB C2050 for the Orkut and Kronecker-21 rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.forward_gpu import GpuRunResult, gpu_count_triangles
from repro.core.multi_gpu import multi_gpu_count_triangles
from repro.core.options import GpuOptions
from repro.cpu.forward import ForwardCpuResult, forward_count_cpu
from repro.errors import ReproError
from repro.graphs.datasets import WORKLOADS, Workload, get
from repro.graphs.edgearray import EdgeArray
from repro.gpusim.device import GTX_980, TESLA_C2050, DeviceSpec
from repro.gpusim.memory import DeviceMemory
from repro.gpusim.multigpu import MultiGpuContext
from repro.utils import env_scale


@dataclass
class RowResult:
    """Measured Table I row (plus its Table II columns), with the
    published numbers alongside."""

    workload: Workload
    scale: float
    num_nodes: int
    num_arcs: int
    triangles: int
    cpu: ForwardCpuResult
    c2050: GpuRunResult | None = None
    quad: GpuRunResult | None = None
    gtx980: GpuRunResult | None = None

    # ------------------------------------------------------------------ #
    # Table I cells
    # ------------------------------------------------------------------ #

    @property
    def cpu_ms(self) -> float:
        return self.cpu.elapsed_ms

    @property
    def c2050_speedup(self) -> float:
        return self.cpu_ms / self.c2050.total_ms if self.c2050 else 0.0

    @property
    def quad_speedup(self) -> float:
        """4-GPU over 1-GPU speedup (the paper's second speedup column)."""
        if not (self.c2050 and self.quad):
            return 0.0
        return self.c2050.total_ms / self.quad.total_ms

    @property
    def gtx980_speedup(self) -> float:
        return self.cpu_ms / self.gtx980.total_ms if self.gtx980 else 0.0

    # ------------------------------------------------------------------ #
    # Table II cells
    # ------------------------------------------------------------------ #

    @property
    def cache_hit_pct(self) -> float:
        return 100.0 * self.gtx980.cache_hit_rate if self.gtx980 else 0.0

    @property
    def bandwidth_gbs(self) -> float:
        return self.gtx980.bandwidth_gbs if self.gtx980 else 0.0

    @property
    def dagger_c2050(self) -> bool:
        return bool(self.c2050 and self.c2050.used_cpu_fallback)

    @property
    def dagger_quad(self) -> bool:
        return bool(self.quad and self.quad.used_cpu_fallback)


def scaled_device(device: DeviceSpec, graph: EdgeArray,
                  workload: Workload) -> DeviceSpec:
    """Shrink capacity-bound resources by the measured arc ratio."""
    ratio = graph.num_arcs / workload.paper.arcs
    if not (0 < ratio <= 1):
        raise ReproError(
            f"workload {workload.name} built larger than the paper's graph "
            f"({graph.num_arcs} vs {workload.paper.arcs} arcs)")
    return device.scaled(ratio)


def run_workload(name: str,
                 scale: float | None = None,
                 seed: int = 0,
                 configs: tuple[str, ...] = ("c2050", "quad", "gtx980"),
                 options: GpuOptions = GpuOptions()) -> RowResult:
    """Measure one Table I row.

    Parameters
    ----------
    name : str
        Workload registry name.
    scale : float, optional
        Override the workload's mini scale (default:
        ``default_scale × REPRO_SCALE``).
    configs : tuple of str
        Which device configurations to run, among {"c2050", "quad",
        "gtx980"}; the CPU baseline always runs (it's the denominator).
    """
    w = get(name)
    if scale is None:
        scale = w.default_scale * env_scale()
    graph = w.build(scale=scale, seed=seed)

    cpu = forward_count_cpu(graph)
    row = RowResult(workload=w, scale=scale, num_nodes=graph.num_nodes,
                    num_arcs=graph.num_arcs, triangles=cpu.triangles,
                    cpu=cpu)

    if "c2050" in configs:
        dev = scaled_device(TESLA_C2050, graph, w)
        row.c2050 = gpu_count_triangles(graph, device=dev,
                                        memory=DeviceMemory(dev),
                                        options=options)
        _check(row.c2050.triangles, cpu.triangles, name, "c2050")
    if "quad" in configs:
        dev = scaled_device(TESLA_C2050, graph, w)
        row.quad = multi_gpu_count_triangles(
            graph, device=dev, num_gpus=4, options=options,
            context=MultiGpuContext(dev, 4))
        _check(row.quad.triangles, cpu.triangles, name, "quad")
    if "gtx980" in configs:
        dev = scaled_device(GTX_980, graph, w)
        row.gtx980 = gpu_count_triangles(graph, device=dev,
                                         memory=DeviceMemory(dev),
                                         options=options)
        _check(row.gtx980.triangles, cpu.triangles, name, "gtx980")
    return row


def _check(got: int, want: int, name: str, config: str) -> None:
    if got != want:
        raise ReproError(
            f"{name}/{config} counted {got} triangles, CPU says {want}")


def run_table1(names: list[str] | None = None,
               seed: int = 0,
               configs: tuple[str, ...] = ("c2050", "quad", "gtx980"),
               verbose: bool = True) -> list[RowResult]:
    """Measure every requested Table I row (all 13 by default)."""
    rows = []
    for name in names or list(WORKLOADS):
        if verbose:
            print(f"[table1] running {name} ...", flush=True)
        rows.append(run_workload(name, seed=seed, configs=configs))
    return rows

"""``repro-bench serve-scale`` — the control-plane overload bench.

Replays one deterministic overload trace twice against the same fleet
and the same failure schedule:

* **seed replay** — the plain :class:`~repro.serve.scheduler.FleetScheduler`
  (``plane=None``), exactly the pre-plane serving stack;
* **plane replay** — the same scheduler with a
  :class:`~repro.serve.plane.ControlPlane` installed (admission,
  batching, replica groups, degraded tier).

Overload here is *capacity collapse*: the trace runs at
``rate_multiplier`` × the baseline zipf rate (10× by default, bursty)
while the failure schedule kills every device partway through the
window.  Once the fleet is dead the seed scheduler can only strand the
remaining jobs — they end shed-without-an-answer (previously ``lost``).
The plane answers every one of them on the approximate degraded tier
with an explicit error bound, so the plane replay finishes with **zero
lost and zero unanswered jobs** and a bounded p99, while its exact
answers stay bit-identical to the seed replay's.

The committed ``BENCH_serve.json`` pins those properties; the CI
``serve-scale`` job regenerates the bench and fails when the plane
replay loses a job, breaks exact-answer identity, or drifts its p99
beyond the tolerance of the committed baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.serve import (ControlPlane, Fleet, PlaneConfig, ServeReport,
                         TraceConfig, build_graph_pool, generate_trace,
                         serve_trace, size_fleet_memory)
from repro.serve.queue import TIER_APPROX
from repro.utils import human_ms

#: Failure schedule: device ``i`` of ``n`` dies at
#: ``duration × (FAIL_FIRST + i · (FAIL_LAST − FAIL_FIRST)/(n−1))``,
#: so the whole fleet is dead with a third of the trace still arriving.
FAIL_FIRST = 0.20
FAIL_LAST = 0.65


def report_doc(rep: ServeReport) -> dict:
    """JSON-ready metrics of one :class:`ServeReport` (simulated numbers
    only — deterministic for a fixed trace; shared with the
    reproduction bundle's summary)."""
    return {
        "jobs": len(rep.jobs),
        "done": len(rep.done),
        "done_exact": len([j for j in rep.done
                           if j.tier != TIER_APPROX]),
        "degraded": len(rep.degraded),
        "shed_unanswered": len(rep.shed),
        "lost": len(rep.lost),
        "unanswered": len(rep.shed) + len(rep.lost),
        "faults": rep.faults,
        "fallbacks": rep.fallbacks,
        "deadline_misses": rep.deadline_misses,
        "p50_ms": rep.p50_ms,
        "p95_ms": rep.p95_ms,
        "p99_ms": rep.p99_ms,
        "cache_hit_rate": rep.cache_hit_rate,
        "launches": rep.launches,
        "batched_launches": rep.batched_launches,
        "batched_jobs": rep.batched_jobs,
        "replications": rep.replications,
        "approx_mean_rel_error": rep.approx_mean_rel_error,
    }


def failure_schedule(num_devices: int,
                     duration_ms: float) -> list[tuple[int, float]]:
    """Staggered whole-fleet failure times, ``(device_index, at_ms)``."""
    if num_devices == 1:
        return [(0, duration_ms * FAIL_FIRST)]
    step = (FAIL_LAST - FAIL_FIRST) / (num_devices - 1)
    return [(i, duration_ms * (FAIL_FIRST + i * step))
            for i in range(num_devices)]


@dataclass
class ServeScaleResult:
    """Both replays of the overload trace plus the identity verdict."""

    fleet_spec: str
    duration_ms: float
    rate_per_s: float
    rate_multiplier: float
    burst: float
    seed: int
    schedule: list[tuple[int, float]]
    seed_report: ServeReport
    plane_report: ServeReport
    #: exact answers bit-identical across replays (shared job ids).
    identical: bool = True
    mismatched_ids: list[int] = field(default_factory=list)

    # ------------------------------------------------------------------ #

    @staticmethod
    def _report_doc(rep: ServeReport) -> dict:
        return report_doc(rep)

    def doc(self) -> dict:
        """JSON-ready document (the committed ``BENCH_serve.json``)."""
        return {
            "bench": "serve-scale",
            "config": {
                "fleet": self.fleet_spec,
                "duration_ms": self.duration_ms,
                "rate_per_s": self.rate_per_s,
                "rate_multiplier": self.rate_multiplier,
                "burst": self.burst,
                "seed": self.seed,
                "failure_schedule": [[i, ms] for i, ms in self.schedule],
            },
            "seed_replay": self._report_doc(self.seed_report),
            "plane_replay": self._report_doc(self.plane_report),
            "exact_identical": self.identical,
            "mismatched_ids": self.mismatched_ids,
        }

    def json_str(self) -> str:
        return json.dumps(self.doc(), indent=2, sort_keys=True) + "\n"

    def summary(self) -> str:
        s, p = self.seed_report, self.plane_report
        return (f"{len(s.jobs)} jobs @ {self.rate_multiplier:g}x: "
                f"seed leaves {len(s.shed) + len(s.lost)} unanswered "
                f"(p99 {human_ms(s.p99_ms)}); plane answers all "
                f"({len(p.degraded)} approx, {len(p.lost)} lost, "
                f"p99 {human_ms(p.p99_ms)}), exact answers "
                f"{'identical' if self.identical else 'MISMATCHED'}")


def run_serve_scale(fleet_spec: str = "gtx980x4",
                    duration_ms: float = 30_000.0,
                    rate_per_s: float = 2.0,
                    rate_multiplier: float = 10.0,
                    burst: float = 4.0,
                    seed: int = 0,
                    plane_config: PlaneConfig | None = None
                    ) -> ServeScaleResult:
    """Run the overload bench (both replays share trace + failures)."""
    if rate_multiplier < 1.0:
        raise ReproError(
            f"serve-scale is an overload bench; rate_multiplier must be "
            f">= 1, got {rate_multiplier}")
    config = TraceConfig(seed=seed, duration_ms=duration_ms,
                         rate_per_s=rate_per_s,
                         rate_multiplier=rate_multiplier, burst=burst)
    pool = build_graph_pool(config)
    probe = Fleet.parse(fleet_spec)
    weakest = min(probe, key=lambda d: d.spec.memory_bytes)
    memory = size_fleet_memory(pool, config, weakest.spec)
    schedule = failure_schedule(len(probe), duration_ms)

    def replay(plane: ControlPlane | None) -> ServeReport:
        fleet = Fleet.parse(fleet_spec, memory_bytes=memory)
        for index, at_ms in schedule:
            fleet.inject_failure(index, at_ms)
        return serve_trace(fleet, generate_trace(config, pool),
                           plane=plane)

    seed_report = replay(None)
    plane_report = replay(ControlPlane(plane_config or PlaneConfig()))

    truth = {j.job_id: j.triangles for j in seed_report.done}
    mismatched = [j.job_id for j in plane_report.done
                  if j.tier != TIER_APPROX and j.job_id in truth
                  and j.triangles != truth[j.job_id]]
    return ServeScaleResult(
        fleet_spec=fleet_spec, duration_ms=duration_ms,
        rate_per_s=rate_per_s, rate_multiplier=rate_multiplier,
        burst=burst, seed=seed, schedule=schedule,
        seed_report=seed_report, plane_report=plane_report,
        identical=not mismatched, mismatched_ids=mismatched)


def baseline_problems(doc: dict, baseline: dict,
                      p99_tolerance: float = 1.2) -> list[str]:
    """Regressions of a fresh serve-scale ``doc()`` vs the committed one.

    Flags: any plane-replay job lost or left unanswered, broken
    exact-answer identity, plane p99 drifting more than
    ``p99_tolerance`` × the committed p99, and config mismatches (a
    changed config makes the comparison meaningless — regenerate the
    baseline deliberately instead).
    """
    problems = []
    cur_cfg, base_cfg = doc.get("config", {}), baseline.get("config", {})
    for key in ("fleet", "duration_ms", "rate_per_s", "rate_multiplier",
                "burst", "seed"):
        if cur_cfg.get(key) != base_cfg.get(key):
            problems.append(
                f"config mismatch on {key!r}: {cur_cfg.get(key)!r} vs "
                f"baseline {base_cfg.get(key)!r}")
    plane = doc.get("plane_replay", {})
    if plane.get("lost", 1):
        problems.append(f"plane replay lost {plane.get('lost')} job(s)")
    if plane.get("unanswered", 1):
        problems.append(
            f"plane replay left {plane.get('unanswered')} job(s) "
            f"unanswered")
    if not doc.get("exact_identical", False):
        problems.append(
            f"exact answers diverged from the seed replay "
            f"(ids {doc.get('mismatched_ids')})")
    base_p99 = baseline.get("plane_replay", {}).get("p99_ms")
    cur_p99 = plane.get("p99_ms")
    if base_p99 and cur_p99 is not None and cur_p99 > base_p99 * p99_tolerance:
        problems.append(
            f"plane p99 regressed: {cur_p99:.3f} ms vs committed "
            f"{base_p99:.3f} ms (tolerance {p99_tolerance:g}x)")
    return problems

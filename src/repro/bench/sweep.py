"""Scale-convergence sweep (E16): does mini scale approach the paper?

The whole reproduction rests on the claim that the mini-scale
distortions (EXPERIMENTS.md) shrink as `scale` grows.  This experiment
*tests the methodology itself*: run one workload at a ladder of scales
and check that the dimensionless observables — GPU speedup, cache hit
rate, preprocessing fraction — move monotonically toward the paper's
full-scale values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.runner import run_workload
from repro.errors import WorkloadError
from repro.graphs.datasets import get


@dataclass(frozen=True)
class SweepPoint:
    scale: float
    num_arcs: int
    gtx980_speedup: float
    cache_hit_pct: float
    preprocessing_fraction: float


@dataclass
class SweepResult:
    workload_name: str
    points: list[SweepPoint] = field(default_factory=list)

    @property
    def paper(self):
        return get(self.workload_name).paper

    def deltas(self, attr: str, target: float) -> list[float]:
        """|measured − paper| per point, ascending scale."""
        return [abs(getattr(p, attr) - target) for p in self.points]

    def converges(self, attr: str, target: float,
                  tolerance: float = 0.15) -> bool:
        """Does the distance to the paper's value shrink overall?

        Compares first vs last point with a tolerance for one-step
        noise (generator variance across scales).
        """
        d = self.deltas(attr, target)
        if len(d) < 2:
            return True
        return d[-1] <= d[0] * (1.0 + tolerance)

    def summary(self) -> str:
        paper = self.paper
        lines = [f"scale sweep — {self.workload_name} "
                 f"(paper: GTX {paper.gtx980_speedup}x, "
                 f"hit {paper.cache_hit_pct}%)"]
        for p in self.points:
            lines.append(
                f"  scale {p.scale:<10.6f} arcs {p.num_arcs:>8,} : "
                f"GTX {p.gtx980_speedup:6.1f}x, hit {p.cache_hit_pct:5.1f}%, "
                f"preproc {p.preprocessing_fraction:.2f}")
        return "\n".join(lines)


def scale_sweep(name: str,
                scales: tuple[float, ...] | None = None,
                seed: int = 0) -> SweepResult:
    """Measure one workload's GTX 980 row at a ladder of scales."""
    w = get(name)
    if scales is None:
        base = w.default_scale
        scales = (base / 4, base / 2, base)
    if any(s <= 0 or s > 1 for s in scales):
        raise WorkloadError(f"scales must lie in (0, 1], got {scales}")

    result = SweepResult(workload_name=name)
    for scale in sorted(scales):
        row = run_workload(name, scale=scale, seed=seed,
                           configs=("gtx980",))
        result.points.append(SweepPoint(
            scale=scale,
            num_arcs=row.num_arcs,
            gtx980_speedup=row.gtx980_speedup,
            cache_hit_pct=row.cache_hit_pct,
            preprocessing_fraction=row.gtx980.timeline.preprocessing_fraction,
        ))
    return result

"""Config-file experiment sweeps: the declarative grid schema.

A sweep is a TOML (or JSON) file describing a full experiment grid —
launch geometry × kernel × engine × scale per device — that the
autotuner (:mod:`repro.bench.autotune`) measures point by point.  The
point of declarativity (the Wang/Owens comparative-study lesson, see
PAPERS.md) is that a kernel/launch choice only means something when the
whole grid it won is regenerable from one committed file:
``configs/sweep.toml`` is that file, and ``configs/tuned.json`` is its
winning-per-device output, which the serve scheduler consumes
(:mod:`repro.serve.tuned`).

Schema (annotated example in ``docs/reproducibility.md``)::

    [sweep]
    name = "paper-grid"        # free-form label (stamped into tuned.json)
    workload = "kron17"        # graphs.datasets registry name
    seed = 0                   # graph-build RNG seed
    objective = "kernel_ms"    # "kernel_ms" (simulated) | "host_s" (wall)

    [grid]                     # every list is one grid axis
    device = ["gtx980", "c2050"]
    kernel = ["merge", "warp_intersect"]
    engine = ["compacted"]
    threads_per_block = [32, 64, 256, 1024]
    blocks_per_sm = [1, 2, 8, 16]
    scale = [1.0]              # multiplier on the workload default scale

    [emit]
    tuned = "configs/tuned.json"   # optional: where autotune writes winners

Every schema violation raises a typed
:class:`~repro.errors.SweepConfigError` whose ``key`` attribute names
the offending entry (``"grid.kernel"``, ``"sweep.objective"``, ...) —
never a silent default, never a bare ``KeyError``.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass

from repro.errors import SweepConfigError
from repro.gpusim.device import DEVICES

#: Kernels a sweep may grid over: the registry names whose launches go
#: through the plain counting pipeline (``local`` needs the per-vertex
#: accumulator path and is not a tuning candidate).
SWEEP_KERNELS = ("merge", "warp_intersect")
#: Host engines (pure wall-clock knob; simulated numbers are identical).
SWEEP_ENGINES = ("compacted", "lockstep")
#: Autotune objectives: simulated kernel milliseconds (deterministic) or
#: measured host seconds of the same run (machine-dependent).
OBJECTIVES = ("kernel_ms", "host_s")


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the expanded grid."""

    device: str
    kernel: str
    engine: str
    threads_per_block: int
    blocks_per_sm: int
    scale: float

    def label(self) -> str:
        return (f"{self.device}/{self.kernel}/{self.engine} "
                f"{self.threads_per_block}x{self.blocks_per_sm} "
                f"scale={self.scale:g}")


@dataclass(frozen=True)
class SweepConfig:
    """A validated sweep file (see the module docstring for the schema)."""

    name: str
    workload: str
    seed: int
    objective: str
    devices: tuple[str, ...]
    kernels: tuple[str, ...]
    engines: tuple[str, ...]
    threads_per_block: tuple[int, ...]
    blocks_per_sm: tuple[int, ...]
    scales: tuple[float, ...]
    emit_tuned: str | None = None

    def points(self) -> list[SweepPoint]:
        """Expand the full grid, in deterministic axis order."""
        return [SweepPoint(d, k, e, tpb, bps, s)
                for d, k, e, tpb, bps, s in itertools.product(
                    self.devices, self.kernels, self.engines,
                    self.threads_per_block, self.blocks_per_sm,
                    self.scales)]

    def doc(self) -> dict:
        """JSON-ready echo of the config (stamped into tuned.json)."""
        return {
            "name": self.name,
            "workload": self.workload,
            "seed": self.seed,
            "objective": self.objective,
            "grid": {
                "device": list(self.devices),
                "kernel": list(self.kernels),
                "engine": list(self.engines),
                "threads_per_block": list(self.threads_per_block),
                "blocks_per_sm": list(self.blocks_per_sm),
                "scale": list(self.scales),
            },
        }


# ---------------------------------------------------------------------- #
# parsing
# ---------------------------------------------------------------------- #

_SWEEP_KEYS = ("name", "workload", "seed", "objective")
_GRID_KEYS = ("device", "kernel", "engine", "threads_per_block",
              "blocks_per_sm", "scale")
_EMIT_KEYS = ("tuned",)


def _parse_toml_value(raw: str, key: str):
    """One scalar or flat array (the fallback parser's value grammar)."""
    raw = raw.strip()
    if raw.startswith("[") and raw.endswith("]"):
        inner = raw[1:-1].strip()
        if not inner:
            return []
        return [_parse_toml_value(part, key)
                for part in inner.split(",") if part.strip()]
    if (raw.startswith('"') and raw.endswith('"') and len(raw) >= 2) or \
       (raw.startswith("'") and raw.endswith("'") and len(raw) >= 2):
        return raw[1:-1]
    if raw in ("true", "false"):
        return raw == "true"
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        raise SweepConfigError(key, f"cannot parse TOML value {raw!r}")


def _strip_comment(raw: str) -> str:
    """Drop a trailing ``#`` comment, honouring quoted strings."""
    quote = None
    for i, ch in enumerate(raw):
        if quote:
            if ch == quote:
                quote = None
        elif ch in ('"', "'"):
            quote = ch
        elif ch == "#":
            return raw[:i]
    return raw


def _parse_toml_minimal(text: str) -> dict:
    """Flat-table TOML subset: ``[section]`` headers, ``key = value``
    lines, scalars and one-line arrays, ``#`` comments.

    Python 3.11+ uses the stdlib :mod:`tomllib`; this fallback keeps the
    sweep schema loadable on 3.10 without adding a dependency (the
    schema deliberately needs nothing deeper).
    """
    doc: dict = {}
    section = doc
    section_name = ""
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.startswith("[") and stripped.endswith("]"):
            section_name = stripped[1:-1].strip()
            section = doc.setdefault(section_name, {})
            continue
        if "=" not in stripped:
            raise SweepConfigError(
                f"line {lineno}", f"expected 'key = value', got {stripped!r}")
        key, _, raw = stripped.partition("=")
        value = _strip_comment(raw)
        dotted = f"{section_name}.{key.strip()}" if section_name else key.strip()
        section[key.strip()] = _parse_toml_value(value, dotted)
    return doc


def _load_doc(path: str) -> dict:
    if not os.path.exists(path):
        raise SweepConfigError(path, "sweep config file does not exist")
    with open(path, "rb") as fh:
        data = fh.read()
    if path.endswith(".json"):
        try:
            return json.loads(data.decode("utf-8"))
        except json.JSONDecodeError as exc:
            raise SweepConfigError(path, f"invalid JSON: {exc}") from exc
    try:
        import tomllib
    except ModuleNotFoundError:            # Python 3.10
        return _parse_toml_minimal(data.decode("utf-8"))
    try:
        return tomllib.loads(data.decode("utf-8"))
    except tomllib.TOMLDecodeError as exc:
        raise SweepConfigError(path, f"invalid TOML: {exc}") from exc


def _check_keys(table: dict, section: str, allowed: tuple[str, ...]) -> None:
    for key in table:
        if key not in allowed:
            raise SweepConfigError(
                f"{section}.{key}",
                f"unknown key (valid {section} keys: {', '.join(allowed)})")


def _str_list(table: dict, section: str, key: str, default: list,
              valid: tuple[str, ...] | None, what: str) -> tuple[str, ...]:
    raw = table.get(key, default)
    dotted = f"{section}.{key}"
    if isinstance(raw, str):
        raw = [raw]
    if not isinstance(raw, list) or not raw or \
            not all(isinstance(v, str) for v in raw):
        raise SweepConfigError(dotted, f"expected a non-empty list of "
                                       f"strings, got {raw!r}")
    if valid is not None:
        for v in raw:
            if v not in valid:
                raise SweepConfigError(
                    dotted, f"unknown {what} {v!r} "
                            f"(valid: {', '.join(valid)})")
    return tuple(raw)


def _num_list(table: dict, section: str, key: str, default: list,
              kind=int) -> tuple:
    raw = table.get(key, default)
    dotted = f"{section}.{key}"
    if isinstance(raw, (int, float)) and not isinstance(raw, bool):
        raw = [raw]
    ok = isinstance(raw, list) and bool(raw) and all(
        isinstance(v, (int, float)) and not isinstance(v, bool) for v in raw)
    if not ok:
        raise SweepConfigError(dotted, f"expected a non-empty list of "
                                       f"numbers, got {raw!r}")
    values = tuple(kind(v) for v in raw)
    if any(v <= 0 for v in values):
        raise SweepConfigError(dotted, f"values must be positive, got {raw!r}")
    return values


def validate_sweep_doc(doc: dict, source: str = "<doc>") -> SweepConfig:
    """Validate a parsed sweep document into a :class:`SweepConfig`.

    Every violation is a :class:`SweepConfigError` naming the bad key.
    """
    from repro.graphs.datasets import WORKLOADS

    if not isinstance(doc, dict):
        raise SweepConfigError(source, f"expected a table, got {type(doc)}")
    for section in doc:
        if section not in ("sweep", "grid", "emit"):
            raise SweepConfigError(
                section, "unknown section (valid: sweep, grid, emit)")
    sweep = doc.get("sweep", {})
    grid = doc.get("grid", {})
    emit = doc.get("emit", {})
    for name, table in (("sweep", sweep), ("grid", grid), ("emit", emit)):
        if not isinstance(table, dict):
            raise SweepConfigError(name, f"expected a table, got {table!r}")
    _check_keys(sweep, "sweep", _SWEEP_KEYS)
    _check_keys(grid, "grid", _GRID_KEYS)
    _check_keys(emit, "emit", _EMIT_KEYS)

    label = sweep.get("name", "sweep")
    if not isinstance(label, str):
        raise SweepConfigError("sweep.name", f"expected a string, got {label!r}")
    workload = sweep.get("workload", "kron17")
    if not isinstance(workload, str) or workload not in WORKLOADS:
        raise SweepConfigError(
            "sweep.workload", f"unknown workload {workload!r} "
                              f"(valid: {', '.join(WORKLOADS)})")
    seed = sweep.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise SweepConfigError("sweep.seed", f"expected an int, got {seed!r}")
    objective = sweep.get("objective", "kernel_ms")
    if objective not in OBJECTIVES:
        raise SweepConfigError(
            "sweep.objective", f"unknown objective {objective!r} "
                               f"(valid: {', '.join(OBJECTIVES)})")

    devices = _str_list(grid, "grid", "device", ["gtx980"],
                        tuple(DEVICES), "device")
    kernels = _str_list(grid, "grid", "kernel", ["merge"],
                        SWEEP_KERNELS, "kernel")
    engines = _str_list(grid, "grid", "engine", ["compacted"],
                        SWEEP_ENGINES, "engine")
    tpb = _num_list(grid, "grid", "threads_per_block", [64], int)
    bps = _num_list(grid, "grid", "blocks_per_sm", [8], int)
    scales = _num_list(grid, "grid", "scale", [1.0], float)
    if any(s > 1.0 for s in scales):
        raise SweepConfigError(
            "grid.scale", f"scale multipliers must be <= 1.0 "
                          f"(fractions of the workload default), got {scales}")

    tuned = emit.get("tuned")
    if tuned is not None and not isinstance(tuned, str):
        raise SweepConfigError("emit.tuned", f"expected a path string, "
                                             f"got {tuned!r}")

    return SweepConfig(name=label, workload=workload, seed=seed,
                       objective=objective, devices=devices, kernels=kernels,
                       engines=engines, threads_per_block=tpb,
                       blocks_per_sm=bps, scales=scales, emit_tuned=tuned)


def load_sweep_config(path: str) -> SweepConfig:
    """Load and validate a sweep config file (TOML or JSON)."""
    return validate_sweep_doc(_load_doc(path), source=path)

"""Renderers for Table I and Table II, paper vs. measured.

Measured times are *simulated milliseconds at mini scale* — they are not
comparable in absolute value to the paper's full-scale milliseconds, so
the tables put the dimensionless columns (speedups, hit rates, ``†``
markers) side by side and keep both time columns for reference.
"""

from __future__ import annotations

import io

from repro.bench.runner import RowResult
from repro.utils import human_ms


def _fmt_ms(ms: float) -> str:
    return human_ms(ms)


def render_table1(rows: list[RowResult]) -> str:
    """ASCII rendering of Table I with the published numbers inline."""
    out = io.StringIO()
    header = (f"{'Graph':<14} {'Nodes':>9} {'Arcs':>9} {'Triangles':>11} | "
              f"{'CPU [ms]':>10} | "
              f"{'C2050 x':>8} {'(paper)':>8} | "
              f"{'4xC2050 x':>9} {'(paper)':>8} | "
              f"{'GTX980 x':>9} {'(paper)':>8}")
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for row in rows:
        paper = row.workload.paper
        d1 = "†" if row.dagger_c2050 else " "
        d4 = "†" if row.dagger_quad else " "
        p1 = "†" if paper.dagger_c2050 else " "
        p4 = "†" if paper.dagger_quad else " "
        out.write(
            f"{row.workload.title:<14} {row.num_nodes:>9} {row.num_arcs:>9} "
            f"{row.triangles:>11} | {row.cpu_ms:>10.1f} | "
            f"{d1}{row.c2050_speedup:>7.2f} {p1}{paper.c2050_speedup:>7.2f} | "
            f"{d4}{row.quad_speedup:>8.2f} {p4}{paper.quad_speedup:>7.2f} | "
            f"{row.gtx980_speedup:>9.2f} {paper.gtx980_speedup:>8.2f}\n")
    out.write("\nSpeedups: GPU-over-CPU for single cards, 4-GPU-over-1-GPU "
              "for the quad column.\n† = graph did not fit device memory; "
              "CPU preprocessing fallback ran (Section III-D6).\n")
    return out.getvalue()


def render_table2(rows: list[RowResult]) -> str:
    """ASCII rendering of Table II (GTX 980 profiling), paper vs measured."""
    out = io.StringIO()
    header = (f"{'Graph':<14} | {'hit %':>7} {'(paper)':>8} | "
              f"{'BW GB/s':>8} {'(paper)':>8} | {'bound':>8}")
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for row in rows:
        if row.gtx980 is None:
            continue
        paper = row.workload.paper
        out.write(
            f"{row.workload.title:<14} | {row.cache_hit_pct:>7.2f} "
            f"{paper.cache_hit_pct:>8.2f} | {row.bandwidth_gbs:>8.2f} "
            f"{paper.bandwidth_gbs:>8.2f} | "
            f"{row.gtx980.kernel_timing.bound:>8}\n")
    return out.getvalue()


def table1_csv(rows: list[RowResult]) -> str:
    """Machine-readable Table I (+ Table II columns)."""
    out = io.StringIO()
    out.write("name,scale,nodes,arcs,triangles,cpu_ms,"
              "c2050_ms,c2050_speedup,c2050_dagger,"
              "quad_ms,quad_speedup,quad_dagger,"
              "gtx980_ms,gtx980_speedup,cache_hit_pct,bandwidth_gbs,"
              "paper_c2050_speedup,paper_quad_speedup,paper_gtx980_speedup,"
              "paper_cache_hit_pct,paper_bandwidth_gbs\n")
    for r in rows:
        p = r.workload.paper
        out.write(
            f"{r.workload.name},{r.scale:.6g},{r.num_nodes},{r.num_arcs},"
            f"{r.triangles},{r.cpu_ms:.4f},"
            f"{r.c2050.total_ms if r.c2050 else ''},"
            f"{r.c2050_speedup:.3f},{int(r.dagger_c2050)},"
            f"{r.quad.total_ms if r.quad else ''},"
            f"{r.quad_speedup:.3f},{int(r.dagger_quad)},"
            f"{r.gtx980.total_ms if r.gtx980 else ''},"
            f"{r.gtx980_speedup:.3f},{r.cache_hit_pct:.2f},"
            f"{r.bandwidth_gbs:.2f},"
            f"{p.c2050_speedup},{p.quad_speedup},{p.gtx980_speedup},"
            f"{p.cache_hit_pct},{p.bandwidth_gbs}\n")
    return out.getvalue()

"""Host wall-clock harness: lockstep oracle vs compacted engine.

The compacted engine (``GpuOptions(engine="compacted")``) exists purely
for *host* performance — simulated-GPU results and every
:class:`~repro.gpusim.simt.KernelReport` counter are bit-identical to
the lockstep reference by contract.  This harness measures the quantity
that contract buys: wall-clock seconds of ``count_triangles_kernel`` on
this machine, engine vs engine, on the skewed workloads the compaction
targets.

Methodology (see docs/simulator.md for the discussion):

* every row runs both engines ``repeats`` times **interleaved**
  (L, C, L, C, ...) so machine drift hits both sides equally; the
  recorded figure is the per-engine **minimum** — the ``timeit``
  convention: higher values are caused by other processes interfering,
  so the minimum is the least-contaminated estimate of the true cost
  (every raw run is still recorded in the JSON);
* the triangle count *and* the full ``counters()`` dict are compared on
  every repeat — a row with any mismatch is marked non-identical and
  the harness fails loudly (perf that breaks equivalence is a bug, not
  a result);
* rows default to the full-occupancy launch (512 threads/block x 4
  blocks/SM - 2048 resident threads per SM, a grid-search point of
  paper Section III-C).  More resident warps mean a bigger full-grid
  scan for the lockstep engine and a longer skewed tail for the
  worklist to skip, which is exactly the regime the compacted engine is
  for; the default 64x8 launch shows the same shape with thinner
  margins (~2.5-2.8x on the same rows, same machine);
* one extra (untimed) compacted run per row records the
  :mod:`~repro.gpusim.hostprof` phase breakdown, so regressions can be
  attributed to setup / merge / cache-model / accounting without
  rerunning anything.

``repro-bench wallclock`` writes the result as ``BENCH_kernel.json``;
CI runs a scaled-down version and fails if compacted is ever slower
than lockstep (``--min-speedup 1.0``), and compares speedup ratios
against the committed file (``--baseline BENCH_kernel.json``) as the
guard that sanitize-off runs pay no overhead for the sanitizer hooks
(see :func:`baseline_problems`).
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.core.options import GpuOptions
from repro.core.preprocess import preprocess
from repro.errors import ReproError
from repro.gpusim.device import DEVICES
from repro.gpusim.hostprof import HostProfiler, host_profiling
from repro.gpusim.memory import DeviceMemory
from repro.gpusim.simt import LaunchConfig, SimtEngine
from repro.gpusim.timing import Timeline
from repro.graphs.datasets import WORKLOADS
from repro.runtime import build_engine, dispatch_kernel, get_kernel
from repro.utils import env_scale

#: The committed row set: the skewed (BA / Kronecker) workloads the
#: active-set compaction targets, one skewed real-graph stand-in, and
#: ``ws`` as the deliberately *non*-skewed contrast row (uniform degrees
#: give the worklist little tail to skip; its speedup is expected to be
#: the smallest of the set).
DEFAULT_ROWS: tuple[tuple[str, float | None], ...] = (
    ("ba", 0.0078125),
    ("ba", 0.015625),
    ("kron18", 0.0078125),
    ("kron20", None),
    ("internet", None),
    ("ws", None),
)

#: Full-occupancy launch (see module docstring).
DEFAULT_LAUNCH = LaunchConfig(threads_per_block=512, blocks_per_sm=4)


@dataclass
class WallclockRow:
    """One (workload, kernel) cell's engine-vs-engine measurement."""

    workload: str
    scale: float | None
    nodes: int
    arcs: int
    triangles: int
    lockstep_s: float               # min over repeats (timeit convention)
    compacted_s: float
    kernel: str = "merge"           # runtime registry name
    lockstep_runs: list = field(default_factory=list)
    compacted_runs: list = field(default_factory=list)
    identical: bool = True          # counters() equal on every repeat
    host_profile: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.lockstep_s / self.compacted_s if self.compacted_s else 0.0

    def to_json(self) -> dict:
        return {
            "workload": self.workload,
            "scale": self.scale,
            "kernel": self.kernel,
            "nodes": self.nodes,
            "arcs": self.arcs,
            "triangles": self.triangles,
            "lockstep_s": round(self.lockstep_s, 4),
            "compacted_s": round(self.compacted_s, 4),
            "speedup": round(self.speedup, 2),
            "lockstep_runs": [round(t, 4) for t in self.lockstep_runs],
            "compacted_runs": [round(t, 4) for t in self.compacted_runs],
            "identical": self.identical,
            "host_profile": self.host_profile,
        }

    def summary(self) -> str:
        scale = "default" if self.scale is None else f"{self.scale:g}"
        kernel = "" if self.kernel == "merge" else f" kernel={self.kernel}"
        return (f"{self.workload:<10} scale={scale:<9} "
                f"lockstep={self.lockstep_s:7.2f}s "
                f"compacted={self.compacted_s:7.2f}s "
                f"speedup={self.speedup:5.2f}x "
                f"identical={self.identical}{kernel}")


@dataclass
class WallclockReport:
    """The full harness result — what ``BENCH_kernel.json`` serializes."""

    rows: list
    device: str
    launch: LaunchConfig
    repeats: int
    seed: int

    @property
    def min_speedup(self) -> float:
        return min((r.speedup for r in self.rows), default=0.0)

    def to_json(self) -> dict:
        return {
            "benchmark": "count_kernel_wallclock",
            "device": self.device,
            "launch": {
                "threads_per_block": self.launch.threads_per_block,
                "blocks_per_sm": self.launch.blocks_per_sm,
                "simulated_warp_size": self.launch.simulated_warp_size,
            },
            "repeats": self.repeats,
            "seed": self.seed,
            "host": {
                "python": platform.python_version(),
                "numpy": np.__version__,
                "machine": platform.machine(),
            },
            "rows": [r.to_json() for r in self.rows],
        }

    def json_str(self) -> str:
        return json.dumps(self.to_json(), indent=2) + "\n"

    def format_report(self) -> str:
        lines = ["==BENCH== count-kernel host wall-clock "
                 f"(device={self.device}, launch="
                 f"{self.launch.threads_per_block}x"
                 f"{self.launch.blocks_per_sm}, "
                 f"best of {self.repeats})"]
        for row in self.rows:
            lines.append("  " + row.summary())
        lines.append(f"  min speedup: {self.min_speedup:.2f}x")
        return "\n".join(lines) + "\n"


def _counters_of(result_engine: SimtEngine) -> dict:
    return result_engine.report.counters()


def run_row(name: str, scale: float | None, *, kernel: str = "merge",
            repeats: int = 3, seed: int = 0, device_name: str = "gtx980",
            launch: LaunchConfig = DEFAULT_LAUNCH) -> WallclockRow:
    """Measure one (workload, kernel) cell, both engines interleaved.

    ``kernel`` is a :func:`repro.runtime.get_kernel` registry name —
    ``merge`` (the default two-pointer row set ``BENCH_kernel.json``
    commits), ``binary_search`` / ``hash`` (the probing intersection
    strategies), ``warp_intersect`` (the Section V comparator) or
    ``local`` (the per-vertex accumulation variant).  The timed region
    is the
    kernel body only: the engine is prebuilt and the ``local`` kernel's
    per-vertex accumulator is allocated once and re-zeroed outside the
    timer, so cells stay comparable across kernels.
    """
    if name not in WORKLOADS:
        raise ReproError(f"unknown workload {name!r}")
    spec = get_kernel(kernel)
    # Explicit row scales honour REPRO_SCALE too (``None`` already does,
    # via ``Workload.build``), so CI can shrink the whole harness.
    build_scale = scale if scale is None else scale * env_scale()
    graph = WORKLOADS[name].build(scale=build_scale, seed=seed)
    device = DEVICES[device_name]
    launch.validate(device)

    # The registry is the source of truth for the options field; specs
    # without one (``local``) run the merge drivers under two_pointer.
    kernel_field = (spec.option_field if spec.option_field is not None
                    else "two_pointer")
    pres = {}
    for engine_name in ("lockstep", "compacted"):
        opts = GpuOptions(engine=engine_name, launch=launch,
                          kernel=kernel_field)
        memory = DeviceMemory(device)
        pre = preprocess(graph, device, memory, Timeline(), opts)
        per_vertex = (memory.alloc("per_vertex",
                                   np.zeros(max(graph.num_nodes, 1),
                                            np.int64))
                      if spec.per_vertex else None)
        pres[engine_name] = (opts, pre, per_vertex, memory)

    runs: dict[str, list] = {"lockstep": [], "compacted": []}
    baseline = None
    identical = True
    triangles = 0
    for _ in range(repeats):
        per_rep = {}
        for engine_name in ("lockstep", "compacted"):
            opts, pre, per_vertex, memory = pres[engine_name]
            engine = build_engine(device, opts)
            if per_vertex is not None:
                per_vertex.data[:] = 0   # fresh accumulator, untimed
            t0 = perf_counter()
            result = dispatch_kernel(spec, engine, pre, opts,
                                     per_vertex_buf=per_vertex,
                                     memory=memory)
            runs[engine_name].append(perf_counter() - t0)
            per_rep[engine_name] = (result.triangles,
                                    _counters_of(engine))
            triangles = result.triangles
        if baseline is None:
            baseline = per_rep["lockstep"]
        for engine_name in ("lockstep", "compacted"):
            if per_rep[engine_name] != baseline:
                identical = False

    # One untimed, profiled compacted run for phase attribution.
    profiler = HostProfiler()
    with host_profiling(profiler):
        opts, pre, per_vertex, memory = pres["compacted"]
        engine = build_engine(device, opts)
        if per_vertex is not None:
            per_vertex.data[:] = 0
        dispatch_kernel(spec, engine, pre, opts, per_vertex_buf=per_vertex,
                        memory=memory)

    return WallclockRow(
        workload=name, scale=scale, kernel=spec.name,
        nodes=graph.num_nodes, arcs=pres["compacted"][1].num_forward_arcs,
        triangles=triangles,
        lockstep_s=min(runs["lockstep"]),
        compacted_s=min(runs["compacted"]),
        lockstep_runs=runs["lockstep"],
        compacted_runs=runs["compacted"],
        identical=identical,
        host_profile=profiler.breakdown(),
    )


def baseline_problems(report: WallclockReport, baseline_doc: dict,
                      tolerance: float = 1.5) -> list[str]:
    """Compare a fresh report against a committed ``BENCH_kernel.json``.

    Rows are matched by ``(workload, scale, kernel)`` (a baseline row
    with no ``kernel`` key is a pre-matrix file and means ``merge``) and
    compared on their *speedup* — a host-machine-portable ratio, unlike
    absolute seconds — so the committed file keeps guarding against
    overhead regressions (e.g. a sanitizer hook accidentally taxing the
    sanitize-off path) wherever CI happens to run.  A measured speedup
    below ``baseline / tolerance`` is a problem; faster-than-baseline
    never is.  A measured cell the baseline has never seen is *not* a
    problem — newly registered kernels widen the matrix before anyone
    can regenerate the committed file; :func:`baseline_new_rows` lists
    those so the CLI can report them as "new" instead.  Returns
    human-readable problem strings (empty = within band).
    """
    if tolerance < 1.0:
        raise ReproError(f"tolerance must be >= 1.0, got {tolerance}")
    baseline = {(row["workload"], row["scale"],
                 row.get("kernel", "merge")): row["speedup"]
                for row in baseline_doc.get("rows", [])}
    problems = []
    for row in report.rows:
        want = baseline.get((row.workload, row.scale, row.kernel))
        if want is None:
            continue  # a new cell, not a regression — see baseline_new_rows
        floor = want / tolerance
        if row.speedup < floor:
            problems.append(
                f"{row.workload} scale={row.scale} kernel={row.kernel}: "
                f"speedup {row.speedup:.2f}x below {floor:.2f}x "
                f"(baseline {want:.2f}x / tolerance {tolerance:g})")
    return problems


def baseline_new_rows(report: WallclockReport,
                      baseline_doc: dict) -> list[str]:
    """Measured ``(workload, scale, kernel)`` cells absent from the
    committed baseline — informational, not failures (the next
    regeneration of ``BENCH_kernel.json`` adopts them)."""
    baseline = {(row["workload"], row["scale"], row.get("kernel", "merge"))
                for row in baseline_doc.get("rows", [])}
    return [f"{row.workload} scale={row.scale} kernel={row.kernel}"
            for row in report.rows
            if (row.workload, row.scale, row.kernel) not in baseline]


def run_wallclock(rows=DEFAULT_ROWS, *, kernels=("merge",),
                  repeats: int = 3, seed: int = 0,
                  device_name: str = "gtx980",
                  launch: LaunchConfig = DEFAULT_LAUNCH,
                  progress=None) -> WallclockReport:
    """Run the harness over ``rows`` x ``kernels``.

    ``rows`` are ``(workload, scale)`` pairs; ``kernels`` are runtime
    registry names (``repro-bench wallclock --kernel`` repeats the flag
    to widen the matrix).  The default single-kernel matrix reproduces
    the committed ``BENCH_kernel.json`` row set.
    """
    measured = []
    for name, scale in rows:
        for kernel in kernels:
            row = run_row(name, scale, kernel=kernel, repeats=repeats,
                          seed=seed, device_name=device_name, launch=launch)
            if progress is not None:
                progress(row)
            measured.append(row)
    return WallclockReport(rows=measured, device=device_name, launch=launch,
                           repeats=repeats, seed=seed)

"""The paper's contribution: the parallel forward algorithm for (simulated) GPU.

* :mod:`~repro.core.options` — every Section III-D optimization as a toggle;
* :mod:`~repro.core.preprocess` — the 8-step preprocessing phase (III-B),
  with the CPU fallback for memory-pressured graphs (III-D6);
* :mod:`~repro.core.count_kernel` — the ``CountTriangles`` kernel as a
  warp-lockstep SIMT kernel, both loop variants (III-C, III-D3);
* :mod:`~repro.core.forward_gpu` — the single-GPU end-to-end pipeline
  with the paper's measurement protocol;
* :mod:`~repro.core.multi_gpu` — the Section III-E multi-GPU extension;
* :mod:`~repro.core.hybrid` / :mod:`~repro.core.partitioned` /
  :mod:`~repro.core.distributed` — the Section VI future-work
  directions, implemented (the last combines splitting with multi-GPU);
* :mod:`~repro.core.warp_intersect_kernel` — the Section V comparator;
* :mod:`~repro.core.clustering` — clustering coefficient / transitivity
  on top of the counters (the motivating application).
"""

from repro.core.options import GpuOptions
from repro.core.forward_gpu import gpu_count_triangles, GpuRunResult
from repro.core.multi_gpu import multi_gpu_count_triangles
from repro.core.preprocess import preprocess, PreprocessResult
from repro.core.clustering import clustering_report, ClusteringReport
from repro.core.hybrid import hybrid_count_triangles
from repro.core.partitioned import partitioned_count_triangles
from repro.core.distributed import distributed_count_triangles
from repro.core.local_counts import gpu_local_counts, LocalCountResult

__all__ = [
    "GpuOptions",
    "gpu_count_triangles",
    "GpuRunResult",
    "multi_gpu_count_triangles",
    "preprocess",
    "PreprocessResult",
    "clustering_report",
    "ClusteringReport",
    "hybrid_count_triangles",
    "partitioned_count_triangles",
    "distributed_count_triangles",
    "gpu_local_counts",
    "LocalCountResult",
]

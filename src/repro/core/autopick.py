"""Stats-driven kernel auto-pick: ``GpuOptions(kernel="auto")``.

The intersection strategies trade streaming work for probing work
(merge is O(|A|+|B|) sequential reads; binary-search and hash loop over
the *shorter* list only), so which kernel wins is a property of the
graph's degree structure — skewed graphs hand the probing kernels short
outer loops, dense regular graphs hand merge long overlapping streams.

Rather than hard-coding that folklore, the pick is **measured**:
``repro-bench kernelzoo`` sweeps every registered kernel over a small
zoo of generator graphs spanning the (degree_skew, density) plane and
commits the per-graph timings to ``BENCH_kernelzoo.json``.  This module
loads that calibration, locates the cell nearest the input graph in
range-normalized (degree_skew, density) space, and picks the cell's
fastest kernel among those the launch's options can run.  On the
bench's own graphs the nearest cell is the graph itself, so the pick
equals the measured winner by construction — the property
``tests/test_autopick.py`` pins.

Both statistics are degree-only (:func:`repro.graphs.stats.degree_skew`
/ :func:`~repro.graphs.stats.density` — no triangle counting), so
resolution costs O(V log V) on the host, far below preprocessing.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.core.options import GpuOptions
from repro.errors import ReproError
from repro.graphs.edgearray import EdgeArray
from repro.graphs.stats import degree_skew, density

#: Schema tag of the committed calibration artifact.
KERNELZOO_FORMAT = "repro-kernelzoo/v1"
#: Environment override for the calibration path.
KERNELZOO_ENV = "REPRO_KERNELZOO"
#: Default artifact name (committed at the repo root by the bench).
KERNELZOO_FILENAME = "BENCH_kernelzoo.json"


@dataclass(frozen=True)
class CalibrationCell:
    """One bench graph: its pick coordinates and measured timings."""

    graph: str
    family: str
    degree_skew: float
    density: float
    #: ``GpuOptions.kernel`` value -> simulated ``kernel_ms``.
    kernel_ms: tuple[tuple[str, float], ...]
    #: argmin of ``kernel_ms`` (name tie-break), as committed.
    winner: str

    def fastest(self, allowed: frozenset[str]) -> str:
        """The cell's fastest kernel among ``allowed`` (ms, then name)."""
        candidates = [(ms, k) for k, ms in self.kernel_ms if k in allowed]
        if not candidates:
            raise ReproError(
                f"calibration cell {self.graph!r} has no timing for any "
                f"of {tuple(sorted(allowed))}; re-run repro-bench kernelzoo")
        return min(candidates)[1]


@dataclass(frozen=True)
class KernelZooCalibration:
    """The parsed ``BENCH_kernelzoo.json``."""

    source: str
    device: str
    cells: tuple[CalibrationCell, ...]

    @classmethod
    def from_doc(cls, doc: dict,
                 source: str = "<doc>") -> "KernelZooCalibration":
        if not isinstance(doc, dict) or doc.get("format") != KERNELZOO_FORMAT:
            raise ReproError(
                f"{source}: expected a {KERNELZOO_FORMAT!r} document, got "
                f"format={doc.get('format') if isinstance(doc, dict) else doc!r}")
        cells = []
        for i, raw in enumerate(doc.get("cells", [])):
            try:
                kernel_ms = tuple(sorted(
                    (str(k), float(v["kernel_ms"]))
                    for k, v in raw["kernels"].items()))
                cells.append(CalibrationCell(
                    graph=str(raw["graph"]), family=str(raw["family"]),
                    degree_skew=float(raw["degree_skew"]),
                    density=float(raw["density"]),
                    kernel_ms=kernel_ms, winner=str(raw["winner"])))
            except (KeyError, TypeError, ValueError) as exc:
                raise ReproError(
                    f"{source}: cells[{i}] is malformed ({exc!r}); "
                    f"regenerate with repro-bench kernelzoo") from exc
        if not cells:
            raise ReproError(f"{source}: calibration has no cells")
        return cls(source=source, device=str(doc.get("device", "?")),
                   cells=tuple(cells))

    @classmethod
    def load(cls, path: str | Path | None = None) -> "KernelZooCalibration":
        """Load from ``path``, or from the standard search locations."""
        if path is None:
            path = find_calibration_file()
            if path is None:
                raise ReproError(
                    "kernel='auto' needs the kernelzoo calibration, but no "
                    f"{KERNELZOO_FILENAME} was found (searched "
                    f"${KERNELZOO_ENV}, the working directory, and the repo "
                    "root); generate one with `repro-bench kernelzoo --out "
                    f"{KERNELZOO_FILENAME}` or pick a kernel explicitly")
        path = Path(path)
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(
                f"cannot read kernelzoo calibration {path}: {exc}") from exc
        return cls.from_doc(doc, source=str(path))

    def nearest(self, skew: float, dens: float) -> CalibrationCell:
        """The cell closest in range-normalized coordinate space.

        Each axis is scaled by the calibration's own spread so neither
        statistic dominates; ties resolve to the first cell in file
        order (deterministic for a fixed artifact).
        """
        skews = [c.degree_skew for c in self.cells]
        denss = [c.density for c in self.cells]
        s_span = (max(skews) - min(skews)) or 1.0
        d_span = (max(denss) - min(denss)) or 1.0
        return min(self.cells, key=lambda c: (
            ((c.degree_skew - skew) / s_span) ** 2
            + ((c.density - dens) / d_span) ** 2))


_CALIBRATION_CACHE: dict[str, KernelZooCalibration] = {}


def find_calibration_file() -> Path | None:
    """``$REPRO_KERNELZOO`` > working directory > repo root, else None."""
    env = os.environ.get(KERNELZOO_ENV)
    if env:
        return Path(env)
    for root in (Path.cwd(), Path(__file__).resolve().parents[3]):
        candidate = root / KERNELZOO_FILENAME
        if candidate.is_file():
            return candidate
    return None


def load_calibration(path: str | Path | None = None) -> KernelZooCalibration:
    """:meth:`KernelZooCalibration.load` with a per-path cache (the
    serve scheduler resolves per job; re-parsing per launch would be
    pure waste)."""
    if path is None:
        path = find_calibration_file()
    if path is None:
        return KernelZooCalibration.load(None)  # raises the typed error
    key = str(Path(path).resolve())
    cal = _CALIBRATION_CACHE.get(key)
    if cal is None:
        cal = KernelZooCalibration.load(path)
        _CALIBRATION_CACHE[key] = cal
    return cal


def allowed_kernels(options: GpuOptions) -> frozenset[str]:
    """The ``GpuOptions.kernel`` values this launch could legally run.

    Everything the registry offers, minus ``warp_intersect`` when the
    layout is AoS (it requires SoA columns) — mirroring the eager
    validation in :class:`~repro.core.options.GpuOptions`.
    """
    import repro.runtime.spec as _spec

    fields = set(_spec.kernel_option_fields())
    if not options.unzip:
        fields.discard("warp_intersect")
    return frozenset(fields)


def pick_kernel(graph: EdgeArray,
                options: GpuOptions = GpuOptions(),
                calibration: KernelZooCalibration | None = None) -> str:
    """The measured-fastest kernel for ``graph`` (a ``GpuOptions.kernel``
    value, never ``"auto"``)."""
    if calibration is None:
        calibration = load_calibration()
    cell = calibration.nearest(degree_skew(graph), density(graph))
    return cell.fastest(allowed_kernels(options))


def resolve_options(graph: EdgeArray,
                    options: GpuOptions,
                    calibration: KernelZooCalibration | None = None,
                    ) -> GpuOptions:
    """``options`` with ``kernel="auto"`` replaced by the measured pick.

    A no-op for any explicit kernel — safe to call unconditionally at
    every graph-level pipeline entry point.
    """
    if options.kernel != "auto":
        return options
    return options.but(kernel=pick_kernel(graph, options, calibration))

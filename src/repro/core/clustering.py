"""Clustering coefficient and transitivity via the counting pipeline.

The paper's opening sentence: triangle counts "lay the foundation of the
clustering coefficient and the transitivity ratio".  This module is that
downstream layer — the global metrics from any counting backend, plus a
one-call report combining them.

(The *global* metrics only need the total triangle count and the degree
sequence; per-vertex coefficients need per-vertex counts and live in
:mod:`repro.graphs.stats`.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cpu.forward import forward_count_cpu
from repro.graphs.edgearray import EdgeArray
from repro.graphs.stats import average_clustering, wedge_counts


@dataclass(frozen=True)
class ClusteringReport:
    """Triangle-derived network metrics (the paper's motivating use)."""

    triangles: int
    wedges: int
    transitivity: float
    average_clustering: float
    num_nodes: int
    num_edges: int


def transitivity_from_counts(triangles: int, wedges: int) -> float:
    """Transitivity ratio 3·T / W (0 when the graph has no wedges)."""
    return 3.0 * triangles / wedges if wedges else 0.0


def clustering_report(graph: EdgeArray,
                      counter: Callable[[EdgeArray], int] | None = None,
                      ) -> ClusteringReport:
    """Compute the full metric set with a pluggable counting backend.

    Parameters
    ----------
    counter : callable, optional
        ``graph -> triangle count``; defaults to the CPU forward
        algorithm.  Pass e.g.
        ``lambda g: gpu_count_triangles(g).triangles`` to drive it from
        the simulated GPU.
    """
    if counter is None:
        counter = lambda g: forward_count_cpu(g).triangles  # noqa: E731
    triangles = int(counter(graph))
    wedges = int(wedge_counts(graph).sum())
    return ClusteringReport(
        triangles=triangles,
        wedges=wedges,
        transitivity=transitivity_from_counts(triangles, wedges),
        average_clustering=average_clustering(graph),
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
    )

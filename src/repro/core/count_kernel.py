"""The ``CountTriangles`` kernel (paper Section III-C) as a SIMT kernel.

Execution is warp-synchronous, mirroring the hardware semantics of the
paper's CUDA listing:

* each lane owns the arcs ``i ≡ lane (mod total_threads)`` (the
  grid-stride loop);
* one *setup* block per arc loads the arc's endpoints, four node-array
  entries and the two initial adjacency values (the kernel's
  ``int a = edge[u_it], b = edge[v_it];`` — note these loads are issued
  even when a list is empty, exactly as compiled);
* then *merge* iterations run until **every** lane of the warp has
  exhausted its intersection — lanes that finish early sit masked-out
  (that is the divergence the Section III-D5 warp-size trick reduces);
* the loop body comes in the paper's two variants (Section III-D3):
  ``final`` re-reads only the pointer(s) that advanced, ``preliminary``
  reads both list heads every iteration.

All adjacency walks read the *first* (adjacency-content) column through
the engine's cache hierarchy; this kernel is the entire source of the
Table II counters.

Both engine variants are held sanitizer-clean — no out-of-bounds index
(the Section III-D3 pad slot absorbs the one-past-the-end reads of the
``final`` merge variant), no uninitialized read, and no same-step
cross-warp hazard (per-thread result slots; corner accumulation only
via ``atomic_add``) — enforced across the full configuration matrix by
``repro-bench sanitize --strict``.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.core.options import GpuOptions
from repro.core.preprocess import PreprocessResult
from repro.errors import ReproError
from repro.gpusim.memory import DeviceBuffer
from repro.gpusim.simt import SimtEngine
from repro.gpusim.timing import MERGE_INSTRUCTIONS, SETUP_INSTRUCTIONS

_LOAD, _MERGE, _DONE = 0, 1, 2


@dataclass
class CountKernelResult:
    """Outcome of one kernel launch.

    ``thread_counts`` is the per-thread ``result`` array the paper
    reduces with ``thrust::reduce``; ``triangles`` its sum.
    """

    thread_counts: np.ndarray
    triangles: int
    ticks: int

    @property
    def num_threads(self) -> int:
        return len(self.thread_counts)


def count_triangles_kernel(engine: SimtEngine,
                           pre: PreprocessResult,
                           options: GpuOptions = GpuOptions(),
                           lo: int = 0,
                           hi: int | None = None,
                           result_buf: DeviceBuffer | None = None,
                           per_vertex_buf: DeviceBuffer | None = None,
                           ) -> CountKernelResult:
    """Execute ``CountTriangles`` over arcs ``[lo, hi)`` on ``engine``.

    Dispatches on ``options.engine``: the active-set-compacted fast path
    (default) or this module's lockstep reference — both produce
    bit-identical results and :class:`~repro.gpusim.simt.KernelReport`
    counters; only host wall-clock differs (see docs/simulator.md).

    ``result_buf``, when given, receives the per-thread counts through a
    modelled device write (length must be ``engine.num_threads``).

    ``per_vertex_buf``, when given (length ``num_nodes``), receives one
    ``atomicAdd`` per triangle corner — the local-triangle extension the
    clustering-coefficient application needs (every match at edge
    ``(u, v)`` with common neighbor ``w`` increments all three).
    """
    if options.engine == "compacted":
        from repro.core.count_kernel_compacted import \
            count_triangles_compacted

        return count_triangles_compacted(engine, pre, options, lo=lo, hi=hi,
                                         result_buf=result_buf,
                                         per_vertex_buf=per_vertex_buf)
    if options.engine == "lockstep":
        return count_triangles_lockstep(engine, pre, options, lo=lo, hi=hi,
                                        result_buf=result_buf,
                                        per_vertex_buf=per_vertex_buf)
    # Unreachable through GpuOptions (validated eagerly), but duck-typed
    # options must not silently fall back to the lockstep reference.
    from repro.core.options import ENGINES
    raise ReproError(
        f"engine must be one of {ENGINES}, got {options.engine!r}")


def count_triangles_lockstep(engine: SimtEngine,
                             pre: PreprocessResult,
                             options: GpuOptions = GpuOptions(),
                             lo: int = 0,
                             hi: int | None = None,
                             result_buf: DeviceBuffer | None = None,
                             per_vertex_buf: DeviceBuffer | None = None,
                             ) -> CountKernelResult:
    """The full-grid lockstep reference — the equivalence oracle the
    compacted engine is validated against (per-lane state in full-``T``
    arrays, every tick scans the whole grid)."""
    m = pre.num_forward_arcs
    hi = m if hi is None else hi
    if not (0 <= lo <= hi <= m):
        raise ReproError(f"arc range [{lo}, {hi}) outside [0, {m})")

    unzipped = pre.aos is None
    if unzipped:
        adj, keys = pre.adj, pre.keys
    else:
        adj = keys = pre.aos
    node = pre.node
    final_variant = options.merge_variant == "final"

    T = engine.num_threads
    ws = engine.warp_size
    W = engine.num_warps
    tid = np.arange(T, dtype=np.int64)
    warp_of = tid // ws

    # Per-lane registers.
    cur = lo + tid.copy()
    u_it = np.zeros(T, np.int64)
    u_end = np.zeros(T, np.int64)
    v_it = np.zeros(T, np.int64)
    v_end = np.zeros(T, np.int64)
    a = np.zeros(T, np.int64)
    b = np.zeros(T, np.int64)
    count = np.zeros(T, np.uint64)
    merge_active = np.zeros(T, bool)
    track_corners = per_vertex_buf is not None
    if track_corners:
        lane_u = np.zeros(T, np.int64)
        lane_v = np.zeros(T, np.int64)

    warp_phase = np.full(W, _LOAD, np.int8)
    ticks = 0
    prof = engine.host_profiler

    def _adj_read(indices: np.ndarray, lanes: np.ndarray) -> np.ndarray:
        """Adjacency-content read: ``edge[idx]`` (stride-2 in AoS mode)."""
        if unzipped:
            return engine.read(adj, indices, lanes)
        return engine.read(adj, 2 * indices, lanes)

    while (warp_phase != _DONE).any():
        ticks += 1

        # ---------------- setup (the for-loop body head) ---------------- #
        load_w = warp_phase == _LOAD
        if load_w.any():
            t0 = perf_counter() if prof is not None else 0.0
            in_load = load_w[warp_of]
            has_edge = in_load & (cur < hi)
            lanes = tid[has_edge]
            if len(lanes):
                e = cur[lanes]
                if unzipped:
                    u = engine.read(adj, e, lanes)        # edge[i]
                    v = engine.read(keys, e, lanes)       # edge[m + i]
                else:
                    u = engine.read(adj, 2 * e, lanes)
                    v = engine.read(keys, 2 * e + 1, lanes)
                u = u.astype(np.int64)
                v = v.astype(np.int64)
                # The four node-array loads issue back to back; batching
                # them into one engine call keeps the same cache
                # behaviour (same-line repeats are hits either way).
                k = len(lanes)
                node_idx = np.concatenate([u, u + 1, v, v + 1])
                node_lanes = np.concatenate([lanes, lanes, lanes, lanes])
                nvals = engine.read(node, node_idx, node_lanes).astype(np.int64)
                nu, nu1, nv, nv1 = (nvals[:k], nvals[k:2 * k],
                                    nvals[2 * k:3 * k], nvals[3 * k:])
                u_it[lanes] = nu
                u_end[lanes] = nu1
                v_it[lanes] = nv
                v_end[lanes] = nv1
                if track_corners:
                    lane_u[lanes] = u
                    lane_v[lanes] = v
                # Unconditional initial loads, as in the listing.
                ab = _adj_read(np.concatenate([nu, nv]),
                               np.concatenate([lanes, lanes]))
                a[lanes] = ab[:k]
                b[lanes] = ab[k:]
                merge_active[lanes] = (nu < nu1) & (nv < nv1)
                engine.end_step("setup", lanes, SETUP_INSTRUCTIONS)
            # Warp transitions: lanes without a current arc idle through
            # the merge (masked); warps with no arcs at all are done.
            had = has_edge.reshape(W, ws).any(axis=1)
            warp_phase[load_w & had] = _MERGE
            warp_phase[load_w & ~had] = _DONE
            if prof is not None:
                prof.add("setup", perf_counter() - t0)

        # ---------------- merge (the while loop) ------------------------ #
        merge_w = warp_phase == _MERGE
        if merge_w.any():
            t0 = perf_counter() if prof is not None else 0.0
            act = merge_active & merge_w[warp_of]
            lanes = tid[act]
            if len(lanes):
                if not final_variant:
                    # Preliminary variant: both list heads re-read every
                    # iteration (two loads per active lane).
                    ab = _adj_read(np.concatenate([u_it[lanes], v_it[lanes]]),
                                   np.concatenate([lanes, lanes]))
                    a[lanes] = ab[:len(lanes)]
                    b[lanes] = ab[len(lanes):]
                d = a[lanes] - b[lanes]
                count[lanes] += (d == 0).astype(np.uint64)
                if track_corners and (d == 0).any():
                    matched = lanes[d == 0]
                    # Three atomicAdds per triangle: u, v, and the
                    # common neighbor (the matched value).
                    corners = np.concatenate([lane_u[matched],
                                              lane_v[matched],
                                              a[matched]])
                    # Deliberate data-indexed atomics (one per corner),
                    # well-defined by atomicAdd semantics.
                    engine.atomic_add(per_vertex_buf, corners,  # san-ok: SAN201
                                      np.ones(len(corners), np.int64),
                                      np.concatenate([matched] * 3))
                adv_u = lanes[d <= 0]
                adv_v = lanes[d >= 0]
                u_it[adv_u] += 1
                v_it[adv_v] += 1
                if final_variant:
                    # Final variant: read only what advanced — one load
                    # per iteration unless a triangle was found.  These
                    # loads land one past the end when a list is
                    # exhausted; the adjacency buffer carries a pad slot
                    # for exactly this (Section III-D3).
                    vals = _adj_read(
                        np.concatenate([u_it[adv_u], v_it[adv_v]]),
                        np.concatenate([adv_u, adv_v]))
                    a[adv_u] = vals[:len(adv_u)]
                    b[adv_v] = vals[len(adv_u):]
                merge_active[lanes] = ((u_it[lanes] < u_end[lanes]) &
                                       (v_it[lanes] < v_end[lanes]))
                engine.end_step("merge", lanes, MERGE_INSTRUCTIONS)

            # Warps whose lanes have all finished reconverge at the end of
            # the for-loop body: advance to the next grid-stride arc.
            still = (merge_active & merge_w[warp_of]).reshape(W, ws).any(axis=1)
            finished_w = merge_w & ~still
            if finished_w.any():
                fin_lanes = finished_w[warp_of]
                cur[fin_lanes] += T
                warp_phase[finished_w] = _LOAD
            if prof is not None:
                prof.add("merge", perf_counter() - t0)

    triangles = int(count.sum())
    if result_buf is not None:
        engine.write(result_buf, tid, count, tid)
    return CountKernelResult(thread_counts=count, triangles=triangles,
                             ticks=ticks)

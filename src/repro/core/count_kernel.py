"""The ``CountTriangles`` kernel (paper Section III-C) as a SIMT kernel.

Execution is warp-synchronous, mirroring the hardware semantics of the
paper's CUDA listing:

* each lane owns the arcs ``i ≡ lane (mod total_threads)`` (the
  grid-stride loop);
* one *setup* block per arc loads the arc's endpoints and four
  node-array entries, then hands the lane to the launch's
  :class:`~repro.core.intersect.IntersectionStrategy` — the pluggable
  set-intersection algorithm (merge / binary_search / hash) that owns
  the per-lane registers and the initial loads (for the paper's merge,
  the kernel's unconditional ``int a = edge[u_it], b = edge[v_it];``);
* then *intersection steps* run until **every** lane of the warp has
  exhausted its work — lanes that finish early sit masked-out (that is
  the divergence the Section III-D5 warp-size trick reduces);
* the merge strategy's loop body comes in the paper's two variants
  (Section III-D3): ``final`` re-reads only the pointer(s) that
  advanced, ``preliminary`` reads both list heads every iteration.

This module is the **lockstep driver**: it owns the grid-stride
cursor, warp phase machine, divergence masking and all step
accounting, while the strategy owns what one step does.  All adjacency
walks read through the engine's cache hierarchy; the merge strategy
here is the entire source of the Table II counters.

Both engine variants are held sanitizer-clean — no out-of-bounds index
(the Section III-D3 pad slot absorbs the one-past-the-end reads of the
``final`` merge variant), no uninitialized read, and no same-step
cross-warp hazard (per-thread result slots; corner accumulation only
via ``atomic_add``) — enforced across the full configuration matrix by
``repro-bench sanitize --strict``.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.core.intersect import check_per_vertex, strategy_for_options
from repro.core.options import GpuOptions
from repro.core.preprocess import PreprocessResult
from repro.errors import ReproError
from repro.gpusim.memory import DeviceBuffer, DeviceMemory
from repro.gpusim.simt import SimtEngine

_LOAD, _MERGE, _DONE = 0, 1, 2


@dataclass
class CountKernelResult:
    """Outcome of one kernel launch.

    ``thread_counts`` is the per-thread ``result`` array the paper
    reduces with ``thrust::reduce``; ``triangles`` its sum.
    """

    thread_counts: np.ndarray
    triangles: int
    ticks: int

    @property
    def num_threads(self) -> int:
        return len(self.thread_counts)


def count_triangles_kernel(engine: SimtEngine,
                           pre: PreprocessResult,
                           options: GpuOptions = GpuOptions(),
                           lo: int = 0,
                           hi: int | None = None,
                           result_buf: DeviceBuffer | None = None,
                           per_vertex_buf: DeviceBuffer | None = None,
                           memory: DeviceMemory | None = None,
                           ) -> CountKernelResult:
    """Execute ``CountTriangles`` over arcs ``[lo, hi)`` on ``engine``.

    Dispatches on ``options.engine``: the active-set-compacted fast path
    (default) or this module's lockstep reference — both produce
    bit-identical results and :class:`~repro.gpusim.simt.KernelReport`
    counters; only host wall-clock differs (see docs/simulator.md).
    The intersection algorithm is selected by ``options.kernel``
    (``two_pointer`` → merge, ``binary_search``, ``hash``).

    ``result_buf``, when given, receives the per-thread counts through a
    modelled device write (length must be ``engine.num_threads``).

    ``per_vertex_buf``, when given (length ``num_nodes``), receives one
    ``atomicAdd`` per triangle corner — the local-triangle extension the
    clustering-coefficient application needs (every match at edge
    ``(u, v)`` with common neighbor ``w`` increments all three).  Only
    the merge strategy supports it.

    ``memory`` is required by strategies that build device-resident
    tables (``hash``); the launch path passes it automatically.
    """
    if options.engine == "compacted":
        from repro.core.count_kernel_compacted import \
            count_triangles_compacted

        return count_triangles_compacted(engine, pre, options, lo=lo, hi=hi,
                                         result_buf=result_buf,
                                         per_vertex_buf=per_vertex_buf,
                                         memory=memory)
    if options.engine == "lockstep":
        return count_triangles_lockstep(engine, pre, options, lo=lo, hi=hi,
                                        result_buf=result_buf,
                                        per_vertex_buf=per_vertex_buf,
                                        memory=memory)
    # Unreachable through GpuOptions (validated eagerly), but duck-typed
    # options must not silently fall back to the lockstep reference.
    from repro.core.options import ENGINES
    raise ReproError(
        f"engine must be one of {ENGINES}, got {options.engine!r}")


def count_triangles_lockstep(engine: SimtEngine,
                             pre: PreprocessResult,
                             options: GpuOptions = GpuOptions(),
                             lo: int = 0,
                             hi: int | None = None,
                             result_buf: DeviceBuffer | None = None,
                             per_vertex_buf: DeviceBuffer | None = None,
                             memory: DeviceMemory | None = None,
                             ) -> CountKernelResult:
    """The full-grid lockstep driver — the equivalence oracle the
    compacted engine is validated against (per-lane state in full-``T``
    arrays, every tick scans the whole grid)."""
    m = pre.num_forward_arcs
    hi = m if hi is None else hi
    if not (0 <= lo <= hi <= m):
        raise ReproError(f"arc range [{lo}, {hi}) outside [0, {m})")

    strategy = strategy_for_options(options)
    track_corners = check_per_vertex(strategy, per_vertex_buf)
    ctx = strategy.prepare(engine, pre, options, memory, compacted=False)

    unzipped = pre.aos is None
    if unzipped:
        adj, keys = pre.adj, pre.keys
    else:
        adj = keys = pre.aos
    node = pre.node

    T = engine.num_threads
    ws = engine.warp_size
    W = engine.num_warps
    tid = np.arange(T, dtype=np.int64)
    warp_of = tid // ws

    # Per-lane registers: the arc cursor, the count, and one full-grid
    # vector per strategy register.
    cur = lo + tid.copy()
    regs_full = {name: np.zeros(T, np.int64)
                 for name in strategy.registers}
    count = np.zeros(T, np.uint64)
    active = np.zeros(T, bool)
    if track_corners:
        lane_u = np.zeros(T, np.int64)
        lane_v = np.zeros(T, np.int64)

    warp_phase = np.full(W, _LOAD, np.int8)
    ticks = 0
    prof = engine.host_profiler

    try:
        while (warp_phase != _DONE).any():
            ticks += 1

            # -------------- setup (the for-loop body head) ------------ #
            load_w = warp_phase == _LOAD
            if load_w.any():
                t0 = perf_counter() if prof is not None else 0.0
                in_load = load_w[warp_of]
                has_edge = in_load & (cur < hi)
                lanes = tid[has_edge]
                if len(lanes):
                    e = cur[lanes]
                    if unzipped:
                        u = engine.read(adj, e, lanes)     # edge[i]
                        v = engine.read(keys, e, lanes)    # edge[m + i]
                    else:
                        u = engine.read(adj, 2 * e, lanes)
                        v = engine.read(keys, 2 * e + 1, lanes)
                    u = u.astype(np.int64)
                    v = v.astype(np.int64)
                    # The four node-array loads issue back to back;
                    # batching them into one engine call keeps the same
                    # cache behaviour (same-line repeats are hits either
                    # way).
                    k = len(lanes)
                    node_idx = np.concatenate([u, u + 1, v, v + 1])
                    node_lanes = np.concatenate([lanes, lanes, lanes,
                                                 lanes])
                    nvals = engine.read(node, node_idx,
                                        node_lanes).astype(np.int64)
                    nu, nu1, nv, nv1 = (nvals[:k], nvals[k:2 * k],
                                        nvals[2 * k:3 * k], nvals[3 * k:])
                    if track_corners:
                        lane_u[lanes] = u
                        lane_v[lanes] = v
                    cols, mact = strategy.begin(ctx, lanes, u, v,
                                                nu, nu1, nv, nv1)
                    for name in strategy.registers:
                        regs_full[name][lanes] = cols[name]
                    active[lanes] = mact
                    engine.end_step("setup", lanes,
                                    strategy.setup_instructions)
                # Warp transitions: lanes without a current arc idle
                # through the intersection (masked); warps with no arcs
                # at all are done.
                had = has_edge.reshape(W, ws).any(axis=1)
                warp_phase[load_w & had] = _MERGE
                warp_phase[load_w & ~had] = _DONE
                if prof is not None:
                    prof.add("setup", perf_counter() - t0)

            # -------------- intersection steps (the while loop) ------- #
            merge_w = warp_phase == _MERGE
            if merge_w.any():
                t0 = perf_counter() if prof is not None else 0.0
                act = active & merge_w[warp_of]
                lanes = tid[act]
                if len(lanes):
                    regs = {name: regs_full[name][lanes]
                            for name in strategy.registers}
                    cnt = count[lanes]
                    if track_corners:
                        def on_match(idx: np.ndarray,
                                     values: np.ndarray) -> None:
                            matched = lanes[idx]
                            # Three atomicAdds per triangle: u, v, and
                            # the common neighbor (the matched value).
                            # Deliberate data-indexed atomics (one per
                            # corner), well-defined by atomicAdd
                            # semantics.
                            corners = np.concatenate(
                                [lane_u[matched], lane_v[matched],
                                 values])
                            engine.atomic_add(  # san-ok: SAN201
                                per_vertex_buf, corners,
                                np.ones(len(corners), np.int64),
                                np.concatenate([matched] * 3))
                    else:
                        on_match = None
                    still = strategy.step(ctx, regs, lanes, cnt, on_match)
                    for name in strategy.registers:
                        regs_full[name][lanes] = regs[name]
                    count[lanes] = cnt
                    active[lanes] = still
                    engine.end_step(strategy.step_kind, lanes,
                                    strategy.step_instructions)

                # Warps whose lanes have all finished reconverge at the
                # end of the for-loop body: advance to the next
                # grid-stride arc.
                still_w = (active & merge_w[warp_of]).reshape(
                    W, ws).any(axis=1)
                finished_w = merge_w & ~still_w
                if finished_w.any():
                    fin_lanes = finished_w[warp_of]
                    cur[fin_lanes] += T
                    warp_phase[finished_w] = _LOAD
                if prof is not None:
                    prof.add(strategy.step_kind, perf_counter() - t0)
    finally:
        strategy.finish(ctx)

    triangles = int(count.sum())
    if result_buf is not None:
        engine.write(result_buf, tid, count, tid)
    return CountKernelResult(thread_counts=count, triangles=triangles,
                             ticks=ticks)

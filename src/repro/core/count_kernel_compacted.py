"""Active-set-compacted execution of ``CountTriangles``.

Same simulated machine as :mod:`repro.core.count_kernel`'s lockstep
driver, different *host* data layout.  The lockstep engine keeps
per-lane registers in full-grid arrays indexed by all ``T`` global lane
ids and rescans them every tick; late in a skewed graph that means
scanning thousands of finished lanes to find the handful still merging.
This engine instead keeps

* a **worklist of live warps** — tiny ``W``-sized ``phase`` /
  ``rounds`` / ``remaining`` arrays plus an ``alive`` counter; a warp
  in ``_DONE`` costs nothing ever again;
* a **compact lane pool** — the registers of exactly the lanes whose
  intersection is still running (one pool column per register of the
  launch's :class:`~repro.core.intersect.IntersectionStrategy`, plus
  the lane id and count), packed dense in preallocated backing arrays.
  Lanes are appended when their warp's setup block runs and filtered
  out (with their ``count`` scattered back to the full per-thread
  array) the iteration they exhaust — so every step tick is a handful
  of dense vector ops over the live lanes, with no full-grid masks and
  no fancy-indexing into 2-D register files;
* a **fused stepper** — whenever no live warp is in ``_LOAD`` (the
  dominant regime: one setup tick per arc batch, then many step
  ticks), the inner loop runs intersection steps back to back without
  re-deriving anything, returning to the setup path only when a warp
  reconverges.

The intersection algorithm itself — register file, initial loads, what
one step does — lives in the strategy (merge / binary_search / hash);
this module is the driver: arc cursors, phase machine, pool
compaction, and all ``end_step_warps`` accounting.

The memory model runs through the engine's fused fast path
(:meth:`~repro.gpusim.simt.SimtEngine.read_compacted` /
:meth:`~repro.gpusim.simt.SimtEngine.end_step_warps`), which the pool
layout enables: coalescing and both cache levels are order-independent
over the request *multiset* of a batch, so the pool never has to keep
lanes sorted, and the engine never has to reconstruct per-request
hit masks.

Equivalence is the design contract, not an aspiration: every tick
issues the same (index, lane) multisets, in the same per-tick grouping,
as the lockstep driver — so coalescing, cache-state evolution, and
every :class:`~repro.gpusim.simt.KernelReport` counter (including
``sm_instruction_slots`` and ``ticks``) are bit-identical.
``tests/test_engine_equivalence.py`` enforces this across the full
option matrix.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.core.count_kernel import _DONE, _LOAD, _MERGE, CountKernelResult
from repro.core.intersect import check_per_vertex, strategy_for_options
from repro.core.options import GpuOptions
from repro.core.preprocess import PreprocessResult
from repro.errors import ReproError
from repro.gpusim.memory import DeviceBuffer, DeviceMemory
from repro.gpusim.simt import SimtEngine


def count_triangles_compacted(engine: SimtEngine,
                              pre: PreprocessResult,
                              options: GpuOptions = GpuOptions(),
                              lo: int = 0,
                              hi: int | None = None,
                              result_buf: DeviceBuffer | None = None,
                              per_vertex_buf: DeviceBuffer | None = None,
                              memory: DeviceMemory | None = None,
                              ) -> CountKernelResult:
    """Execute ``CountTriangles`` over arcs ``[lo, hi)`` — compacted path.

    Drop-in equivalent of the lockstep driver (same signature, same
    results, same report); see the module docstring for the contract.
    """
    m = pre.num_forward_arcs
    hi = m if hi is None else hi
    if not (0 <= lo <= hi <= m):
        raise ReproError(f"arc range [{lo}, {hi}) outside [0, {m})")

    strategy = strategy_for_options(options)
    track_corners = check_per_vertex(strategy, per_vertex_buf)
    ctx = strategy.prepare(engine, pre, options, memory, compacted=True)

    unzipped = pre.aos is None
    if unzipped:
        adj, keys = pre.adj, pre.keys
    else:
        adj = keys = pre.aos
    node = pre.node
    reg_names = strategy.registers

    T = engine.num_threads
    ws = engine.warp_size
    ws_shift = ws.bit_length() - 1    # warp sizes divide 32: always pow2
    W = engine.num_warps
    prof = engine.host_profiler
    read = engine.read_compacted

    # Worklist of live warps.  A lane's arc cursor is derived, never
    # stored: ``cur = lo + lane + rounds[warp] * T`` (the grid-stride
    # loop), so reconvergence is a counter bump, not a register sweep.
    phase = np.full(W, _LOAD, np.int8)
    rounds = np.zeros(W, np.int64)
    remaining = np.zeros(W, np.int64)   # pool lanes per warp
    alive = W
    load_pending = True

    # Compact lane pool: registers of the lanes mid-intersection, packed
    # dense in [0, n).  Capacity T is the hard bound (every lane of
    # every warp intersecting at once).
    p_lane = np.empty(T, np.int64)
    p_regs = {name: np.empty(T, np.int64) for name in reg_names}
    p_cnt = np.empty(T, np.uint64)
    if track_corners:
        p_lu = np.empty(T, np.int64)
        p_lv = np.empty(T, np.int64)
    pool = [p_lane] + [p_regs[name] for name in reg_names] + [p_cnt]
    if track_corners:
        pool += [p_lu, p_lv]
    n = 0
    # The live-warp list only changes when lanes retire or a setup tick
    # runs; cache it between those events.
    mw_cache: list = [None, None]

    count_full = np.zeros(T, np.uint64)
    lane_off = np.arange(ws, dtype=np.int64)
    ticks = 0

    def _setup_tick() -> int:
        """Setup blocks of every ``_LOAD`` warp; appends the lanes that
        enter the intersection loop to the pool.  Returns the new pool
        size."""
        nonlocal alive, n
        load_w = np.flatnonzero(phase == _LOAD)
        lanes2d = load_w[:, None] * ws + lane_off[None, :]
        cur2d = lo + lanes2d + (rounds[load_w] * T)[:, None]
        has = cur2d < hi
        had = has.any(axis=1)
        if had.any():
            lanes = lanes2d[has]
            e = cur2d[has]
            if unzipped:
                u = read(adj, e, lanes)           # edge[i]
                v = read(keys, e, lanes)          # edge[m + i]
            else:
                u = read(adj, 2 * e, lanes)
                v = read(keys, 2 * e + 1, lanes)
            u = u.astype(np.int64, copy=False)
            v = v.astype(np.int64, copy=False)
            # The four node-array loads issue back to back, batched into
            # one engine call exactly like the lockstep driver.
            k = len(lanes)
            node_idx = np.empty(4 * k, np.int64)
            node_idx[:k] = u
            np.add(u, 1, out=node_idx[k:2 * k])
            node_idx[2 * k:3 * k] = v
            np.add(v, 1, out=node_idx[3 * k:])
            node_lanes = np.empty(4 * k, np.int64)
            for j in range(4):
                node_lanes[j * k:(j + 1) * k] = lanes
            nvals = read(node, node_idx, node_lanes).astype(np.int64,
                                                           copy=False)
            nu, nu1, nv, nv1 = (nvals[:k], nvals[k:2 * k],
                                nvals[2 * k:3 * k], nvals[3 * k:])
            cols, mact = strategy.begin(ctx, lanes, u, v, nu, nu1, nv, nv1)
            engine.end_step_warps("setup", load_w[had],
                                  has.sum(axis=1)[had],
                                  strategy.setup_instructions)
            # Pool append: only lanes with a non-empty intersection to
            # run (the rest keep their counts in ``count_full``).
            k2 = int(mact.sum())
            if k2:
                sel_lanes = lanes[mact]
                p_lane[n:n + k2] = sel_lanes
                for name in reg_names:
                    p_regs[name][n:n + k2] = cols[name][mact]
                p_cnt[n:n + k2] = count_full[sel_lanes]
                if track_corners:
                    p_lu[n:n + k2] = u[mact]
                    p_lv[n:n + k2] = v[mact]
                n += k2
                np.add(remaining, np.bincount(sel_lanes >> ws_shift,
                                              minlength=W), out=remaining)
                mw_cache[0] = None
        # Warp transitions.  ``had`` warps enter the intersection loop —
        # except those contributing zero active lanes, which reconverge
        # within this same tick (the lockstep driver sends them _LOAD →
        # _MERGE → _LOAD with no memory trace) and so simply advance.
        w_had = load_w[had]
        entered = remaining[w_had] > 0
        phase[w_had[entered]] = _MERGE
        rounds[w_had[~entered]] += 1
        retired = load_w[~had]
        if len(retired):
            phase[retired] = _DONE
            alive -= len(retired)
        return n

    def _merge_tick() -> None:
        """One intersection step over the whole pool — the identical
        per-iteration memory trace of one lockstep step tick."""
        nonlocal n, load_pending
        lanes = p_lane[:n]
        regs = {name: p_regs[name][:n] for name in reg_names}
        if track_corners:
            def on_match(idx: np.ndarray, values: np.ndarray) -> None:
                mlanes = lanes[idx]
                # Three atomicAdds per triangle: u, v, and the common
                # neighbor (the matched value).  Deliberate data-indexed
                # atomics (one per corner), well-defined by atomicAdd
                # semantics.
                corners = np.concatenate([p_lu[:n][idx], p_lv[:n][idx],
                                          values])
                engine.atomic_add(  # san-ok: SAN201
                    per_vertex_buf, corners,
                    np.ones(len(corners), np.int64),
                    np.concatenate([mlanes, mlanes, mlanes]))
        else:
            on_match = None
        still = strategy.step(ctx, regs, lanes, p_cnt[:n], on_match)
        mw = mw_cache[0]
        if mw is None:
            mw = np.flatnonzero(remaining)
            mw_cache[0] = mw
            mw_cache[1] = remaining[mw]
        engine.end_step_warps(strategy.step_kind, mw, mw_cache[1],
                              strategy.step_instructions)
        new_n = int(np.count_nonzero(still))
        if new_n == n:
            return
        # Retirement: scatter counts back and close the pool's holes by
        # moving *tail survivors* into them — O(retired) work, not
        # O(pool); the pool is unordered by contract (the memory model
        # is order-independent over each tick's request multiset).
        fin_idx = np.flatnonzero(~still)
        exit_lanes = p_lane[fin_idx]
        count_full[exit_lanes] = p_cnt[fin_idx]
        np.subtract(remaining, np.bincount(exit_lanes >> ws_shift,
                                           minlength=W), out=remaining)
        mw_cache[0] = None
        holes = fin_idx[fin_idx < new_n]
        if len(holes):
            src = np.flatnonzero(still[new_n:n]) + new_n
            for arr in pool:
                arr[holes] = arr[src]
        n = new_n
        reconv = np.flatnonzero((remaining == 0) & (phase == _MERGE))
        if len(reconv):
            # Reconverged warps advance to the next grid-stride arc; the
            # next tick runs their setup block.
            rounds[reconv] += 1
            phase[reconv] = _LOAD
            load_pending = True

    try:
        while alive:
            if load_pending:
                ticks += 1
                t0 = perf_counter() if prof is not None else 0.0
                _setup_tick()
                load_pending = bool((phase == _LOAD).any())
                if prof is not None:
                    prof.add("setup", perf_counter() - t0)
                if n:
                    t0 = perf_counter() if prof is not None else 0.0
                    _merge_tick()
                    if prof is not None:
                        prof.add(strategy.step_kind, perf_counter() - t0)
                continue
            if not n:
                break  # unreachable: alive warps are _LOAD or mid-step
            # Fused stepping: no warp needs a setup block until one
            # reconverges, so iterate the pool back to back.
            t0 = perf_counter() if prof is not None else 0.0
            fused = 0
            while n and not load_pending:
                ticks += 1
                fused += 1
                _merge_tick()
            if prof is not None:
                prof.add(strategy.step_kind, perf_counter() - t0,
                         calls=fused)
    finally:
        strategy.finish(ctx)

    triangles = int(count_full.sum())
    if result_buf is not None:
        tid = np.arange(T, dtype=np.int64)
        engine.write(result_buf, tid, count_full, tid)
    return CountKernelResult(thread_counts=count_full, triangles=triangles,
                             ticks=ticks)

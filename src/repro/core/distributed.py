"""Distributed partitioned counting: both Section VI directions at once.

The paper closes with two wishes: (1) split the graph into subgraphs
that can be processed independently — enabling both *better multi-GPU
scaling* and *graphs that do not fit GPU memory*; this module delivers
exactly that by combining the vertex-partition scheme of
:mod:`repro.core.partitioned` with the multi-device substrate:

1. hash vertices into ``num_parts`` buckets;
2. form one induced-subgraph counting *job* per part subset Q (|Q| ≤ 3)
   with a non-zero inclusion–exclusion weight
   ``w(Q) = Σ_{s=|Q|}^{3} (−1)^{s−|Q|} · C(p−|Q|, s−|Q|)``;
3. schedule jobs across the GPUs greedily (longest processing time
   first, estimated by subgraph arc count);
4. each device runs its jobs *independently* — its own preprocessing,
   its own kernel, no cross-device traffic at all (the property the
   paper hoped splitting would buy);
5. the exact total is ``Σ w(Q) · count(Q)``.

Unlike Section III-E's scheme there is no serial preprocessing bottleneck
— every job preprocesses on its own device — so Amdahl's cap disappears,
at the price of redundant arc-visits across overlapping subsets (the
trade-off the paper was unsure about; the result object reports it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from math import comb

import numpy as np

from repro.core.forward_gpu import gpu_count_triangles
from repro.core.options import GpuOptions
from repro.errors import ReproError
from repro.graphs.edgearray import EdgeArray
from repro.gpusim.device import DeviceSpec, TESLA_C2050
from repro.gpusim.device import XEON_X5650
from repro.gpusim.memory import DeviceMemory


def subset_weight(subset_size: int, num_parts: int) -> int:
    """Inclusion–exclusion weight of an induced subgraph over
    ``subset_size`` parts (see module docstring)."""
    return sum((-1) ** (s - subset_size)
               * comb(num_parts - subset_size, s - subset_size)
               for s in range(subset_size, min(3, num_parts) + 1))


def lpt_assign(costs, num_devices: int,
               sizes=None, capacities=None) -> list[int]:
    """Greedy longest-processing-time-first job → device assignment.

    ``costs`` are the load estimates (here: subgraph arc counts); jobs
    are placed biggest-first on the least-loaded device.  The serving
    scheduler reuses this with the memory-aware extension: ``sizes`` are
    per-job working-set byte estimates and ``capacities`` per-device free
    bytes, and a job is only placed on a device that can hold it
    (devices run their jobs sequentially, so the constraint is per job,
    not per total).  Returns one device index per job, in input order;
    ``-1`` marks a job that fits no device.
    """
    if num_devices < 1:
        raise ReproError(f"need >= 1 device, got {num_devices}")
    if sizes is None:
        sizes = [0] * len(costs)
    if capacities is None:
        capacities = [float("inf")] * num_devices
    if len(sizes) != len(costs):
        raise ReproError("sizes must match costs in length")
    if len(capacities) != num_devices:
        raise ReproError("capacities must match num_devices in length")
    loads = [0.0] * num_devices
    assignment = [-1] * len(costs)
    for i in sorted(range(len(costs)), key=lambda i: -costs[i]):
        eligible = [d for d in range(num_devices) if sizes[i] <= capacities[d]]
        if not eligible:
            continue
        dev = min(eligible, key=lambda d: (loads[d], d))
        assignment[i] = dev
        loads[dev] += costs[i]
    return assignment


@dataclass
class DistributedJob:
    """One induced-subgraph counting job."""

    parts: tuple[int, ...]
    weight: int
    num_arcs: int
    device_index: int = -1
    count: int = 0
    elapsed_ms: float = 0.0


@dataclass
class DistributedResult:
    triangles: int
    num_parts: int
    num_gpus: int
    jobs: list[DistributedJob] = field(default_factory=list)
    #: simulated time of the busiest device (the run's makespan).
    makespan_ms: float = 0.0
    per_device_ms: list[float] = field(default_factory=list)
    partition_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        return self.partition_ms + self.makespan_ms

    @property
    def largest_subgraph_arcs(self) -> int:
        return max((j.num_arcs for j in self.jobs), default=0)

    @property
    def redundant_arc_work(self) -> int:
        return sum(j.num_arcs for j in self.jobs)

    @property
    def load_balance(self) -> float:
        """Mean device busy time over the makespan (1.0 = perfect)."""
        if not self.per_device_ms or self.makespan_ms == 0:
            return 0.0
        return float(np.mean(self.per_device_ms)) / self.makespan_ms


def distributed_count_triangles(graph: EdgeArray,
                                device: DeviceSpec = TESLA_C2050,
                                num_gpus: int = 4,
                                num_parts: int = 6,
                                options: GpuOptions = GpuOptions(),
                                seed: int = 0) -> DistributedResult:
    """Count triangles exactly with independent per-device subgraph jobs.

    Parameters
    ----------
    num_parts : int
        Vertex buckets p; jobs are the ≤3-subsets with non-zero weight,
        so more parts mean smaller subgraphs but more redundancy
        (O(p³) jobs).
    """
    if num_gpus < 1:
        raise ReproError(f"need >= 1 GPU, got {num_gpus}")
    if num_parts < 1:
        raise ReproError(f"need >= 1 part, got {num_parts}")

    rng = np.random.default_rng(seed)
    part_of = rng.integers(0, num_parts, size=max(graph.num_nodes, 1))
    pf = part_of[graph.first] if graph.num_arcs else np.zeros(0, np.int64)
    ps = part_of[graph.second] if graph.num_arcs else np.zeros(0, np.int64)
    # Host-side partition pass: label both endpoints, one pass each.
    partition_ms = 2 * graph.num_arcs * XEON_X5650.ns_per_pass_element * 1e-6

    # Build the job list (skip zero-weight subsets entirely).
    jobs: list[DistributedJob] = []
    masks: dict[tuple[int, ...], np.ndarray] = {}
    for size in range(1, min(3, num_parts) + 1):
        weight = subset_weight(size, num_parts)
        if weight == 0:
            continue
        for parts in combinations(range(num_parts), size):
            mask = np.isin(pf, parts) & np.isin(ps, parts)
            arcs = int(mask.sum())
            masks[parts] = mask
            jobs.append(DistributedJob(parts=parts, weight=weight,
                                       num_arcs=arcs))

    # LPT scheduling: biggest job to the least-loaded device.
    for job, dev in zip(jobs, lpt_assign([j.num_arcs for j in jobs], num_gpus)):
        job.device_index = dev  # provisional load, refined by real times

    # Execute per device (independent memories; jobs run back to back).
    per_device_ms = [0.0] * num_gpus
    total = 0
    for job in jobs:
        sub = EdgeArray(graph.first[masks[job.parts]],
                        graph.second[masks[job.parts]],
                        num_nodes=graph.num_nodes, check=False)
        run = gpu_count_triangles(sub, device=device,
                                  memory=DeviceMemory(device),
                                  options=options)
        job.count = run.triangles
        job.elapsed_ms = run.total_ms
        per_device_ms[job.device_index] += run.total_ms
        total += job.weight * run.triangles

    return DistributedResult(triangles=total, num_parts=num_parts,
                             num_gpus=num_gpus, jobs=jobs,
                             makespan_ms=max(per_device_ms, default=0.0),
                             per_device_ms=per_device_ms,
                             partition_ms=partition_ms)

"""Single-GPU end-to-end triangle counting (the paper's main pipeline).

Timing follows the paper's measurement protocol (Section IV): the window
opens just before the edge array is copied host→device and closes after
the final count is copied back and device memory is freed — context
initialization excluded (the paper pre-initializes with
``cudaFree(NULL)``; the simulator has no lazy context to begin with).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.autopick import resolve_options
from repro.core.options import GpuOptions
from repro.errors import ReproError
from repro.graphs.edgearray import EdgeArray
from repro.gpusim.device import DeviceSpec, GTX_980
from repro.gpusim.memory import DeviceMemory
from repro.gpusim.simt import KernelReport
from repro.gpusim.timing import (KernelTiming, Timeline,
                                 achieved_bandwidth_gbs)
from repro.runtime import (LaunchPlan, PipelinedPlan, launch,
                           pipelined_launch, spec_for_options)
from repro.types import TriangleCount

#: Valid execution modes for :func:`gpu_count_triangles`.
EXECUTION_MODES = ("serial", "pipelined")


@dataclass
class GpuRunResult:
    """Full record of one simulated GPU counting run.

    The fields line up with what the paper reports: ``total_ms`` is a
    Table I cell, ``cache_hit_rate``/``bandwidth_gbs`` a Table II row,
    ``used_cpu_fallback`` the ``†`` marker, and
    ``timeline.preprocessing_fraction`` the Section III-E Amdahl input.
    """

    triangles: int
    device: DeviceSpec
    options: GpuOptions
    timeline: Timeline
    kernel_report: KernelReport
    kernel_timing: KernelTiming
    used_cpu_fallback: bool
    num_forward_arcs: int
    #: Populated by the multi-GPU pipeline: one (report, timing) per card.
    per_device: list = field(default_factory=list)
    #: Structured sanitizer findings when ``options.sanitize != "off"``
    #: (empty for a clean run — the expected state).
    sanitizer_reports: list = field(default_factory=list)

    @property
    def total_ms(self) -> float:
        return self.timeline.total_ms

    @property
    def count_ms(self) -> float:
        return self.timeline.phase_ms("count")

    @property
    def cache_hit_rate(self) -> float:
        """Read-only-cache hit fraction during the counting kernel."""
        return self.kernel_report.l1_hit_rate

    @property
    def bandwidth_gbs(self) -> float:
        """DRAM throughput the counting kernel sustained (Table II)."""
        return achieved_bandwidth_gbs(self.kernel_report,
                                      self.kernel_timing.kernel_ms)

    def profile(self) -> str:
        """nvprof-style report of this run (timeline + kernel metrics)."""
        from repro.gpusim.profiler import format_run_profile

        return format_run_profile(self)

    def as_triangle_count(self) -> TriangleCount:
        return TriangleCount(triangles=self.triangles,
                             elapsed_ms=self.total_ms,
                             breakdown=self.timeline.breakdown())


def gpu_count_triangles(graph: EdgeArray,
                        device: DeviceSpec = GTX_980,
                        options: GpuOptions = GpuOptions(),
                        memory: DeviceMemory | None = None,
                        mode: str = "serial",
                        pipeline: PipelinedPlan | None = None,
                        ) -> GpuRunResult:
    """Count triangles in ``graph`` on one simulated ``device``.

    Parameters
    ----------
    graph : EdgeArray
        Input in the paper's format (each edge as two arcs).
    device : DeviceSpec
        Simulated card (default: the GTX 980, the paper's fastest).
    options : GpuOptions
        Optimization toggles; defaults are the paper's final settings.
    memory : DeviceMemory, optional
        Pre-built device memory — the bench harness passes one with
        scaled capacity to reproduce the ``†`` memory-pressure behaviour
        at reduced workload scale.
    mode : str
        ``"serial"`` (default) runs the paper's measurement protocol —
        the fidelity mode every reported number uses.  ``"pipelined"``
        executes the ``†`` leg under the chunked async schedule of
        :class:`repro.runtime.PipelinedPlan`: host pass double-buffered
        against the forward-arc H2D on real streams, results and kernel
        counters bit-identical, ``timeline.makespan_ms`` now a measured
        quantity (``repro-bench overlap`` gates it against the modeled
        ``pipelined_ms``).
    pipeline : PipelinedPlan, optional
        Schedule parameters for ``mode="pipelined"`` (chunk count,
        stream ids).
    """
    if mode not in EXECUTION_MODES:
        raise ReproError(f"mode must be one of {EXECUTION_MODES}, "
                         f"got {mode!r}")
    options = resolve_options(graph, options)
    plan = LaunchPlan(kernel=spec_for_options(options), graph=graph,
                      device=device, options=options, memory=memory)
    if mode == "pipelined":
        run = pipelined_launch(plan, pipeline if pipeline is not None
                               else PipelinedPlan())
    else:
        run = launch(plan)
    return GpuRunResult(triangles=run.triangles, device=device,
                        options=run.options, timeline=run.timeline,
                        kernel_report=run.report, kernel_timing=run.timing,
                        used_cpu_fallback=run.pre.used_cpu_fallback,
                        num_forward_arcs=run.pre.num_forward_arcs,
                        sanitizer_reports=run.sanitizer_reports)

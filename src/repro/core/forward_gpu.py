"""Single-GPU end-to-end triangle counting (the paper's main pipeline).

Timing follows the paper's measurement protocol (Section IV): the window
opens just before the edge array is copied host→device and closes after
the final count is copied back and device memory is freed — context
initialization excluded (the paper pre-initializes with
``cudaFree(NULL)``; the simulator has no lazy context to begin with).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.count_kernel import count_triangles_kernel
from repro.core.options import GpuOptions
from repro.core.preprocess import preprocess
from repro.errors import ReproError
from repro.graphs.edgearray import EdgeArray
from repro.gpusim import thrustlike
from repro.gpusim.device import DeviceSpec, GTX_980
from repro.gpusim.memory import DeviceMemory
from repro.gpusim.simt import KernelReport, SimtEngine
from repro.gpusim.timing import (KernelTiming, Timeline,
                                 achieved_bandwidth_gbs, time_kernel)
from repro.types import COUNT_DTYPE, TriangleCount


@dataclass
class GpuRunResult:
    """Full record of one simulated GPU counting run.

    The fields line up with what the paper reports: ``total_ms`` is a
    Table I cell, ``cache_hit_rate``/``bandwidth_gbs`` a Table II row,
    ``used_cpu_fallback`` the ``†`` marker, and
    ``timeline.preprocessing_fraction`` the Section III-E Amdahl input.
    """

    triangles: int
    device: DeviceSpec
    options: GpuOptions
    timeline: Timeline
    kernel_report: KernelReport
    kernel_timing: KernelTiming
    used_cpu_fallback: bool
    num_forward_arcs: int
    #: Populated by the multi-GPU pipeline: one (report, timing) per card.
    per_device: list = field(default_factory=list)
    #: Structured sanitizer findings when ``options.sanitize != "off"``
    #: (empty for a clean run — the expected state).
    sanitizer_reports: list = field(default_factory=list)

    @property
    def total_ms(self) -> float:
        return self.timeline.total_ms

    @property
    def count_ms(self) -> float:
        return self.timeline.phase_ms("count")

    @property
    def cache_hit_rate(self) -> float:
        """Read-only-cache hit fraction during the counting kernel."""
        return self.kernel_report.l1_hit_rate

    @property
    def bandwidth_gbs(self) -> float:
        """DRAM throughput the counting kernel sustained (Table II)."""
        return achieved_bandwidth_gbs(self.kernel_report,
                                      self.kernel_timing.kernel_ms)

    def profile(self) -> str:
        """nvprof-style report of this run (timeline + kernel metrics)."""
        from repro.gpusim.profiler import format_run_profile

        return format_run_profile(self)

    def as_triangle_count(self) -> TriangleCount:
        return TriangleCount(triangles=self.triangles,
                             elapsed_ms=self.total_ms,
                             breakdown=self.timeline.breakdown())


def gpu_count_triangles(graph: EdgeArray,
                        device: DeviceSpec = GTX_980,
                        options: GpuOptions = GpuOptions(),
                        memory: DeviceMemory | None = None) -> GpuRunResult:
    """Count triangles in ``graph`` on one simulated ``device``.

    Parameters
    ----------
    graph : EdgeArray
        Input in the paper's format (each edge as two arcs).
    device : DeviceSpec
        Simulated card (default: the GTX 980, the paper's fastest).
    options : GpuOptions
        Optimization toggles; defaults are the paper's final settings.
    memory : DeviceMemory, optional
        Pre-built device memory — the bench harness passes one with
        scaled capacity to reproduce the ``†`` memory-pressure behaviour
        at reduced workload scale.
    """
    if memory is None:
        memory = DeviceMemory(device)
    elif memory.spec.name != device.name:
        raise ReproError(
            f"memory belongs to {memory.spec.name!r}, not {device.name!r}")

    sanitizer = None
    if options.sanitize != "off":
        from repro.sanitize import Sanitizer

        sanitizer = Sanitizer(mode=options.sanitize)
        # Attach before the first allocation so initcheck sees the
        # ``alloc_empty`` below and every preprocessing buffer.
        memory.sanitizer = sanitizer

    timeline = Timeline()
    try:
        engine = SimtEngine(device, options.launch,
                            use_ro_cache=options.use_readonly_cache,
                            sanitizer=sanitizer)
        # The per-thread result array lives for the whole run; allocating
        # it up front makes it part of the footprint the Section III-D6
        # fallback logic sees (otherwise preprocessing could "fit" and
        # the run still die at the kernel launch).
        result_buf = memory.alloc_empty("result", engine.num_threads,
                                        COUNT_DTYPE)
        pre = preprocess(graph, device, memory, timeline, options)
        if options.kernel == "warp_intersect":
            from repro.core.warp_intersect_kernel import warp_intersect_kernel

            kres = warp_intersect_kernel(engine, pre, result_buf=result_buf)
            kernel_name = "WarpIntersect"
        else:
            kres = count_triangles_kernel(engine, pre, options,
                                          result_buf=result_buf)
            kernel_name = "CountTriangles"

        timing = time_kernel(engine.report)
        timeline.add(kernel_name, timing.kernel_ms, phase="count")

        total = thrustlike.reduce_sum(device, result_buf, timeline,
                                      phase="reduce")
        if total != kres.triangles:
            raise ReproError("device reduce disagrees with kernel counts "
                             f"({total} vs {kres.triangles})")
        timeline.add("d2h result",
                     memory.d2h_ms(np.dtype(COUNT_DTYPE).itemsize),
                     phase="reduce")
        memory.free_all()
    finally:
        if sanitizer is not None:
            memory.sanitizer = None

    return GpuRunResult(triangles=total, device=device, options=options,
                        timeline=timeline, kernel_report=engine.report,
                        kernel_timing=timing,
                        used_cpu_fallback=pre.used_cpu_fallback,
                        num_forward_arcs=pre.num_forward_arcs,
                        sanitizer_reports=(sanitizer.reports
                                           if sanitizer is not None else []))

"""Future-work extension #2 (paper Section VI): hybrid counting.

"It might be beneficial to use a different counting algorithm for a
small subset of vertices with largest degrees.  A natural candidate …
is matrix multiplication [21]."

The exact decomposition used here relies on the forward order ≺ being
(degree, id): the ``num_hubs`` highest-*ordered* vertices H form a
suffix of ≺, so for any triangle a ≺ b ≺ c,

* if the lowest corner a ∈ H then all three corners are hubs (T_HHH);
* otherwise a ∉ H.

Therefore:

* **T_HHH** is counted algebraically — sparse matmul on the small
  induced hub subgraph (the Alon–Yuster–Zwick ingredient);
* **everything else** is counted by the forward merge with hub entries
  *filtered out of the adjacency lists*: the walk over all forward arcs
  (b, c) then finds exactly the common lower-neighbors a ∉ H.

The merge phase never scans hub entries — precisely the "different
algorithm for the largest degrees" the paper sketches — while the sum
stays exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.preprocess import forward_mask
from repro.cpu.forward import forward_count_cpu, merge_walk
from repro.cpu.matmul import matmul_count
from repro.errors import ReproError
from repro.graphs.csr import build_node_ptr
from repro.graphs.edgearray import EdgeArray
from repro.types import TriangleCount, pack_edges, unpack_edges


@dataclass(frozen=True)
class HybridResult:
    triangles: int
    hub_triangles: int          # T_HHH, counted algebraically
    nonhub_triangles: int       # everything else, counted by merges
    num_hubs: int
    merge_steps: int            # merge work of the filtered walk
    baseline_merge_steps: int   # what plain forward would have spent

    @property
    def merge_steps_saved(self) -> int:
        return self.baseline_merge_steps - self.merge_steps

    def as_triangle_count(self) -> TriangleCount:
        return TriangleCount(self.triangles)


def gpu_hub_counter(device=None, options=None):
    """A ``hub_counter`` backend that counts T_HHH on a simulated GPU.

    The hybrid decomposition only requires *some* exact counter for the
    induced hub subgraph; matmul (the paper's suggestion) is the
    default, and this factory routes that leg through the unified
    runtime instead — one :func:`repro.runtime.launch` of the merge
    kernel per call, so the hub leg shares engine selection, sanitizer
    wiring and hostprof phases with every other pipeline.
    """
    from repro.core.autopick import resolve_options
    from repro.core.options import GpuOptions
    from repro.gpusim.device import GTX_980
    from repro.runtime import LaunchPlan, launch, spec_for_options

    device = GTX_980 if device is None else device
    options = GpuOptions() if options is None else options

    def counter(hub_graph: EdgeArray) -> int:
        # kernel="auto" resolves against the induced hub graph (whose
        # degree structure, not the full graph's, is what the leg runs
        # on); explicit kernels resolve to a spec exactly once.
        opts = resolve_options(hub_graph, options)
        return launch(LaunchPlan(kernel=spec_for_options(opts),
                                 graph=hub_graph, device=device,
                                 options=opts)).triangles

    return counter


def hybrid_count_triangles(graph: EdgeArray,
                           hub_fraction: float = 0.01,
                           hub_counter=None) -> HybridResult:
    """Exact count via matmul-on-hubs + hub-filtered forward merges.

    Parameters
    ----------
    hub_fraction : float
        Fraction of vertices (highest degree-order first) treated as hubs.
    hub_counter : callable(EdgeArray) -> int, optional
        Exact counter for the induced hub subgraph (T_HHH).  Defaults
        to sparse matmul (the Alon–Yuster–Zwick ingredient the paper
        names); :func:`gpu_hub_counter` counts that leg on a simulated
        GPU through the unified runtime instead.
    """
    if not (0.0 <= hub_fraction <= 1.0):
        raise ReproError(f"hub_fraction must be in [0, 1], got {hub_fraction}")
    n = graph.num_nodes
    num_hubs = int(round(n * hub_fraction))
    baseline = forward_count_cpu(graph)
    if num_hubs < 3 or n == 0:
        return HybridResult(triangles=baseline.triangles, hub_triangles=0,
                            nonhub_triangles=baseline.triangles, num_hubs=0,
                            merge_steps=baseline.merge_steps,
                            baseline_merge_steps=baseline.merge_steps)

    # Hubs = suffix of the forward order (degree, then id).
    deg = graph.degrees()
    order = np.lexsort((np.arange(n), deg))    # ascending ≺
    hub_ids = order[-num_hubs:]
    is_hub = np.zeros(n, bool)
    is_hub[hub_ids] = True

    # T_HHH on the induced hub subgraph.
    both_hub = is_hub[graph.first] & is_hub[graph.second]
    hub_graph = EdgeArray(graph.first[both_hub], graph.second[both_hub],
                          num_nodes=n, check=False)
    if hub_counter is None:
        t_hhh = matmul_count(hub_graph).triangles
    else:
        t_hhh = int(hub_counter(hub_graph))

    # Forward structures: walk *all* forward arcs against adjacency lists
    # containing only non-hub (lower) entries.
    keep = forward_mask(graph.first, graph.second, deg)
    packed_all = np.sort(pack_edges(graph.first[keep], graph.second[keep]))
    walk_u, walk_v = unpack_edges(packed_all)

    content_ok = ~is_hub[walk_u]
    adj = walk_u[content_ok]
    keys = walk_v[content_ok]
    node = build_node_ptr(keys, n)

    walk = merge_walk(adj, node, walk_u, walk_v)

    return HybridResult(triangles=walk.total_matches + t_hhh,
                        hub_triangles=t_hhh,
                        nonhub_triangles=walk.total_matches,
                        num_hubs=num_hubs,
                        merge_steps=walk.total_steps,
                        baseline_merge_steps=baseline.merge_steps)

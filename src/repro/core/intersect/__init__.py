"""repro.core.intersect — pluggable set-intersection strategies.

The thread-per-edge counting kernels factor into a **driver** (the
lockstep or compacted host loop in :mod:`repro.core.count_kernel` /
:mod:`repro.core.count_kernel_compacted`) and a **strategy** — the
per-lane intersection algorithm.  This package owns the strategies:

========================  ============================================
``merge``                 the paper's two-pointer merge (Section III-C)
``binary_search``         log-probes of the longer list (Wang/Owens)
``hash``                  TRUST-style per-vertex bucketed probes
========================  ============================================

Every strategy runs on **both** engines with bit-identical counters
(the driver owns the memory-trace grouping; the strategy owns the
per-step request multisets) and is registered as a
:class:`~repro.runtime.spec.KernelSpec` so it is launchable through
every pipeline, the wallclock bench, the sanitizer matrix, and serve.

See docs/simulator.md ("Intersection strategies") for the contract and
how to add one.
"""

from __future__ import annotations

from repro.core.intersect.base import (IntersectionStrategy, MatchHook,
                                       StrategyContext, check_per_vertex)
from repro.core.intersect.binary_search import (BinarySearchStrategy,
                                                lower_bound_round)
from repro.core.intersect.hashed import HashStrategy
from repro.core.intersect.merge import MergeStrategy
from repro.errors import ReproError

#: Registry: strategy name -> singleton instance.
STRATEGIES: dict[str, IntersectionStrategy] = {}


def register_strategy(strategy: IntersectionStrategy,
                      ) -> IntersectionStrategy:
    """Register a strategy instance under its ``name``."""
    if not strategy.name:
        raise ReproError("strategy must carry a non-empty name")
    if strategy.name in STRATEGIES:
        raise ReproError(f"strategy {strategy.name!r} already registered")
    STRATEGIES[strategy.name] = strategy
    return strategy


def get_strategy(name: str) -> IntersectionStrategy:
    """Look up a registered strategy by name (typed error on miss)."""
    try:
        return STRATEGIES[name]
    except KeyError:
        raise ReproError(
            f"unknown intersection strategy {name!r} "
            f"(registered: {', '.join(strategy_names())})") from None


def strategy_names() -> tuple[str, ...]:
    """Registered strategy names, sorted."""
    return tuple(sorted(STRATEGIES))


def strategy_for_options(options) -> IntersectionStrategy:
    """The strategy selected by ``GpuOptions.kernel``.

    ``warp_intersect`` is not a thread-per-edge strategy (it is its own
    warp-per-edge kernel body) and ``auto`` must be resolved against a
    graph first (:mod:`repro.core.autopick`); both get typed errors.
    """
    name = "merge" if options.kernel == "two_pointer" else options.kernel
    strategy = STRATEGIES.get(name)
    if strategy is None:
        raise ReproError(
            f"GpuOptions.kernel={options.kernel!r} does not select a "
            f"thread-per-edge intersection strategy (strategies: "
            f"two_pointer, {', '.join(n for n in strategy_names() if n != 'merge')}"
            "); warp_intersect dispatches through the runtime registry "
            "and 'auto' must be resolved against a graph first "
            "(repro.core.autopick.resolve_options)")
    return strategy


MERGE = register_strategy(MergeStrategy())
BINARY_SEARCH = register_strategy(BinarySearchStrategy())
HASH = register_strategy(HashStrategy())

__all__ = [
    "IntersectionStrategy", "StrategyContext", "MatchHook",
    "MergeStrategy", "BinarySearchStrategy", "HashStrategy",
    "STRATEGIES", "register_strategy", "get_strategy", "strategy_names",
    "strategy_for_options", "check_per_vertex", "lower_bound_round",
    "MERGE", "BINARY_SEARCH", "HASH",
]

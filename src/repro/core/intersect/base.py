"""The IntersectionStrategy contract and its per-launch context.

The per-edge work of every thread-per-edge counting kernel factors into
two pieces:

* a **driver** (lockstep or compacted host loop) that owns the
  grid-stride arc cursor, the warp phase machine, divergence masking,
  retirement/reconvergence, and — crucially — **all step accounting**
  (``end_step`` / ``end_step_warps`` close every tick the driver runs);
* a **strategy** that owns the set-intersection itself: which per-lane
  registers exist, what the initial loads are, and what one SIMT step
  of the intersection does to them.

A strategy never talks to the engine directly — every device access
goes through :class:`StrategyContext`, which binds the engine's read
path for the driver's execution mode (lockstep ``read`` vs compacted
``read_compacted``) and hides the AoS/SoA column stride.  Because the
driver closes each tick with its own accounting call, strategy loads
are always covered: the simulator invariant "reads are followed by an
``end_step``" holds by construction of the driver loop, not per call
site.

Strategies operate on **dense** register vectors: the driver gathers
the live lanes' registers (views for the compacted pool, copies for the
lockstep register file), calls :meth:`IntersectionStrategy.step`, and
scatters results back.  ``step`` mutates the vectors in place and
returns the lanes still mid-intersection.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.options import GpuOptions
from repro.core.preprocess import PreprocessResult
from repro.errors import ReproError
from repro.gpusim.memory import DeviceBuffer, DeviceMemory
from repro.gpusim.simt import SimtEngine


class StrategyContext:
    """Per-launch strategy state: bound read path + layout facts.

    Built once per kernel launch by
    :meth:`IntersectionStrategy.prepare`; carries the engine handle,
    the preprocess buffers, the execution-mode read function, and a
    2·T scratch pair for batched index/lane staging (shared by both
    drivers so the merge step's read batch is allocation-free).
    """

    def __init__(self, engine: SimtEngine, pre: PreprocessResult,
                 options: GpuOptions, memory: DeviceMemory | None,
                 compacted: bool) -> None:
        self.engine = engine
        self.pre = pre
        self.options = options
        self.memory = memory
        self.compacted = compacted
        self.unzipped = pre.aos is None
        if self.unzipped:
            self.adj: DeviceBuffer = pre.adj
            self.keys: DeviceBuffer = pre.keys
        else:
            self.adj = self.keys = pre.aos
        self.node = pre.node
        self._read: Callable[..., np.ndarray] = (
            engine.read_compacted if compacted else engine.read)
        self._ws_shift = engine.warp_size.bit_length() - 1
        self._num_warps = engine.num_warps
        T = engine.num_threads
        # Scratch for batched reads (index column, lane column).
        self.sc_idx = np.empty(2 * T, np.int64)
        self.sc_lane = np.empty(2 * T, np.int64)

    # -------------------------- device loads -------------------------- #

    def adj_load(self, indices: np.ndarray,
                 lanes: np.ndarray) -> np.ndarray:
        """Adjacency-content read ``edge[idx]`` (stride-2 under AoS).

        Accounting is the calling driver's: the tick this load issues
        in is closed by the driver's ``end_step``/``end_step_warps``.
        """
        if self.unzipped:
            return self._read(self.adj, indices, lanes)
        return self._read(self.adj, 2 * indices, lanes)

    def key_load(self, indices: np.ndarray,
                 lanes: np.ndarray) -> np.ndarray:
        """Edge-key read ``edge[m + idx]`` (stride-2, offset 1 in AoS)."""
        if self.unzipped:
            return self._read(self.keys, indices, lanes)
        return self._read(self.keys, 2 * indices + 1, lanes)

    def buf_load(self, buf: DeviceBuffer, indices: np.ndarray,
                 lanes: np.ndarray) -> np.ndarray:
        """Read from a strategy-owned buffer (e.g. hash tables)."""
        return self._read(buf, indices, lanes)

    # -------------------------- accounting ---------------------------- #

    def account(self, kind: str, lanes: np.ndarray,
                instructions: int) -> None:
        """Close a strategy-issued tick (build passes, not step loops).

        Driver ticks are closed by the driver; a strategy only calls
        this for work it runs *outside* the driver loop — the hash
        build pass — where it must do its own warp accounting.
        """
        if self.compacted:
            counts = np.bincount(np.asarray(lanes) >> self._ws_shift,
                                 minlength=self._num_warps)
            warps = np.flatnonzero(counts)
            self.engine.end_step_warps(kind, warps, counts[warps],
                                       instructions)
        else:
            self.engine.end_step(kind, lanes, instructions)


#: Callback the merge strategy uses for local-triangle accumulation:
#: ``on_match(matched_positions, matched_values)`` where positions
#: index into the dense step vectors.
MatchHook = Callable[[np.ndarray, np.ndarray], None]


class IntersectionStrategy:
    """One set-intersection algorithm, pluggable into both drivers.

    Class attributes describe the register file and the timing model;
    the three methods are the lifecycle: ``prepare`` once per launch,
    ``begin`` once per arc batch (inside the driver's setup tick),
    ``step`` once per merge-loop tick, ``finish`` at teardown.
    """

    #: registry key (also the ``GpuOptions.kernel`` value).
    name: str = ""
    #: warp-step kind recorded for each intersection step
    #: (``KernelReport.warp_steps`` key and hostprof section).
    step_kind: str = ""
    #: per-lane register names; the drivers allocate one int64 vector
    #: (lockstep: full-T array, compacted: pool column) per name.
    registers: tuple[str, ...] = ()
    #: instruction estimate charged per setup tick / per step tick.
    setup_instructions: int = 0
    step_instructions: int = 0
    #: whether the strategy can report matched corners for the
    #: local-triangle (per-vertex) extension.
    supports_per_vertex: bool = False

    def prepare(self, engine: SimtEngine, pre: PreprocessResult,
                options: GpuOptions, memory: DeviceMemory | None,
                compacted: bool) -> StrategyContext:
        """Build the launch context (and any device-resident tables)."""
        return StrategyContext(engine, pre, options, memory, compacted)

    def begin(self, ctx: StrategyContext, lanes: np.ndarray,
              u: np.ndarray, v: np.ndarray,
              nu: np.ndarray, nu1: np.ndarray,
              nv: np.ndarray, nv1: np.ndarray,
              ) -> tuple[dict[str, np.ndarray], np.ndarray]:
        """Initial loads + register init for arcs ``(u, v)`` on ``lanes``.

        ``nu:nu1`` and ``nv:nv1`` bound the two adjacency lists.
        Returns ``(columns, active)``: one length-``k`` vector per
        register name, and the lanes whose intersection has work to do.
        """
        raise NotImplementedError

    def step(self, ctx: StrategyContext, regs: dict[str, np.ndarray],
             lanes: np.ndarray, count: np.ndarray,
             on_match: MatchHook | None) -> np.ndarray:
        """One SIMT intersection step over the dense live-lane vectors.

        Mutates ``regs``/``count`` in place; returns the boolean mask
        of lanes still running.  ``on_match`` is only passed when
        ``supports_per_vertex`` (the local-triangle corner hook).
        """
        raise NotImplementedError

    def finish(self, ctx: StrategyContext) -> None:
        """Release strategy-owned device buffers (reverse alloc order)."""


def check_per_vertex(strategy: IntersectionStrategy,
                     per_vertex_buf: DeviceBuffer | None) -> bool:
    """Validate the local-triangle hook against the strategy."""
    if per_vertex_buf is None:
        return False
    if not strategy.supports_per_vertex:
        raise ReproError(
            f"kernel {strategy.name!r} does not support per-vertex "
            "(local triangle) accumulation; use the merge strategy "
            "(GpuOptions.kernel='two_pointer')")
    return True

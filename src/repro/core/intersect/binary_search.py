"""Binary-search intersection: log-probes of the longer list.

The Wang/Owens comparative study (PAPERS.md) identifies binary-search
intersection as the merge alternative that wins when one endpoint's
list is much longer than the other's: iterate the *shorter* list and
binary-search each element in the *longer* one — ``O(min·log max)``
scattered reads instead of the merge's ``O(|A|+|B|)`` streaming reads.

Divergence is modeled faithfully: every SIMT step issues one probe per
still-searching lane, lanes whose searches converge early sit masked
until the warp's slowest search finishes a round, and a lane only
reloads its next target (restarting the search) in the step its current
search concludes — so a warp's step count is driven by its longest
``log2`` chain, exactly the behaviour the simulator's warp accounting
prices.

The searches are *monotone*: adjacency lists are sorted ascending, so
each concluded target leaves its insertion point behind as the floor of
the next search (``lo`` persists, only ``hi`` resets).  This is the
standard sorted-probe refinement and cuts deep re-searches of the same
prefix.

:func:`lower_bound_round` is the one-round kernel shared with the
warp-per-edge comparator (:mod:`repro.core.warp_intersect_kernel`),
which keeps the two binary searches in this codebase literally the
same code.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.intersect.base import (IntersectionStrategy, MatchHook,
                                       StrategyContext)
from repro.gpusim.timing import SETUP_INSTRUCTIONS

#: Per-step instruction estimate: compare + two bound updates +
#: conclude test + conditional target reload issue.
SEARCH_STEP_INSTRUCTIONS = 9


def lower_bound_round(read_adj: Callable[[np.ndarray, np.ndarray],
                                         np.ndarray],
                      s_lo: np.ndarray, s_hi: np.ndarray,
                      targets: np.ndarray, lanes: np.ndarray,
                      ) -> np.ndarray:
    """One vectorized lower-bound bisection round, in place.

    For every lane with an open interval (``s_lo < s_hi``), probes the
    midpoint through ``read_adj(indices, lanes)`` and halves the
    interval toward ``lower_bound(targets)``.  Returns the positions
    probed this round (empty once every search has converged) so the
    caller can account the step and count the probes.
    """
    act = np.flatnonzero(s_lo < s_hi)
    if not len(act):
        return act
    mid = (s_lo[act] + s_hi[act]) // 2
    vals = read_adj(mid, lanes[act]).astype(np.int64)
    below = vals < targets[act]
    s_lo[act] = np.where(below, mid + 1, s_lo[act])
    s_hi[act] = np.where(below, s_hi[act], mid)
    return act


class BinarySearchStrategy(IntersectionStrategy):
    """Probe the shorter list's elements into the longer list."""

    name = "binary_search"
    step_kind = "search"
    registers = ("s_it", "s_end", "lo", "hi", "target", "l_hi")
    setup_instructions = SETUP_INSTRUCTIONS
    step_instructions = SEARCH_STEP_INSTRUCTIONS

    def begin(self, ctx: StrategyContext, lanes: np.ndarray,
              u: np.ndarray, v: np.ndarray,
              nu: np.ndarray, nu1: np.ndarray,
              nv: np.ndarray, nv1: np.ndarray,
              ) -> tuple[dict[str, np.ndarray], np.ndarray]:
        u_short = (nu1 - nu) <= (nv1 - nv)
        slo = np.where(u_short, nu, nv)
        send = np.where(u_short, nu1, nv1)
        llo = np.where(u_short, nv, nu)
        lhi = np.where(u_short, nv1, nu1)
        # Unconditional first-target load, mirroring the merge listing's
        # unconditional head loads; an empty short list reads the pad
        # slot (slo == one past the last arc at most).
        target = ctx.adj_load(slo, lanes).astype(np.int64)
        cols = {"s_it": slo, "s_end": send, "lo": llo, "hi": lhi,
                "target": target, "l_hi": lhi}
        return cols, (slo < send) & (llo < lhi)

    def step(self, ctx: StrategyContext, regs: dict[str, np.ndarray],
             lanes: np.ndarray, count: np.ndarray,
             on_match: MatchHook | None) -> np.ndarray:
        sit = regs["s_it"]
        send = regs["s_end"]
        lo = regs["lo"]
        hi = regs["hi"]
        target = regs["target"]
        l_hi = regs["l_hi"]
        # Every live lane has an open interval (the driver only steps
        # lanes this strategy reported still-running).
        mid = (lo + hi) // 2
        vals = ctx.adj_load(mid, lanes).astype(np.int64)
        eq = vals == target
        below = vals < target
        count += eq
        lo[:] = np.where(below, mid + 1, lo)
        hi[:] = np.where(below, hi, mid)
        # Monotone floor: the next target is strictly larger, so its
        # lower bound can never fall left of this one's conclusion.
        lo[eq] = mid[eq] + 1
        done = eq | (lo >= hi)
        sit += done
        reload = done & (sit < send)
        if reload.any():
            ir = np.flatnonzero(reload)
            target[ir] = ctx.adj_load(sit[ir], lanes[ir]).astype(np.int64)
            hi[ir] = l_hi[ir]
        # A reloaded lane with a closed interval means its floor already
        # passed the list's end: every remaining target is larger than
        # the whole long list, so the lane retires immediately.
        return ~done | (reload & (lo < hi))

"""Hash intersection: TRUST-style per-vertex bucketed probes.

TRUST (PAPERS.md) builds its whole counter on vertex-centric hashing:
give every vertex ``w`` a power-of-two bucket array sized to its
degree, scatter ``w``'s adjacency list into buckets by low bits, then
probe each candidate neighbor with ``O(1)`` expected reads instead of
a merge walk or a ``log``-probe chain.

This strategy follows that design on the simulator:

* **Build pass** (once per launch, in :meth:`HashStrategy.prepare`):
  per-vertex bucket counts are the next power of two of the degree, so
  the hash is the identity on the low bits — no multiplies on the
  probe path, exactly TRUST's choice.  Three device tables are built:
  ``hash_vb_base`` (per-vertex bucket-array base), ``hash_bucket_ptr``
  (CSR over bucket contents) and ``hash_entries`` (bucket-sorted
  adjacency values, ascending within each bucket for early exit).
  Layout is computed host-side, thrust-style — like the preprocess
  sort — but every device byte is honest: the pass re-reads each arc
  through the engine (content + key columns) and writes every table
  slot through ``engine.write``, charged to the kernel timeline as
  ``hash_build`` warp steps, so initcheck coverage and the DRAM/cache
  traffic of the build are modeled, not waved away.
* **Probe loop** (the strategy steps): each lane walks the *shorter*
  endpoint list and probes the *longer* endpoint's buckets — fetch the
  bucket bounds (one step), then scan the bucket one entry per step
  with ascending early exit.  A concluding lane reloads its next
  target in the same step, keeping warp divergence and the per-step
  read multisets explicit.

Requires a :class:`~repro.gpusim.memory.DeviceMemory` (the launch
path passes it through ``dispatch_kernel``); the tables are freed in
reverse allocation order at ``finish`` so repeated dispatches see
identical device addresses (the allocator reclaims LIFO suffixes).
"""

from __future__ import annotations

import numpy as np

from repro.core.intersect.base import (IntersectionStrategy, MatchHook,
                                       StrategyContext)
from repro.core.options import GpuOptions
from repro.core.preprocess import PreprocessResult
from repro.errors import ReproError
from repro.gpusim.memory import DeviceMemory
from repro.gpusim.simt import SimtEngine
from repro.gpusim.timing import SETUP_INSTRUCTIONS

#: Per-step instruction estimate: bucket-bounds/entry compare + cursor
#: bump + conclude test + conditional target reload issue.
HASH_STEP_INSTRUCTIONS = 12
#: Per-build-step estimate: arc load + hash + scatter-store issue.
HASH_BUILD_INSTRUCTIONS = 10


def pow2_ceil(values: np.ndarray) -> np.ndarray:
    """Smallest power of two ``>= max(v, 1)``, elementwise and exact.

    Uses the ``frexp`` exponent of ``v - 1`` (exact for every degree a
    32-bit vertex id graph can produce), avoiding a Python-level loop.
    """
    v = np.maximum(np.asarray(values, np.int64), 1) - 1
    exp = np.frexp(v.astype(np.float64))[1].astype(np.int64)
    return np.int64(1) << exp


class HashStrategy(IntersectionStrategy):
    """Bucketed hash probes of the longer list, built per launch."""

    name = "hash"
    step_kind = "probe"
    registers = ("s_it", "s_end", "target", "vb", "nbmask",
                 "e_it", "e_end")
    setup_instructions = SETUP_INSTRUCTIONS
    step_instructions = HASH_STEP_INSTRUCTIONS

    def prepare(self, engine: SimtEngine, pre: PreprocessResult,
                options: GpuOptions, memory: DeviceMemory | None,
                compacted: bool) -> StrategyContext:
        if memory is None:
            raise ReproError(
                "the hash kernel builds device-resident bucket tables; "
                "pass the launch's DeviceMemory through "
                "dispatch_kernel(..., memory=...)")
        ctx = StrategyContext(engine, pre, options, memory, compacted)

        # ---- host-side layout (thrust-style orchestration) ---------- #
        n_nodes = pre.num_nodes
        m = pre.num_forward_arcs
        node_host = np.asarray(pre.node.data[:n_nodes + 1], np.int64)
        deg = np.diff(node_host)
        nb = pow2_ceil(deg)
        vb_base = np.zeros(n_nodes + 1, np.int64)
        np.cumsum(nb, out=vb_base[1:])
        nbtot = int(vb_base[-1])
        if pre.aos is None:
            x = np.asarray(pre.adj.data[:m], np.int64)
            w = np.asarray(pre.keys.data[:m], np.int64)
        else:
            x = np.asarray(pre.aos.data[0:2 * m:2], np.int64)
            w = np.asarray(pre.aos.data[1:2 * m:2], np.int64)
        slot = vb_base[w] + (x & (nb[w] - 1))
        order = np.lexsort((x, slot))    # ascending within each bucket
        pos = np.empty(m, np.int64)
        pos[order] = np.arange(m)
        bucket_ptr = np.zeros(nbtot + 1, np.int64)
        np.cumsum(np.bincount(slot, minlength=nbtot), out=bucket_ptr[1:])

        # ---- device tables, written through the model --------------- #
        vb_buf = memory.alloc_empty("hash_vb_base", n_nodes + 1, np.int64)
        ptr_buf = memory.alloc_empty("hash_bucket_ptr", nbtot + 1, np.int64)
        ent_buf = memory.alloc_empty("hash_entries", max(m, 1), np.int64)
        T = engine.num_threads
        # Scatter pass: grid-stride over arcs, each step re-reads the
        # arc (content + key) and stores the content at its bucket
        # position.  Distinct targets per step: racecheck-clean.
        for c in range(0, m, T):
            idx = np.arange(c, min(c + T, m), dtype=np.int64)
            ln = idx - c
            xv = ctx.adj_load(idx, ln)
            ctx.key_load(idx, ln)        # the hash of the key column
            # ``pos`` is a permutation of [0, m): every entry slot is
            # written exactly once across all chunks — a deliberate
            # data-indexed scatter with provably distinct targets.
            engine.write(  # san-ok: SAN201
                ent_buf, pos[idx], xv.astype(np.int64), ln)
            ctx.account("hash_build", ln, HASH_BUILD_INSTRUCTIONS)
        # Table stores (the scan results): every slot covered, so both
        # pointer tables are initcheck-valid end to end.
        for table_buf, table in ((ptr_buf, bucket_ptr),
                                 (vb_buf, vb_base)):
            for c in range(0, len(table), T):
                idx = np.arange(c, min(c + T, len(table)), dtype=np.int64)
                ln = idx - c
                engine.write(table_buf, idx, table[idx], ln)
                ctx.account("hash_build", ln, HASH_BUILD_INSTRUCTIONS)
        ctx.hash_vb = vb_buf
        ctx.hash_ptr = ptr_buf
        ctx.hash_entries = ent_buf
        return ctx

    def finish(self, ctx: StrategyContext) -> None:
        # Reverse allocation order: each free reclaims the allocator's
        # top, so a re-dispatch allocates at identical addresses.
        assert ctx.memory is not None
        ctx.memory.free(ctx.hash_entries)
        ctx.memory.free(ctx.hash_ptr)
        ctx.memory.free(ctx.hash_vb)

    def begin(self, ctx: StrategyContext, lanes: np.ndarray,
              u: np.ndarray, v: np.ndarray,
              nu: np.ndarray, nu1: np.ndarray,
              nv: np.ndarray, nv1: np.ndarray,
              ) -> tuple[dict[str, np.ndarray], np.ndarray]:
        u_short = (nu1 - nu) <= (nv1 - nv)
        slo = np.where(u_short, nu, nv)
        send = np.where(u_short, nu1, nv1)
        llo = np.where(u_short, nv, nu)
        lhi = np.where(u_short, nv1, nu1)
        w_long = np.where(u_short, v, u)   # probe the longer side's table
        vb = ctx.buf_load(ctx.hash_vb, w_long, lanes).astype(np.int64)
        nbmask = pow2_ceil(lhi - llo) - 1
        # Unconditional first-target load, mirroring the merge listing's
        # unconditional head loads (pad-safe on an empty short list).
        target = ctx.adj_load(slo, lanes).astype(np.int64)
        k = len(lanes)
        cols = {"s_it": slo, "s_end": send, "target": target,
                "vb": vb, "nbmask": nbmask,
                "e_it": np.full(k, -1, np.int64),
                "e_end": np.full(k, -1, np.int64)}
        return cols, (slo < send) & (llo < lhi)

    def step(self, ctx: StrategyContext, regs: dict[str, np.ndarray],
             lanes: np.ndarray, count: np.ndarray,
             on_match: MatchHook | None) -> np.ndarray:
        sit = regs["s_it"]
        send = regs["s_end"]
        target = regs["target"]
        vb = regs["vb"]
        nbmask = regs["nbmask"]
        e_it = regs["e_it"]
        e_end = regs["e_end"]
        k = len(lanes)
        # Phase A — lanes starting a fresh target fetch their bucket
        # bounds (two pointer-table reads, batched into one call).
        fresh = e_it < 0
        if fresh.any():
            ia = np.flatnonzero(fresh)
            slot = vb[ia] + (target[ia] & nbmask[ia])
            pp = ctx.buf_load(ctx.hash_ptr,
                              np.concatenate([slot, slot + 1]),
                              np.concatenate([lanes[ia], lanes[ia]])
                              ).astype(np.int64)
            ka = len(ia)
            e_it[ia] = pp[:ka]
            e_end[ia] = pp[ka:]
        # Phase B — scan one bucket entry (ascending: early exit past
        # the target).  Fused with phase A: a fresh lane probes its
        # first entry in the same step.
        done_t = np.ones(k, bool)       # empty buckets conclude at once
        probe = e_it < e_end
        if probe.any():
            ib = np.flatnonzero(probe)
            vals = ctx.buf_load(ctx.hash_entries, e_it[ib],
                                lanes[ib]).astype(np.int64)
            hit = vals == target[ib]
            count[ib] += hit
            e_it[ib] += 1
            done_t[ib] = hit | (vals > target[ib]) | (e_it[ib] >= e_end[ib])
        # Conclusion: advance to the next short-list element; reloading
        # lanes re-enter phase A next step.
        sit += done_t
        reload = done_t & (sit < send)
        if reload.any():
            ir = np.flatnonzero(reload)
            target[ir] = ctx.adj_load(sit[ir], lanes[ir]).astype(np.int64)
            e_it[ir] = -1
            e_end[ir] = -1
        return ~done_t | reload

"""The paper's two-pointer merge intersection as a strategy.

This is Section III-C's ``CountTriangles`` inner loop, lifted verbatim
out of the two engine bodies: compare the heads of both sorted
adjacency lists, count on equality, advance the smaller side(s).  The
two merge variants (Section III-D3) are carried by the launch options:
``preliminary`` re-reads both heads every iteration, ``final`` reads
only the pointer(s) that advanced — landing one past the end on
exhausted lists, which the preprocess pad slot absorbs.

Bit-identity contract: the loads this strategy issues — their indices,
lanes, per-tick grouping and order — are exactly those of the
pre-refactor kernel bodies, so every cache/coalescing counter pinned in
``tests/golden_runtime_counters.json`` is unchanged.  Treat any edit
here as a counter-breaking change.
"""

from __future__ import annotations

import numpy as np

from repro.core.intersect.base import (IntersectionStrategy, MatchHook,
                                       StrategyContext)
from repro.core.options import GpuOptions
from repro.core.preprocess import PreprocessResult
from repro.gpusim.memory import DeviceMemory
from repro.gpusim.simt import SimtEngine
from repro.gpusim.timing import MERGE_INSTRUCTIONS, SETUP_INSTRUCTIONS


class MergeStrategy(IntersectionStrategy):
    """Two-pointer merge: ``O(|A| + |B|)`` streaming reads per edge."""

    name = "merge"
    step_kind = "merge"
    registers = ("u_it", "u_end", "v_it", "v_end", "a", "b")
    setup_instructions = SETUP_INSTRUCTIONS
    step_instructions = MERGE_INSTRUCTIONS
    supports_per_vertex = True

    def prepare(self, engine: SimtEngine, pre: PreprocessResult,
                options: GpuOptions, memory: DeviceMemory | None,
                compacted: bool) -> StrategyContext:
        ctx = StrategyContext(engine, pre, options, memory, compacted)
        ctx.final_variant = options.merge_variant == "final"
        return ctx

    def begin(self, ctx: StrategyContext, lanes: np.ndarray,
              u: np.ndarray, v: np.ndarray,
              nu: np.ndarray, nu1: np.ndarray,
              nv: np.ndarray, nv1: np.ndarray,
              ) -> tuple[dict[str, np.ndarray], np.ndarray]:
        k = len(lanes)
        # Unconditional initial loads, as in the listing (issued even
        # when a list is empty, exactly as compiled).
        ab = ctx.adj_load(np.concatenate([nu, nv]),
                          np.concatenate([lanes, lanes]))
        cols = {"u_it": nu, "u_end": nu1, "v_it": nv, "v_end": nv1,
                "a": ab[:k], "b": ab[k:]}
        return cols, (nu < nu1) & (nv < nv1)

    def step(self, ctx: StrategyContext, regs: dict[str, np.ndarray],
             lanes: np.ndarray, count: np.ndarray,
             on_match: MatchHook | None) -> np.ndarray:
        uit = regs["u_it"]
        uend = regs["u_end"]
        vit = regs["v_it"]
        vend = regs["v_end"]
        a = regs["a"]
        b = regs["b"]
        n = len(lanes)
        if not ctx.final_variant:
            # Preliminary variant: both list heads re-read every
            # iteration (two loads per active lane).
            ab = ctx.adj_load(np.concatenate([uit, vit]),
                              np.concatenate([lanes, lanes]))
            a[:] = ab[:n]
            b[:] = ab[n:]
        le = a <= b
        ge = a >= b
        eq = le & ge
        count += eq
        if on_match is not None and eq.any():
            idx = np.flatnonzero(eq)
            on_match(idx, a[idx])
        uit += le
        vit += ge
        if ctx.final_variant:
            # Final variant: read only what advanced — one load per
            # iteration unless a triangle was found (pad slot absorbs
            # the one-past-the-end read, Section III-D3).  Staged via
            # the context scratch: no per-tick concatenate allocations.
            il = np.flatnonzero(le)
            ig = np.flatnonzero(ge)
            k1 = len(il)
            kk = k1 + len(ig)
            np.take(uit, il, out=ctx.sc_idx[:k1])
            np.take(vit, ig, out=ctx.sc_idx[k1:kk])
            np.take(lanes, il, out=ctx.sc_lane[:k1])
            np.take(lanes, ig, out=ctx.sc_lane[k1:kk])
            vals = ctx.adj_load(ctx.sc_idx[:kk], ctx.sc_lane[:kk])
            a[il] = vals[:k1]
            b[ig] = vals[k1:kk]
        still = uit < uend
        still &= vit < vend
        return still

"""Per-vertex triangle counts and clustering coefficients on the GPU.

The comparison target in Section V (Leist et al. [13]) computes
*clustering coefficients*, which need the number of triangles **through
each vertex**, not just the total.  The paper notes its counting
algorithm gives "at most two times advantage" to account for that; this
module closes the gap properly — the forward kernel extended with one
``atomicAdd`` per triangle corner produces exact local counts in a
single pass, and the coefficients follow from the degree sequence the
preprocessing already computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.options import GpuOptions
from repro.errors import ReproError
from repro.graphs.edgearray import EdgeArray
from repro.gpusim.device import DeviceSpec, GTX_980
from repro.gpusim.memory import DeviceMemory
from repro.runtime import LaunchPlan, launch


@dataclass
class LocalCountResult:
    """Per-vertex triangle counts plus the derived coefficients."""

    local_triangles: np.ndarray      # int64, length num_nodes
    triangles: int                   # global total (= sum / 3)
    local_clustering: np.ndarray     # float64, length num_nodes
    average_clustering: float
    transitivity: float
    total_ms: float
    sanitizer_reports: list = field(default_factory=list)


def gpu_local_counts(graph: EdgeArray,
                     device: DeviceSpec = GTX_980,
                     options: GpuOptions = GpuOptions(),
                     memory: DeviceMemory | None = None) -> LocalCountResult:
    """Count triangles through every vertex on one simulated device.

    Same pipeline as :func:`repro.core.forward_gpu.gpu_count_triangles`
    plus a ``num_nodes``-long accumulator the kernel atomically updates
    on every match — the ``"local"`` :class:`~repro.runtime.KernelSpec`
    (the merge kernel regardless of ``options.kernel``; the
    warp-intersect comparator has no ``atomicAdd`` path).
    """
    run = launch(LaunchPlan(kernel="local", graph=graph, device=device,
                            options=options, memory=memory))
    total = run.triangles
    local = run.per_vertex
    assert local is not None
    if int(local.sum()) != 3 * total:
        raise ReproError(
            f"corner accumulation {int(local.sum())} != 3 × {total}")

    deg = graph.degrees()
    wedges = deg * (deg - 1) // 2
    coeff = np.zeros(graph.num_nodes, np.float64)
    mask = wedges > 0
    coeff[mask] = local[mask] / wedges[mask]
    total_wedges = int(wedges.sum())

    return LocalCountResult(
        local_triangles=local,
        triangles=total,
        local_clustering=coeff,
        average_clustering=float(coeff.mean()) if graph.num_nodes else 0.0,
        transitivity=(3.0 * total / total_wedges) if total_wedges else 0.0,
        total_ms=run.timeline.total_ms,
        sanitizer_reports=run.sanitizer_reports)

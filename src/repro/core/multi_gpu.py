"""Multi-GPU counting (paper Section III-E).

The paper's scheme verbatim: run the whole preprocessing phase on one
device, copy the (forward, compacted) edge columns and the node array to
the remaining devices, and let device *d* count its contiguous slice of
the arcs.  Counting time is the slowest device's kernel; the serial
preprocessing bounds the speedup by Amdahl's law — the paper reports
preprocessing fractions of 0.08–0.76, hence 4-GPU speedups between 3.23
and 1.22.
"""

from __future__ import annotations

import numpy as np

from repro.core.forward_gpu import GpuRunResult
from repro.core.options import GpuOptions
from repro.core.preprocess import PreprocessResult, preprocess
from repro.errors import ContextMismatchError, ReproError
from repro.graphs.edgearray import EdgeArray
from repro.gpusim import thrustlike
from repro.gpusim.device import DeviceSpec, TESLA_C2050
from repro.gpusim.multigpu import MultiGpuContext
from repro.runtime import (LaunchPlan, StreamTimeline, launch,
                           spec_for_options)
from repro.types import COUNT_DTYPE

#: Valid multi-GPU exchange schedules (see :mod:`repro.gpusim.multigpu`).
EXCHANGE_MODES = ("broadcast", "ring")


def multi_gpu_count_triangles(graph: EdgeArray,
                              device: DeviceSpec = TESLA_C2050,
                              num_gpus: int = 4,
                              options: GpuOptions = GpuOptions(),
                              context: MultiGpuContext | None = None,
                              exchange: str = "broadcast",
                              ) -> GpuRunResult:
    """Count triangles on ``num_gpus`` identical simulated devices.

    ``exchange`` selects the copy schedule: ``"broadcast"`` (default) is
    the paper's one-source scheme and keeps the reported serial totals
    the paper's protocol; ``"ring"`` is the chunked store-and-forward
    exchange whose per-link pipelining shows up in the timeline's
    measured ``makespan_ms``.  Triangle counts and kernel counters are
    identical between the two (the exchange only moves bytes).

    Returns a :class:`GpuRunResult` whose ``kernel_report``/``timing``
    are the *slowest* device's (it decides the counting phase) and whose
    ``per_device`` list carries every card's (report, timing) pair.
    """
    if exchange not in EXCHANGE_MODES:
        raise ReproError(f"exchange must be one of {EXCHANGE_MODES}, "
                         f"got {exchange!r}")
    if context is None:
        context = MultiGpuContext(device, num_gpus)
    elif context.count != num_gpus or context.device.name != device.name:
        raise ContextMismatchError(actual_device=context.device.name,
                                   expected_device=device.name,
                                   actual_count=context.count,
                                   expected_count=num_gpus)

    from repro.core.autopick import resolve_options
    options = resolve_options(graph, options)

    timeline = StreamTimeline()
    pre = preprocess(graph, device, context.primary, timeline, options)

    # Exchange the preprocessed structures (device 0 already holds
    # them).  In broadcast mode each destination card has its own PCIe
    # lane in the model, so the context places device d's copies on
    # stream 1+d — reported totals stay the paper's serial protocol, and
    # the stream schedule (timeline.overlap_savings_ms) says what
    # concurrent copies buy.  Ring mode forwards chunks card-to-card on
    # per-link streams with wait_for dependency edges instead.
    copy = (context.ring_broadcast if exchange == "ring"
            else context.broadcast)
    if pre.aos is None:
        adj_all = copy(pre.adj, timeline)
        keys_all = copy(pre.keys, timeline)
        aos_all = [None] * num_gpus
    else:
        aos_all = copy(pre.aos, timeline)
        adj_all = keys_all = [None] * num_gpus
    node_all = copy(pre.node, timeline)
    timeline.barrier()   # kernels wait for their card's copies

    ranges = context.partition_ranges(pre.num_forward_arcs)
    spec = spec_for_options(options)
    triangles = 0
    per_device = []
    count_ms = 0.0
    slowest = None

    for d, (lo, hi) in enumerate(ranges):
        pre_d = PreprocessResult(adj=adj_all[d], keys=keys_all[d],
                                 aos=aos_all[d], node=node_all[d],
                                 num_nodes=pre.num_nodes,
                                 num_forward_arcs=pre.num_forward_arcs,
                                 used_cpu_fallback=pre.used_cpu_fallback)
        # Per-slice launch: this driver owns the aggregated timeline
        # events (max-over-devices count, overlapped reduces) and the
        # context owns teardown, so the per-launch pieces are off.
        run = launch(LaunchPlan(kernel=spec, device=device, options=options,
                                memory=context.memories[d],
                                preprocessed=pre_d, lo=lo, hi=hi,
                                result_name=f"result@dev{d}",
                                attach_sanitizer=False,
                                record_kernel_event=False,
                                reduce_timeline=False, d2h_events=False,
                                free_all=False))
        triangles += run.triangles
        per_device.append((run.report, run.timing))
        if run.timing.kernel_ms >= count_ms:
            count_ms = run.timing.kernel_ms
            slowest = (run.report, run.timing)

    # Devices count concurrently: the phase costs the slowest kernel,
    # then each device reduces its own result array (overlapped too) and
    # ships 8 bytes back.
    timeline.add(f"{spec.display_name} × {num_gpus} (max over devices)",
                 count_ms, phase="count")
    result_bytes = per_device[0][0].launch.total_threads(device) * \
        np.dtype(COUNT_DTYPE).itemsize
    timeline.add("reduce partial sums",
                 thrustlike.stream_ms(device, result_bytes, 1.0), phase="reduce")
    timeline.add("d2h results",
                 num_gpus * context.primary.d2h_ms(8), phase="reduce")
    context.free_all()

    report, timing = slowest
    return GpuRunResult(triangles=triangles, device=device, options=options,
                        timeline=timeline, kernel_report=report,
                        kernel_timing=timing,
                        used_cpu_fallback=pre.used_cpu_fallback,
                        num_forward_arcs=pre.num_forward_arcs,
                        per_device=per_device)

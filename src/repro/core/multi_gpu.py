"""Multi-GPU counting (paper Section III-E).

The paper's scheme verbatim: run the whole preprocessing phase on one
device, copy the (forward, compacted) edge columns and the node array to
the remaining devices, and let device *d* count its contiguous slice of
the arcs.  Counting time is the slowest device's kernel; the serial
preprocessing bounds the speedup by Amdahl's law — the paper reports
preprocessing fractions of 0.08–0.76, hence 4-GPU speedups between 3.23
and 1.22.
"""

from __future__ import annotations

import numpy as np

from repro.core.count_kernel import count_triangles_kernel
from repro.core.forward_gpu import GpuRunResult
from repro.core.options import GpuOptions
from repro.core.preprocess import PreprocessResult, preprocess
from repro.errors import ReproError
from repro.graphs.edgearray import EdgeArray
from repro.gpusim import thrustlike
from repro.gpusim.device import DeviceSpec, TESLA_C2050
from repro.gpusim.multigpu import MultiGpuContext
from repro.gpusim.simt import SimtEngine
from repro.gpusim.timing import Timeline, time_kernel
from repro.types import COUNT_DTYPE


def multi_gpu_count_triangles(graph: EdgeArray,
                              device: DeviceSpec = TESLA_C2050,
                              num_gpus: int = 4,
                              options: GpuOptions = GpuOptions(),
                              context: MultiGpuContext | None = None,
                              ) -> GpuRunResult:
    """Count triangles on ``num_gpus`` identical simulated devices.

    Returns a :class:`GpuRunResult` whose ``kernel_report``/``timing``
    are the *slowest* device's (it decides the counting phase) and whose
    ``per_device`` list carries every card's (report, timing) pair.
    """
    if context is None:
        context = MultiGpuContext(device, num_gpus)
    elif context.count != num_gpus or context.device.name != device.name:
        raise ReproError("context does not match device/num_gpus")

    timeline = Timeline()
    pre = preprocess(graph, device, context.primary, timeline, options)

    # Broadcast the preprocessed structures (device 0 already holds them).
    if pre.aos is None:
        adj_all = context.broadcast(pre.adj, timeline)
        keys_all = context.broadcast(pre.keys, timeline)
        aos_all = [None] * num_gpus
    else:
        aos_all = context.broadcast(pre.aos, timeline)
        adj_all = keys_all = [None] * num_gpus
    node_all = context.broadcast(pre.node, timeline)

    ranges = context.partition_ranges(pre.num_forward_arcs)
    triangles = 0
    per_device = []
    count_ms = 0.0
    slowest = None

    for d, (lo, hi) in enumerate(ranges):
        pre_d = PreprocessResult(adj=adj_all[d], keys=keys_all[d],
                                 aos=aos_all[d], node=node_all[d],
                                 num_nodes=pre.num_nodes,
                                 num_forward_arcs=pre.num_forward_arcs,
                                 used_cpu_fallback=pre.used_cpu_fallback)
        engine = SimtEngine(device, options.launch,
                            use_ro_cache=options.use_readonly_cache)
        result_buf = context.memories[d].alloc_empty(
            f"result@dev{d}", engine.num_threads, COUNT_DTYPE)
        kres = count_triangles_kernel(engine, pre_d, options, lo=lo, hi=hi,
                                      result_buf=result_buf)
        timing = time_kernel(engine.report)
        partial = thrustlike.reduce_sum(device, result_buf, None)
        if partial != kres.triangles:
            raise ReproError(f"device {d} reduce mismatch")
        triangles += partial
        per_device.append((engine.report, timing))
        if timing.kernel_ms >= count_ms:
            count_ms = timing.kernel_ms
            slowest = (engine.report, timing)

    # Devices count concurrently: the phase costs the slowest kernel,
    # then each device reduces its own result array (overlapped too) and
    # ships 8 bytes back.
    timeline.add(f"CountTriangles × {num_gpus} (max over devices)",
                 count_ms, phase="count")
    result_bytes = per_device[0][0].launch.total_threads(device) * \
        np.dtype(COUNT_DTYPE).itemsize
    timeline.add("reduce partial sums",
                 thrustlike.stream_ms(device, result_bytes, 1.0), phase="reduce")
    timeline.add("d2h results",
                 num_gpus * context.primary.d2h_ms(8), phase="reduce")
    context.free_all()

    report, timing = slowest
    return GpuRunResult(triangles=triangles, device=device, options=options,
                        timeline=timeline, kernel_report=report,
                        kernel_timing=timing,
                        used_cpu_fallback=pre.used_cpu_fallback,
                        num_forward_arcs=pre.num_forward_arcs,
                        per_device=per_device)

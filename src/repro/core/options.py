"""Pipeline configuration: every Section III-D optimization as a toggle.

The defaults reproduce the paper's *final* implementation; the ablation
benches flip one field at a time to regenerate the percentages of
Section III-D (E4–E8 in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ReproError
from repro.gpusim.simt import LaunchConfig

#: Valid values for :attr:`GpuOptions.cpu_preprocess`.
CPU_PREPROCESS_MODES = ("auto", "never", "always")
#: Valid values for :attr:`GpuOptions.merge_variant`.
MERGE_VARIANTS = ("final", "preliminary")
#: Valid values for :attr:`GpuOptions.engine`.
ENGINES = ("compacted", "lockstep")
#: Valid values for :attr:`GpuOptions.sanitize`.
SANITIZE_MODES = ("off", "report", "strict")

_KERNEL_CHOICES_CACHE: tuple[str, ...] | None = None


def _kernel_choices() -> tuple[str, ...]:
    """Valid :attr:`GpuOptions.kernel` values, from the kernel registry.

    The runtime registry is the single source of truth for kernel
    names: every registered spec's ``option_field`` is a valid choice,
    plus ``"auto"`` (resolved per graph by ``repro.core.autopick``).
    Imported lazily — the registry lives above this module in the
    layering — and cached after the first successful lookup.
    """
    global _KERNEL_CHOICES_CACHE
    if _KERNEL_CHOICES_CACHE is None:
        import repro.runtime.spec as _spec
        _KERNEL_CHOICES_CACHE = _spec.kernel_option_fields() + ("auto",)
    return _KERNEL_CHOICES_CACHE


def __getattr__(name: str) -> tuple[str, ...]:
    # Module attribute ``KERNELS`` stays importable (docs, tests, CLI
    # help) but is computed from the registry, not hard-coded here.
    if name == "KERNELS":
        return _kernel_choices()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class GpuOptions:
    """Knobs of the GPU pipeline.

    Attributes
    ----------
    unzip : bool
        Section III-D1 — counting kernel reads the edge array as SoA
        (True, 13–32% faster) or interleaved AoS (False).
    sort_as_u64 : bool
        Section III-D2 — sort packed 64-bit words with a radix sort
        (True, ≈5×) or (first, second) pairs with a comparison sort.
    merge_variant : str
        Section III-D3 — ``"final"`` reads one value per iteration when
        no triangle is found; ``"preliminary"`` reads two every
        iteration (36–48% slower).
    use_readonly_cache : bool
        Section III-D4 — route global loads through the per-SM
        read-only/texture cache (``const __restrict__``).  Ignored on
        Fermi parts, which cache global loads in L1 regardless.
    launch : LaunchConfig
        Section III-C — grid geometry; default 64 threads/block ×
        8 blocks/SM, the paper's grid-search optimum.  Its
        ``simulated_warp_size`` field is the Section III-D5 experiment.
    cpu_preprocess : str
        Section III-D6 — ``"auto"`` falls back to CPU preprocessing when
        the device reports out-of-memory (the ``†`` rows), ``"never"``
        raises instead, ``"always"`` forces the fallback path.
    kernel : str
        Counting-kernel strategy, validated against the runtime kernel
        registry (the single source of truth): ``"two_pointer"`` is the
        paper's thread-per-edge merge; ``"binary_search"`` log-probes
        the longer adjacency list; ``"hash"`` probes TRUST-style
        per-vertex bucket tables; ``"warp_intersect"`` is the Section V
        comparator's warp-per-edge parallel intersection (requires the
        SoA layout); ``"auto"`` lets ``repro.core.autopick`` choose per
        graph from the committed kernelzoo calibration.  The
        ``merge_variant`` knob applies to the merge kernels only.
    engine : str
        Host-side execution strategy of the SIMT simulator — a pure
        wall-clock knob with **no modeled effect**: ``"compacted"``
        (default) runs the active-set-compacted fast path whose per-tick
        host work scales with live lanes; ``"lockstep"`` is the original
        full-grid reference, retained as the equivalence oracle.  Both
        produce bit-identical counts and :class:`KernelReport` counters
        (enforced by ``tests/test_engine_equivalence.py``), which is why
        this field is *excluded* from :meth:`cache_key`.
    sanitize : str
        Dynamic sanitizer layer (``repro.sanitize``): ``"off"``
        (default — zero overhead, a single ``None`` check per engine
        access), ``"report"`` (record structured
        :class:`~repro.sanitize.SanitizerReport` findings and keep
        running), or ``"strict"`` (raise the matching typed error from
        :mod:`repro.errors` at the first finding).  Identity-preserving
        by contract — the checkers only observe, so
        :class:`KernelReport` counters and results are bit-identical
        with sanitize on or off; like ``engine``, the field is excluded
        from :meth:`cache_key`.
    """

    unzip: bool = True
    sort_as_u64: bool = True
    merge_variant: str = "final"
    use_readonly_cache: bool = True
    launch: LaunchConfig = field(default_factory=LaunchConfig)
    cpu_preprocess: str = "auto"
    kernel: str = "two_pointer"
    engine: str = "compacted"
    sanitize: str = "off"

    def __post_init__(self):
        if self.merge_variant not in MERGE_VARIANTS:
            raise ReproError(
                f"merge_variant must be one of {MERGE_VARIANTS}, "
                f"got {self.merge_variant!r}")
        if self.cpu_preprocess not in CPU_PREPROCESS_MODES:
            raise ReproError(
                f"cpu_preprocess must be one of {CPU_PREPROCESS_MODES}, "
                f"got {self.cpu_preprocess!r}")
        if self.kernel not in _kernel_choices():
            raise ReproError(
                f"kernel must be one of {_kernel_choices()}, "
                f"got {self.kernel!r}")
        if self.engine not in ENGINES:
            raise ReproError(
                f"engine must be one of {ENGINES}, got {self.engine!r}")
        if self.sanitize not in SANITIZE_MODES:
            raise ReproError(
                f"sanitize must be one of {SANITIZE_MODES}, "
                f"got {self.sanitize!r}")
        if self.kernel == "warp_intersect" and not self.unzip:
            raise ReproError(
                "the warp_intersect kernel requires the SoA layout "
                "(unzip=True)")

    def but(self, **changes) -> "GpuOptions":
        """A copy with the given fields replaced (ablation helper)."""
        return replace(self, **changes)

    def cache_key(self) -> tuple:
        """Stable, hashable identity of this configuration.

        The serving layer keys its preprocessed-graph cache on
        ``(graph fingerprint, options.cache_key())``; two option sets with
        equal keys produce byte-identical device-resident structures and
        identical kernel behaviour.  Every field is flattened to plain
        scalars so the key survives pickling and dict/set use regardless
        of how the nested :class:`LaunchConfig` evolves.

        ``engine`` and ``sanitize`` are deliberately absent: both change
        only how the *host* simulates (speed / checking), never what is
        simulated, so runs under any combination may share cached
        preprocessing and memoized results.
        """
        return ("gpuopts",
                self.unzip, self.sort_as_u64, self.merge_variant,
                self.use_readonly_cache, self.cpu_preprocess, self.kernel,
                self.launch.threads_per_block, self.launch.blocks_per_sm,
                self.launch.simulated_warp_size)

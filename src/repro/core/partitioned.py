"""Future-work extension #1 (paper Section VI): partitioned counting.

"…check if methods from [5], [17] can be applied … to split the graph
into subgraphs which can be processed independently.  This … would allow
to count triangles in graphs which do not fit into the GPU memory."

Scheme (Suri–Vassilvitskii / Chu–Cheng flavored, exact): partition the
vertex set into ``num_parts`` hash buckets.  Any triangle's corners span
a part-set P of size ≤ 3, so counting every induced subgraph over part
subsets Q (|Q| ≤ 3) and Möbius-inverting

    g(P) = Σ_{Q ⊆ P} (−1)^{|P|−|Q|} · f(Q),     total = Σ_{|P| ≤ 3} g(P)

gives the exact global count while every single counting call sees only
an induced subgraph — each of which can fit a memory budget the whole
graph cannot.  The redundancy (each f(Q) feeding several P's) is the
overhead the paper is unsure would pay off; the bench measures it.

Each subgraph can be counted on the CPU (default, fast) or on a
simulated GPU with a *small* memory cap — the demonstration that the
scheme lifts the paper's biggest limitation.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.cpu.forward import forward_count_cpu
from repro.errors import ReproError
from repro.graphs.edgearray import EdgeArray
from repro.types import TriangleCount


@dataclass(frozen=True)
class PartitionedResult:
    triangles: int
    num_parts: int
    subgraph_counts: int          # how many induced counting calls ran
    largest_subgraph_arcs: int    # memory high-water mark, in arcs
    redundant_arc_work: int       # Σ subgraph arcs (the splitting overhead)

    def as_triangle_count(self) -> TriangleCount:
        return TriangleCount(self.triangles)


def gpu_subgraph_counter(device=None, options=None):
    """A ``counter`` backend that runs each induced subgraph on a
    simulated GPU via the unified runtime.

    This is the demonstration the module docstring promises: point the
    partitioned scheme at a device whose memory the *whole* graph
    exceeds, and every induced-subgraph call still fits — each call is
    one full :func:`repro.runtime.launch` lifecycle (alloc, H2D,
    kernel, reduce, D2H, free) on a fresh
    :class:`~repro.gpusim.memory.DeviceMemory`.
    """
    from repro.core.autopick import resolve_options
    from repro.core.options import GpuOptions
    from repro.gpusim.device import GTX_980
    from repro.runtime import LaunchPlan, launch, spec_for_options

    device = GTX_980 if device is None else device
    options = GpuOptions() if options is None else options

    def counter(sub: EdgeArray) -> int:
        # kernel="auto" resolves per induced subgraph — partitions of a
        # skewed graph can have very different degree structure.
        opts = resolve_options(sub, options)
        return launch(LaunchPlan(kernel=spec_for_options(opts), graph=sub,
                                 device=device, options=opts)).triangles

    return counter


def partitioned_count_triangles(graph: EdgeArray,
                                num_parts: int = 4,
                                counter=None,
                                seed: int = 0) -> PartitionedResult:
    """Exact triangle count via vertex-partitioned induced subgraphs.

    Parameters
    ----------
    num_parts : int
        Number of vertex buckets p; each counting call sees at most
        3/p-ish of the graph (plus skew).
    counter : callable(EdgeArray) -> int, optional
        Counting backend per subgraph; defaults to the CPU forward
        algorithm.  :func:`gpu_subgraph_counter` supplies the GPU
        backend — counting a graph that exceeds a single device's
        memory, one runtime launch per induced subgraph.
    """
    if num_parts < 1:
        raise ReproError(f"num_parts must be >= 1, got {num_parts}")
    if counter is None:
        counter = lambda g: forward_count_cpu(g).triangles  # noqa: E731

    n = graph.num_nodes
    if num_parts == 1 or n == 0:
        t = counter(graph)
        return PartitionedResult(t, num_parts, 1, graph.num_arcs,
                                 graph.num_arcs)

    # Randomized hash partition (seeded, balanced in expectation).
    rng = np.random.default_rng(seed)
    part_of = rng.integers(0, num_parts, size=n)

    pf = part_of[graph.first]
    ps = part_of[graph.second]

    f_cache: dict[frozenset, int] = {}
    largest = 0
    total_arc_work = 0
    calls = 0

    def f(parts: frozenset) -> int:
        """Triangles of the subgraph induced by the given parts."""
        nonlocal largest, total_arc_work, calls
        if parts in f_cache:
            return f_cache[parts]
        mask = np.isin(pf, list(parts)) & np.isin(ps, list(parts))
        sub = EdgeArray(graph.first[mask], graph.second[mask],
                        num_nodes=n, check=False)
        largest = max(largest, sub.num_arcs)
        total_arc_work += sub.num_arcs
        calls += 1
        value = counter(sub)
        f_cache[parts] = value
        return value

    total = 0
    all_parts = range(num_parts)
    for size in (1, 2, 3):
        for combo in combinations(all_parts, size):
            p_set = frozenset(combo)
            # g(P): triangles whose corner support is exactly P.
            g = 0
            for q_size in range(1, size + 1):
                sign = (-1) ** (size - q_size)
                for q in combinations(sorted(p_set), q_size):
                    g += sign * f(frozenset(q))
            total += g

    return PartitionedResult(triangles=total, num_parts=num_parts,
                             subgraph_counts=calls,
                             largest_subgraph_arcs=largest,
                             redundant_arc_work=total_arc_work)

"""The 8-step preprocessing phase (paper Section III-B).

Input: the edge array (every undirected edge as two arcs, arbitrary
order) already sitting on the host.  Output: the device-resident
structures the counting kernel wants:

* the compacted, sorted *forward* arc columns (``first`` holds the
  adjacency-list content, ``second`` the grouping key — see below), and
* the *node array* over the grouping column.

Ordering subtlety reproduced faithfully: the Section III-D2 trick packs
``{int u; int v}`` structs into little-endian 64-bit words, so the radix
sort orders arcs **by second vertex, then first**.  The node array
therefore indexes runs of the *second* column, and each run's *first*
entries — the lower-ordered (by degree, then id) neighbors of that
vertex, sorted ascending — are the adjacency lists the kernel merges.
``CountTriangles``'s ``edge[u_it]`` reads land in the first column,
exactly as in the paper's CUDA listing.

Memory pressure (Section III-D6): the radix sort's double buffer makes
step 3 the peak allocation (≈ 18 bytes/arc).  When it does not fit, the
``†`` path computes degrees and removes backward arcs *on the host*
first, halving what the device must hold (≈ 9 bytes/arc).
"""

from __future__ import annotations

# repro-lint: allow=SAN101 — preprocessing is host-orchestrated device
# work (thrust calls operate on buffer payloads directly, like
# thrust::device_ptr dereferences); the counting kernel never does this.

from dataclasses import dataclass

import numpy as np

from repro.errors import OutOfDeviceMemoryError
from repro.graphs.csr import build_node_ptr
from repro.graphs.edgearray import EdgeArray
from repro.gpusim import thrustlike
from repro.gpusim.device import CpuSpec, DeviceSpec, XEON_X5650
from repro.gpusim.memory import DeviceBuffer, DeviceMemory
from repro.gpusim.timing import Timeline
from repro.types import INDEX_DTYPE, VERTEX_DTYPE, pack_edges, unpack_edges
from repro.core.options import GpuOptions

#: Radix-sort scratch: double buffer + per-element scratch, as a fraction
#: of the key buffer.  Calibrated so the paper's ``†`` rows (Orkut and
#: Kronecker 21 on the 3 GB C2050, neither on the 4 GB GTX 980) fall out
#: of the capacity arithmetic.
SORT_TEMP_FACTOR = 1.25


@dataclass
class PreprocessResult:
    """Device-resident structures handed to the counting kernel.

    Attributes
    ----------
    adj : DeviceBuffer
        The adjacency-content column (``edge[0..m')`` in the paper's
        kernel).  Padded with one sentinel element because the final
        merge variant reads one slot past a just-exhausted list.
    keys : DeviceBuffer
        The grouping column (``edge[m'..2m')``); AoS mode leaves both
        columns interleaved in :attr:`aos` instead.
    aos : DeviceBuffer or None
        Interleaved layout when ``options.unzip`` is False.
    node : DeviceBuffer
        Node array over the grouping column (n+1 entries).
    num_nodes, num_forward_arcs : int
    used_cpu_fallback : bool
        Whether the Section III-D6 path ran (the ``†`` marker).
    """

    adj: DeviceBuffer | None
    keys: DeviceBuffer | None
    aos: DeviceBuffer | None
    node: DeviceBuffer
    num_nodes: int
    num_forward_arcs: int
    used_cpu_fallback: bool


def forward_mask(first: np.ndarray, second: np.ndarray,
                 degrees: np.ndarray) -> np.ndarray:
    """Arcs that go *forward* under the paper's order: lower degree →
    higher degree, ties broken by vertex id (step 5's comparison)."""
    du = degrees[first]
    dv = degrees[second]
    return (du < dv) | ((du == dv) & (first < second))


def preprocess(graph: EdgeArray,
               device: DeviceSpec,
               memory: DeviceMemory,
               timeline: Timeline,
               options: GpuOptions = GpuOptions(),
               cpu: CpuSpec = XEON_X5650) -> PreprocessResult:
    """Run the preprocessing phase, falling back per ``options.cpu_preprocess``.

    Raises
    ------
    OutOfDeviceMemoryError
        If even the fallback path cannot fit (graph > 2× capacity), or if
        ``options.cpu_preprocess == "never"`` and the direct path OOMs.
    """
    if options.cpu_preprocess == "always":
        return _preprocess_cpu_fallback(graph, device, memory, timeline,
                                        options, cpu)
    snap = memory.snapshot()
    try:
        return _preprocess_on_device(graph, device, memory, timeline, options)
    except OutOfDeviceMemoryError:
        memory.release_new(snap)
        if options.cpu_preprocess != "auto":
            raise
        return _preprocess_cpu_fallback(graph, device, memory, timeline,
                                        options, cpu)


def device_sort(device: DeviceSpec, memory: DeviceMemory, timeline: Timeline,
                options: GpuOptions, packed: DeviceBuffer) -> None:
    """Step 3, shared by every path (including the executed pipeline in
    :mod:`repro.runtime.pipeline`): allocate the radix sort's scratch
    double buffer, sort the packed words per ``options.sort_as_u64``,
    free the scratch.  In place on ``packed``; the scratch allocation is
    part of the device-address contract (it moves every later buffer's
    address when it grows), which is why callers must not inline it."""
    temp = memory.alloc_empty("sort_temp",
                              int(packed.nbytes * SORT_TEMP_FACTOR) // 8 + 1,
                              np.uint64)
    if options.sort_as_u64:
        thrustlike.sort_u64(device, packed, timeline)
    else:
        # Comparison sort on pairs; same (second, first) order so the rest
        # of the pipeline is layout-identical — only the cost differs.
        sf, ss = unpack_edges(packed.data)
        tmp_first = DeviceBuffer("pair_first", sf, packed.device_addr)
        tmp_second = DeviceBuffer("pair_second", ss, packed.device_addr)
        thrustlike.sort_pairs(device, tmp_second, tmp_first, timeline)
        packed.data[:] = np.sort(packed.data)
    memory.free(temp)


# ---------------------------------------------------------------------- #
# the direct (all-GPU) path — steps 1..8
# ---------------------------------------------------------------------- #

def _preprocess_on_device(graph: EdgeArray, device: DeviceSpec,
                          memory: DeviceMemory, timeline: Timeline,
                          options: GpuOptions) -> PreprocessResult:
    m = graph.num_arcs

    # Step 1 — copy the edge array to the GPU (as packed words; the same
    # bytes as the AoS struct array).
    packed = memory.alloc("edges_packed", pack_edges(graph.first, graph.second))
    timeline.add("h2d edge array", memory.h2d_ms(packed.nbytes), phase="copy")

    # Step 2 — number of vertices via reduce(maximum) over both halves.
    if m:
        hi_max = int((packed.data >> np.uint64(32)).max())
        lo_max = int((packed.data & np.uint64(0xFFFFFFFF)).max())
        num_nodes = max(hi_max, lo_max) + 1
    else:
        num_nodes = graph.num_nodes
    timeline.add("reduce_max (num vertices)",
                 thrustlike.stream_ms(device, packed.nbytes, 1.0))
    num_nodes = max(num_nodes, graph.num_nodes)

    # Step 3 — sort.  The radix path needs its double buffer; this is the
    # allocation that triggers the † fallback on memory-pressed cards.
    device_sort(device, memory, timeline, options, packed)

    first, second = unpack_edges(packed.data)

    # Step 4 — node array over the grouping (second) column.
    node_full = build_node_ptr(second, num_nodes)
    timeline.add("node array", thrustlike.stream_ms(device, packed.nbytes, 2.0))
    node_buf_full = memory.alloc("node_full", node_full.astype(INDEX_DTYPE))

    # Step 5 — mark backward arcs (higher → lower under the degree order).
    degrees = np.diff(node_full).astype(np.int64)
    keep = forward_mask(first, second, degrees)
    timeline.add("mark backward",
                 thrustlike.stream_ms(device, packed.nbytes, 3.0))

    # Step 6 — remove_if compaction.
    m_fwd = thrustlike.remove_if(device, packed, ~keep, timeline)
    memory.free(node_buf_full)

    first_fwd, second_fwd = unpack_edges(packed.data[:m_fwd])

    # Steps 7–8 — layout conversion and final node array.
    result = _finalize_layout(device, memory, timeline, options,
                              first_fwd, second_fwd, num_nodes)
    memory.free(packed)
    return result


# ---------------------------------------------------------------------- #
# the † path — Section III-D6
# ---------------------------------------------------------------------- #

def _preprocess_cpu_fallback(graph: EdgeArray, device: DeviceSpec,
                             memory: DeviceMemory, timeline: Timeline,
                             options: GpuOptions,
                             cpu: CpuSpec) -> PreprocessResult:
    m = graph.num_arcs
    num_nodes = graph.num_nodes

    # Host side: degrees (one counting pass) + forward filter (one pass).
    degrees = graph.degrees()
    keep = forward_mask(graph.first, graph.second, degrees)
    host_elems = 2 * m  # two passes over the arc list
    timeline.add("cpu degrees + remove backward",
                 host_elems * cpu.ns_per_pass_element * 1e-6)

    first_fwd = graph.first[keep]
    second_fwd = graph.second[keep]
    m_fwd = len(first_fwd)

    # Device side: copy the halved array, then sort / unzip / node array.
    packed = memory.alloc("edges_packed_fwd", pack_edges(first_fwd, second_fwd))
    timeline.add("h2d edge array (forward only)",
                 memory.h2d_ms(packed.nbytes), phase="copy")

    device_sort(device, memory, timeline, options, packed)

    first_s, second_s = unpack_edges(packed.data)
    result = _finalize_layout(device, memory, timeline, options,
                              first_s, second_s, num_nodes,
                              used_cpu_fallback=True)
    memory.free(packed)
    return result


# ---------------------------------------------------------------------- #
# steps 7–8 shared tail
# ---------------------------------------------------------------------- #

def _finalize_layout(device: DeviceSpec, memory: DeviceMemory,
                     timeline: Timeline, options: GpuOptions,
                     first_fwd: np.ndarray, second_fwd: np.ndarray,
                     num_nodes: int,
                     used_cpu_fallback: bool = False) -> PreprocessResult:
    m_fwd = len(first_fwd)
    node = build_node_ptr(second_fwd, num_nodes)
    timeline.add("recalculate node array",
                 thrustlike.stream_ms(device, 8 * m_fwd, 2.0))
    node_buf = memory.alloc("node", node.astype(INDEX_DTYPE))

    if options.unzip:
        # Step 7 — SoA.  Pad the adjacency column: the final merge loop
        # reads edge[++it] once past an exhausted list (harmless in CUDA
        # because the allocation is larger; explicit here).
        adj = memory.alloc("adj",
                           np.concatenate([first_fwd,
                                           np.zeros(1, VERTEX_DTYPE)]))
        keys = memory.alloc("keys", second_fwd.copy())
        timeline.add("unzip", thrustlike.stream_ms(device, 8 * m_fwd, 2.0))
        return PreprocessResult(adj=adj, keys=keys, aos=None, node=node_buf,
                                num_nodes=num_nodes, num_forward_arcs=m_fwd,
                                used_cpu_fallback=used_cpu_fallback)

    interleaved = np.empty(2 * m_fwd + 2, VERTEX_DTYPE)
    interleaved[0:2 * m_fwd:2] = first_fwd
    interleaved[1:2 * m_fwd + 1:2] = second_fwd
    interleaved[-2:] = 0
    aos = memory.alloc("edges_aos", interleaved)
    return PreprocessResult(adj=None, keys=None, aos=aos, node=node_buf,
                            num_nodes=num_nodes, num_forward_arcs=m_fwd,
                            used_cpu_fallback=used_cpu_fallback)

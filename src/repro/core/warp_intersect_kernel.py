"""Warp-parallel intersection kernel — the Green et al. [15] comparator.

Section V: "The most recent work on the topic [15] proposes much more
elaborate algorithm, in which also the adjacency list intersection step
is parallelized. … Despite this, our algorithm achieves roughly two
times lower execution times" (on Citeseer and DBLP).

This module implements that *elaborate* strategy on the simulator so the
comparison can be regenerated: one **warp per edge**; the warp's lanes
split the shorter adjacency list into 32-element chunks and each lane
binary-searches its element in the longer list.  Latency per edge drops
(the intersection is parallel) but the work is
O(min(|A|,|B|) · log max(|A|,|B|)) with *scattered* reads — versus the
two-pointer merge's O(|A|+|B|) *streaming* reads.  Which one wins is a
cache question, which is exactly what the simulator measures.

Uses the same :class:`~repro.core.preprocess.PreprocessResult`
structures (same orientation, same layout), so counts are directly
comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.intersect import lower_bound_round
from repro.core.options import ENGINES, GpuOptions
from repro.core.preprocess import PreprocessResult
from repro.errors import ReproError
from repro.gpusim.memory import DeviceBuffer
from repro.gpusim.simt import SimtEngine

#: Instruction estimates for this kernel's blocks.
SETUP_INSTRUCTIONS = 26      # edge + node loads + shorter-list selection
CHUNK_INSTRUCTIONS = 8       # chunk bounds + coalesced gather issue
SEARCH_INSTRUCTIONS = 7      # compare + bound update + next-probe issue

_LOAD, _CHUNK, _DONE = 0, 1, 2


@dataclass
class WarpIntersectResult:
    """Outcome of one warp-parallel intersection launch."""

    thread_counts: np.ndarray
    triangles: int
    ticks: int
    #: binary-search probes issued (the strategy's work metric).
    search_probes: int


def warp_intersect_kernel(engine: SimtEngine,
                          pre: PreprocessResult,
                          lo: int = 0,
                          hi: int | None = None,
                          result_buf: DeviceBuffer | None = None,
                          options: GpuOptions | None = None,
                          ) -> WarpIntersectResult:
    """Count triangles with warp-per-edge parallel intersections.

    Only the unzipped (SoA) layout is supported — the strategy's chunk
    gathers assume contiguous columns.

    ``options.engine`` selects the host execution path exactly as in
    :func:`~repro.core.count_kernel.count_triangles_kernel`: the default
    "compacted" routes reads through the engine's fused fast path and
    feeds accounting the per-warp lane counts this kernel already
    tracks; "lockstep" keeps the reference path.  Both produce
    bit-identical counters (``tests/test_engine_equivalence.py``).
    """
    if pre.aos is not None:
        raise ReproError("warp_intersect_kernel requires the SoA layout "
                         "(GpuOptions.unzip=True)")
    adj, keys, node = pre.adj, pre.keys, pre.node
    m = pre.num_forward_arcs
    hi = m if hi is None else hi
    if not (0 <= lo <= hi <= m):
        raise ReproError(f"arc range [{lo}, {hi}) outside [0, {m})")

    engine_name = (options or GpuOptions()).engine
    if engine_name not in ENGINES:
        # Never a silent fallback: duck-typed options with a bad engine
        # string get the same typed error GpuOptions raises eagerly.
        raise ReproError(
            f"engine must be one of {ENGINES}, got {engine_name!r}")
    compacted = engine_name == "compacted"
    read = engine.read_compacted if compacted else engine.read

    T = engine.num_threads
    ws = engine.warp_size
    W = engine.num_warps
    tid = np.arange(T, dtype=np.int64)
    lane_of = tid % ws
    warp_of = tid // ws

    # Per-warp state (one edge per warp).
    cur = lo + np.arange(W, dtype=np.int64)
    short_lo = np.zeros(W, np.int64)   # shorter list bounds
    short_hi = np.zeros(W, np.int64)
    long_lo = np.zeros(W, np.int64)    # longer list bounds
    long_hi = np.zeros(W, np.int64)
    chunk = np.zeros(W, np.int64)      # chunk cursor into the short list
    phase = np.full(W, _LOAD, np.int8)

    count = np.zeros(T, np.uint64)
    ticks = 0
    probes = 0

    while (phase != _DONE).any():
        ticks += 1

        # ---------------- per-edge setup (warp leader work) ----------- #
        loading = phase == _LOAD
        if loading.any():
            w_ids = np.flatnonzero(loading & (cur < hi))
            if len(w_ids):
                leaders = w_ids * ws  # lane 0 of each warp does the loads
                e = cur[w_ids]
                u = read(adj, e, leaders).astype(np.int64)
                v = read(keys, e, leaders).astype(np.int64)
                k = len(w_ids)
                nvals = read(
                    node,
                    np.concatenate([u, u + 1, v, v + 1]),
                    np.concatenate([leaders] * 4)).astype(np.int64)
                ulo, uhi_, vlo, vhi_ = (nvals[:k], nvals[k:2 * k],
                                        nvals[2 * k:3 * k], nvals[3 * k:])
                len_u = uhi_ - ulo
                len_v = vhi_ - vlo
                u_short = len_u <= len_v
                short_lo[w_ids] = np.where(u_short, ulo, vlo)
                short_hi[w_ids] = np.where(u_short, uhi_, vhi_)
                long_lo[w_ids] = np.where(u_short, vlo, ulo)
                long_hi[w_ids] = np.where(u_short, vhi_, uhi_)
                chunk[w_ids] = 0
                if compacted:
                    # One leader lane per distinct warp — counts known.
                    engine.end_step_warps("setup", w_ids,
                                          np.ones(k, np.int64),
                                          SETUP_INSTRUCTIONS)
                else:
                    engine.end_step("setup", leaders, SETUP_INSTRUCTIONS)
            has_edge = loading & (cur < hi)
            phase[has_edge] = _CHUNK
            phase[loading & ~has_edge] = _DONE
            # Degenerate edges (an empty side) go straight to the next.
            empty = has_edge & ((short_hi - short_lo <= 0) |
                                (long_hi - long_lo <= 0))
            if empty.any():
                cur[empty] += W
                phase[empty] = _LOAD

        # ---------------- one chunk: gather + parallel searches ------- #
        chunking = phase == _CHUNK
        if chunking.any():
            w_ids = np.flatnonzero(chunking)
            base = short_lo[w_ids] + chunk[w_ids] * ws
            # Lanes with an element in this chunk.
            lanes_2d = (w_ids[:, None] * ws + np.arange(ws)[None, :])
            elem_idx = base[:, None] + np.arange(ws)[None, :]
            valid = elem_idx < short_hi[w_ids][:, None]
            lanes = lanes_2d[valid]
            idx = elem_idx[valid]
            targets = read(adj, idx, lanes).astype(np.int64)
            if compacted:
                # Every chunking warp has >= 1 valid lane (exhausted
                # warps left _CHUNK), so ``w_ids`` are the warps.
                engine.end_step_warps("chunk", w_ids,
                                      valid.sum(axis=1),
                                      CHUNK_INSTRUCTIONS)
            else:
                engine.end_step("chunk", lanes, CHUNK_INSTRUCTIONS)

            # Vectorized per-lane binary search in the longer list —
            # the same lower-bound rounds as the binary_search
            # intersection strategy (one shared kernel, one trace).
            s_lo = long_lo[warp_of[lanes]].copy()
            s_hi = long_hi[warp_of[lanes]].copy()

            def read_adj(indices: np.ndarray,
                         req_lanes: np.ndarray) -> np.ndarray:
                return read(adj, indices, req_lanes)

            while True:
                act = lower_bound_round(read_adj, s_lo, s_hi, targets,
                                        lanes)
                if not len(act):
                    break
                probes += len(act)
                engine.end_step("search", lanes[act], SEARCH_INSTRUCTIONS)
            # Found iff the insertion point holds the target.
            in_range = s_lo < long_hi[warp_of[lanes]]
            found = np.zeros(len(lanes), bool)
            if in_range.any():
                probe_idx = s_lo[in_range]
                vals = read(adj, probe_idx, lanes[in_range])
                found[in_range] = vals.astype(np.int64) == targets[in_range]
                probes += int(in_range.sum())
                engine.end_step("search", lanes[in_range],
                                SEARCH_INSTRUCTIONS)
            np.add.at(count, lanes[found], np.uint64(1))

            # Advance: next chunk, or next edge when the list is done.
            chunk[w_ids] += 1
            exhausted = (short_lo[w_ids] + chunk[w_ids] * ws
                         >= short_hi[w_ids])
            done_w = w_ids[exhausted]
            cur[done_w] += W
            phase[done_w] = _LOAD

    triangles = int(count.sum())
    if result_buf is not None:
        engine.write(result_buf, tid, count, tid)
    return WarpIntersectResult(thread_counts=count, triangles=triangles,
                               ticks=ticks, search_probes=probes)

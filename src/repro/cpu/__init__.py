"""Sequential CPU triangle-counting algorithms.

:mod:`~repro.cpu.forward` is the paper's baseline (its own tuned
implementation of the Schank–Wagner *forward* algorithm, Section IV);
the others are the classical alternatives it is compared against in
Sections II-A and V:

* :mod:`~repro.cpu.node_iterator` — check every wedge at every vertex;
* :mod:`~repro.cpu.edge_iterator` — intersect full neighborhoods per edge;
* :mod:`~repro.cpu.compact_forward` — Latapy's refinement;
* :mod:`~repro.cpu.forward_hashed` — Schank–Wagner's hash-set variant;
* :mod:`~repro.cpu.matmul` — ``trace(A³)/6`` (Alon–Yuster–Zwick);
* :mod:`~repro.cpu.approx` — DOULION and the birthday-paradox stream.

All exact counters return identical triangle totals (property-tested);
they differ in the *work* they do, which is what the baseline timing
model measures.
"""

from repro.cpu.forward import forward_count_cpu, ForwardCpuResult, merge_walk
from repro.cpu.edge_iterator import edge_iterator_count
from repro.cpu.node_iterator import node_iterator_count
from repro.cpu.compact_forward import compact_forward_count
from repro.cpu.forward_hashed import forward_hashed_count
from repro.cpu.listing import list_triangles, TriangleListing
from repro.cpu.matmul import matmul_count
from repro.cpu import approx

__all__ = [
    "forward_count_cpu",
    "ForwardCpuResult",
    "merge_walk",
    "edge_iterator_count",
    "node_iterator_count",
    "compact_forward_count",
    "forward_hashed_count",
    "list_triangles",
    "TriangleListing",
    "matmul_count",
    "approx",
]

"""Approximate triangle counting — the related-work family of Section V.

* :mod:`~repro.cpu.approx.doulion` — Tsourakakis et al.'s coin-flip edge
  sparsification [6];
* :mod:`~repro.cpu.approx.birthday` — Jha–Seshadhri–Pinar's streaming
  birthday-paradox estimator [7].

Both trade a few percent of accuracy for large speedups / tiny memory,
which is exactly the trade-off the paper positions its exact GPU counter
against.
"""

from repro.cpu.approx.doulion import doulion_count
from repro.cpu.approx.birthday import birthday_paradox_count

__all__ = ["doulion_count", "birthday_paradox_count"]

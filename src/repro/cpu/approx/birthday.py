"""Streaming triangle estimation via the birthday paradox
(Jha–Seshadhri–Pinar, KDD'13).

One pass over the edge stream with two fixed-size reservoirs:

* an *edge reservoir* (uniform sample of the stream so far, standard
  reservoir sampling), and
* a *wedge reservoir* sampling wedges formed by the edge reservoir.

Each arriving edge may *close* wedges in the wedge reservoir; the closed
fraction estimates the transitivity κ, and the wedge total of the edge
reservoir extrapolates to the stream's wedge count W, giving
``triangles ≈ κ·W/3``.  Space is O(reservoir sizes) — the "space
efficient" property the paper contrasts with (Section V).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf, sqrt

import numpy as np

from repro.errors import ReproError
from repro.graphs.edgearray import EdgeArray
from repro.utils import rng_from


@dataclass(frozen=True)
class BirthdayResult:
    """Streaming estimates after the pass."""

    transitivity_estimate: float
    wedge_estimate: float
    triangle_estimate: float
    #: closed wedges observed in the wedge reservoir at stream end.
    closed_wedges: int = 0
    #: wedge-reservoir fill at stream end (the κ sample size).
    wedge_reservoir_fill: int = 0

    @property
    def estimated_triangles(self) -> int:
        return int(round(self.triangle_estimate))

    @property
    def error_bound(self) -> float:
        """2σ plug-in bound on the absolute estimation error.

        The dominant noise term is the closed-wedge fraction: with ``k``
        reservoir wedges and observed closed fraction ``q``, the
        binomial standard error of κ = 3q is ``3·sqrt(q(1−q)/k)``
        (floored at ``3·sqrt(1/k²)`` so an all-open or all-closed
        reservoir still reports nonzero uncertainty), which propagates
        through ``T = κ·W/3``.  W's own extrapolation error is ignored —
        this is a reservoir-sized plug-in bound, not a confidence proof.
        """
        k = self.wedge_reservoir_fill
        if k == 0:
            return 0.0 if self.triangle_estimate == 0.0 else inf
        q = self.closed_wedges / k
        sigma_kappa = 3.0 * sqrt(max(q * (1.0 - q), 1.0 / k) / k)
        return 2.0 * sigma_kappa * self.wedge_estimate / 3.0

    @property
    def relative_error_bound(self) -> float:
        """:attr:`error_bound` as a fraction of the estimate."""
        if self.triangle_estimate > 0:
            return self.error_bound / self.triangle_estimate
        return 0.0 if self.error_bound == 0.0 else inf


def _wedges_of_reservoir(res_u: np.ndarray, res_v: np.ndarray) -> int:
    """Total wedges formed by the reservoir's edges (Σ C(deg, 2))."""
    ids, counts = np.unique(np.concatenate([res_u, res_v]),
                            return_counts=True)
    return int((counts * (counts - 1) // 2).sum())


def birthday_paradox_count(graph: EdgeArray,
                           edge_reservoir: int = 2000,
                           wedge_reservoir: int = 2000,
                           seed=None) -> BirthdayResult:
    """Single-pass estimate of transitivity and triangle count.

    Parameters
    ----------
    edge_reservoir, wedge_reservoir : int
        Reservoir sizes; accuracy improves roughly with their square
        roots (the birthday-paradox effect).
    """
    if edge_reservoir < 2 or wedge_reservoir < 1:
        raise ReproError("reservoirs must hold at least 2 edges / 1 wedge")
    rng = rng_from(seed)

    mask = graph.first < graph.second
    su = graph.first[mask].astype(np.int64)
    sv = graph.second[mask].astype(np.int64)
    order = rng.permutation(len(su))  # a random stream order
    su, sv = su[order], sv[order]
    stream_len = len(su)
    if stream_len < 3:
        return BirthdayResult(0.0, 0.0, 0.0)

    se = edge_reservoir
    res_u = np.zeros(se, np.int64)
    res_v = np.zeros(se, np.int64)
    res_fill = 0
    # Wedge reservoir as (a, b, c): wedge a-b-c centred at b.
    wedges = np.zeros((wedge_reservoir, 3), np.int64)
    wedge_fill = 0
    is_closed = np.zeros(wedge_reservoir, bool)
    total_wedges_in_res = 0

    for t in range(stream_len):
        eu, ev = int(su[t]), int(sv[t])

        # 1. Does this edge close reservoir wedges?  (a-b-c closed by
        # edge {a, c}.)
        if wedge_fill:
            w = wedges[:wedge_fill]
            closes = (((w[:, 0] == eu) & (w[:, 2] == ev)) |
                      ((w[:, 0] == ev) & (w[:, 2] == eu)))
            is_closed[:wedge_fill] |= closes

        # 2. Reservoir-sample the edge.
        if res_fill < se:
            res_u[res_fill] = eu
            res_v[res_fill] = ev
            res_fill += 1
            replaced = True
        else:
            j = int(rng.integers(0, t + 1))
            replaced = j < se
            if replaced:
                res_u[j] = eu
                res_v[j] = ev

        # 3. If the edge entered, it forms new wedges with the reservoir;
        # sample some into the wedge reservoir.
        if replaced and res_fill >= 2:
            ru = res_u[:res_fill]
            rv = res_v[:res_fill]
            touch_u = np.flatnonzero((ru == eu) | (rv == eu))
            touch_v = np.flatnonzero((ru == ev) | (rv == ev))
            new_wedges = []
            for idx, centre, far in ((touch_u, eu, ev), (touch_v, ev, eu)):
                for k in idx:
                    other = int(rv[k]) if int(ru[k]) == centre else int(ru[k])
                    if other != far:
                        new_wedges.append((far, centre, other))
            total_wedges_in_res = _wedges_of_reservoir(ru, rv)
            for wedge in new_wedges:
                if wedge_fill < wedge_reservoir:
                    wedges[wedge_fill] = wedge
                    is_closed[wedge_fill] = False
                    wedge_fill += 1
                else:
                    j = int(rng.integers(0, max(total_wedges_in_res, 1)))
                    if j < wedge_reservoir:
                        wedges[j] = wedge
                        is_closed[j] = False

    if wedge_fill == 0 or total_wedges_in_res == 0:
        return BirthdayResult(0.0, 0.0, 0.0)

    closed = int(is_closed[:wedge_fill].sum())
    kappa = 3.0 * closed / wedge_fill
    # Extrapolate reservoir wedges to the full stream: wedge counts grow
    # ~quadratically in the sampled fraction of edges.
    frac = min(res_fill, se) / stream_len
    wedge_estimate = total_wedges_in_res / (frac * frac) if frac > 0 else 0.0
    triangles = kappa * wedge_estimate / 3.0
    return BirthdayResult(transitivity_estimate=kappa,
                          wedge_estimate=wedge_estimate,
                          triangle_estimate=triangles,
                          closed_wedges=closed,
                          wedge_reservoir_fill=wedge_fill)

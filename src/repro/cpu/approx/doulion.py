"""DOULION: triangle counting with a coin (Tsourakakis et al., KDD'09).

Keep each undirected edge independently with probability ``p``, count
triangles exactly on the sparsified graph, scale by ``1/p³``.  Unbiased;
variance shrinks as the true count grows.  Work drops by roughly ``p``
in the edge passes and much faster in the merge phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf, sqrt

import numpy as np

from repro.cpu.forward import forward_count_cpu
from repro.errors import ReproError
from repro.graphs.edgearray import EdgeArray
from repro.utils import rng_from


@dataclass(frozen=True)
class DoulionResult:
    """Estimate plus the exact count of the sparsified graph it came from."""

    estimate: float
    sparsified_triangles: int
    kept_edges: int
    p: float
    #: Σ_e C(t_e, 2) over the sparsified graph — the edge-sharing
    #: triangle-pair count the variance's covariance term needs.
    edge_pair_triangles: int = 0

    @property
    def estimated_triangles(self) -> int:
        return int(round(self.estimate))

    @property
    def error_bound(self) -> float:
        """2σ plug-in bound on the absolute estimation error.

        The exact DOULION variance has two terms: each triangle survives
        sparsification iff all three of its edges do (the Binomial(T, p³)
        term), and two triangles *sharing an edge* survive jointly with
        p⁵, not p⁶, adding ``2·R·(p⁵−p⁶)`` where R counts edge-sharing
        triangle pairs (Σ_e C(t_e, 2)).  Plugging the observed sparsified
        count S for ``T·p³`` and the sparsified pair count R_s for
        ``R·p⁵`` gives ``Var(S) ≈ S·(1−p³) + 2·R_s·(1−p)`` and
        ``std(T̂) = sqrt(Var(S)) / p³``; the bound is two of those.
        Exact runs (``p == 1``) report a bound of 0.  (On graphs too
        large for the dense pair count, R_s is 0 and the bound degrades
        to the binomial-only term — an underestimate on clique-heavy
        graphs.)
        """
        p3 = self.p ** 3
        if p3 >= 1.0:
            return 0.0
        var_s = (max(self.sparsified_triangles, 1) * (1.0 - p3)
                 + 2.0 * self.edge_pair_triangles * (1.0 - self.p))
        return 2.0 * sqrt(var_s) / p3

    @property
    def relative_error_bound(self) -> float:
        """:attr:`error_bound` as a fraction of the estimate (``inf``
        when the estimate itself is 0 but the bound is not)."""
        if self.estimate > 0:
            return self.error_bound / self.estimate
        return 0.0 if self.error_bound == 0.0 else inf


#: Above this node count the dense-adjacency pair count is skipped and
#: the error bound falls back to its binomial-only term.
_PAIR_COUNT_MAX_NODES = 4096


def _edge_pair_triangles(graph: EdgeArray) -> int:
    """Σ_e C(t_e, 2): pairs of triangles sharing an edge, exactly.

    ``t_e`` (triangles through edge (u, v)) is the common-neighbor count
    ``(A²)[u, v]`` — one dense matmul at the mini scales the degraded
    tier serves; skipped (returning 0) past the node-count gate.
    """
    n = graph.num_nodes
    if n == 0 or n > _PAIR_COUNT_MAX_NODES or graph.num_arcs == 0:
        return 0
    mask = graph.first < graph.second
    u, v = graph.first[mask], graph.second[mask]
    adj = np.zeros((n, n), dtype=np.int32)
    adj[u, v] = 1
    adj[v, u] = 1
    t_e = (adj @ adj)[u, v].astype(np.int64)
    return int((t_e * (t_e - 1) // 2).sum())


def doulion_count(graph: EdgeArray, p: float, seed=None) -> DoulionResult:
    """Estimate the triangle count by counting on a ``p``-sparsified graph.

    Parameters
    ----------
    p : float
        Edge-keeping probability in (0, 1].
    """
    if not (0.0 < p <= 1.0):
        raise ReproError(f"keep probability must be in (0, 1], got {p}")
    rng = rng_from(seed)

    # Flip one coin per undirected edge (consistent across both arcs).
    mask = graph.first < graph.second
    u = graph.first[mask]
    v = graph.second[mask]
    keep = rng.random(len(u)) < p
    sparse = EdgeArray.from_undirected(u[keep], v[keep],
                                       num_nodes=graph.num_nodes)

    exact = forward_count_cpu(sparse)
    return DoulionResult(estimate=exact.triangles / p**3,
                         sparsified_triangles=exact.triangles,
                         kept_edges=int(keep.sum()), p=p,
                         edge_pair_triangles=_edge_pair_triangles(sparse))

"""DOULION: triangle counting with a coin (Tsourakakis et al., KDD'09).

Keep each undirected edge independently with probability ``p``, count
triangles exactly on the sparsified graph, scale by ``1/p³``.  Unbiased;
variance shrinks as the true count grows.  Work drops by roughly ``p``
in the edge passes and much faster in the merge phase.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.forward import forward_count_cpu
from repro.errors import ReproError
from repro.graphs.edgearray import EdgeArray
from repro.utils import rng_from


@dataclass(frozen=True)
class DoulionResult:
    """Estimate plus the exact count of the sparsified graph it came from."""

    estimate: float
    sparsified_triangles: int
    kept_edges: int
    p: float

    @property
    def estimated_triangles(self) -> int:
        return int(round(self.estimate))


def doulion_count(graph: EdgeArray, p: float, seed=None) -> DoulionResult:
    """Estimate the triangle count by counting on a ``p``-sparsified graph.

    Parameters
    ----------
    p : float
        Edge-keeping probability in (0, 1].
    """
    if not (0.0 < p <= 1.0):
        raise ReproError(f"keep probability must be in (0, 1], got {p}")
    rng = rng_from(seed)

    # Flip one coin per undirected edge (consistent across both arcs).
    mask = graph.first < graph.second
    u = graph.first[mask]
    v = graph.second[mask]
    keep = rng.random(len(u)) < p
    sparse = EdgeArray.from_undirected(u[keep], v[keep],
                                       num_nodes=graph.num_nodes)

    exact = forward_count_cpu(sparse)
    return DoulionResult(estimate=exact.triangles / p**3,
                         sparsified_triangles=exact.triangles,
                         kept_edges=int(keep.sum()), p=p)

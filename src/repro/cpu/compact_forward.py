"""Latapy's *compact-forward* algorithm.

The refinement of *forward* the paper cites [4]: vertices are renumbered
by decreasing degree (η), adjacency lists are sorted by η, and the merge
for edge (u, v) with η(u) < η(v) stops early once either pointer reaches
a neighbor with η beyond the smaller endpoint — no separate filtered
adjacency structure is needed, hence "compact".  Triangle totals match
*forward* exactly; the step counts differ slightly (the early cutoff
versus the pre-filtered lists).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import build_node_ptr
from repro.graphs.edgearray import EdgeArray
from repro.gpusim.device import CpuSpec, XEON_X5650
from repro.types import VERTEX_DTYPE, pack_edges, unpack_edges


@dataclass(frozen=True)
class CompactForwardResult:
    triangles: int
    merge_steps: int
    elapsed_ms: float


def compact_forward_count(graph: EdgeArray,
                          cpu: CpuSpec = XEON_X5650) -> CompactForwardResult:
    """Count triangles with compact-forward (exact)."""
    n = graph.num_nodes
    m = graph.num_arcs
    if m == 0:
        return CompactForwardResult(0, 0, 0.0)

    # η-renumbering: highest degree gets the smallest label.
    deg = graph.degrees()
    eta = np.empty(n, np.int64)
    eta[np.argsort(-deg, kind="stable")] = np.arange(n)
    u = eta[graph.first].astype(VERTEX_DTYPE)
    v = eta[graph.second].astype(VERTEX_DTYPE)

    # CSR over the renumbered graph, adjacency sorted by η.
    packed = np.sort(pack_edges(u, v))
    adj, keys = unpack_edges(packed)
    node = build_node_ptr(keys, n).astype(np.int64)

    # Iterate edges with η(u) > η(v) (u the lower-degree endpoint);
    # merge N(u) × N(v) truncated to labels < η(v) < η(u).
    mask = u > v
    arc_u = u[mask].astype(np.int64)
    arc_v = v[mask].astype(np.int64)

    u_it = node[arc_u]
    u_end = node[arc_u + 1]
    v_it = node[arc_v]
    v_end = node[arc_v + 1]
    cutoff = arc_v  # merge only neighbors with η < η(v)

    matches = 0
    steps = 0
    active = np.flatnonzero((u_it < u_end) & (v_it < v_end))
    # Also stop when either head passes the cutoff.
    if len(active):
        ok = (adj[u_it[active]] < cutoff[active]) & \
             (adj[v_it[active]] < cutoff[active])
        active = active[ok]
    while len(active):
        au = adj[u_it[active]].astype(np.int64)
        bv = adj[v_it[active]].astype(np.int64)
        d = au - bv
        matches += int((d == 0).sum())
        steps += len(active)
        u_it[active] += d <= 0
        v_it[active] += d >= 0
        ia = active
        in_range = (u_it[ia] < u_end[ia]) & (v_it[ia] < v_end[ia])
        ia = ia[in_range]
        if len(ia):
            below = (adj[u_it[ia]] < cutoff[ia]) & (adj[v_it[ia]] < cutoff[ia])
            ia = ia[below]
        active = ia

    log_m = np.log2(max(m, 2))
    elapsed_ns = (m * log_m * cpu.ns_per_sort_compare
                  + 3 * m * cpu.ns_per_pass_element
                  + steps * cpu.ns_per_merge_step
                  + len(arc_u) * cpu.ns_per_edge_setup)
    return CompactForwardResult(triangles=matches, merge_steps=steps,
                                elapsed_ms=elapsed_ns * 1e-6)

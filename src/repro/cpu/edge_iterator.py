"""Edge-iterator baseline (Schank–Wagner).

For every undirected edge, intersect the *full* sorted neighborhoods of
its endpoints; every triangle is then found three times (once per edge).
Running time O(m · deg_max) — the algorithm the forward preprocessing
improves on for skewed degree distributions (Section II-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.forward import merge_walk
from repro.graphs.csr import edge_array_to_csr
from repro.graphs.edgearray import EdgeArray
from repro.gpusim.device import CpuSpec, XEON_X5650


@dataclass(frozen=True)
class EdgeIteratorResult:
    triangles: int
    merge_steps: int
    elapsed_ms: float


def edge_iterator_count(graph: EdgeArray,
                        cpu: CpuSpec = XEON_X5650) -> EdgeIteratorResult:
    """Count triangles by intersecting full neighborhoods per edge.

    Only one direction of each edge is walked (u < v); each triangle is
    counted at each of its three edges, so the match total divides by 3.
    """
    csr, _cost = edge_array_to_csr(graph)
    mask = graph.first < graph.second
    arc_u = graph.first[mask]
    arc_v = graph.second[mask]

    walk = merge_walk(csr.adj, csr.node_ptr, arc_u, arc_v)
    matches = walk.total_matches
    if matches % 3:
        raise AssertionError(
            f"edge-iterator match total {matches} not divisible by 3")

    m = graph.num_arcs
    log_m = np.log2(max(m, 2))
    elapsed_ns = (
        m * log_m * cpu.ns_per_sort_compare       # CSR build sort
        + 2 * m * cpu.ns_per_pass_element
        + walk.total_steps * cpu.ns_per_merge_step
        + len(arc_u) * cpu.ns_per_edge_setup
    )
    return EdgeIteratorResult(triangles=matches // 3,
                              merge_steps=walk.total_steps,
                              elapsed_ms=elapsed_ns * 1e-6)

"""The sequential *forward* algorithm — the paper's CPU baseline.

Pipeline (Section II-B): orient every edge from its lower-ordered
endpoint to its higher-ordered endpoint (order = degree, ties by id),
sort, then for every kept arc intersect the two endpoints' oriented
adjacency lists with a two-pointer merge.  The orientation and layout
here are *identical* to the GPU pipeline's (same ``forward_mask``, same
(second, first) arc order), so CPU and GPU execute the same merges —
which is exactly the paper's measurement setup (its CPU baseline is its
own forward implementation on the same edge-array input).

The merge itself runs as a *batched walk*: all arcs advance one merge
iteration per pass, finished arcs compact away, so NumPy does
O(total merge steps) element-work while the Python loop runs only
O(longest merge) times.  The walk returns exact per-arc step counts —
the work measurement that feeds the Xeon timing model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.preprocess import forward_mask
from repro.graphs.csr import build_node_ptr
from repro.graphs.edgearray import EdgeArray
from repro.gpusim.device import CpuSpec, XEON_X5650
from repro.types import pack_edges, unpack_edges


@dataclass(frozen=True)
class MergeWalkResult:
    """Outcome of the batched two-pointer walk."""

    matches_per_arc: np.ndarray   # int64, one entry per walked arc
    steps_per_arc: np.ndarray     # int64, merge-loop iterations per arc

    @property
    def total_matches(self) -> int:
        return int(self.matches_per_arc.sum())

    @property
    def total_steps(self) -> int:
        return int(self.steps_per_arc.sum())


def merge_walk(adj: np.ndarray, node: np.ndarray,
               arc_u: np.ndarray, arc_v: np.ndarray) -> MergeWalkResult:
    """Two-pointer intersection of ``adj``-lists of ``(arc_u[i], arc_v[i])``.

    ``node`` bounds each vertex's sorted slice of ``adj``.  Every arc is
    walked exactly as the kernel's while loop would: one iteration
    compares the heads, advances the smaller side (both on a match), and
    stops when either list is exhausted.
    """
    n_arcs = len(arc_u)
    matches = np.zeros(n_arcs, np.int64)
    steps = np.zeros(n_arcs, np.int64)
    if n_arcs == 0:
        return MergeWalkResult(matches, steps)

    node = node.astype(np.int64)
    u_it = node[arc_u]
    u_end = node[arc_u.astype(np.int64) + 1]
    v_it = node[arc_v]
    v_end = node[arc_v.astype(np.int64) + 1]

    active = np.flatnonzero((u_it < u_end) & (v_it < v_end))
    while len(active):
        au = adj[u_it[active]]
        bv = adj[v_it[active]]
        d = au.astype(np.int64) - bv
        matches[active] += d == 0
        steps[active] += 1
        u_it[active] += d <= 0
        v_it[active] += d >= 0
        keep = (u_it[active] < u_end[active]) & (v_it[active] < v_end[active])
        active = active[keep]
    return MergeWalkResult(matches, steps)


@dataclass(frozen=True)
class ForwardCpuResult:
    """Exact count plus the measured work and its modelled Xeon time."""

    triangles: int
    num_forward_arcs: int
    merge_steps: int
    steps_per_arc: np.ndarray
    preprocess_ms: float
    count_ms: float

    @property
    def elapsed_ms(self) -> float:
        return self.preprocess_ms + self.count_ms


def forward_count_cpu(graph: EdgeArray,
                      cpu: CpuSpec = XEON_X5650) -> ForwardCpuResult:
    """Count triangles with the sequential forward algorithm.

    Returns exact results; ``elapsed_ms`` is the single-threaded Xeon
    X5650 model (measured work × the spec's throughput constants).
    """
    m = graph.num_arcs

    # --- preprocessing (modelled work: degrees, filter, sort, node) --- #
    degrees = graph.degrees()
    keep = forward_mask(graph.first, graph.second, degrees)
    first_fwd = graph.first[keep]
    second_fwd = graph.second[keep]
    m_fwd = len(first_fwd)

    # Arc order (second, first) — the same layout the GPU pipeline uses.
    packed = np.sort(pack_edges(first_fwd, second_fwd))
    adj, keys = unpack_edges(packed)
    node = build_node_ptr(keys, graph.num_nodes)

    log_m = np.log2(max(m_fwd, 2))
    preprocess_ns = (
        2 * m * cpu.ns_per_pass_element          # degrees + filter passes
        + m_fwd * log_m * cpu.ns_per_sort_compare  # sort of kept arcs
        + 2 * m_fwd * cpu.ns_per_pass_element      # node array build
    )

    # --- counting --------------------------------------------------- #
    walk = merge_walk(adj, node, adj[:m_fwd], keys)
    # (arc_u is the first column — adjacency content doubles as the arc's
    # first endpoint, exactly as the kernel reads edge[i].)
    count_ns = (walk.total_steps * cpu.ns_per_merge_step
                + m_fwd * cpu.ns_per_edge_setup)

    return ForwardCpuResult(
        triangles=walk.total_matches,
        num_forward_arcs=m_fwd,
        merge_steps=walk.total_steps,
        steps_per_arc=walk.steps_per_arc,
        preprocess_ms=preprocess_ns * 1e-6,
        count_ms=count_ns * 1e-6,
    )

"""Schank–Wagner *forward-hashed*: hash-set intersection instead of merge.

The fourth algorithm of the paper's reference [3]: identical orientation
and edge iteration to *forward*, but each oriented adjacency list is a
hash set and the intersection probes the shorter list's entries against
the longer one's set — O(min(|A(u)|, |A(v)|)) expected per edge instead
of the merge's O(|A(u)| + |A(v)|) worst case.

Vectorized realization: "hash set membership" is a presence bitmap per
probe batch — for each arc, the shorter endpoint's entries are tested
against the longer endpoint's list through a global (vertex, list-owner)
key set.  Work accounting counts the probes, which is the quantity the
hash variant actually saves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.preprocess import forward_mask
from repro.graphs.csr import build_node_ptr
from repro.graphs.edgearray import EdgeArray
from repro.gpusim.device import CpuSpec, XEON_X5650
from repro.types import pack_edges, unpack_edges


@dataclass(frozen=True)
class ForwardHashedResult:
    triangles: int
    probes: int          # hash-set membership tests performed
    elapsed_ms: float


def forward_hashed_count(graph: EdgeArray,
                         cpu: CpuSpec = XEON_X5650) -> ForwardHashedResult:
    """Count triangles with forward-hashed (exact).

    The probe set is realized as sorted (owner, member) keys probed with
    ``np.isin``-style membership — semantically a perfect hash per list.
    """
    m = graph.num_arcs
    if m == 0:
        return ForwardHashedResult(0, 0, 0.0)
    n = graph.num_nodes

    degrees = graph.degrees()
    keep = forward_mask(graph.first, graph.second, degrees)
    packed = np.sort(pack_edges(graph.first[keep], graph.second[keep]))
    adj, keys = unpack_edges(packed)          # lists L(x) grouped by keys
    node = build_node_ptr(keys, n).astype(np.int64)
    list_len = np.diff(node)

    # Membership oracle: the sorted (owner, member) key set itself.
    owner_member = (keys.astype(np.int64) * (n + 1) + adj.astype(np.int64))
    owner_member.sort()

    # For each arc (u, v): probe the shorter of L(u), L(v) against the
    # other's set.
    arc_u = adj.astype(np.int64)
    arc_v = keys.astype(np.int64)
    len_u = list_len[arc_u]
    len_v = list_len[arc_v]
    probe_from = np.where(len_u <= len_v, arc_u, arc_v)
    probe_into = np.where(len_u <= len_v, arc_v, arc_u)

    # Expand: one probe per element of the shorter list.
    probe_counts = np.minimum(len_u, len_v)
    arc_ids = np.repeat(np.arange(len(arc_u)), probe_counts)
    # element index within the probed list
    starts = node[probe_from]
    offsets = (np.arange(len(arc_ids))
               - np.repeat(np.cumsum(probe_counts) - probe_counts,
                           probe_counts))
    members = adj[(np.repeat(starts, probe_counts) + offsets)]
    into = np.repeat(probe_into, probe_counts)

    probe_keys = into * (n + 1) + members
    pos = np.searchsorted(owner_member, probe_keys)
    pos = np.minimum(pos, len(owner_member) - 1)
    hits = owner_member[pos] == probe_keys

    triangles = int(hits.sum())
    probes = len(probe_keys)
    # Cost model: probes at ~1 hash probe each plus the shared
    # preprocessing (degrees, filter, sort, node array, set build).
    m_fwd = len(arc_u)
    log_m = np.log2(max(m_fwd, 2))
    elapsed_ns = (2 * m * cpu.ns_per_pass_element
                  + 2 * m_fwd * log_m * cpu.ns_per_sort_compare
                  + 2 * m_fwd * cpu.ns_per_pass_element
                  + probes * cpu.ns_per_merge_step * 1.5  # hashing beats
                  + m_fwd * cpu.ns_per_edge_setup)        # merging per op,
    # but each probe costs more than a merge step (hash + chase).
    return ForwardHashedResult(triangles=triangles, probes=probes,
                               elapsed_ms=elapsed_ns * 1e-6)

"""Triangle *listing*: enumerate the triangles, not just count them.

The algorithmic family the paper builds on is titled "finding, counting
and listing all triangles" [3]; the forward algorithm lists as naturally
as it counts — every match of the intersection identifies one triangle
``(w, u, v)`` with ``w ≺ u ≺ v`` exactly once.  This module materializes
those matches, vectorized: for each forward arc the shorter endpoint
list is expanded and membership-probed against the other (the same
probe machinery as :mod:`repro.cpu.forward_hashed`), and the hits *are*
the triangle list.

Triangles come out de-duplicated by construction, labelled by original
vertex ids, in (lowest-order, middle, highest) orientation order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.preprocess import forward_mask
from repro.errors import ReproError
from repro.graphs.csr import build_node_ptr
from repro.graphs.edgearray import EdgeArray
from repro.types import pack_edges, unpack_edges


@dataclass(frozen=True)
class TriangleListing:
    """Enumerated triangles.

    ``triangles`` is an ``(count, 3)`` int64 array; row ``(w, u, v)``
    satisfies ``w ≺ u ≺ v`` under the forward (degree, id) order, so
    every triangle appears exactly once.
    """

    triangles: np.ndarray

    @property
    def count(self) -> int:
        return len(self.triangles)

    def as_sets(self) -> set[frozenset]:
        """Order-free view for comparisons in tests."""
        return {frozenset(map(int, row)) for row in self.triangles}


def list_triangles(graph: EdgeArray,
                   limit: int | None = None) -> TriangleListing:
    """Enumerate every triangle of ``graph``.

    Parameters
    ----------
    limit : int, optional
        Raise :class:`ReproError` if more than ``limit`` triangles would
        be materialized (memory guard for accidental use on
        triangle-dense graphs — Citeseer-like graphs hold 30× more
        triangles than edges).
    """
    m = graph.num_arcs
    if m == 0:
        return TriangleListing(np.empty((0, 3), np.int64))
    n = graph.num_nodes

    degrees = graph.degrees()
    keep = forward_mask(graph.first, graph.second, degrees)
    packed = np.sort(pack_edges(graph.first[keep], graph.second[keep]))
    adj, keys = unpack_edges(packed)
    node = build_node_ptr(keys, n).astype(np.int64)
    list_len = np.diff(node)

    arc_u = adj.astype(np.int64)
    arc_v = keys.astype(np.int64)
    len_u = list_len[arc_u]
    len_v = list_len[arc_v]
    probe_from = np.where(len_u <= len_v, arc_u, arc_v)
    probe_into = np.where(len_u <= len_v, arc_v, arc_u)

    probe_counts = np.minimum(len_u, len_v)
    total_probes = int(probe_counts.sum())
    if total_probes == 0:
        return TriangleListing(np.empty((0, 3), np.int64))

    arc_ids = np.repeat(np.arange(len(arc_u)), probe_counts)
    starts = node[probe_from]
    offsets = (np.arange(total_probes)
               - np.repeat(np.cumsum(probe_counts) - probe_counts,
                           probe_counts))
    members = adj[(np.repeat(starts, probe_counts) + offsets)].astype(np.int64)
    into = np.repeat(probe_into, probe_counts)

    owner_member = (keys.astype(np.int64) * (n + 1) + adj.astype(np.int64))
    owner_member.sort()
    probe_keys = into * (n + 1) + members
    pos = np.searchsorted(owner_member, probe_keys)
    pos = np.minimum(pos, len(owner_member) - 1)
    hits = owner_member[pos] == probe_keys

    found = int(hits.sum())
    if limit is not None and found > limit:
        raise ReproError(
            f"graph holds {found} triangles, above the listing limit "
            f"{limit}")

    hit_arcs = arc_ids[hits]
    triangles = np.column_stack([
        members[hits],            # w — the common lower neighbor
        arc_u[hit_arcs],          # u
        arc_v[hit_arcs],          # v
    ])
    return TriangleListing(triangles=triangles)

"""Matrix-multiplication triangle counting (Alon–Yuster–Zwick [21]).

``trace(A³) / 6`` via sparse matrix products — the method the paper
names as its future-work ingredient for very-high-degree vertices
(Section VI) and the third independent exact counter in the test
suite's cross-validation triangle (merge-based, wedge-based, algebraic).
"""

from __future__ import annotations

from dataclasses import dataclass

import scipy.sparse as sp

from repro.graphs.edgearray import EdgeArray
from repro.graphs.stats import adjacency_matrix


@dataclass(frozen=True)
class MatmulResult:
    triangles: int
    #: nnz of A² actually materialized (the method's working-set cost).
    intermediate_nnz: int


def matmul_count(graph: EdgeArray) -> MatmulResult:
    """Count triangles as ``trace(A³)/6``.

    Computes ``(A @ A) ∘ A`` rather than the full cube — only entries
    that can close a triangle are kept, which is the standard practical
    form of the algebraic method.
    """
    if graph.num_arcs == 0:
        return MatmulResult(0, 0)
    a = adjacency_matrix(graph)
    a2 = a @ a
    closed = a2.multiply(a)
    total = int(closed.sum())  # counts each triangle 6× (ordered pairs ×2)
    if total % 6:
        raise AssertionError(f"trace accumulation {total} not divisible by 6")
    return MatmulResult(triangles=total // 6, intermediate_nnz=a2.nnz)

"""Node-iterator baseline: test every wedge for closure.

For every vertex, enumerate all C(deg, 2) neighbor pairs and test each
pair for adjacency — O(Σ deg²) work, the weakest of the classical exact
algorithms on skewed graphs (its work equals the wedge count, which a
single hub can blow up quadratically).

The wedge enumeration is vectorized in bounded-memory chunks; adjacency
tests are binary searches in the CSR slices (a vectorized
``searchsorted`` over segment bounds).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import edge_array_to_csr
from repro.graphs.edgearray import EdgeArray
from repro.gpusim.device import CpuSpec, XEON_X5650

#: Wedges tested per vectorized chunk (bounds peak memory).
_CHUNK = 1 << 20


def segment_searchsorted(adj: np.ndarray, node: np.ndarray,
                         owners: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Is ``keys[i]`` present in the sorted slice of vertex ``owners[i]``?

    A manual vectorized binary search over per-vertex segments of
    ``adj`` — ``np.searchsorted`` cannot scope to segments, so the
    bisection runs over explicit lo/hi bounds (log2(max degree) rounds).
    """
    node = node.astype(np.int64)
    lo = node[owners]
    hi = node[owners.astype(np.int64) + 1]
    keys = keys.astype(adj.dtype)
    # Invariant: the insertion point is in [lo, hi].
    while True:
        active = lo < hi
        if not active.any():
            break
        mid = (lo + hi) // 2
        below = np.zeros(len(keys), bool)
        below[active] = adj[mid[active]] < keys[active]
        lo = np.where(active & below, mid + 1, lo)
        hi = np.where(active & ~below, mid, hi)
    # lo is the insertion point; check the element there.
    found = np.zeros(len(keys), bool)
    in_range = lo < node[owners.astype(np.int64) + 1]
    found[in_range] = adj[lo[in_range]] == keys[in_range]
    return found


@dataclass(frozen=True)
class NodeIteratorResult:
    triangles: int
    wedges_tested: int
    elapsed_ms: float


def node_iterator_count(graph: EdgeArray,
                        cpu: CpuSpec = XEON_X5650) -> NodeIteratorResult:
    """Count triangles by testing every wedge; each triangle closes three
    wedges (one per corner), so the closed-wedge total divides by 3...
    by 6 counting both orientations — we enumerate each neighbor pair
    once, giving exactly 3 closures per triangle."""
    csr, _ = edge_array_to_csr(graph)
    adj, node = csr.adj, csr.node_ptr.astype(np.int64)
    n = csr.num_nodes
    deg = np.diff(node)

    closed = 0
    tested = 0
    # Stream vertices, emitting the wedge-tip pairs (i, j) in chunks; a
    # wedge centred at v with tips i, j closes iff j ∈ N(i).
    batch_i: list[np.ndarray] = []
    batch_j: list[np.ndarray] = []
    budget = 0
    triu_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def flush() -> tuple[int, int]:
        nonlocal batch_i, batch_j, budget
        if not batch_i:
            return 0, 0
        ii = np.concatenate(batch_i)
        jj = np.concatenate(batch_j)
        batch_i, batch_j = [], []
        budget = 0
        hits = segment_searchsorted(adj, node, ii, jj)
        return int(hits.sum()), len(ii)

    for v in range(n):
        dv = int(deg[v])
        if dv < 2:
            continue
        neigh = adj[node[v]:node[v + 1]]
        if dv not in triu_cache:
            triu_cache[dv] = np.triu_indices(dv, k=1)
        iu, ju = triu_cache[dv]
        batch_i.append(neigh[iu])
        batch_j.append(neigh[ju])
        budget += len(iu)
        if budget >= _CHUNK:
            c, t = flush()
            closed += c
            tested += t
    c, t = flush()
    closed += c
    tested += t

    if closed % 3:
        raise AssertionError(f"closed-wedge total {closed} not divisible by 3")

    log_d = np.log2(max(int(deg.max()) if n else 2, 2))
    elapsed_ns = (
        graph.num_arcs * np.log2(max(graph.num_arcs, 2)) * cpu.ns_per_sort_compare
        + tested * log_d * cpu.ns_per_merge_step  # one binary search per wedge
    )
    return NodeIteratorResult(triangles=closed // 3, wedges_tested=tested,
                              elapsed_ms=elapsed_ns * 1e-6)

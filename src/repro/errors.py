"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class.  Substrate-specific failures get their
own subclasses because they carry actionable context (e.g. how many bytes
a device allocation was short by, which drives the paper's Section III-D6
CPU-preprocessing fallback).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError):
    """An edge array / CSR structure violates a format invariant.

    The paper's input contract (Section III-A): no self-loops, no
    multi-edges, every undirected edge present exactly once in each
    direction.  Raised by :func:`repro.graphs.validate.validate_edge_array`.
    """


class DeviceError(ReproError):
    """Base class for simulated-device failures."""


class OutOfDeviceMemoryError(DeviceError):
    """A device allocation exceeded the simulated card's global memory.

    Attributes
    ----------
    requested : int
        Bytes the allocation asked for.
    available : int
        Bytes that were free at the time of the request.
    """

    def __init__(self, requested: int, available: int, message: str | None = None):
        self.requested = int(requested)
        self.available = int(available)
        if message is None:
            message = (
                f"simulated device out of memory: requested {requested} B, "
                f"only {available} B free"
            )
        super().__init__(message)


class ContextMismatchError(DeviceError):
    """A supplied :class:`~repro.gpusim.multigpu.MultiGpuContext` does
    not match the requested device model / card count.

    Attributes
    ----------
    actual_device, expected_device : str
        Device-spec name the context holds vs the one requested.
    actual_count, expected_count : int
        Card count the context holds vs the one requested.
    """

    def __init__(self, actual_device: str, expected_device: str,
                 actual_count: int, expected_count: int):
        self.actual_device = actual_device
        self.expected_device = expected_device
        self.actual_count = int(actual_count)
        self.expected_count = int(expected_count)
        super().__init__(
            f"multi-GPU context mismatch: context holds "
            f"{self.actual_count}x {actual_device!r}, but the call asked "
            f"for {self.expected_count}x {expected_device!r}")


class InvalidLaunchError(DeviceError):
    """A kernel launch configuration violates device limits.

    E.g. threads-per-block not a multiple of the warp size, or more than
    ``DeviceSpec.max_threads_per_block`` threads per block.
    """


class KernelFault(DeviceError):
    """A simulated kernel accessed memory outside an allocated region."""


class InvalidFreeError(DeviceError):
    """A ``DeviceMemory.free`` call that no correct program issues.

    Base of the two concrete cases below; carries the buffer name so
    fleet-level failures can be attributed without a debugger.
    """

    def __init__(self, buffer: str, message: str):
        self.buffer = buffer
        super().__init__(message)


class DoubleFreeError(InvalidFreeError):
    """A device buffer was freed twice (``cudaErrorInvalidValue``)."""

    def __init__(self, buffer: str):
        super().__init__(buffer, f"double free of device buffer {buffer!r}")


class ForeignFreeError(InvalidFreeError):
    """A buffer was freed on a :class:`DeviceMemory` that never allocated
    it (e.g. a raw view, a reservation from another device, or a stale
    handle whose address was reused)."""

    def __init__(self, buffer: str, device: str):
        super().__init__(
            buffer,
            f"buffer {buffer!r} was not allocated by device {device!r} "
            f"(foreign or stale handle)")


class SanitizerError(DeviceError):
    """Base class of strict-mode sanitizer failures.

    Attributes
    ----------
    report : repro.sanitize.SanitizerReport or None
        The structured finding that triggered the error (checker, kernel
        step, warp/lane, buffer name, address).
    """

    def __init__(self, message: str, report=None):
        self.report = report
        super().__init__(message)


class MemcheckError(SanitizerError):
    """Strict-mode memcheck finding: out-of-bounds access, use after
    free, or misaligned access."""


class InitcheckError(SanitizerError):
    """Strict-mode initcheck finding: a read from device memory that was
    never written since allocation (``cudaMalloc`` without a fill)."""


class RacecheckError(SanitizerError):
    """Strict-mode racecheck finding: a same-address write/write or
    read/write hazard across warps within one step that bypassed
    ``atomic_add``."""


class AnalysisError(ReproError):
    """The static analyzer (:mod:`repro.analyze`) cannot proceed —
    unreadable input, a malformed baseline file, or a bad rule filter.
    Distinct from a *finding*: findings are data, this is a usage/parse
    failure (``repro-analyze`` exit code 2)."""


class CheckRegistrationError(AnalysisError):
    """Two analyzer checks claimed the same SAN id.

    Attributes
    ----------
    check_id : str
        The contested rule id (e.g. ``"SAN201"``).
    """

    def __init__(self, check_id: str, message: str):
        self.check_id = check_id
        super().__init__(f"{check_id}: {message}")


class CalibrationError(ReproError):
    """A timing-model constant is missing or inconsistent."""


class SweepConfigError(ReproError):
    """A sweep/tuned config file violates the schema.

    Attributes
    ----------
    key : str
        Dotted path of the offending key (e.g. ``"grid.kernel"``), so
        callers and tests can pinpoint the bad entry without parsing the
        message.
    """

    def __init__(self, key: str, message: str):
        self.key = key
        super().__init__(f"{key}: {message}")


class WorkloadError(ReproError):
    """An unknown workload name or unsatisfiable workload parameters."""

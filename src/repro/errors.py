"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class.  Substrate-specific failures get their
own subclasses because they carry actionable context (e.g. how many bytes
a device allocation was short by, which drives the paper's Section III-D6
CPU-preprocessing fallback).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError):
    """An edge array / CSR structure violates a format invariant.

    The paper's input contract (Section III-A): no self-loops, no
    multi-edges, every undirected edge present exactly once in each
    direction.  Raised by :func:`repro.graphs.validate.validate_edge_array`.
    """


class DeviceError(ReproError):
    """Base class for simulated-device failures."""


class OutOfDeviceMemoryError(DeviceError):
    """A device allocation exceeded the simulated card's global memory.

    Attributes
    ----------
    requested : int
        Bytes the allocation asked for.
    available : int
        Bytes that were free at the time of the request.
    """

    def __init__(self, requested: int, available: int, message: str | None = None):
        self.requested = int(requested)
        self.available = int(available)
        if message is None:
            message = (
                f"simulated device out of memory: requested {requested} B, "
                f"only {available} B free"
            )
        super().__init__(message)


class InvalidLaunchError(DeviceError):
    """A kernel launch configuration violates device limits.

    E.g. threads-per-block not a multiple of the warp size, or more than
    ``DeviceSpec.max_threads_per_block`` threads per block.
    """


class KernelFault(DeviceError):
    """A simulated kernel accessed memory outside an allocated region."""


class CalibrationError(ReproError):
    """A timing-model constant is missing or inconsistent."""


class WorkloadError(ReproError):
    """An unknown workload name or unsatisfiable workload parameters."""

"""A CUDA-like GPU substrate, simulated.

The paper runs on real Nvidia hardware; this package replaces that
hardware with a warp-lockstep SIMT simulator (see DESIGN.md §2):

* :mod:`~repro.gpusim.device` — the device catalog (Tesla C2050,
  GTX 980, NVS 5200M) with the cards' published specifications, plus the
  Xeon X5650 model for the CPU baseline;
* :mod:`~repro.gpusim.memory` — global-memory allocator with capacity
  accounting and host↔device transfer timing;
* :mod:`~repro.gpusim.cache` / :mod:`~repro.gpusim.coalesce` — per-SM
  read-only cache (set-associative LRU) and per-warp transaction
  coalescing, which together produce the Table II counters;
* :mod:`~repro.gpusim.simt` — the lockstep execution engine kernels run
  on, with divergence and instruction accounting;
* :mod:`~repro.gpusim.thrustlike` — functional equivalents of the Thrust
  primitives the preprocessing phase uses, with pass-based cost models;
* :mod:`~repro.gpusim.timing` — conversion of measured work into
  simulated milliseconds;
* :mod:`~repro.gpusim.multigpu` — multi-device contexts (Section III-E).

Counts are measured by execution; only the conversion constants come
from the device specs.
"""

from repro.gpusim.device import (DeviceSpec, CpuSpec, TESLA_C2050, GTX_980,
                                 NVS_5200M, XEON_X5650, DEVICES)
from repro.gpusim.memory import DeviceMemory, DeviceBuffer
from repro.gpusim.cache import CacheArray, CacheStats
from repro.gpusim.simt import SimtEngine, LaunchConfig, KernelReport
from repro.gpusim.timing import KernelTiming, TimelineEvent, Timeline
from repro.gpusim.multigpu import MultiGpuContext
from repro.gpusim.profiler import format_kernel_profile, format_run_profile

__all__ = [
    "DeviceSpec", "CpuSpec",
    "TESLA_C2050", "GTX_980", "NVS_5200M", "XEON_X5650", "DEVICES",
    "DeviceMemory", "DeviceBuffer",
    "CacheArray", "CacheStats",
    "SimtEngine", "LaunchConfig", "KernelReport",
    "KernelTiming", "TimelineEvent", "Timeline",
    "MultiGpuContext",
    "format_kernel_profile", "format_run_profile",
]

"""Vectorized set-associative LRU cache model.

One :class:`CacheArray` holds *many independent cache instances* in a
single set of NumPy arrays — e.g. the per-SM read-only caches of a whole
GPU (16 instances on the GTX 980), or a single device-wide L2.  The SIMT
engine feeds it batches of (instance, line-address) accesses once per
lockstep step; probe and LRU update are fully vectorized.

Semantics within one batch (one kernel step):

* duplicate (instance, line) pairs collapse to one probe; the extras are
  counted as hits — this mirrors MSHR merging on real hardware, where
  concurrent misses to one line produce a single fill;
* distinct missing lines that collide in one set are all inserted,
  evicting in LRU order (if more collide than there are ways, the
  earliest inserted are immediately evicted — exactly what a sequential
  processing order would do).

The hit/miss counters here are the source of the Table II "cache hit
rate" column; the miss count × line size is the DRAM traffic behind the
"bandwidth" column.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError


@dataclass
class CacheStats:
    """Running hit/miss counters (requests, after coalescing)."""

    hits: int = 0
    misses: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction in [0, 1]; 0 when no requests were made."""
        total = self.requests
        return self.hits / total if total else 0.0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses


def _unique_pairs(set_idx: np.ndarray, lines: np.ndarray):
    """Deduplicate (set, line) pairs exactly.

    Returns ``(n_uniq, first_pos, inverse)`` matching what
    ``np.unique(key, return_index=True, return_inverse=True)`` would give
    for an exact, order-preserving packing of the pair: ``first_pos``
    holds the earliest request index of each distinct pair, ``inverse``
    maps every request to its pair's rank in (set, line) order.

    Fast path: pack as ``set_idx * span + line`` when the product
    provably fits in an int64 (true for any real device address space).
    Otherwise fall back to a stable lexsort on the raw pair — identical
    ordering and representatives, no aliasing for any input.
    """
    lo = int(lines.min())
    span = int(lines.max()) + 1
    if lo >= 0 and span < (1 << 62) // max(int(set_idx.max()) + 1, 1):
        key = set_idx * span + lines
        uniq, first_pos, inverse = np.unique(key, return_index=True,
                                             return_inverse=True)
        return len(uniq), first_pos, inverse
    order = np.lexsort((lines, set_idx))
    s_sorted = set_idx[order]
    l_sorted = lines[order]
    new_group = np.empty(len(order), dtype=bool)
    new_group[0] = True
    new_group[1:] = ((s_sorted[1:] != s_sorted[:-1]) |
                     (l_sorted[1:] != l_sorted[:-1]))
    group_id = np.cumsum(new_group) - 1
    inverse = np.empty(len(order), dtype=np.int64)
    inverse[order] = group_id
    # lexsort is stable, so the first element of each group is the
    # earliest original occurrence — same representative np.unique picks.
    first_pos = order[new_group]
    return int(group_id[-1]) + 1, first_pos, inverse


class CacheArray:
    """``num_instances`` independent set-associative LRU caches.

    Parameters
    ----------
    num_instances : int
        How many physical caches share this state (per-SM caches fold
        into one object; the instance id is part of the set index).
    capacity_bytes : int
        Capacity of *each* instance.
    line_bytes : int
        Cache line (fill granularity).
    ways : int
        Associativity.  ``capacity = sets × ways × line``.
    """

    def __init__(self, num_instances: int, capacity_bytes: int,
                 line_bytes: int, ways: int):
        if num_instances < 1:
            raise ReproError(f"need >= 1 cache instance, got {num_instances}")
        sets = capacity_bytes // (line_bytes * ways)
        if sets < 1:
            raise ReproError(
                f"cache too small: {capacity_bytes} B with {ways}-way × "
                f"{line_bytes} B lines leaves no sets")
        self.num_instances = num_instances
        self.line_bytes = line_bytes
        self.ways = ways
        self.sets = sets
        total_sets = num_instances * sets
        # tags[s, w] = line id resident in way w of (flattened) set s.
        # Stored narrow (int32) until a line id above 2^31-1 shows up —
        # real devices top out around 2^27 lines, so in practice the
        # probes' dominant (U, ways) tag gather moves half the bytes;
        # :meth:`_widen` upgrades to int64 on demand (synthetic
        # addresses in adversarial tests) and every insertion site
        # checks its batch maximum first, so no value is ever truncated.
        self._tags = np.full((total_sets, ways), -1, dtype=np.int32)
        # stamp[s, w] = last-touch timestamp (monotone counter) for LRU.
        self._stamp = np.zeros((total_sets, ways), dtype=np.int64)
        self._clock = 1
        # NumPy's stable sort is radix only for <= 16-bit integers (it
        # falls back to timsort above that, ~10x slower on random keys);
        # every real device geometry fits, so the fast probe narrows its
        # grouping keys when it can.
        self._narrow_sets = total_sets <= np.iinfo(np.uint16).max
        # Lazily grown ``arange(n) * ways`` base for flat (row, way)
        # indexing in the fast probe (saves an alloc + multiply per call).
        self._rowbase = np.arange(64, dtype=np.int64) * ways
        self.stats = CacheStats()

    def _flat_base(self, n: int) -> np.ndarray:
        if len(self._rowbase) < n:
            size = max(n, 2 * len(self._rowbase))
            self._rowbase = np.arange(size, dtype=np.int64) * self.ways
        return self._rowbase[:n]

    _INT32_MAX = int(np.iinfo(np.int32).max)

    def _widen(self) -> None:
        """Switch tag storage to int64 (a line id exceeded int32)."""
        self._tags = self._tags.astype(np.int64)

    def _ensure_tag_range(self, max_line: int) -> None:
        if self._tags.dtype == np.int32 and max_line > self._INT32_MAX:
            self._widen()

    # ------------------------------------------------------------------ #

    def reset(self) -> None:
        """Invalidate all lines and zero the counters."""
        self._tags.fill(-1)
        self._stamp.fill(0)
        self._clock = 1
        self.stats = CacheStats()

    def access(self, instance_ids: np.ndarray, byte_addrs: np.ndarray) -> np.ndarray:
        """Probe a batch of reads; returns a per-request boolean hit mask.

        ``instance_ids`` selects the cache instance (e.g. SM id); both
        arrays must be equal length.  Misses insert the line.
        """
        if len(instance_ids) != len(byte_addrs):
            raise ReproError("instance_ids and byte_addrs length mismatch")
        if len(byte_addrs) == 0:
            return np.zeros(0, dtype=bool)

        lines = byte_addrs.astype(np.int64) // self.line_bytes
        self._ensure_tag_range(int(lines.max()))
        set_idx = (lines % self.sets) + instance_ids.astype(np.int64) * self.sets

        # Collapse duplicates (MSHR merge): probe each (set, line) *pair*
        # once.  The set index alone does not identify a line, so the
        # pair is packed exactly — ``set_idx * span + line`` with
        # ``span > max line`` — which keeps unique keys ordered by
        # (set, line).  Line ids outside the validated packing bound
        # (possible only with pathological synthetic addresses) take a
        # stable lexsort path with identical semantics.
        n_uniq, first_pos, inverse = _unique_pairs(set_idx, lines)
        u_set = set_idx[first_pos]
        u_line = lines[first_pos]

        gathered = self._tags[u_set]                       # (U, ways)
        match = gathered == u_line[:, None]
        hit = match.any(axis=1)

        now = self._clock
        self._clock += n_uniq + 1

        if hit.any():
            hit_sets = u_set[hit]
            hit_ways = np.argmax(match[hit], axis=1)
            self._stamp[hit_sets, hit_ways] = now

        miss = ~hit
        if miss.any():
            miss_sets = u_set[miss]
            miss_lines = u_line[miss]
            # Group same-set misses: within one batch each gets its own
            # victim way, chosen in LRU order.
            order = np.argsort(miss_sets, kind="stable")
            ms = miss_sets[order]
            ml = miss_lines[order]
            group_start = np.concatenate([[True], ms[1:] != ms[:-1]])
            # rank of each miss within its set group (0, 1, 2, ...)
            idx = np.arange(len(ms))
            start_idx = np.maximum.accumulate(np.where(group_start, idx, 0))
            rank = idx - start_idx
            # Victim = LRU way.  Rank-0 misses (the vast majority — a set
            # rarely takes two distinct new lines in one step) need only
            # an argmin; higher ranks get the full LRU ordering.
            stamps = self._stamp[ms]
            victim_way = np.argmin(stamps, axis=1)
            multi = rank > 0
            if multi.any():
                rows = np.flatnonzero(multi)
                order_rows = np.argsort(stamps[rows], axis=1, kind="stable")
                victim_way[rows] = order_rows[np.arange(len(rows)),
                                              rank[rows] % self.ways]
            self._tags[ms, victim_way] = ml
            self._stamp[ms, victim_way] = now + 1 + rank

        # Per-request result: duplicates of a probed line count as hits.
        result = hit[inverse]
        dup = np.ones(len(set_idx), dtype=bool)
        dup[first_pos] = False
        result = result | dup

        self.stats.hits += int(result.sum())
        self.stats.misses += int((~result).sum())
        return result

    def probe_unique(self, u_set: np.ndarray, u_line: np.ndarray,
                     extra_hits: int = 0) -> np.ndarray:
        """Probe/update for a batch already deduplicated to distinct
        (set, line) pairs; returns the per-pair hit mask.

        The compacted engine's fast re-implementation of the state
        machine inside :meth:`access` — deliberately a *separate* code
        path so the lockstep oracle keeps exercising the reference
        implementation; ``tests/test_cache.py`` and the engine
        equivalence suite pin the two to identical state evolution.

        Semantics are those of :meth:`access` after its dedupe step, and
        are *order-independent* as long as, within each set, distinct
        lines appear in ascending order (both the sorted packed-key
        order :meth:`access` uses and a plain sort by line satisfy
        this) — victim choice and stamps depend only on that within-set
        order.  Two wins over the reference:

        * the hit way falls out of one ``argmax`` + flat gather instead
          of a mask reduction plus a re-gathered ``argmax``;
        * the LRU ordering of the miss path is computed once per
          *affected set* — bounded by cache geometry, a few hundred —
          instead of once per missing request, which turns the batch
          miss storm's big ``(misses, ways)`` stable argsort into a
          small ``(sets, ways)`` one;
        * the set-grouping sort runs on ``uint16`` keys (NumPy's stable
          sort is a radix sort only at <= 16 bits), and the 2-D
          gather/scatter pairs go through flattened indices.

        ``extra_hits`` is the number of duplicate requests that were
        collapsed away (MSHR merges); they count as hits in the stats,
        exactly as :meth:`access` counts them.
        """
        n_uniq = len(u_set)
        if n_uniq == 1:
            # Scalar path: a one-pair probe (ubiquitous in skewed tails)
            # runs on Python lists of ``ways`` elements — identical
            # semantics, a fraction of the vector-dispatch cost.
            s = int(u_set[0])
            line = int(u_line[0])
            self._ensure_tag_range(line)
            now = self._clock
            self._clock += 2
            row = self._tags[s].tolist()
            try:
                w = row.index(line)
            except ValueError:
                stamps = self._stamp[s].tolist()
                w = stamps.index(min(stamps))     # first LRU way = argmin
                self._tags[s, w] = line
                self._stamp[s, w] = now + 1
                self.stats.hits += extra_hits
                self.stats.misses += 1
                return np.zeros(1, dtype=bool)
            self._stamp[s, w] = now
            self.stats.hits += 1 + extra_hits
            return np.ones(1, dtype=bool)
        if n_uniq <= 6:
            # Small-batch path: same phase structure as the vector code
            # below (all hits resolved against the pre-probe state, then
            # misses filled in stable set order), but on Python scalars —
            # a handful of list ops beats ~25 vector dispatches.
            self._ensure_tag_range(int(u_line.max()))
            now = self._clock
            self._clock += n_uniq + 1
            sets = u_set.tolist()
            lines = u_line.tolist()
            hits = []
            for s, ln in zip(sets, lines):
                row = self._tags[s].tolist()
                try:
                    w = row.index(ln)
                except ValueError:
                    hits.append(False)
                    continue
                hits.append(True)
                self._stamp[s, w] = now
            n_hit = 0
            if True in hits:
                n_hit = hits.count(True)
            if n_hit < n_uniq:
                miss = [(s, ln) for s, h, ln in zip(sets, hits, lines)
                        if not h]
                miss.sort(key=lambda p: p[0])     # stable, like the vector
                ways = self.ways
                i, k = 0, len(miss)
                while i < k:
                    s = miss[i][0]
                    j = i + 1
                    while j < k and miss[j][0] == s:
                        j += 1
                    stamps = self._stamp[s].tolist()
                    lru = sorted(range(ways), key=stamps.__getitem__)
                    for r in range(j - i):
                        w = lru[r % ways]
                        self._tags[s, w] = miss[i + r][1]
                        self._stamp[s, w] = now + 1 + r
                    i = j
            self.stats.hits += n_hit + extra_hits
            self.stats.misses += n_uniq - n_hit
            return np.array(hits, dtype=bool)
        self._ensure_tag_range(int(u_line.max()))
        gathered = self._tags[u_set]                       # (U, ways)
        if gathered.dtype == np.int32 and u_line.dtype != np.int32:
            match = gathered == u_line.astype(np.int32)[:, None]
        else:
            match = gathered == u_line[:, None]
        way = match.argmax(axis=1)                # first matching way (or 0)
        hit = match.reshape(-1)[self._flat_base(n_uniq) + way]
        n_hit = int(np.count_nonzero(hit))

        now = self._clock
        self._clock += n_uniq + 1

        if n_hit:
            self._stamp[u_set[hit], way[hit]] = now

        if n_hit < n_uniq:
            if n_hit:
                miss = ~hit
                miss_sets = u_set[miss]
                miss_lines = u_line[miss]
            else:
                miss_sets = u_set
                miss_lines = u_line
            # Group same-set misses: within one batch each gets its own
            # victim way, chosen in LRU order.
            if self._narrow_sets:
                order = np.argsort(miss_sets.astype(np.uint16),
                                   kind="stable")
            else:
                order = np.argsort(miss_sets, kind="stable")
            ms = miss_sets[order]
            ml = miss_lines[order]
            k = len(ms)
            group_start = np.empty(k, dtype=bool)
            group_start[0] = True
            np.not_equal(ms[1:], ms[:-1], out=group_start[1:])
            n_groups = int(np.count_nonzero(group_start))
            if n_groups == k:
                # Every miss in its own set (the common case outside a
                # thrash storm): every rank is 0, victim = plain LRU way.
                victim_way = np.argmin(self._stamp[ms], axis=1)
                flat = ms * self.ways + victim_way
                self._tags.reshape(-1)[flat] = ml
                self._stamp.reshape(-1)[flat] = now + 1
            else:
                starts = np.flatnonzero(group_start)
                gid = np.cumsum(group_start)
                gid -= 1
                # rank of each miss within its set group (0, 1, 2, ...)
                rank = np.arange(k)
                rank -= starts[gid]
                # LRU order per *affected set* (hits above already
                # stamped ``now``, so they rank most-recent, exactly as
                # in the reference).
                lru = np.argsort(self._stamp[ms[starts]], axis=1,
                                 kind="stable")           # (G, ways)
                wrapped = (rank & (self.ways - 1) if not (self.ways &
                           (self.ways - 1)) else rank % self.ways)
                victim_way = lru.reshape(-1)[gid * self.ways + wrapped]
                flat = ms * self.ways + victim_way
                self._tags.reshape(-1)[flat] = ml
                rank += now + 1
                self._stamp.reshape(-1)[flat] = rank

        self.stats.hits += n_hit + extra_hits
        self.stats.misses += n_uniq - n_hit
        return hit

    # ------------------------------------------------------------------ #

    def resident_lines(self) -> int:
        """Number of valid lines currently cached (all instances)."""
        return int((self._tags >= 0).sum())

    def __repr__(self) -> str:
        return (f"CacheArray(instances={self.num_instances}, sets={self.sets}, "
                f"ways={self.ways}, line={self.line_bytes}B)")

"""Vectorized set-associative LRU cache model.

One :class:`CacheArray` holds *many independent cache instances* in a
single set of NumPy arrays — e.g. the per-SM read-only caches of a whole
GPU (16 instances on the GTX 980), or a single device-wide L2.  The SIMT
engine feeds it batches of (instance, line-address) accesses once per
lockstep step; probe and LRU update are fully vectorized.

Semantics within one batch (one kernel step):

* duplicate (instance, line) pairs collapse to one probe; the extras are
  counted as hits — this mirrors MSHR merging on real hardware, where
  concurrent misses to one line produce a single fill;
* distinct missing lines that collide in one set are all inserted,
  evicting in LRU order (if more collide than there are ways, the
  earliest inserted are immediately evicted — exactly what a sequential
  processing order would do).

The hit/miss counters here are the source of the Table II "cache hit
rate" column; the miss count × line size is the DRAM traffic behind the
"bandwidth" column.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError


@dataclass
class CacheStats:
    """Running hit/miss counters (requests, after coalescing)."""

    hits: int = 0
    misses: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction in [0, 1]; 0 when no requests were made."""
        total = self.requests
        return self.hits / total if total else 0.0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses


class CacheArray:
    """``num_instances`` independent set-associative LRU caches.

    Parameters
    ----------
    num_instances : int
        How many physical caches share this state (per-SM caches fold
        into one object; the instance id is part of the set index).
    capacity_bytes : int
        Capacity of *each* instance.
    line_bytes : int
        Cache line (fill granularity).
    ways : int
        Associativity.  ``capacity = sets × ways × line``.
    """

    def __init__(self, num_instances: int, capacity_bytes: int,
                 line_bytes: int, ways: int):
        if num_instances < 1:
            raise ReproError(f"need >= 1 cache instance, got {num_instances}")
        sets = capacity_bytes // (line_bytes * ways)
        if sets < 1:
            raise ReproError(
                f"cache too small: {capacity_bytes} B with {ways}-way × "
                f"{line_bytes} B lines leaves no sets")
        self.num_instances = num_instances
        self.line_bytes = line_bytes
        self.ways = ways
        self.sets = sets
        total_sets = num_instances * sets
        # tags[s, w] = line id resident in way w of (flattened) set s.
        self._tags = np.full((total_sets, ways), -1, dtype=np.int64)
        # stamp[s, w] = last-touch timestamp (monotone counter) for LRU.
        self._stamp = np.zeros((total_sets, ways), dtype=np.int64)
        self._clock = 1
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #

    def reset(self) -> None:
        """Invalidate all lines and zero the counters."""
        self._tags.fill(-1)
        self._stamp.fill(0)
        self._clock = 1
        self.stats = CacheStats()

    def access(self, instance_ids: np.ndarray, byte_addrs: np.ndarray) -> np.ndarray:
        """Probe a batch of reads; returns a per-request boolean hit mask.

        ``instance_ids`` selects the cache instance (e.g. SM id); both
        arrays must be equal length.  Misses insert the line.
        """
        if len(instance_ids) != len(byte_addrs):
            raise ReproError("instance_ids and byte_addrs length mismatch")
        if len(byte_addrs) == 0:
            return np.zeros(0, dtype=bool)

        lines = byte_addrs.astype(np.int64) // self.line_bytes
        set_idx = (lines % self.sets) + instance_ids.astype(np.int64) * self.sets

        # Collapse duplicates (MSHR merge): probe each (set, line) once.
        key = set_idx * (1 << 40) + (lines % (1 << 40))
        uniq_key, first_pos, inverse = np.unique(key, return_index=True,
                                                 return_inverse=True)
        u_set = set_idx[first_pos]
        u_line = lines[first_pos]

        gathered = self._tags[u_set]                       # (U, ways)
        match = gathered == u_line[:, None]
        hit = match.any(axis=1)

        now = self._clock
        self._clock += len(uniq_key) + 1

        if hit.any():
            hit_sets = u_set[hit]
            hit_ways = np.argmax(match[hit], axis=1)
            self._stamp[hit_sets, hit_ways] = now

        miss = ~hit
        if miss.any():
            miss_sets = u_set[miss]
            miss_lines = u_line[miss]
            # Group same-set misses: within one batch each gets its own
            # victim way, chosen in LRU order.
            order = np.argsort(miss_sets, kind="stable")
            ms = miss_sets[order]
            ml = miss_lines[order]
            group_start = np.concatenate([[True], ms[1:] != ms[:-1]])
            # rank of each miss within its set group (0, 1, 2, ...)
            idx = np.arange(len(ms))
            start_idx = np.maximum.accumulate(np.where(group_start, idx, 0))
            rank = idx - start_idx
            # Victim = LRU way.  Rank-0 misses (the vast majority — a set
            # rarely takes two distinct new lines in one step) need only
            # an argmin; higher ranks get the full LRU ordering.
            stamps = self._stamp[ms]
            victim_way = np.argmin(stamps, axis=1)
            multi = rank > 0
            if multi.any():
                rows = np.flatnonzero(multi)
                order_rows = np.argsort(stamps[rows], axis=1, kind="stable")
                victim_way[rows] = order_rows[np.arange(len(rows)),
                                              rank[rows] % self.ways]
            self._tags[ms, victim_way] = ml
            self._stamp[ms, victim_way] = now + 1 + rank

        # Per-request result: duplicates of a probed line count as hits.
        result = hit[inverse]
        dup = np.ones(len(key), dtype=bool)
        dup[first_pos] = False
        result = result | dup

        self.stats.hits += int(result.sum())
        self.stats.misses += int((~result).sum())
        return result

    # ------------------------------------------------------------------ #

    def resident_lines(self) -> int:
        """Number of valid lines currently cached (all instances)."""
        return int((self._tags >= 0).sum())

    def __repr__(self) -> str:
        return (f"CacheArray(instances={self.num_instances}, sets={self.sets}, "
                f"ways={self.ways}, line={self.line_bytes}B)")

"""Per-warp memory transaction coalescing.

When a warp issues a load, the hardware merges the 32 lane addresses
into the minimal set of line-sized (or sector-sized) transactions; lanes
touching the same line share one transaction.  The counting kernel's
edge reads are perfectly coalesced (consecutive lanes → consecutive
addresses) while its adjacency-walk reads are scattered — this asymmetry
is exactly why the paper's SoA "unzipping" and read-only cache matter,
so the simulator must model it rather than assume it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CoalescedBatch:
    """One lockstep step's memory requests after per-warp merging.

    Attributes
    ----------
    warp_ids : int64 array
        Issuing warp of each transaction.
    line_addrs : int64 array
        Byte address of the line's first byte (aligned).
    lane_requests : int
        Number of lane-level reads that produced these transactions.
    """

    warp_ids: np.ndarray
    line_addrs: np.ndarray
    lane_requests: int

    @property
    def transactions(self) -> int:
        return len(self.line_addrs)

    @property
    def coalescing_ratio(self) -> float:
        """Lane requests per transaction (32 = perfect, 1 = fully scattered)."""
        return self.lane_requests / self.transactions if self.transactions else 0.0


def coalesce(warp_ids: np.ndarray, byte_addrs: np.ndarray,
             granule_bytes: int) -> CoalescedBatch:
    """Merge lane reads into per-warp transactions of ``granule_bytes``.

    Parameters
    ----------
    warp_ids : array of int
        Warp of each requesting lane.
    byte_addrs : array of int
        Byte address each lane reads.
    granule_bytes : int
        Transaction granularity (a 128 B line or a 32 B sector).
    """
    if len(warp_ids) == 0:
        return CoalescedBatch(np.zeros(0, np.int64), np.zeros(0, np.int64), 0)
    granules = byte_addrs.astype(np.int64) // granule_bytes
    # One transaction per distinct (warp, granule) pair.  Packed exactly
    # — ``warp * span + granule`` with ``span > max granule`` — so no
    # two pairs can alias (a fixed-width ``<< 44`` pack would merge
    # pathological synthetic addresses 2^44 granules apart, the same
    # latent bug CacheArray.access had).  Inputs outside the provable
    # int64 packing bound take a stable lexsort with identical output.
    w = warp_ids.astype(np.int64)
    span = int(granules.max()) + 1
    if span > 0 and span < (1 << 62) // max(int(w.max()) + 1, 1):
        uniq = np.unique(w * span + granules)
        out_warps = uniq // span
        out_lines = (uniq % span) * granule_bytes
    else:
        order = np.lexsort((granules, w))
        ws, gs = w[order], granules[order]
        first = np.empty(len(order), dtype=bool)
        first[0] = True
        first[1:] = (ws[1:] != ws[:-1]) | (gs[1:] != gs[:-1])
        out_warps = ws[first]
        out_lines = gs[first] * granule_bytes
    return CoalescedBatch(out_warps, out_lines, lane_requests=len(warp_ids))

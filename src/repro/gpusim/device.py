"""Device catalog: the three GPUs and one CPU of the paper's evaluation.

All numbers are the cards' published specifications (SM count, cores per
SM, clock, memory size, peak DRAM bandwidth, PCIe generation) plus cache
geometry of the read-only path the counting kernel exercises.  The
``issue_width`` / latency entries follow the architecture whitepapers
(Fermi GF100/GF108, Maxwell GM204).

These specs are the *only* hardware-derived constants in the timing
model; everything else is measured by the simulator (see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DeviceSpec:
    """Simulated CUDA device description.

    Attributes
    ----------
    name : str
        Marketing name, used in tables.
    architecture : str
        ``"fermi"`` or ``"maxwell"`` — decides the read-only-cache rule of
        Section III-D4 (Fermi caches global loads in L1 by default; on
        Kepler/Maxwell only ``const __restrict__`` data goes through the
        texture cache).
    num_sms, cores_per_sm, clock_ghz
        Multiprocessor geometry and shader clock.
    issue_width
        Warp-instructions issued per SM per cycle (GF100: 1 effective,
        GM204: 4 schedulers).
    warp_size, max_threads_per_block, max_blocks_per_sm, max_threads_per_sm
        Launch-configuration limits.
    memory_bytes
        Global memory capacity (drives the Section III-D6 ``†`` fallback).
    peak_bandwidth_gbs
        Peak DRAM bandwidth in GB/s.
    dram_efficiency
        Fraction of peak a scattered-read workload can sustain (the paper
        observes "about half" of the 224 GB/s peak; we use the published
        ~60–70% attainable-efficiency figures and let the cache model do
        the rest).
    l1_bytes, l1_ways, line_bytes, sector_bytes
        Per-SM read-only/L1 cache geometry.
    l2_bytes, l2_ways
        Device-wide L2 geometry.
    mem_latency_cycles
        DRAM round-trip in cycles; bounds throughput when too few warps
        are resident to cover it.
    pcie_gbs
        Effective host↔device copy bandwidth.
    """

    name: str
    architecture: str
    num_sms: int
    cores_per_sm: int
    clock_ghz: float
    issue_width: int
    memory_bytes: int
    peak_bandwidth_gbs: float
    dram_efficiency: float
    l1_bytes: int
    l1_ways: int
    line_bytes: int
    sector_bytes: int
    l2_bytes: int
    l2_ways: int
    mem_latency_cycles: int
    pcie_gbs: float
    #: Device-wide L2 bandwidth in GB/s (every L1 miss / uncached access
    #: rides this — the resource the Section III-D4 read-only cache
    #: relieves).
    l2_bandwidth_gbs: float = 400.0
    #: L1/LSU throughput: memory transactions each SM can issue per cycle
    #: (bounds load-heavy loops like the preliminary merge variant).
    lsu_transactions_per_cycle: float = 1.0
    #: Resident warps per SM needed to hide memory latency; below this
    #: the SM idles proportionally (what the Section III-C grid search
    #: optimizes — 512 threads/SM = 16 warps is the paper's optimum).
    latency_hiding_warps: int = 16
    warp_size: int = 32
    max_threads_per_block: int = 1024
    max_blocks_per_sm: int = 16
    max_threads_per_sm: int = 1536

    @property
    def num_cores(self) -> int:
        return self.num_sms * self.cores_per_sm

    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9

    @property
    def caches_global_loads_by_default(self) -> bool:
        """Fermi runs global loads through L1; Kepler/Maxwell need the
        ``const __restrict__`` qualifiers (Section III-D4)."""
        return self.architecture == "fermi"

    def with_memory(self, memory_bytes: int) -> "DeviceSpec":
        """A copy with a different global-memory capacity.

        The bench harness scales capacity together with workload scale so
        the footprint/capacity *ratio* matches the full-size experiment
        (this is what re-triggers the paper's ``†`` fallback at mini scale).
        """
        return replace(self, memory_bytes=int(memory_bytes))

    def scaled_memory(self, scale: float) -> "DeviceSpec":
        """Capacity scaled by the workload's size fraction (see above)."""
        return self.with_memory(max(int(self.memory_bytes * scale), 1))

    def scaled(self, scale: float) -> "DeviceSpec":
        """Scale the *capacity-bound* resources to a mini-scale workload.

        Global memory and the device-wide L2 shrink with the workload so
        the footprint/capacity and working-set/L2 ratios match the
        full-size experiment (at full scale the graphs dwarf the 0.75–2 MB
        L2; an unscaled L2 would swallow a mini graph whole and zero out
        the DRAM traffic the paper measures).  The per-SM read-only cache
        is *not* scaled: its hit rate is governed by the locality of the
        resident warps' current merge windows, whose size is set by the
        launch geometry, not by the graph.
        """
        if not (0 < scale <= 1):
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        min_l2 = self.line_bytes * self.l2_ways  # one set minimum
        return replace(
            self,
            memory_bytes=max(int(self.memory_bytes * scale), 1),
            l2_bytes=max(int(self.l2_bytes * scale), min_l2),
        )


@dataclass(frozen=True)
class CpuSpec:
    """Single-threaded CPU model for the baseline forward implementation.

    The two throughput constants are calibrated once against the paper's
    LiveJournal CPU row (13.8 s) and then reused unchanged everywhere —
    see ``repro.bench.calibration``.
    """

    name: str
    clock_ghz: float
    #: sustained ns per merge-loop step of the sequential counting phase
    #: (compare + predicated advances + one cached load).
    ns_per_merge_step: float
    #: sustained ns per element for one preprocessing pass (stream work).
    ns_per_pass_element: float
    #: ns per element-comparison of a sort; total sort cost is
    #: ``m × log2(m) × ns_per_sort_compare``.
    ns_per_sort_compare: float
    #: ns of fixed per-edge setup in the counting loop (pointer loads).
    ns_per_edge_setup: float = 8.0
    #: host memory bandwidth in GB/s (bounds streaming passes).
    bandwidth_gbs: float = 32.0


TESLA_C2050 = DeviceSpec(
    name="Tesla C2050",
    architecture="fermi",
    num_sms=14,
    cores_per_sm=32,
    clock_ghz=1.15,
    issue_width=1,
    memory_bytes=3 * 1024**3,
    peak_bandwidth_gbs=144.0,
    dram_efficiency=0.50,
    l1_bytes=16 * 1024,        # 16 KB L1 / 48 KB shared configuration
    l1_ways=4,
    line_bytes=128,
    sector_bytes=32,
    l2_bytes=768 * 1024,
    l2_ways=8,
    mem_latency_cycles=550,
    pcie_gbs=6.0,              # PCIe 2.0 x16 effective
    l2_bandwidth_gbs=230.0,
    lsu_transactions_per_cycle=0.5,
    max_threads_per_sm=1536,
    max_blocks_per_sm=8,
)

GTX_980 = DeviceSpec(
    name="GTX 980",
    architecture="maxwell",
    num_sms=16,
    cores_per_sm=128,
    clock_ghz=1.126,
    issue_width=4,
    memory_bytes=4 * 1024**3,
    peak_bandwidth_gbs=224.0,
    dram_efficiency=0.50,
    l1_bytes=24 * 1024,        # unified L1/texture slice per SMM
    l1_ways=8,
    line_bytes=128,
    sector_bytes=32,
    l2_bytes=2 * 1024**2,
    l2_ways=16,
    mem_latency_cycles=350,
    pcie_gbs=12.0,             # PCIe 3.0 x16 effective
    l2_bandwidth_gbs=450.0,
    lsu_transactions_per_cycle=1.0,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
)

NVS_5200M = DeviceSpec(
    name="NVS 5200M",
    architecture="fermi",
    num_sms=2,
    cores_per_sm=48,
    clock_ghz=1.344,
    issue_width=1,
    memory_bytes=1 * 1024**3,
    peak_bandwidth_gbs=14.4,
    dram_efficiency=0.50,
    l1_bytes=16 * 1024,
    l1_ways=4,
    line_bytes=128,
    sector_bytes=32,
    l2_bytes=128 * 1024,
    l2_ways=8,
    mem_latency_cycles=550,
    pcie_gbs=3.0,
    l2_bandwidth_gbs=40.0,
    lsu_transactions_per_cycle=0.35,
    max_threads_per_sm=1536,
    max_blocks_per_sm=8,
)

XEON_X5650 = CpuSpec(
    name="Xeon X5650",
    clock_ghz=2.66,
    ns_per_merge_step=2.0,
    ns_per_pass_element=2.0,
    ns_per_sort_compare=2.0,
    ns_per_edge_setup=8.0,
    bandwidth_gbs=32.0,
)

#: All simulated GPUs by short key.
DEVICES: dict[str, DeviceSpec] = {
    "c2050": TESLA_C2050,
    "gtx980": GTX_980,
    "nvs5200m": NVS_5200M,
}

"""Host-side wall-clock attribution for the simulator itself.

The simulated timing model answers "how long would the *GPU* take";
this module answers "where does the *simulator's host CPU time* go" —
the quantity the perf PRs optimize.  A :class:`HostProfiler` accumulates
per-phase wall-clock in the unified vocabulary every pipeline shares
(the launches all go through :func:`repro.runtime.launch`):

* ``h2d`` / ``kernel`` / ``d2h`` / ``free`` — the top-level lifecycle
  phases of a kernel launch: building + copying the device-resident
  structures, the kernel body, the reduce + result readback, and the
  teardown sweep.  These are the comparable numbers — ``==SERVE==``
  sheets and bench phase totals mean the same thing for every kernel;
* ``setup`` / ``merge`` (and the warp-intersect kernel's ``chunk``) —
  the kernel tick sections, subsets of ``kernel``;
* ``cache-model`` — :meth:`SimtEngine.read`/``write``/``atomic_add``
  (address math, coalescing, cache probes), a subset of the above;
* ``accounting`` — :meth:`SimtEngine.end_step` bookkeeping, also a
  subset of the kernel sections.

Profiling is opt-in and ambient: ``install_host_profiler`` (or the
``host_profiling()`` context manager) makes every subsequently
constructed :class:`~repro.gpusim.simt.SimtEngine` record into the
installed profiler, so whole-replay aggregation (``repro-bench serve``,
the wall-clock harness) needs no plumbing through the call stack.  When
nothing is installed the hot paths pay a single ``None`` check.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter


@dataclass
class HostPhase:
    """Accumulated wall-clock of one named phase."""

    seconds: float = 0.0
    calls: int = 0


@dataclass
class HostProfiler:
    """Named wall-clock accumulators (see module docstring for phases)."""

    phases: dict = field(default_factory=dict)

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        phase = self.phases.get(name)
        if phase is None:
            phase = self.phases[name] = HostPhase()
        phase.seconds += seconds
        phase.calls += calls

    @contextmanager
    def phase(self, name: str):
        t0 = perf_counter()
        try:
            yield
        finally:
            self.add(name, perf_counter() - t0)

    def merge(self, other: "HostProfiler") -> None:
        for name, phase in other.phases.items():
            self.add(name, phase.seconds, phase.calls)

    @property
    def total_seconds(self) -> float:
        """Top-level phase seconds (excludes the overlapping subsets)."""
        return sum(p.seconds for n, p in self.phases.items()
                   if n not in _SUBSET_PHASES)

    def breakdown(self) -> dict:
        """JSON-friendly ``{phase: {"seconds": s, "calls": c}}``."""
        return {name: {"seconds": phase.seconds, "calls": phase.calls}
                for name, phase in sorted(self.phases.items())}


#: Phases measured *inside* another phase (double counted by a naive
#: sum, hence excluded from :attr:`HostProfiler.total_seconds`): the
#: kernel tick sections nest inside the runtime's ``kernel`` phase, and
#: the engine subsets nest inside the tick sections.
_SUBSET_PHASES = frozenset({"setup", "merge", "chunk",
                            "cache-model", "accounting"})

_installed: HostProfiler | None = None


def install_host_profiler(profiler: HostProfiler | None) -> None:
    """Set (or clear, with ``None``) the ambient profiler new engines use."""
    global _installed
    _installed = profiler


def current_host_profiler() -> HostProfiler | None:
    return _installed


@contextmanager
def host_profiling(profiler: HostProfiler | None = None):
    """Install ``profiler`` (default: a fresh one) for the duration,
    restoring whatever was installed before; yields the profiler."""
    prof = HostProfiler() if profiler is None else profiler
    previous = current_host_profiler()
    install_host_profiler(prof)
    try:
        yield prof
    finally:
        install_host_profiler(previous)


def format_host_profile(profiler: HostProfiler,
                        header: str = "==HOST== simulator wall-clock") -> str:
    """Profiler-idiom sheet of where the host CPU time went."""
    lines = [header]
    total = profiler.total_seconds
    for name, phase in sorted(profiler.phases.items(),
                              key=lambda kv: -kv[1].seconds):
        share = (f" {phase.seconds / total:>6.1%}"
                 if total > 0 and name not in _SUBSET_PHASES else "       ")
        note = "  (subset)" if name in _SUBSET_PHASES else ""
        lines.append(f"  {name:<38} {phase.seconds * 1e3:>10.1f} ms "
                     f"{share}  {phase.calls:>9,} calls{note}")
    lines.append(f"  {'total (top-level phases)':<38} "
                 f"{total * 1e3:>10.1f} ms")
    return "\n".join(lines) + "\n"

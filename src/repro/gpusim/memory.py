"""Simulated device global memory: allocation, capacity, transfers.

The allocator gives every buffer a *device address* in a flat address
space — the SIMT engine turns array indices into byte addresses with
these bases, so cache sets and coalescing behave as they would on real
hardware (two arrays never alias, allocations are 256-byte aligned like
``cudaMalloc``'s).

Capacity accounting is what drives the paper's Section III-D6 behaviour:
when the preprocessing working set exceeds ``DeviceSpec.memory_bytes``
the pipeline catches :class:`OutOfDeviceMemoryError` and falls back to
CPU preprocessing (the ``†`` rows of Table I).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import (DoubleFreeError, ForeignFreeError,
                          OutOfDeviceMemoryError)
from repro.gpusim.device import DeviceSpec

#: cudaMalloc alignment.
_ALIGN = 256


def aligned_nbytes(nbytes: int) -> int:
    """Bytes an allocation of ``nbytes`` occupies after ``cudaMalloc``-style
    alignment (minimum one aligned unit, like a zero-byte ``cudaMalloc``)."""
    return -(-max(int(nbytes), 1) // _ALIGN) * _ALIGN


@dataclass
class DeviceBuffer:
    """A device allocation: host-side backing array + device address.

    The backing ndarray holds the *functional* contents (the simulator
    computes real results); ``device_addr`` is the simulated placement
    used for cache/coalescing address math.  ``alloc_bytes`` is the
    aligned size the allocator charged (0 for raw views built outside the
    allocator, e.g. reinterpretations of an existing allocation); a
    *reservation* (see :meth:`DeviceMemory.try_alloc`) has a zero-length
    backing array but a non-zero ``alloc_bytes``.
    """

    name: str
    data: np.ndarray
    device_addr: int
    freed: bool = False
    alloc_bytes: int = 0

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def itemsize(self) -> int:
        return self.data.itemsize

    def addresses(self, indices: np.ndarray) -> np.ndarray:
        """Byte addresses of ``self.data[indices]`` in device space."""
        return self.device_addr + indices.astype(np.int64) * self.itemsize


class DeviceMemory:
    """Bump allocator with explicit free and peak tracking.

    A bump allocator (freed space is only reclaimed when the *top*
    allocation is freed) matches how the pipeline uses memory — strictly
    phase-ordered allocate/free — while keeping peak accounting exact.
    """

    def __init__(self, spec: DeviceSpec):
        self.spec = spec
        self._top = 0
        self._live: dict[int, DeviceBuffer] = {}
        self.peak_bytes = 0
        self.total_allocated_bytes = 0
        #: Optional :class:`repro.sanitize.Sanitizer` observing
        #: allocation events; ``None`` keeps the paths hook-free.
        self.sanitizer = None

    # ------------------------------------------------------------------ #

    @property
    def used_bytes(self) -> int:
        return self._top

    @property
    def free_bytes(self) -> int:
        return self.spec.memory_bytes - self._top

    def alloc(self, name: str, data: np.ndarray) -> DeviceBuffer:
        """Place a copy of ``data`` on the device.

        Raises
        ------
        OutOfDeviceMemoryError
            If the aligned size does not fit in the remaining capacity.
        """
        data = np.ascontiguousarray(data)
        size = aligned_nbytes(data.nbytes)
        if size > self.free_bytes:
            raise OutOfDeviceMemoryError(requested=size, available=self.free_bytes)
        return self._place(name, data.copy(), size)

    def try_alloc(self, name: str, data) -> DeviceBuffer | None:
        """Non-raising :meth:`alloc`: ``None`` when the request does not fit.

        ``data`` may be an ndarray (placed exactly like :meth:`alloc`) or
        an ``int`` byte count — a pure capacity *reservation* with an
        empty backing array.  The reservation form is what admission
        control uses to probe whether a job's working set fits without
        exception-driven control flow and without materializing the
        working set on the host; free the returned buffer to release it.
        """
        if isinstance(data, (int, np.integer)):
            size = aligned_nbytes(data)
            if size > self.free_bytes:
                return None
            return self._place(name, np.empty(0, np.uint8), size)
        data = np.ascontiguousarray(data)
        size = aligned_nbytes(data.nbytes)
        if size > self.free_bytes:
            return None
        return self._place(name, data.copy(), size)

    def _place(self, name: str, payload: np.ndarray, size: int,
               initialized: bool = True) -> DeviceBuffer:
        buf = DeviceBuffer(name=name, data=payload, device_addr=self._top,
                           alloc_bytes=size)
        self._top += size
        self._live[buf.device_addr] = buf
        self.total_allocated_bytes += size
        self.peak_bytes = max(self.peak_bytes, self._top)
        if self.sanitizer is not None:
            self.sanitizer.on_alloc(buf, initialized=initialized)
        return buf

    def alloc_empty(self, name: str, shape, dtype) -> DeviceBuffer:
        """Allocate an uninitialized buffer (``cudaMalloc`` without copy).

        The sanitizer's initcheck treats the whole region as invalid
        until a device ``write``/``atomic_add`` covers it.
        """
        data = np.empty(shape, dtype=dtype)
        size = aligned_nbytes(data.nbytes)
        if size > self.free_bytes:
            raise OutOfDeviceMemoryError(requested=size,
                                         available=self.free_bytes)
        return self._place(name, data, size, initialized=False)

    def free(self, buf: DeviceBuffer) -> None:
        """Release a buffer; space is reclaimed once the top buffer frees.

        Raises
        ------
        DoubleFreeError
            If ``buf`` was already freed.
        ForeignFreeError
            If ``buf`` was never allocated by this :class:`DeviceMemory`
            (raw view, reservation of another device, stale handle whose
            address was reused).
        """
        if buf.freed:
            raise DoubleFreeError(buf.name)
        if self._live.get(buf.device_addr) is not buf:
            raise ForeignFreeError(buf.name, self.spec.name)
        buf.freed = True
        if self.sanitizer is not None:
            self.sanitizer.on_free(buf)
        del self._live[buf.device_addr]
        # Reclaim the now-free suffix of the heap.
        if self._live:
            top_buf = self._live[max(self._live)]
            self._top = top_buf.device_addr + (top_buf.alloc_bytes
                                               or aligned_nbytes(top_buf.nbytes))
        else:
            self._top = 0

    def free_all(self) -> None:
        """Release everything (end-of-run ``cudaFree`` sweep)."""
        for buf in list(self._live.values()):
            buf.freed = True
            if self.sanitizer is not None:
                self.sanitizer.on_free(buf)
        self._live.clear()
        self._top = 0

    def snapshot(self) -> frozenset:
        """Opaque marker of the currently live allocations."""
        return frozenset(self._live)

    def release_new(self, snap: frozenset) -> None:
        """Free every allocation made since ``snapshot()`` (OOM rollback:
        a failed phase cleans up after itself without touching buffers
        the caller already held)."""
        for addr in sorted((a for a in self._live if a not in snap),
                           reverse=True):
            self.free(self._live[addr])

    # ------------------------------------------------------------------ #
    # transfer timing
    # ------------------------------------------------------------------ #

    def h2d_ms(self, nbytes: int) -> float:
        """Milliseconds to copy ``nbytes`` host → device over PCIe."""
        return nbytes / (self.spec.pcie_gbs * 1e9) * 1e3

    d2h_ms = h2d_ms  # symmetric link

    def __repr__(self) -> str:
        return (f"DeviceMemory({self.spec.name!r}, used={self.used_bytes}, "
                f"capacity={self.spec.memory_bytes})")

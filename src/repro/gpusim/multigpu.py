"""Multi-device contexts (paper Section III-E).

The paper's multi-GPU scheme is deliberately simple: preprocess on one
device, copy the preprocessed arrays to the others, and let each device
count its slice of the edges.  This module supplies the device-set
bookkeeping: one :class:`~repro.gpusim.memory.DeviceMemory` per card and
host-mediated broadcast copies with PCIe timing.  The counting logic
itself lives in :mod:`repro.core.multi_gpu`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DeviceError
from repro.gpusim.device import DeviceSpec
from repro.gpusim.memory import DeviceBuffer, DeviceMemory
from repro.gpusim.timing import Timeline


class MultiGpuContext:
    """A set of identical simulated devices.

    Parameters
    ----------
    device : DeviceSpec
        Card model (the paper uses four Tesla C2050s).
    count : int
        Number of cards.
    """

    def __init__(self, device: DeviceSpec, count: int):
        if count < 1:
            raise DeviceError(f"need at least one device, got {count}")
        self.device = device
        self.count = count
        self.memories = [DeviceMemory(device) for _ in range(count)]

    @property
    def primary(self) -> DeviceMemory:
        """The device that runs the preprocessing phase."""
        return self.memories[0]

    def broadcast(self, buf: DeviceBuffer, timeline: Timeline | None = None
                  ) -> list[DeviceBuffer]:
        """Copy a primary-device buffer to every other device.

        Returns the per-device buffer list (index 0 is the original).
        Transfers are host-mediated (device → host → each device), the
        conservative path the paper's simple scheme implies; both hops
        ride the PCIe link, serialized per destination.

        When ``timeline`` keeps a stream schedule (duck-typed on
        ``add_on`` — :class:`repro.runtime.StreamTimeline`), device
        ``i``'s copy is stamped on stream ``i``: each destination has
        its own PCIe lane in the model, so the copies may overlap there
        while the reported serial totals stay unchanged.
        """
        out = [buf]
        per_copy_ms = 2.0 * buf.nbytes / (self.device.pcie_gbs * 1e9) * 1e3
        add_on = getattr(timeline, "add_on", None)
        for i, mem in enumerate(self.memories[1:], start=1):
            out.append(mem.alloc(f"{buf.name}@dev{i}", buf.data))
            if add_on is not None:
                add_on(f"broadcast {buf.name} -> dev{i}", per_copy_ms,
                       phase="copy", stream=i)
            elif timeline is not None:
                timeline.add(f"broadcast {buf.name} -> dev{i}", per_copy_ms,
                             phase="copy")
        return out

    def partition_ranges(self, num_items: int) -> list[tuple[int, int]]:
        """Contiguous near-equal ``[lo, hi)`` item ranges, one per device."""
        bounds = np.linspace(0, num_items, self.count + 1).astype(np.int64)
        return [(int(bounds[i]), int(bounds[i + 1])) for i in range(self.count)]

    def free_all(self) -> None:
        for mem in self.memories:
            mem.free_all()

"""Multi-device contexts (paper Section III-E).

The paper's multi-GPU scheme is deliberately simple: preprocess on one
device, copy the preprocessed arrays to the others, and let each device
count its slice of the edges.  This module supplies the device-set
bookkeeping: one :class:`~repro.gpusim.memory.DeviceMemory` per card and
host-mediated broadcast copies with PCIe timing.  The counting logic
itself lives in :mod:`repro.core.multi_gpu`.

Two exchange schedules are modeled:

* :meth:`MultiGpuContext.broadcast` — the paper's one-source scheme:
  device 0 pushes every destination its own host-mediated copy (two
  PCIe traversals per destination).  This is the default and the one
  the reported serial totals describe.
* :meth:`MultiGpuContext.ring_broadcast` — a chunked store-and-forward
  ring: card ``d`` receives from card ``d-1`` over a dedicated link
  stream as a direct peer copy (one PCIe traversal) and forwards each
  chunk as soon as it has arrived.  With ``N`` chunks the last of ``k``
  cards holds the data after ``(N + k - 2)`` chunk-hops — a makespan of
  ``B * (N + k - 2) / N`` against the broadcast's ``2B``, so the ring
  wins whenever ``N >= k - 1``.  Buffers are allocated in the same
  per-device order as ``broadcast``, so device addresses (and hence
  kernel cache counters) are identical between the two schedules.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DeviceError
from repro.gpusim.device import DeviceSpec
from repro.gpusim.memory import DeviceBuffer, DeviceMemory
from repro.gpusim.timing import Timeline


class MultiGpuContext:
    """A set of identical simulated devices.

    Parameters
    ----------
    device : DeviceSpec
        Card model (the paper uses four Tesla C2050s).
    count : int
        Number of cards.
    """

    def __init__(self, device: DeviceSpec, count: int):
        if count < 1:
            raise DeviceError(f"need at least one device, got {count}")
        self.device = device
        self.count = count
        self.memories = [DeviceMemory(device) for _ in range(count)]

    @property
    def primary(self) -> DeviceMemory:
        """The device that runs the preprocessing phase."""
        return self.memories[0]

    def broadcast(self, buf: DeviceBuffer, timeline: Timeline | None = None
                  ) -> list[DeviceBuffer]:
        """Copy a primary-device buffer to every other device.

        Returns the per-device buffer list (index 0 is the original).
        Transfers are host-mediated (device → host → each device), the
        conservative path the paper's simple scheme implies; both hops
        ride the PCIe link, serialized per destination.

        When ``timeline`` keeps a stream schedule (duck-typed on
        ``add_on`` — :class:`repro.runtime.StreamTimeline`), device
        ``i``'s copy is stamped on stream ``i``: each destination has
        its own PCIe lane in the model, so the copies may overlap there
        while the reported serial totals stay unchanged.
        """
        out = [buf]
        per_copy_ms = 2.0 * buf.nbytes / (self.device.pcie_gbs * 1e9) * 1e3
        add_on = getattr(timeline, "add_on", None)
        for i, mem in enumerate(self.memories[1:], start=1):
            out.append(mem.alloc(f"{buf.name}@dev{i}", buf.data))
            if add_on is not None:
                add_on(f"broadcast {buf.name} -> dev{i}", per_copy_ms,
                       phase="copy", stream=i)
            elif timeline is not None:
                timeline.add(f"broadcast {buf.name} -> dev{i}", per_copy_ms,
                             phase="copy")
        return out

    def ring_broadcast(self, buf: DeviceBuffer,
                       timeline: Timeline | None = None,
                       chunks: int = 4) -> list[DeviceBuffer]:
        """Copy a primary-device buffer to every other device over a
        store-and-forward ring (see the module docstring).

        The buffer is split into ``chunks`` near-equal slices; the link
        into device ``d`` lives on stream ``d``, and chunk ``c`` on link
        ``d`` waits (a :meth:`~repro.runtime.StreamTimeline.wait_for`
        edge) for chunk ``c`` to arrive at device ``d-1`` — each card
        forwards as soon as it holds the data.  Each hop is a direct
        peer copy: one PCIe traversal, against the host-mediated
        broadcast's two.  Serial totals therefore record
        ``(k-1) * nbytes`` worth of link time instead of the broadcast
        protocol's ``2 * (k-1) * nbytes`` — callers wanting the paper's
        reported numbers keep :meth:`broadcast`.

        Falls back to per-destination serial events on a timeline with
        no stream schedule.  Returns the per-device buffer list (index
        0 is the original).
        """
        if chunks < 1:
            raise DeviceError(f"ring exchange needs >= 1 chunk, got {chunks}")
        # Same allocation order as broadcast(): destination buffers
        # device-by-device, before any transfer is stamped.
        out = [buf]
        for i, mem in enumerate(self.memories[1:], start=1):
            out.append(mem.alloc(f"{buf.name}@dev{i}", buf.data))
        if timeline is None or self.count == 1:
            return out
        add_on = getattr(timeline, "add_on", None)
        wait_for = getattr(timeline, "wait_for", None)
        bounds = np.linspace(0, buf.nbytes, chunks + 1).astype(np.int64)
        for c in range(chunks):
            chunk_bytes = int(bounds[c + 1] - bounds[c])
            if chunk_bytes == 0:
                continue
            hop_ms = chunk_bytes / (self.device.pcie_gbs * 1e9) * 1e3
            for d in range(1, self.count):
                name = (f"ring {buf.name} chunk {c + 1}/{chunks} "
                        f"dev{d - 1}->dev{d}")
                if add_on is None or wait_for is None:
                    timeline.add(name, hop_ms, phase="copy")
                    continue
                if d > 1:
                    # Chunk c cannot leave card d-1 before it arrived
                    # there — the event just issued on link d-1.
                    wait_for(d, d - 1)
                add_on(name, hop_ms, phase="copy", stream=d)
        return out

    def partition_ranges(self, num_items: int) -> list[tuple[int, int]]:
        """Contiguous near-equal ``[lo, hi)`` item ranges, one per device."""
        bounds = np.linspace(0, num_items, self.count + 1).astype(np.int64)
        return [(int(bounds[i]), int(bounds[i + 1])) for i in range(self.count)]

    def free_all(self) -> None:
        for mem in self.memories:
            mem.free_all()

"""nvprof-style reports over simulated kernel executions.

The paper's Table II comes from profiler counters; this module is the
simulator's equivalent of that profiler — it formats a
:class:`~repro.gpusim.simt.KernelReport` + :class:`~repro.gpusim.timing
.KernelTiming` into the metric sheet an Nvidia profiler would print
(achieved occupancy, SIMD efficiency, cache hit rates, transactions per
request, DRAM throughput, the limiting resource), plus a whole-pipeline
view with the per-phase timeline.
"""

from __future__ import annotations

import io

from repro.gpusim.simt import KernelReport
from repro.gpusim.timing import KernelTiming, achieved_bandwidth_gbs
from repro.utils import human_bytes, human_ms


def format_kernel_profile(report: KernelReport, timing: KernelTiming,
                          name: str = "CountTriangles") -> str:
    """One kernel's metric sheet (what ``nvprof --metrics`` would show)."""
    device = report.device
    launch = report.launch
    out = io.StringIO()
    out.write(f"==PROF== {name} on {device.name} "
              f"<<<{launch.grid_blocks(device)}, "
              f"{launch.threads_per_block}>>>\n")

    def metric(label, value):
        out.write(f"  {label:<38} {value}\n")

    resident = launch.resident_warps_per_sm(device)
    metric("duration", human_ms(timing.kernel_ms))
    metric("limiting resource", timing.bound)
    metric("resident warps / SM",
           f"{resident} ({resident / (device.max_threads_per_sm // device.warp_size):.0%} occupancy)")
    metric("warp execution (SIMD) efficiency",
           f"{report.simd_efficiency:.1%}")
    steps = ", ".join(f"{k}: {v:,}" for k, v in sorted(report.warp_steps.items()))
    metric("warp-steps executed", steps or "none")
    metric("instruction slots issued", f"{report.instruction_slots:,}")
    metric("global load requests (lanes)", f"{report.lane_reads:,}")
    metric("memory transactions", f"{report.transactions:,}")
    if report.transactions:
        metric("requests per transaction",
               f"{report.lane_reads / report.transactions:.2f}")
    l1_total = report.l1_hits + report.l1_misses
    if l1_total:
        metric("tex/L1 hit rate",
               f"{report.l1_hit_rate:.2%} "
               f"({report.l1_hits:,} / {l1_total:,})")
    else:
        metric("tex/L1 hit rate", "bypassed (no const __restrict__)")
    l2_total = report.l2_hits + report.l2_misses
    if l2_total:
        metric("L2 hit rate", f"{report.l2_hits / l2_total:.2%}")
    metric("L2 traffic", human_bytes(report.l2_bytes))
    metric("DRAM traffic", human_bytes(report.dram_bytes))
    metric("DRAM throughput",
           f"{achieved_bandwidth_gbs(report, timing.kernel_ms):.1f} GB/s "
           f"of {device.peak_bandwidth_gbs:.0f} peak")
    metric("roofline components",
           f"compute {human_ms(timing.compute_ms)}, "
           f"dram {human_ms(timing.dram_ms)}, "
           f"l2 {human_ms(timing.l2_ms)}, "
           f"lsu {human_ms(timing.lsu_ms)}")
    return out.getvalue()


def format_run_profile(run) -> str:
    """Whole-pipeline profile of a :class:`~repro.core.forward_gpu
    .GpuRunResult` (timeline + kernel sheet)."""
    out = io.StringIO()
    out.write(f"==PROF== pipeline on {run.device.name}: "
              f"{run.triangles:,} triangles in {human_ms(run.total_ms)}"
              f"{'  [† CPU preprocessing]' if run.used_cpu_fallback else ''}\n")
    out.write(f"  {'phase':<11} {'step':<34} {'time':>12} {'share':>7}\n")
    total = run.total_ms or 1.0
    for event in run.timeline.events:
        out.write(f"  {event.phase:<11} {event.name:<34} "
                  f"{human_ms(event.ms):>12} {event.ms / total:>6.1%}\n")
    out.write("\n")
    out.write(format_kernel_profile(run.kernel_report, run.kernel_timing))
    return out.getvalue()

"""Golden per-thread reference executor for the counting kernel.

The lockstep engine (:mod:`repro.gpusim.simt`) is heavily vectorized;
this module re-implements ``CountTriangles`` as the *literal* CUDA
listing — one plain-Python loop per thread, both loop variants — so
tests can validate the fast path's per-thread counts and per-warp
iteration totals against an implementation simple enough to audit by
eye.  It is orders of magnitude slower and is only ever run on tiny
inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ReferenceResult:
    """Per-thread counts plus warp-level iteration totals."""

    thread_counts: np.ndarray    # uint64, one per thread
    #: per-warp total merge iterations under warp-synchronous semantics
    #: (each edge round costs the max of the lanes' merge lengths).
    warp_merge_steps: np.ndarray
    #: per-warp number of edge-setup rounds executed.
    warp_setup_steps: np.ndarray

    @property
    def triangles(self) -> int:
        return int(self.thread_counts.sum())


def _merge_length(adj, u_it, u_end, v_it, v_end) -> tuple[int, int]:
    """One sequential two-pointer merge; returns (matches, iterations)."""
    count = 0
    steps = 0
    if u_it < u_end and v_it < v_end:
        a = adj[u_it]
        b = adj[v_it]
        while u_it < u_end and v_it < v_end:
            steps += 1
            d = int(a) - int(b)
            if d <= 0:
                u_it += 1
                if u_it < u_end:
                    a = adj[u_it]
            if d >= 0:
                v_it += 1
                if v_it < v_end:
                    b = adj[v_it]
            if d == 0:
                count += 1
    return count, steps


def reference_count(adj: np.ndarray,
                    keys: np.ndarray,
                    node: np.ndarray,
                    num_threads: int,
                    warp_size: int = 32,
                    lo: int = 0,
                    hi: int | None = None) -> ReferenceResult:
    """Run ``CountTriangles`` per-thread over arcs ``[lo, hi)``.

    ``adj``/``keys`` are the preprocessed forward columns and ``node``
    the node array, exactly as :class:`repro.core.preprocess
    .PreprocessResult` holds them.
    """
    m = len(keys)
    hi = m if hi is None else hi
    counts = np.zeros(num_threads, np.uint64)
    num_warps = (num_threads + warp_size - 1) // warp_size
    warp_merge = np.zeros(num_warps, np.int64)
    warp_setup = np.zeros(num_warps, np.int64)

    node = node.astype(np.int64)
    for warp in range(num_warps):
        lanes = range(warp * warp_size,
                      min((warp + 1) * warp_size, num_threads))
        # Warp-synchronous edge rounds: round r covers arcs
        # lo + lane + r * num_threads; the warp keeps going while any
        # lane still has one.
        r = 0
        while True:
            round_steps = 0
            any_lane = False
            for lane in lanes:
                i = lo + lane + r * num_threads
                if i >= hi:
                    continue
                any_lane = True
                u = int(adj[i])
                v = int(keys[i])
                matches, steps = _merge_length(
                    adj, int(node[u]), int(node[u + 1]),
                    int(node[v]), int(node[v + 1]))
                counts[lane] += np.uint64(matches)
                round_steps = max(round_steps, steps)
            if not any_lane:
                break
            warp_setup[warp] += 1
            warp_merge[warp] += round_steps
            r += 1
    return ReferenceResult(thread_counts=counts,
                           warp_merge_steps=warp_merge,
                           warp_setup_steps=warp_setup)

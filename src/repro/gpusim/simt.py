"""Warp-lockstep SIMT execution engine.

The engine executes kernels the way the hardware does at warp
granularity: all 32 lanes of a warp move through the instruction stream
together under an active mask; a warp leaves a divergent loop only when
*every* lane has left it (reconvergence), which is exactly the
effect the paper's Section III-D5 warp-size experiment manipulates.

Kernels are written *vectorized over warps*: per-lane state lives in
NumPy arrays indexed by global lane id, and one engine "tick" advances
every live warp by one warp-instruction-block (a merge-loop iteration,
an edge-setup block, ...).  The engine is responsible for

* memory: index → device byte address → per-warp coalescing →
  per-SM read-only cache → device L2 → DRAM byte counting,
* occupancy bookkeeping (which SM owns which warp),
* instruction/step accounting per SM (feeds the timing model),
* divergence accounting (active lanes per executed warp-step).

The functional results are exact — the engine *computes* with the real
data while it counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.errors import InvalidLaunchError, KernelFault
from repro.gpusim.cache import CacheArray
from repro.gpusim.coalesce import coalesce
from repro.gpusim.device import DeviceSpec
from repro.gpusim.hostprof import current_host_profiler
from repro.gpusim.memory import DeviceBuffer


_INT32_MAX = int(np.iinfo(np.int32).max)


def _boundary_mask(sorted_arr: np.ndarray) -> np.ndarray:
    """Mask selecting the first element of each run in a sorted array
    (``np.unique`` of a sorted input, without the sort or the copy)."""
    mask = np.empty(len(sorted_arr), dtype=bool)
    mask[0] = True
    np.not_equal(sorted_arr[1:], sorted_arr[:-1], out=mask[1:])
    return mask


@dataclass(frozen=True)
class LaunchConfig:
    """Kernel launch geometry — the paper's tuning knobs (Section III-C).

    The paper's grid search concludes 64 threads/block × 8 blocks/SM is
    (near-)optimal on all three devices; those are the defaults.

    ``simulated_warp_size`` implements the Section III-D5 trick: running
    with logically smaller warps (extra threads idle) so a cache miss
    stalls fewer lanes.  It must divide the hardware warp size.
    """

    threads_per_block: int = 64
    blocks_per_sm: int = 8
    simulated_warp_size: int | None = None

    def validate(self, device: DeviceSpec) -> None:
        """Check the geometry against ``device``'s limits.

        Every message names the device and the violated limit value, so
        fleet-level failures (many devices, one bad config) attribute
        without a debugger.
        """
        tpb, bps = self.threads_per_block, self.blocks_per_sm
        if tpb < 1 or tpb > device.max_threads_per_block:
            raise InvalidLaunchError(
                f"threads_per_block={tpb} outside "
                f"[1, {device.max_threads_per_block}] "
                f"(max_threads_per_block on {device.name})")
        if tpb % device.warp_size:
            raise InvalidLaunchError(
                f"threads_per_block={tpb} not a multiple of warp size "
                f"{device.warp_size} on {device.name}")
        if bps < 1 or bps > device.max_blocks_per_sm:
            raise InvalidLaunchError(
                f"blocks_per_sm={bps} outside [1, {device.max_blocks_per_sm}] "
                f"(max_blocks_per_sm on {device.name})")
        if tpb * bps > device.max_threads_per_sm:
            raise InvalidLaunchError(
                f"{tpb} threads/block × {bps} blocks/SM exceeds "
                f"{device.max_threads_per_sm} resident threads per SM "
                f"on {device.name}")
        if self.simulated_warp_size is not None:
            sws = self.simulated_warp_size
            if sws < 1 or device.warp_size % sws:
                raise InvalidLaunchError(
                    f"simulated_warp_size={sws} must divide warp size "
                    f"{device.warp_size} on {device.name}")

    def grid_blocks(self, device: DeviceSpec) -> int:
        return self.blocks_per_sm * device.num_sms

    def total_threads(self, device: DeviceSpec) -> int:
        return self.grid_blocks(device) * self.threads_per_block

    def resident_warps_per_sm(self, device: DeviceSpec) -> int:
        return self.threads_per_block * self.blocks_per_sm // device.warp_size


@dataclass
class KernelReport:
    """Everything the engine measured during one kernel execution.

    This is pure *work*; :mod:`repro.gpusim.timing` converts it to
    simulated time using the device constants.
    """

    device: DeviceSpec | None = None
    launch: LaunchConfig | None = None
    #: warp-steps executed, per instruction-block kind (e.g. "merge", "setup").
    warp_steps: dict = field(default_factory=dict)
    #: warp-instruction slots issued (warp-steps × instructions of the block).
    instruction_slots: int = 0
    #: per-SM instruction slots (imbalance shows up here).
    sm_instruction_slots: np.ndarray | None = None
    #: lane-level reads before coalescing.
    lane_reads: int = 0
    #: memory transactions after per-warp coalescing.
    transactions: int = 0
    #: L1 (read-only cache) hits/misses — Table II's "cache hit rate".
    l1_hits: int = 0
    l1_misses: int = 0
    #: L2 hits/misses (L2 probed on L1 misses, or directly if L1 bypassed).
    l2_hits: int = 0
    l2_misses: int = 0
    #: bytes served by L2 (hits and miss fills — the L2 bandwidth load).
    l2_bytes: int = 0
    #: bytes actually fetched from DRAM (L2 miss fills + uncached writes).
    dram_bytes: int = 0
    #: sum over executed warp-steps of active lanes (divergence numerator).
    active_lane_sum: int = 0
    #: executed warp-steps total (divergence denominator, × warp size).
    total_warp_steps: int = 0

    @property
    def l1_hit_rate(self) -> float:
        total = self.l1_hits + self.l1_misses
        return self.l1_hits / total if total else 0.0

    @property
    def simd_efficiency(self) -> float:
        """Mean fraction of lanes active per executed warp-step."""
        if not self.total_warp_steps:
            return 0.0
        return self.active_lane_sum / (self.total_warp_steps *
                                       self.launch_warp_size)

    @property
    def launch_warp_size(self) -> int:
        if self.launch is not None and self.launch.simulated_warp_size:
            return self.launch.simulated_warp_size
        return self.device.warp_size if self.device is not None else 32

    def counters(self) -> dict:
        """Every modeled counter as plain comparable values.

        This is the byte-identity surface the compacted engine is held
        to: two executions are equivalent iff their ``counters()`` dicts
        are equal (see ``tests/test_engine_equivalence.py``).
        """
        sm_slots = (tuple(int(s) for s in self.sm_instruction_slots)
                    if self.sm_instruction_slots is not None else None)
        return {
            "warp_steps": dict(sorted(self.warp_steps.items())),
            "instruction_slots": int(self.instruction_slots),
            "sm_instruction_slots": sm_slots,
            "lane_reads": int(self.lane_reads),
            "transactions": int(self.transactions),
            "l1_hits": int(self.l1_hits),
            "l1_misses": int(self.l1_misses),
            "l2_hits": int(self.l2_hits),
            "l2_misses": int(self.l2_misses),
            "l2_bytes": int(self.l2_bytes),
            "dram_bytes": int(self.dram_bytes),
            "active_lane_sum": int(self.active_lane_sum),
            "total_warp_steps": int(self.total_warp_steps),
        }


class SimtEngine:
    """Executes one kernel launch on one simulated device.

    Parameters
    ----------
    device : DeviceSpec
    launch : LaunchConfig
    use_ro_cache : bool
        Section III-D4: when False (no ``const __restrict__`` on a
        Kepler/Maxwell part), global loads bypass the per-SM cache and go
        to L2 at sector granularity.  Fermi parts cache global loads in
        L1 regardless (`device.caches_global_loads_by_default`).
    sanitizer : repro.sanitize.Sanitizer, optional
        Dynamic checker layer (memcheck / initcheck / racecheck).  The
        hooks are pure observers — :class:`KernelReport` counters are
        bit-identical with or without one attached — and cost a single
        ``None`` check per access when absent.
    """

    def __init__(self, device: DeviceSpec, launch: LaunchConfig,
                 use_ro_cache: bool = True, sanitizer=None):
        launch.validate(device)
        self.device = device
        self.launch = launch
        self.sanitizer = sanitizer

        warp = launch.simulated_warp_size or device.warp_size
        self.warp_size = warp
        self.num_threads = launch.total_threads(device)
        self.num_warps = self.num_threads // warp
        if sanitizer is not None:
            sanitizer.bind_engine(self)

        # Warp → SM ownership: blocks are distributed round-robin over SMs
        # (how the hardware distributes a grid sized blocks_per_sm × SMs).
        tpb = launch.threads_per_block
        warps_per_block = tpb // warp
        block_of_warp = np.arange(self.num_warps) // warps_per_block
        self.warp_sm = (block_of_warp % device.num_sms).astype(np.int64)

        l1_enabled = use_ro_cache or device.caches_global_loads_by_default
        self.l1 = (CacheArray(device.num_sms, device.l1_bytes,
                              device.line_bytes, device.l1_ways)
                   if l1_enabled else None)
        self.l2 = CacheArray(1, device.l2_bytes, device.line_bytes,
                             device.l2_ways)
        self.report = KernelReport(device=device, launch=launch)
        self.report.sm_instruction_slots = np.zeros(device.num_sms, dtype=np.int64)
        # Packed-key geometry for the compacted fast path: one sorted
        # int64 key (line, sm, warp) yields coalescing, L1 dedupe and
        # L2 dedupe in a single pass.  ``_smw[w]`` packs a warp's
        # (sm, warp) low bits so key construction is one gather + add.
        self._warp_bits = max(1, (self.num_warps - 1).bit_length())
        self._sm_bits = max(1, (device.num_sms - 1).bit_length())
        self._sm_mask = (1 << self._sm_bits) - 1
        self._key_shift = self._warp_bits + self._sm_bits
        self._smw = ((self.warp_sm << self._warp_bits)
                     | np.arange(self.num_warps, dtype=np.int64))
        # Power-of-two strides become shifts in the fast path (NumPy's
        # floor_divide is several times slower per element); ``None``
        # marks a non-power-of-two geometry that keeps the division.
        def _shift_of(x: int) -> int | None:
            return x.bit_length() - 1 if x and not (x & (x - 1)) else None
        self._ws_shift = _shift_of(warp)
        self._line_shift = _shift_of(device.line_bytes)
        self._sector_shift = _shift_of(device.sector_bytes)
        self._l1_set_shift = (_shift_of(self.l1.sets)
                              if self.l1 is not None else None)
        self._l2_set_shift = _shift_of(self.l2.sets)
        # Largest possible packed key per buffer end address decides
        # whether the coalescing sort may run on int32 (half the
        # bandwidth of the int64 build; NumPy sorts scale with width).
        self._smw_max = int(self._smw.max()) if self.num_warps else 0
        #: ambient host profiler (see :mod:`repro.gpusim.hostprof`);
        #: ``None`` keeps the hot paths hook-free.
        self.host_profiler = current_host_profiler()

    # ------------------------------------------------------------------ #
    # memory
    # ------------------------------------------------------------------ #

    def read(self, buf: DeviceBuffer, indices: np.ndarray,
             thread_ids: np.ndarray) -> np.ndarray:
        """Lane-level gather ``buf.data[indices]`` with full memory modelling.

        ``thread_ids`` are the global lane ids issuing each read (same
        length as ``indices``).  Returns the gathered values.
        """
        indices = np.asarray(indices)
        if len(indices) == 0:
            return buf.data[indices]
        prof = self.host_profiler
        t0 = perf_counter() if prof is not None else 0.0
        if self.sanitizer is not None:
            indices = self.sanitizer.on_access(buf, indices, thread_ids,
                                               "read")
        else:
            lo = int(indices.min())
            hi = int(indices.max())
            if lo < 0 or hi >= len(buf.data):
                raise KernelFault(
                    f"out-of-bounds read from {buf.name!r}: index range "
                    f"[{lo}, {hi}] outside [0, {len(buf.data)})")
        values = buf.data[indices]

        addrs = buf.addresses(indices)
        warp_ids = np.asarray(thread_ids) // self.warp_size
        self.report.lane_reads += len(indices)

        if self.l1 is not None:
            batch = coalesce(warp_ids, addrs, self.device.line_bytes)
            self.report.transactions += batch.transactions
            sm_ids = self.warp_sm[batch.warp_ids]
            hits = self.l1.access(sm_ids, batch.line_addrs)
            self.report.l1_hits += int(hits.sum())
            n_miss = int((~hits).sum())
            self.report.l1_misses += n_miss
            if n_miss:
                miss_lines = batch.line_addrs[~hits]
                self._probe_l2(miss_lines, self.device.line_bytes)
        else:
            # Uncached global loads: sector-granular, straight to L2.
            batch = coalesce(warp_ids, addrs, self.device.sector_bytes)
            self.report.transactions += batch.transactions
            self._probe_l2(batch.line_addrs, self.device.sector_bytes)
        if prof is not None:
            prof.add("cache-model", perf_counter() - t0)
        return values

    def read_compacted(self, buf: DeviceBuffer, indices: np.ndarray,
                       thread_ids: np.ndarray) -> np.ndarray:
        """:meth:`read` with the whole memory-model chain fused.

        Byte-identical counters and cache-state evolution, a fraction of
        the host cost: coalescing, L1 set mapping and L2 probing collapse
        into packed-key ``np.unique`` calls (no per-request index/inverse
        reconstruction — the engine only needs hit *counts* and the
        missing lines), with no intermediate batch objects.  Because
        every stage is order-independent over the request multiset, the
        caller may present lanes in any order — which is what lets the
        compacted kernels keep their registers in worklist order.
        """
        indices = np.asarray(indices)
        n = len(indices)
        if n == 0:
            return buf.data[indices]
        prof = self.host_profiler
        t0 = perf_counter() if prof is not None else 0.0
        if indices.dtype != np.int64:
            indices = indices.astype(np.int64)
        if self.sanitizer is not None:
            indices = self.sanitizer.on_access(buf, indices, thread_ids,
                                               "read")
        else:
            lo = int(indices.min())
            hi = int(indices.max())
            if lo < 0 or hi >= len(buf.data):
                raise KernelFault(
                    f"out-of-bounds read from {buf.name!r}: index range "
                    f"[{lo}, {hi}] outside [0, {len(buf.data)})")
        values = buf.data[indices]
        rep = self.report
        rep.lane_reads += n

        if n == 1:
            # Scalar fast path — skewed tails issue thousands of 1-lane
            # reads where the vector machinery is pure dispatch overhead.
            self._read_one(buf, int(indices[0]), int(thread_ids[0]))
            if prof is not None:
                prof.add("cache-model", perf_counter() - t0)
            return values

        warp_ids = np.asarray(thread_ids)
        if self._ws_shift is not None:
            warp_ids = warp_ids >> self._ws_shift
        else:
            warp_ids = warp_ids // self.warp_size
        if self.l1 is not None:
            lb = self.device.line_bytes
            # One in-place sort of (line, sm, warp) gives every dedupe
            # level as a boundary pass: unique keys = transactions,
            # unique (line, sm) prefixes = L1 probes, and the L1 miss
            # lines come out line-sorted so the L2 dedupe is sortless.
            # Built in place with shifts where strides allow.
            key = indices * buf.itemsize
            key += buf.device_addr
            if self._line_shift is not None:
                key >>= self._line_shift
            else:
                key //= lb
            key <<= self._key_shift
            key += self._smw[warp_ids]
            if n >= 1024 and ((((buf.device_addr + buf.nbytes) // lb)
                               << self._key_shift) + self._smw_max
                              < _INT32_MAX):
                # Bulk reads: the sort dominates, and it scales with key
                # width — one downcast pass buys int32 sorting.
                key = key.astype(np.int32)
            key.sort()
            pu = key[_boundary_mask(key)] >> self._warp_bits
            n_trans = len(pu)
            rep.transactions += n_trans
            upair = pu[_boundary_mask(pu)]
            u_line = upair >> self._sm_bits
            n_uniq = len(u_line)
            l1 = self.l1
            if self._l1_set_shift is not None:
                l1_set = ((u_line & (l1.sets - 1))
                          + ((upair & self._sm_mask) << self._l1_set_shift))
            else:
                l1_set = u_line % l1.sets + (upair & self._sm_mask) * l1.sets
            hit = l1.probe_unique(l1_set, u_line,
                                  extra_hits=n_trans - n_uniq)
            n_hit = (n_trans - n_uniq) + int(np.count_nonzero(hit))
            rep.l1_hits += n_hit
            n_miss = n_trans - n_hit
            rep.l1_misses += n_miss
            if n_miss:
                # L2 on the missing lines; distinct SMs missing one
                # line fill it once (the extras count as hits).
                ml = u_line[~hit]
                uml = ml[_boundary_mask(ml)]
                n_uniq2 = len(uml)
                l2 = self.l2
                l2_set = (uml & (l2.sets - 1)
                          if self._l2_set_shift is not None
                          else uml % l2.sets)
                hit2 = l2.probe_unique(l2_set, uml,
                                       extra_hits=n_miss - n_uniq2)
                n_hit2 = (n_miss - n_uniq2) + int(np.count_nonzero(hit2))
                rep.l2_hits += n_hit2
                rep.l2_misses += n_miss - n_hit2
                rep.l2_bytes += n_miss * lb
                rep.dram_bytes += (n_miss - n_hit2) * lb
        else:
            # Uncached global loads: sector-granular, straight to L2.
            sb = self.device.sector_bytes
            key = indices * buf.itemsize
            key += buf.device_addr
            if self._sector_shift is not None:
                key >>= self._sector_shift
            else:
                key //= sb
            key <<= self._warp_bits
            key += warp_ids
            if n >= 1024 and ((((buf.device_addr + buf.nbytes) // sb)
                               << self._warp_bits) + self.num_warps
                              < _INT32_MAX):
                key = key.astype(np.int32)
            key.sort()
            su = key[_boundary_mask(key)] >> self._warp_bits
            n_trans = len(su)
            rep.transactions += n_trans
            # Sector → L2 line (sorted stays sorted); distinct sectors
            # of one line collapse to one probe, extras count as hits.
            if (self._sector_shift is not None
                    and self._line_shift is not None):
                l2_line = su >> (self._line_shift - self._sector_shift)
            else:
                l2_line = su * sb // self.device.line_bytes
            ul = l2_line[_boundary_mask(l2_line)]
            n_uniq2 = len(ul)
            l2 = self.l2
            l2_set = (ul & (l2.sets - 1)
                      if self._l2_set_shift is not None
                      else ul % l2.sets)
            hit2 = l2.probe_unique(l2_set, ul,
                                   extra_hits=n_trans - n_uniq2)
            n_hit2 = (n_trans - n_uniq2) + int(np.count_nonzero(hit2))
            rep.l2_hits += n_hit2
            rep.l2_misses += n_trans - n_hit2
            rep.l2_bytes += n_trans * sb
            rep.dram_bytes += (n_trans - n_hit2) * sb
        if prof is not None:
            prof.add("cache-model", perf_counter() - t0)
        return values

    def _read_one(self, buf: DeviceBuffer, index: int, thread_id: int) -> None:
        """Memory-model bookkeeping of a single-lane read (scalar path of
        :meth:`read_compacted` — same counters, same cache evolution)."""
        rep = self.report
        rep.transactions += 1
        addr = buf.device_addr + index * buf.itemsize
        l2 = self.l2
        if self.l1 is not None:
            lb = self.device.line_bytes
            line = addr // lb
            sm = int(self.warp_sm[thread_id // self.warp_size])
            l1 = self.l1
            arr = np.array([line], dtype=np.int64)
            if l1.probe_unique(np.array([line % l1.sets + sm * l1.sets]),
                               arr)[0]:
                rep.l1_hits += 1
                return
            rep.l1_misses += 1
            if l2.probe_unique(np.array([line % l2.sets]), arr)[0]:
                rep.l2_hits += 1
            else:
                rep.l2_misses += 1
                rep.dram_bytes += lb
            rep.l2_bytes += lb
        else:
            sb = self.device.sector_bytes
            sector = addr // sb
            line = sector * sb // self.device.line_bytes
            if l2.probe_unique(np.array([line % l2.sets]),
                               np.array([line], dtype=np.int64))[0]:
                rep.l2_hits += 1
            else:
                rep.l2_misses += 1
                rep.dram_bytes += sb
            rep.l2_bytes += sb

    def _probe_l2(self, line_addrs: np.ndarray, fill_bytes: int) -> None:
        zeros = np.zeros(len(line_addrs), dtype=np.int64)
        l2_hits = self.l2.access(zeros, line_addrs)
        n_hit = int(l2_hits.sum())
        n_miss = len(line_addrs) - n_hit
        self.report.l2_hits += n_hit
        self.report.l2_misses += n_miss
        self.report.l2_bytes += len(line_addrs) * fill_bytes
        self.report.dram_bytes += n_miss * fill_bytes

    def write(self, buf: DeviceBuffer, indices: np.ndarray,
              values: np.ndarray, thread_ids: np.ndarray) -> None:
        """Lane-level scatter; write traffic counts as DRAM bytes
        (write-through, no write-allocate — adequate for the kernels here,
        which write each output cell once)."""
        indices = np.asarray(indices)
        if len(indices) == 0:
            return
        prof = self.host_profiler
        t0 = perf_counter() if prof is not None else 0.0
        if self.sanitizer is not None:
            indices = self.sanitizer.on_access(buf, indices, thread_ids,
                                               "write")
        else:
            lo = int(indices.min())
            hi = int(indices.max())
            if lo < 0 or hi >= len(buf.data):
                raise KernelFault(
                    f"out-of-bounds write to {buf.name!r}: index range "
                    f"[{lo}, {hi}] outside [0, {len(buf.data)})")
        buf.data[indices] = values
        addrs = buf.addresses(indices)
        warp_ids = np.asarray(thread_ids) // self.warp_size
        batch = coalesce(warp_ids, addrs, self.device.sector_bytes)
        self.report.transactions += batch.transactions
        self.report.dram_bytes += batch.transactions * self.device.sector_bytes
        if prof is not None:
            prof.add("cache-model", perf_counter() - t0)

    def atomic_add(self, buf: DeviceBuffer, indices: np.ndarray,
                   values: np.ndarray, thread_ids: np.ndarray) -> None:
        """Lane-level ``atomicAdd``.

        Functionally an unordered scatter-add; traffic-wise each touched
        sector is a read-modify-write through L2 (atomics resolve there
        on Fermi/Maxwell), so it costs two sector transfers per
        transaction plus serialization pressure that shows up as extra
        transactions when lanes collide on an address.
        """
        indices = np.asarray(indices)
        if len(indices) == 0:
            return
        if self.sanitizer is not None:
            indices = self.sanitizer.on_access(buf, indices, thread_ids,
                                               "atomic")
        else:
            lo = int(indices.min())
            hi = int(indices.max())
            if lo < 0 or hi >= len(buf.data):
                raise KernelFault(
                    f"out-of-bounds atomic on {buf.name!r}: index range "
                    f"[{lo}, {hi}] outside [0, {len(buf.data)})")
        prof = self.host_profiler
        t0 = perf_counter() if prof is not None else 0.0
        np.add.at(buf.data, indices, values)
        addrs = buf.addresses(indices)
        warp_ids = np.asarray(thread_ids) // self.warp_size
        # Colliding lanes serialize: transactions at address (not line)
        # granularity within the warp, sectors toward L2.
        batch = coalesce(warp_ids, addrs, buf.itemsize)
        sectors = coalesce(warp_ids, addrs, self.device.sector_bytes)
        self.report.transactions += batch.transactions
        self.report.l2_bytes += 2 * sectors.transactions * self.device.sector_bytes
        self.report.dram_bytes += sectors.transactions * self.device.sector_bytes
        if prof is not None:
            prof.add("cache-model", perf_counter() - t0)

    # ------------------------------------------------------------------ #
    # execution accounting
    # ------------------------------------------------------------------ #

    def end_step(self, kind: str, active_thread_ids: np.ndarray,
                 instructions: int) -> None:
        """Account one instruction-block executed by the warps owning
        ``active_thread_ids`` (the lanes that were live in the block).

        ``instructions`` is the warp-instruction count of the block —
        every owning warp issues that many instructions regardless of how
        many of its lanes are active (that's SIMT divergence).
        """
        if len(active_thread_ids) == 0:
            return
        prof = self.host_profiler
        t0 = perf_counter() if prof is not None else 0.0
        w = np.asarray(active_thread_ids) // self.warp_size
        if len(w) > 1 and np.any(w[1:] < w[:-1]):
            w = np.sort(w)
        # w is now non-decreasing: run boundaries replace np.unique.
        starts = np.flatnonzero(np.concatenate(([True], w[1:] != w[:-1])))
        warp_ids = w[starts]
        lane_counts = np.diff(np.concatenate((starts, [len(w)])))
        n_warps = len(warp_ids)
        rep = self.report
        rep.warp_steps[kind] = rep.warp_steps.get(kind, 0) + n_warps
        rep.instruction_slots += n_warps * instructions
        rep.total_warp_steps += n_warps
        rep.active_lane_sum += int(lane_counts.sum())
        np.add.at(rep.sm_instruction_slots, self.warp_sm[warp_ids], instructions)
        if self.sanitizer is not None:
            self.sanitizer.on_step_end(kind)
        if prof is not None:
            prof.add("accounting", perf_counter() - t0)

    def end_step_warps(self, kind: str, warp_ids: np.ndarray,
                       lane_counts: np.ndarray, instructions: int) -> None:
        """:meth:`end_step` for callers that already know the warps.

        ``warp_ids`` must be *distinct* warps; ``lane_counts`` their
        active-lane counts.  The compacted engine tracks both directly
        in its worklist, so the per-call lane → warp derivation (sort +
        run-length pass) is skipped.  Accounting is identical.
        """
        n_warps = len(warp_ids)
        if n_warps == 0:
            return
        prof = self.host_profiler
        t0 = perf_counter() if prof is not None else 0.0
        rep = self.report
        rep.warp_steps[kind] = rep.warp_steps.get(kind, 0) + n_warps
        rep.instruction_slots += n_warps * instructions
        rep.total_warp_steps += n_warps
        rep.active_lane_sum += int(lane_counts.sum())
        np.add.at(rep.sm_instruction_slots, self.warp_sm[warp_ids], instructions)
        if self.sanitizer is not None:
            self.sanitizer.on_step_end(kind)
        if prof is not None:
            prof.add("accounting", perf_counter() - t0)

"""Warp-lockstep SIMT execution engine.

The engine executes kernels the way the hardware does at warp
granularity: all 32 lanes of a warp move through the instruction stream
together under an active mask; a warp leaves a divergent loop only when
*every* lane has left it (reconvergence), which is exactly the
effect the paper's Section III-D5 warp-size experiment manipulates.

Kernels are written *vectorized over warps*: per-lane state lives in
NumPy arrays indexed by global lane id, and one engine "tick" advances
every live warp by one warp-instruction-block (a merge-loop iteration,
an edge-setup block, ...).  The engine is responsible for

* memory: index → device byte address → per-warp coalescing →
  per-SM read-only cache → device L2 → DRAM byte counting,
* occupancy bookkeeping (which SM owns which warp),
* instruction/step accounting per SM (feeds the timing model),
* divergence accounting (active lanes per executed warp-step).

The functional results are exact — the engine *computes* with the real
data while it counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvalidLaunchError, KernelFault
from repro.gpusim.cache import CacheArray
from repro.gpusim.coalesce import coalesce
from repro.gpusim.device import DeviceSpec
from repro.gpusim.memory import DeviceBuffer


@dataclass(frozen=True)
class LaunchConfig:
    """Kernel launch geometry — the paper's tuning knobs (Section III-C).

    The paper's grid search concludes 64 threads/block × 8 blocks/SM is
    (near-)optimal on all three devices; those are the defaults.

    ``simulated_warp_size`` implements the Section III-D5 trick: running
    with logically smaller warps (extra threads idle) so a cache miss
    stalls fewer lanes.  It must divide the hardware warp size.
    """

    threads_per_block: int = 64
    blocks_per_sm: int = 8
    simulated_warp_size: int | None = None

    def validate(self, device: DeviceSpec) -> None:
        tpb, bps = self.threads_per_block, self.blocks_per_sm
        if tpb < 1 or tpb > device.max_threads_per_block:
            raise InvalidLaunchError(
                f"threads_per_block={tpb} outside [1, {device.max_threads_per_block}]")
        if tpb % device.warp_size:
            raise InvalidLaunchError(
                f"threads_per_block={tpb} not a multiple of warp size "
                f"{device.warp_size}")
        if bps < 1 or bps > device.max_blocks_per_sm:
            raise InvalidLaunchError(
                f"blocks_per_sm={bps} outside [1, {device.max_blocks_per_sm}]")
        if tpb * bps > device.max_threads_per_sm:
            raise InvalidLaunchError(
                f"{tpb} threads/block × {bps} blocks/SM exceeds "
                f"{device.max_threads_per_sm} resident threads per SM")
        if self.simulated_warp_size is not None:
            sws = self.simulated_warp_size
            if sws < 1 or device.warp_size % sws:
                raise InvalidLaunchError(
                    f"simulated_warp_size={sws} must divide warp size "
                    f"{device.warp_size}")

    def grid_blocks(self, device: DeviceSpec) -> int:
        return self.blocks_per_sm * device.num_sms

    def total_threads(self, device: DeviceSpec) -> int:
        return self.grid_blocks(device) * self.threads_per_block

    def resident_warps_per_sm(self, device: DeviceSpec) -> int:
        return self.threads_per_block * self.blocks_per_sm // device.warp_size


@dataclass
class KernelReport:
    """Everything the engine measured during one kernel execution.

    This is pure *work*; :mod:`repro.gpusim.timing` converts it to
    simulated time using the device constants.
    """

    device: DeviceSpec = None
    launch: LaunchConfig = None
    #: warp-steps executed, per instruction-block kind (e.g. "merge", "setup").
    warp_steps: dict = field(default_factory=dict)
    #: warp-instruction slots issued (warp-steps × instructions of the block).
    instruction_slots: int = 0
    #: per-SM instruction slots (imbalance shows up here).
    sm_instruction_slots: np.ndarray | None = None
    #: lane-level reads before coalescing.
    lane_reads: int = 0
    #: memory transactions after per-warp coalescing.
    transactions: int = 0
    #: L1 (read-only cache) hits/misses — Table II's "cache hit rate".
    l1_hits: int = 0
    l1_misses: int = 0
    #: L2 hits/misses (L2 probed on L1 misses, or directly if L1 bypassed).
    l2_hits: int = 0
    l2_misses: int = 0
    #: bytes served by L2 (hits and miss fills — the L2 bandwidth load).
    l2_bytes: int = 0
    #: bytes actually fetched from DRAM (L2 miss fills + uncached writes).
    dram_bytes: int = 0
    #: sum over executed warp-steps of active lanes (divergence numerator).
    active_lane_sum: int = 0
    #: executed warp-steps total (divergence denominator, × warp size).
    total_warp_steps: int = 0

    @property
    def l1_hit_rate(self) -> float:
        total = self.l1_hits + self.l1_misses
        return self.l1_hits / total if total else 0.0

    @property
    def simd_efficiency(self) -> float:
        """Mean fraction of lanes active per executed warp-step."""
        if not self.total_warp_steps:
            return 0.0
        return self.active_lane_sum / (self.total_warp_steps *
                                       self.launch_warp_size)

    @property
    def launch_warp_size(self) -> int:
        if self.launch and self.launch.simulated_warp_size:
            return self.launch.simulated_warp_size
        return self.device.warp_size if self.device else 32


class SimtEngine:
    """Executes one kernel launch on one simulated device.

    Parameters
    ----------
    device : DeviceSpec
    launch : LaunchConfig
    use_ro_cache : bool
        Section III-D4: when False (no ``const __restrict__`` on a
        Kepler/Maxwell part), global loads bypass the per-SM cache and go
        to L2 at sector granularity.  Fermi parts cache global loads in
        L1 regardless (`device.caches_global_loads_by_default`).
    """

    def __init__(self, device: DeviceSpec, launch: LaunchConfig,
                 use_ro_cache: bool = True):
        launch.validate(device)
        self.device = device
        self.launch = launch

        warp = launch.simulated_warp_size or device.warp_size
        self.warp_size = warp
        self.num_threads = launch.total_threads(device)
        self.num_warps = self.num_threads // warp

        # Warp → SM ownership: blocks are distributed round-robin over SMs
        # (how the hardware distributes a grid sized blocks_per_sm × SMs).
        tpb = launch.threads_per_block
        warps_per_block = tpb // warp
        block_of_warp = np.arange(self.num_warps) // warps_per_block
        self.warp_sm = (block_of_warp % device.num_sms).astype(np.int64)

        l1_enabled = use_ro_cache or device.caches_global_loads_by_default
        self.l1 = (CacheArray(device.num_sms, device.l1_bytes,
                              device.line_bytes, device.l1_ways)
                   if l1_enabled else None)
        self.l2 = CacheArray(1, device.l2_bytes, device.line_bytes,
                             device.l2_ways)
        self.report = KernelReport(device=device, launch=launch)
        self.report.sm_instruction_slots = np.zeros(device.num_sms, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # memory
    # ------------------------------------------------------------------ #

    def read(self, buf: DeviceBuffer, indices: np.ndarray,
             thread_ids: np.ndarray) -> np.ndarray:
        """Lane-level gather ``buf.data[indices]`` with full memory modelling.

        ``thread_ids`` are the global lane ids issuing each read (same
        length as ``indices``).  Returns the gathered values.
        """
        indices = np.asarray(indices)
        if len(indices) == 0:
            return buf.data[indices]
        lo = int(indices.min())
        hi = int(indices.max())
        if lo < 0 or hi >= len(buf.data):
            raise KernelFault(
                f"out-of-bounds read from {buf.name!r}: index range "
                f"[{lo}, {hi}] outside [0, {len(buf.data)})")
        values = buf.data[indices]

        addrs = buf.addresses(indices)
        warp_ids = np.asarray(thread_ids) // self.warp_size
        self.report.lane_reads += len(indices)

        if self.l1 is not None:
            batch = coalesce(warp_ids, addrs, self.device.line_bytes)
            self.report.transactions += batch.transactions
            sm_ids = self.warp_sm[batch.warp_ids]
            hits = self.l1.access(sm_ids, batch.line_addrs)
            self.report.l1_hits += int(hits.sum())
            n_miss = int((~hits).sum())
            self.report.l1_misses += n_miss
            if n_miss:
                miss_lines = batch.line_addrs[~hits]
                self._probe_l2(miss_lines, self.device.line_bytes)
        else:
            # Uncached global loads: sector-granular, straight to L2.
            batch = coalesce(warp_ids, addrs, self.device.sector_bytes)
            self.report.transactions += batch.transactions
            self._probe_l2(batch.line_addrs, self.device.sector_bytes)
        return values

    def _probe_l2(self, line_addrs: np.ndarray, fill_bytes: int) -> None:
        zeros = np.zeros(len(line_addrs), dtype=np.int64)
        l2_hits = self.l2.access(zeros, line_addrs)
        n_hit = int(l2_hits.sum())
        n_miss = len(line_addrs) - n_hit
        self.report.l2_hits += n_hit
        self.report.l2_misses += n_miss
        self.report.l2_bytes += len(line_addrs) * fill_bytes
        self.report.dram_bytes += n_miss * fill_bytes

    def write(self, buf: DeviceBuffer, indices: np.ndarray,
              values: np.ndarray, thread_ids: np.ndarray) -> None:
        """Lane-level scatter; write traffic counts as DRAM bytes
        (write-through, no write-allocate — adequate for the kernels here,
        which write each output cell once)."""
        indices = np.asarray(indices)
        if len(indices) == 0:
            return
        lo = int(indices.min())
        hi = int(indices.max())
        if lo < 0 or hi >= len(buf.data):
            raise KernelFault(
                f"out-of-bounds write to {buf.name!r}: index range "
                f"[{lo}, {hi}] outside [0, {len(buf.data)})")
        buf.data[indices] = values
        addrs = buf.addresses(indices)
        warp_ids = np.asarray(thread_ids) // self.warp_size
        batch = coalesce(warp_ids, addrs, self.device.sector_bytes)
        self.report.transactions += batch.transactions
        self.report.dram_bytes += batch.transactions * self.device.sector_bytes

    def atomic_add(self, buf: DeviceBuffer, indices: np.ndarray,
                   values: np.ndarray, thread_ids: np.ndarray) -> None:
        """Lane-level ``atomicAdd``.

        Functionally an unordered scatter-add; traffic-wise each touched
        sector is a read-modify-write through L2 (atomics resolve there
        on Fermi/Maxwell), so it costs two sector transfers per
        transaction plus serialization pressure that shows up as extra
        transactions when lanes collide on an address.
        """
        indices = np.asarray(indices)
        if len(indices) == 0:
            return
        lo = int(indices.min())
        hi = int(indices.max())
        if lo < 0 or hi >= len(buf.data):
            raise KernelFault(
                f"out-of-bounds atomic on {buf.name!r}: index range "
                f"[{lo}, {hi}] outside [0, {len(buf.data)})")
        np.add.at(buf.data, indices, values)
        addrs = buf.addresses(indices)
        warp_ids = np.asarray(thread_ids) // self.warp_size
        # Colliding lanes serialize: transactions at address (not line)
        # granularity within the warp, sectors toward L2.
        batch = coalesce(warp_ids, addrs, buf.itemsize)
        sectors = coalesce(warp_ids, addrs, self.device.sector_bytes)
        self.report.transactions += batch.transactions
        self.report.l2_bytes += 2 * sectors.transactions * self.device.sector_bytes
        self.report.dram_bytes += sectors.transactions * self.device.sector_bytes

    # ------------------------------------------------------------------ #
    # execution accounting
    # ------------------------------------------------------------------ #

    def end_step(self, kind: str, active_thread_ids: np.ndarray,
                 instructions: int) -> None:
        """Account one instruction-block executed by the warps owning
        ``active_thread_ids`` (the lanes that were live in the block).

        ``instructions`` is the warp-instruction count of the block —
        every owning warp issues that many instructions regardless of how
        many of its lanes are active (that's SIMT divergence).
        """
        if len(active_thread_ids) == 0:
            return
        w = np.asarray(active_thread_ids) // self.warp_size
        if len(w) > 1 and np.any(w[1:] < w[:-1]):
            w = np.sort(w)
        # w is now non-decreasing: run boundaries replace np.unique.
        starts = np.flatnonzero(np.concatenate(([True], w[1:] != w[:-1])))
        warp_ids = w[starts]
        lane_counts = np.diff(np.concatenate((starts, [len(w)])))
        n_warps = len(warp_ids)
        rep = self.report
        rep.warp_steps[kind] = rep.warp_steps.get(kind, 0) + n_warps
        rep.instruction_slots += n_warps * instructions
        rep.total_warp_steps += n_warps
        rep.active_lane_sum += int(lane_counts.sum())
        np.add.at(rep.sm_instruction_slots, self.warp_sm[warp_ids], instructions)

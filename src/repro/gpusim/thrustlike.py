"""Thrust-primitive equivalents with pass-based cost models.

The preprocessing phase (paper Section III-B) "makes a heavy use of the
Thrust library".  Each function here is functionally exact (NumPy on the
device buffer's backing array) and charges simulated time from a
streaming cost model: a primitive is a fixed number of read/write passes
over its data, at the device's streaming bandwidth, plus a launch
overhead.

Radix vs. comparison sort (Section III-D2): ``sort_u64`` charges the 8
digit passes of a 64-bit LSD radix sort; ``sort_pairs`` charges a
comparison merge sort's ``log2 m`` passes with a branchy-compare penalty.
At the paper's sizes this reproduces the observed ≈5× gap.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gpusim.device import DeviceSpec
from repro.gpusim.memory import DeviceBuffer, DeviceMemory
from repro.gpusim.timing import LAUNCH_OVERHEAD_MS, Timeline

#: LSD radix passes for 64-bit keys with 8-bit digits.
RADIX_PASSES_U64 = 8
#: Streaming efficiency: fraction of peak DRAM bandwidth a sequential
#: pass sustains (scans/sorts are nearly perfectly coalesced).
STREAM_EFFICIENCY = 0.78
#: Comparison-sort penalty versus a streaming pass (branches, random
#: merge reads).
COMPARE_SORT_PENALTY = 1.5


def stream_ms(device: DeviceSpec, nbytes: float, passes: float) -> float:
    bw = device.peak_bandwidth_gbs * STREAM_EFFICIENCY * 1e9
    return nbytes * passes / bw * 1e3 + LAUNCH_OVERHEAD_MS


def reduce_max(device: DeviceSpec, buf: DeviceBuffer,
               timeline: Timeline | None = None) -> int:
    """``thrust::reduce(…, thrust::maximum())`` — one read pass."""
    value = int(buf.data.max()) if len(buf.data) else 0
    if timeline is not None:
        timeline.add("reduce_max", stream_ms(device, buf.nbytes, 1.0))
    return value


def reduce_sum(device: DeviceSpec, buf: DeviceBuffer,
               timeline: Timeline | None = None, phase: str = "reduce") -> int:
    """``thrust::reduce`` (plus) — one read pass."""
    value = int(buf.data.sum()) if len(buf.data) else 0
    if timeline is not None:
        timeline.add("reduce_sum", stream_ms(device, buf.nbytes, 1.0), phase=phase)
    return value


def sort_u64(device: DeviceSpec, buf: DeviceBuffer,
             timeline: Timeline | None = None) -> None:
    """``thrust::sort`` on 64-bit keys — LSD radix, 8 passes × (read+write).

    In-place on the buffer.  Note the ordering consequence the paper
    flags: packed little-endian pairs come out ordered by *second* then
    *first* vertex.
    """
    buf.data.sort()
    if timeline is not None:
        timeline.add("sort_u64",
                     stream_ms(device, buf.nbytes, 2.0 * RADIX_PASSES_U64))


def sort_pairs(device: DeviceSpec, first: DeviceBuffer, second: DeviceBuffer,
               timeline: Timeline | None = None) -> None:
    """``thrust::sort`` on (first, second) structs via a comparison sort.

    The un-optimized alternative to :func:`sort_u64` — same result order
    as sorting by (first, second); charged as a merge sort:
    ``log2 m`` passes over both columns with the comparison penalty.
    """
    m = len(first.data)
    order = np.lexsort((second.data, first.data))
    first.data[:] = first.data[order]
    second.data[:] = second.data[order]
    if timeline is not None:
        passes = 2.0 * max(math.log2(m), 1.0) if m > 1 else 1.0
        nbytes = first.nbytes + second.nbytes
        timeline.add("sort_pairs",
                     stream_ms(device, nbytes, passes * COMPARE_SORT_PENALTY))


def remove_if(device: DeviceSpec, buf: DeviceBuffer, mask: np.ndarray,
              timeline: Timeline | None = None) -> int:
    """``thrust::remove_if`` — stable compaction of unmarked elements.

    Shrinks the buffer's logical contents in place (like Thrust, the
    allocation keeps its size); returns the new element count.
    Charged as read-everything + write-survivors + one scan pass.
    """
    keep = ~np.asarray(mask, dtype=bool)
    kept = buf.data[keep]
    buf.data[:len(kept)] = kept
    if timeline is not None:
        frac = len(kept) / max(len(buf.data), 1)
        timeline.add("remove_if", stream_ms(device, buf.nbytes, 1.5 + frac))
    return len(kept)


def unzip(device: DeviceSpec, memory: DeviceMemory, aos: DeviceBuffer,
          timeline: Timeline | None = None) -> tuple[DeviceBuffer, DeviceBuffer]:
    """AoS → SoA conversion (paper step 7, Section III-D1).

    Reads the interleaved pair array once, writes two contiguous columns.
    The paper measures this under 30 ms even for 200 M-edge graphs —
    i.e. exactly the 2-pass streaming cost charged here.
    """
    flat = aos.data
    first = memory.alloc("edge_first", np.ascontiguousarray(flat[0::2]))
    second = memory.alloc("edge_second", np.ascontiguousarray(flat[1::2]))
    if timeline is not None:
        timeline.add("unzip", stream_ms(device, aos.nbytes, 2.0))
    return first, second


def exclusive_scan(device: DeviceSpec, values: np.ndarray,
                   timeline: Timeline | None = None) -> np.ndarray:
    """``thrust::exclusive_scan`` — two passes (up-sweep + down-sweep)."""
    out = np.zeros(len(values) + 1, dtype=np.int64)
    np.cumsum(values, out=out[1:])
    if timeline is not None:
        timeline.add("exclusive_scan",
                     stream_ms(device, values.nbytes, 2.0))
    return out[:-1]

"""Conversion of measured work into simulated time.

The split the paper's measurement protocol implies (Section IV):

    total = H2D copy + preprocessing + counting kernel + result reduce + D2H

Kernel time follows the standard throughput-roofline view of a
memory-bound SIMT kernel — the slowest of three resources decides:

* **compute**: warp-instruction slots through the SM issue ports,
* **DRAM**: bytes that missed all caches through the memory bus,
* **L2 / LSU**: transaction streams through the device-wide L2 and the
  per-SM load/store ports — the resources the read-only cache
  (Section III-D4) and the one-read merge loop (III-D3) relieve;

all divided by an occupancy utilization factor: below the device's
latency-hiding threshold of resident warps, dependent-load stalls leave
the pipelines idle (the regime the Section III-C grid search avoids).

All three inputs are *measured* by the engine; the constants
(clock, issue width, bandwidth, efficiency, miss latency) come from the
device spec.  The achieved-bandwidth figure the model reports for
Table II is DRAM bytes divided by the resulting kernel time — an output,
exactly like the profiler counter it reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.device import DeviceSpec
from repro.gpusim.simt import KernelReport, LaunchConfig


@dataclass(frozen=True)
class KernelTiming:
    """Simulated timing of one kernel launch.

    Four throughput rooflines (the slowest decides), divided by the
    occupancy utilization (below ``latency_hiding_warps`` resident warps
    per SM, every resource idles proportionally — the regime the
    Section III-C grid search tunes away from).
    """

    compute_ms: float
    dram_ms: float
    l2_ms: float
    lsu_ms: float
    utilization: float = 1.0

    @property
    def kernel_ms(self) -> float:
        peak = max(self.compute_ms, self.dram_ms, self.l2_ms, self.lsu_ms)
        return peak / max(self.utilization, 1e-9)

    @property
    def bound(self) -> str:
        """Which resource decided the time
        ("compute"/"dram"/"l2"/"lsu")."""
        best = max(("compute", self.compute_ms), ("dram", self.dram_ms),
                   ("l2", self.l2_ms), ("lsu", self.lsu_ms),
                   key=lambda kv: kv[1])
        return best[0]


#: Warp-instruction estimates per kernel instruction block.  These mirror
#: the compiled loop bodies: the merge iteration is a compare, two
#: predicated increments, a predicated counter bump, two bound checks and
#: a branch (~10 slots incl. the dependent load issue); edge setup is the
#: six loads plus address arithmetic (~24 slots).
MERGE_INSTRUCTIONS = 10
SETUP_INSTRUCTIONS = 24

#: Per-thrust-call launch/sync overhead, milliseconds.
LAUNCH_OVERHEAD_MS = 0.008


def time_kernel(report: KernelReport) -> KernelTiming:
    """Roofline conversion of a :class:`KernelReport` into milliseconds."""
    device: DeviceSpec = report.device
    launch: LaunchConfig = report.launch

    # Compute: the most-loaded SM decides.
    slots = report.sm_instruction_slots
    max_slots = int(slots.max()) if slots is not None and len(slots) else 0
    compute_ms = max_slots / device.issue_width / device.clock_hz * 1e3

    # DRAM throughput: bytes that missed every cache.
    eff_bw = device.peak_bandwidth_gbs * device.dram_efficiency * 1e9
    dram_ms = report.dram_bytes / eff_bw * 1e3

    # L2 throughput: every L1 miss (or uncached access) is served by the
    # device-wide L2 — the resource that makes the Section III-D4
    # read-only cache matter.
    l2_ms = report.l2_bytes / (device.l2_bandwidth_gbs * 1e9) * 1e3

    # LSU throughput: each SM issues a bounded number of memory
    # transactions per cycle (this is what makes the preliminary merge
    # variant's extra loads expensive even when they hit L1).
    lsu_cycles = (report.transactions / device.num_sms
                  / device.lsu_transactions_per_cycle)
    lsu_ms = lsu_cycles / device.clock_hz * 1e3

    # Occupancy: with fewer resident warps than the latency-hiding
    # threshold, dependent-load stalls leave every pipeline idle part of
    # the time.
    resident = max(launch.resident_warps_per_sm(device), 1)
    utilization = min(1.0, resident / device.latency_hiding_warps)

    return KernelTiming(compute_ms=compute_ms, dram_ms=dram_ms,
                        l2_ms=l2_ms, lsu_ms=lsu_ms, utilization=utilization)


def achieved_bandwidth_gbs(report: KernelReport, kernel_ms: float) -> float:
    """DRAM throughput the kernel sustained (the Table II column)."""
    if kernel_ms <= 0:
        return 0.0
    return report.dram_bytes / (kernel_ms * 1e-3) / 1e9


# ---------------------------------------------------------------------- #
# whole-run timeline
# ---------------------------------------------------------------------- #

@dataclass(frozen=True)
class TimelineEvent:
    """One timed pipeline step."""

    name: str
    ms: float
    phase: str = "preprocess"   # "copy" | "preprocess" | "count" | "reduce"


@dataclass
class Timeline:
    """Ordered record of a full pipeline run (one measurement window)."""

    events: list[TimelineEvent] = field(default_factory=list)

    def add(self, name: str, ms: float, phase: str = "preprocess") -> None:
        if ms < 0:
            raise ValueError(f"negative duration for {name}: {ms}")
        self.events.append(TimelineEvent(name=name, ms=ms, phase=phase))

    @property
    def total_ms(self) -> float:
        return sum(e.ms for e in self.events)

    def phase_ms(self, phase: str) -> float:
        return sum(e.ms for e in self.events if e.phase == phase)

    @property
    def preprocessing_fraction(self) -> float:
        """Fraction of total time before the counting kernel — the
        paper's Amdahl quantity (Section III-E reports 0.08–0.76)."""
        total = self.total_ms
        if total <= 0:
            return 0.0
        pre = sum(e.ms for e in self.events if e.phase in ("copy", "preprocess"))
        return pre / total

    def breakdown(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for e in self.events:
            out[e.phase] = out.get(e.phase, 0.0) + e.ms
        return out

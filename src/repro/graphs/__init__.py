"""Graph substrate: formats, generators, datasets, I/O and statistics.

The central type is :class:`~repro.graphs.edgearray.EdgeArray` — the
paper's input format (Section III-A): an unordered array of directed
arcs in which every undirected edge appears exactly once in each
direction, with no self-loops and no multi-edges.
"""

from repro.graphs.edgearray import EdgeArray
from repro.graphs.csr import CSRGraph, ConversionCost
from repro.graphs.validate import validate_edge_array
from repro.graphs import generators
from repro.graphs import datasets
from repro.graphs import io
from repro.graphs import metis
from repro.graphs import mtx
from repro.graphs import components
from repro.graphs import stats

__all__ = [
    "EdgeArray",
    "CSRGraph",
    "ConversionCost",
    "validate_edge_array",
    "generators",
    "datasets",
    "io",
    "metis",
    "mtx",
    "components",
    "stats",
]

"""Connected components and related preprocessing utilities.

Real-graph archives (SNAP, DIMACS10) often ship graphs whose interesting
structure lives in the giant component; extracting it — and compacting
vertex ids afterward — is the standard preprocessing step before a
counting run, so the library provides it as a first-class operation.
(Triangle counts are per-component additive, which the test suite uses
as yet another counting invariant.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.sparse import csgraph

from repro.graphs.edgearray import EdgeArray
from repro.types import VERTEX_DTYPE


@dataclass(frozen=True)
class ComponentInfo:
    """Connected-component labelling of a graph."""

    num_components: int
    labels: np.ndarray          # int array, length num_nodes
    sizes: np.ndarray           # int64 array, length num_components

    @property
    def giant_label(self) -> int:
        return int(np.argmax(self.sizes)) if self.num_components else 0


def connected_components(graph: EdgeArray) -> ComponentInfo:
    """Label the connected components (isolated vertices count too)."""
    n = graph.num_nodes
    if n == 0:
        return ComponentInfo(0, np.zeros(0, np.int64), np.zeros(0, np.int64))
    matrix = sp.csr_matrix(
        (np.ones(graph.num_arcs, np.int8), (graph.first, graph.second)),
        shape=(n, n))
    count, labels = csgraph.connected_components(matrix, directed=False)
    sizes = np.bincount(labels, minlength=count).astype(np.int64)
    return ComponentInfo(num_components=int(count), labels=labels,
                         sizes=sizes)


def induced_subgraph(graph: EdgeArray, vertex_mask: np.ndarray,
                     compact: bool = True) -> EdgeArray:
    """The subgraph induced by ``vertex_mask`` (boolean, length num_nodes).

    With ``compact`` (default) surviving vertices are renumbered densely
    ``0..k-1`` in ascending original-id order; otherwise original ids and
    the original ``num_nodes`` are kept.
    """
    vertex_mask = np.asarray(vertex_mask, bool)
    keep = vertex_mask[graph.first] & vertex_mask[graph.second]
    first = graph.first[keep]
    second = graph.second[keep]
    if not compact:
        return EdgeArray(first, second, num_nodes=graph.num_nodes,
                         check=False)
    new_id = np.cumsum(vertex_mask) - 1
    return EdgeArray(new_id[first].astype(VERTEX_DTYPE),
                     new_id[second].astype(VERTEX_DTYPE),
                     num_nodes=int(vertex_mask.sum()), check=False)


def giant_component(graph: EdgeArray, compact: bool = True) -> EdgeArray:
    """The largest connected component (the usual counting substrate)."""
    info = connected_components(graph)
    if info.num_components == 0:
        return graph.copy()
    return induced_subgraph(graph, info.labels == info.giant_label,
                            compact=compact)

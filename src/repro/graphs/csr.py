"""CSR ("adjacency list") representation and conversions to/from edge arrays.

The paper argues (Section III-A) for taking an *edge array* as input
because converting CSR→edge-array is a cheap single pass while
edge-array→CSR requires a sort.  :class:`ConversionCost` captures exactly
that asymmetry so the Section III-A experiment (E10 in DESIGN.md) can
reproduce the 12 s / 14 s / 7 s trade-off shape.

A :class:`CSRGraph` is what the paper calls the *node array* plus the
concatenated, per-vertex-sorted adjacency lists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphFormatError
from repro.types import INDEX_DTYPE, VERTEX_DTYPE
from repro.utils import as_int_array


@dataclass(frozen=True)
class ConversionCost:
    """Work accounting for a format conversion.

    Attributes
    ----------
    element_passes : int
        How many elements were streamed sequentially (single-pass work).
    sorted_elements : int
        How many elements went through a comparison/radix sort
        (each contributes O(log) or O(passes) work, the expensive part).
    """

    element_passes: int
    sorted_elements: int

    def __add__(self, other: "ConversionCost") -> "ConversionCost":
        return ConversionCost(self.element_passes + other.element_passes,
                              self.sorted_elements + other.sorted_elements)


class CSRGraph:
    """Compressed sparse row adjacency structure.

    Parameters
    ----------
    node_ptr : int32 array, length ``num_nodes + 1``
        ``node_ptr[v] .. node_ptr[v+1]`` bounds vertex ``v``'s slice of
        ``adj`` (the paper's *node array*, preprocessing step 4).
    adj : int32 array, length = number of arcs
        Concatenated adjacency lists; each vertex's slice sorted ascending.
    """

    __slots__ = ("node_ptr", "adj")

    def __init__(self, node_ptr, adj, check: bool = True):
        self.node_ptr = as_int_array(node_ptr, INDEX_DTYPE)
        self.adj = as_int_array(adj, VERTEX_DTYPE)
        if check:
            self._check()

    def _check(self) -> None:
        ptr = self.node_ptr
        if len(ptr) == 0:
            raise GraphFormatError("node_ptr must have at least one entry")
        if ptr[0] != 0 or ptr[-1] != len(self.adj):
            raise GraphFormatError(
                f"node_ptr must start at 0 and end at len(adj)={len(self.adj)}, "
                f"got [{int(ptr[0])}, {int(ptr[-1])}]"
            )
        if np.any(np.diff(ptr) < 0):
            raise GraphFormatError("node_ptr must be non-decreasing")
        # Per-vertex slices sorted ascending: adjacent within-slice pairs only.
        if len(self.adj) > 1:
            rising = self.adj[1:] >= self.adj[:-1]
            # positions where a new slice starts (no order constraint across slices)
            starts = np.zeros(len(self.adj), dtype=bool)
            starts[ptr[1:-1]] = True
            bad = ~(rising | starts[1:])
            if np.any(bad):
                raise GraphFormatError("an adjacency slice is not sorted ascending")

    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        return len(self.node_ptr) - 1

    @property
    def num_arcs(self) -> int:
        return len(self.adj)

    def degree(self, v: int) -> int:
        """Out-degree of vertex ``v`` (cheap node-array subtraction, as in
        preprocessing step 5)."""
        return int(self.node_ptr[v + 1] - self.node_ptr[v])

    def degrees(self) -> np.ndarray:
        return np.diff(self.node_ptr).astype(np.int64)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor slice of ``v`` (a view, not a copy)."""
        return self.adj[self.node_ptr[v]:self.node_ptr[v + 1]]

    def __repr__(self) -> str:
        return f"CSRGraph(num_nodes={self.num_nodes}, num_arcs={self.num_arcs})"


# ---------------------------------------------------------------------- #
# conversions
# ---------------------------------------------------------------------- #

def edge_array_to_csr(graph) -> tuple[CSRGraph, ConversionCost]:
    """Edge array → CSR.  Requires a sort (the expensive direction).

    Sorts arcs by (first, second) — after which the arc array *is* the
    concatenated adjacency lists — then builds the node array with one
    scatter pass (preprocessing steps 3–4 of the paper, on the host).
    """
    m = graph.num_arcs
    order = np.lexsort((graph.second, graph.first))
    adj = graph.second[order]
    node_ptr = build_node_ptr(graph.first[order], graph.num_nodes)
    cost = ConversionCost(element_passes=2 * m, sorted_elements=m)
    return CSRGraph(node_ptr, adj, check=False), cost


def csr_to_edge_array(csr: CSRGraph):
    """CSR → edge array.  A single expansion pass (the cheap direction)."""
    from repro.graphs.edgearray import EdgeArray

    degrees = np.diff(csr.node_ptr)
    first = np.repeat(np.arange(csr.num_nodes, dtype=VERTEX_DTYPE), degrees)
    graph = EdgeArray(first, csr.adj.copy(), num_nodes=csr.num_nodes, check=False)
    cost = ConversionCost(element_passes=csr.num_arcs, sorted_elements=0)
    return graph, cost


def build_node_ptr(sorted_first: np.ndarray, num_nodes: int) -> np.ndarray:
    """Build the node array from the sorted arc-source column.

    Equivalent to the paper's preprocessing step 4 (the kernel where
    thread *k* compares sources of arcs *k* and *k+1* and scatters run
    boundaries, filling empty adjacency lists too) — expressed here as a
    vectorized cumulative count.
    """
    counts = np.bincount(sorted_first, minlength=num_nodes)
    node_ptr = np.zeros(num_nodes + 1, dtype=INDEX_DTYPE)
    node_ptr[1:] = np.cumsum(counts)
    return node_ptr

"""The paper's 13 evaluation workloads (Table I) as reproducible recipes.

Each :class:`Workload` couples

* the **published numbers** (Table I times/speedups, Table II profiling)
  so benches can print paper-vs-measured side by side, and
* a **builder** that generates the graph — the paper's own generator for
  the synthetic rows, a degree-structure-matched stand-in for the SNAP /
  DIMACS10 real-world rows (offline substitution, DESIGN.md §2) — at a
  configurable ``scale`` (fraction of the full-size vertex count).

``default_scale`` is the mini-scale used by CI benches; multiply it via
the ``REPRO_SCALE`` environment variable to approach full size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.errors import WorkloadError
from repro.graphs.edgearray import EdgeArray
from repro.graphs.generators import (barabasi_albert, clique_cover,
                                     configuration_model,
                                     powerlaw_degree_sequence, rmat,
                                     watts_strogatz)
from repro.utils import env_scale


@dataclass(frozen=True)
class PaperRow:
    """One row of the paper's Table I (+ the matching Table II row).

    Times in milliseconds as published.  ``dagger_*`` mark the ``†``
    entries where part of the preprocessing ran on the CPU because the
    graph did not fit in the Tesla C2050's memory (Section III-D6).
    """

    nodes: int
    arcs: int                     # the paper's "Edges" column counts arcs
    triangles: int
    cpu_ms: float
    c2050_ms: float
    c2050_speedup: float
    quad_ms: float
    quad_speedup: float           # 4 GPUs over 1 GPU
    gtx980_ms: float
    gtx980_speedup: float
    dagger_c2050: bool = False
    dagger_quad: bool = False
    cache_hit_pct: float = 0.0    # Table II, GTX 980
    bandwidth_gbs: float = 0.0    # Table II, GTX 980


@dataclass(frozen=True)
class Workload:
    """A named, scalable graph workload."""

    name: str
    title: str                    # the paper's row label
    kind: str                     # "real" (stand-in) or "synthetic"
    paper: PaperRow
    default_scale: float
    builder: Callable[[float, int], EdgeArray]
    standin_note: str = ""

    def build(self, scale: float | None = None, seed: int = 0) -> EdgeArray:
        """Generate the graph at ``scale`` (default: mini-scale × REPRO_SCALE)."""
        if scale is None:
            scale = self.default_scale * env_scale()
        if not (0 < scale <= 1):
            raise WorkloadError(f"scale must be in (0, 1], got {scale}")
        return self.builder(scale, seed)


_MILLION = 1_000_000


def _powerlaw_standin(nodes: int, arcs: int, exponent: float):
    """Builder for a SNAP-style power-law social/topology network."""
    def build(scale: float, seed: int) -> EdgeArray:
        n = max(int(round(nodes * scale)), 16)
        edges = max(int(round(arcs * scale / 2)), n)
        deg = powerlaw_degree_sequence(n, edges, exponent=exponent,
                                       min_degree=1, seed=seed)
        return configuration_model(deg, seed=seed + 1)
    return build


def _copaper_standin(nodes: int, arcs: int, mean_group: float):
    """Builder for a DIMACS10-style co-paper (union-of-cliques) network."""
    def build(scale: float, seed: int) -> EdgeArray:
        n = max(int(round(nodes * scale)), 16)
        target_edges = arcs * scale / 2
        # Each group of mean size g contributes ~g(g-1)/2 edges; overlap
        # dedup eats ~20%, hence the 0.8 factor.
        per_group = mean_group * (mean_group - 1) / 2 * 0.8
        groups = max(int(round(target_edges / per_group)), 1)
        return clique_cover(n, groups, mean_group_size=mean_group,
                            repeat_bias=0.55, seed=seed)
    return build


def _kron_builder(paper_scale: int, edge_factor: float = 42.0):
    def build(scale: float, seed: int) -> EdgeArray:
        shift = int(round(-math.log2(scale)))
        k = paper_scale - shift
        if k < 4:
            raise WorkloadError(
                f"kron{paper_scale} at scale {scale} collapses below 2^4 nodes")
        return rmat(k, edge_factor=edge_factor, seed=seed)
    return build


def _ba_builder(nodes: int, m_per_node: int):
    def build(scale: float, seed: int) -> EdgeArray:
        n = max(int(round(nodes * scale)), m_per_node + 2)
        return barabasi_albert(n, m_per_node, seed=seed)
    return build


def _ws_builder(nodes: int, k: int, p: float):
    def build(scale: float, seed: int) -> EdgeArray:
        n = max(int(round(nodes * scale)), k + 2)
        return watts_strogatz(n, k, p, seed=seed)
    return build


#: Registry in the paper's Table I row order.
WORKLOADS: dict[str, Workload] = {}


def _register(w: Workload) -> None:
    if w.name in WORKLOADS:
        raise WorkloadError(f"duplicate workload {w.name}")
    WORKLOADS[w.name] = w


_register(Workload(
    name="internet", title="Internet topology", kind="real",
    paper=PaperRow(nodes=1_700_000, arcs=22 * _MILLION, triangles=29 * _MILLION,
                   cpu_ms=3459, c2050_ms=277, c2050_speedup=12.49,
                   quad_ms=306, quad_speedup=0.91, gtx980_ms=186,
                   gtx980_speedup=18.60, cache_hit_pct=80.78,
                   bandwidth_gbs=95.90),
    default_scale=1 / 64,
    builder=_powerlaw_standin(1_700_000, 22 * _MILLION, exponent=2.25),
    standin_note="as-Skitter (SNAP) → power-law configuration model, γ≈2.25",
))

_register(Workload(
    name="livejournal", title="LiveJournal", kind="real",
    paper=PaperRow(nodes=4_000_000, arcs=69 * _MILLION, triangles=178 * _MILLION,
                   cpu_ms=13829, c2050_ms=951, c2050_speedup=14.54,
                   quad_ms=947, quad_speedup=1.00, gtx980_ms=540,
                   gtx980_speedup=25.61, cache_hit_pct=79.73,
                   bandwidth_gbs=100.28),
    default_scale=1 / 256,
    builder=_powerlaw_standin(4_000_000, 69 * _MILLION, exponent=2.65),
    standin_note="soc-LiveJournal1 (SNAP) → power-law configuration model, γ≈2.65",
))

_register(Workload(
    name="orkut", title="Orkut", kind="real",
    paper=PaperRow(nodes=3_100_000, arcs=234 * _MILLION, triangles=628 * _MILLION,
                   cpu_ms=82558, c2050_ms=9690, c2050_speedup=8.52,
                   quad_ms=7580, quad_speedup=1.28, gtx980_ms=2815,
                   gtx980_speedup=29.33, dagger_c2050=True, dagger_quad=True,
                   cache_hit_pct=82.71, bandwidth_gbs=98.55),
    default_scale=1 / 1024,
    builder=_powerlaw_standin(3_100_000, 234 * _MILLION, exponent=2.35),
    standin_note="com-Orkut (SNAP) → power-law configuration model, γ≈2.35",
))

_register(Workload(
    name="citeseer", title="Citeseer", kind="real",
    paper=PaperRow(nodes=400_000, arcs=32 * _MILLION, triangles=872 * _MILLION,
                   cpu_ms=4990, c2050_ms=578, c2050_speedup=8.63,
                   quad_ms=456, quad_speedup=1.27, gtx980_ms=329,
                   gtx980_speedup=15.17, cache_hit_pct=76.68,
                   bandwidth_gbs=117.92),
    default_scale=1 / 128,
    builder=_copaper_standin(400_000, 32 * _MILLION, mean_group=22.0),
    standin_note="coPapersCiteseer (DIMACS10) → clique-cover generator",
))

_register(Workload(
    name="dblp", title="DBLP", kind="real",
    paper=PaperRow(nodes=500_000, arcs=30 * _MILLION, triangles=442 * _MILLION,
                   cpu_ms=4712, c2050_ms=446, c2050_speedup=10.57,
                   quad_ms=410, quad_speedup=1.09, gtx980_ms=239,
                   gtx980_speedup=19.72, cache_hit_pct=78.14,
                   bandwidth_gbs=112.96),
    default_scale=1 / 128,
    builder=_copaper_standin(500_000, 30 * _MILLION, mean_group=18.0),
    standin_note="coPapersDBLP (DIMACS10) → clique-cover generator",
))

_KRON_ROWS = {
    16: PaperRow(nodes=2**16, arcs=5 * _MILLION, triangles=119 * _MILLION,
                 cpu_ms=2810, c2050_ms=179, c2050_speedup=15.70,
                 quad_ms=97, quad_speedup=1.85, gtx980_ms=82,
                 gtx980_speedup=34.27, cache_hit_pct=80.95, bandwidth_gbs=143.99),
    17: PaperRow(nodes=2**17, arcs=10 * _MILLION, triangles=288 * _MILLION,
                 cpu_ms=6957, c2050_ms=476, c2050_speedup=14.62,
                 quad_ms=219, quad_speedup=2.17, gtx980_ms=219,
                 gtx980_speedup=31.77, cache_hit_pct=79.75, bandwidth_gbs=134.33),
    18: PaperRow(nodes=2**18, arcs=21 * _MILLION, triangles=688 * _MILLION,
                 cpu_ms=17808, c2050_ms=1274, c2050_speedup=13.98,
                 quad_ms=499, quad_speedup=2.55, gtx980_ms=558,
                 gtx980_speedup=31.91, cache_hit_pct=78.35, bandwidth_gbs=128.33),
    19: PaperRow(nodes=2**19, arcs=44 * _MILLION, triangles=1626 * _MILLION,
                 cpu_ms=45947, c2050_ms=3434, c2050_speedup=13.38,
                 quad_ms=1304, quad_speedup=2.63, gtx980_ms=1443,
                 gtx980_speedup=31.84, cache_hit_pct=77.59, bandwidth_gbs=122.60),
    20: PaperRow(nodes=2**20, arcs=89 * _MILLION, triangles=3804 * _MILLION,
                 cpu_ms=116811, c2050_ms=9308, c2050_speedup=12.55,
                 quad_ms=3296, quad_speedup=2.82, gtx980_ms=3942,
                 gtx980_speedup=29.63, cache_hit_pct=76.78, bandwidth_gbs=113.37),
    21: PaperRow(nodes=2**21, arcs=182 * _MILLION, triangles=8816 * _MILLION,
                 cpu_ms=297426, c2050_ms=33150, c2050_speedup=8.97,
                 quad_ms=13624, quad_speedup=2.43, gtx980_ms=12009,
                 gtx980_speedup=24.77, dagger_c2050=True, dagger_quad=True,
                 cache_hit_pct=75.81, bandwidth_gbs=93.65),
}

for _k, _row in _KRON_ROWS.items():
    _register(Workload(
        name=f"kron{_k}", title=f"Kronecker {_k}", kind="synthetic",
        paper=_row,
        default_scale=1 / 512,   # paper scale k → generated scale k-9
        builder=_kron_builder(_k),
        standin_note="Graph500 R-MAT (a,b,c,d)=(.57,.19,.19,.05), reduced scale",
    ))

_register(Workload(
    name="ba", title="Barabási–Albert", kind="synthetic",
    paper=PaperRow(nodes=200_000, arcs=20 * _MILLION, triangles=3 * _MILLION,
                   cpu_ms=5508, c2050_ms=327, c2050_speedup=16.84,
                   quad_ms=263, quad_speedup=1.24, gtx980_ms=155,
                   gtx980_speedup=35.54, cache_hit_pct=64.45,
                   bandwidth_gbs=137.56),
    default_scale=1 / 64,
    builder=_ba_builder(200_000, m_per_node=50),
    standin_note="exact generator (preferential attachment, m=50)",
))

_register(Workload(
    name="ws", title="Watts–Strogatz", kind="synthetic",
    paper=PaperRow(nodes=1_000_000, arcs=50 * _MILLION, triangles=219 * _MILLION,
                   cpu_ms=9627, c2050_ms=589, c2050_speedup=16.34,
                   quad_ms=576, quad_speedup=1.02, gtx980_ms=324,
                   gtx980_speedup=29.71, cache_hit_pct=74.55,
                   bandwidth_gbs=116.82),
    default_scale=1 / 128,
    builder=_ws_builder(1_000_000, k=50, p=0.10),
    standin_note="exact generator (ring lattice k=50, rewiring p=0.1)",
))


def get(name: str) -> Workload:
    """Look up a workload by registry name (raises :class:`WorkloadError`)."""
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(WORKLOADS)
        raise WorkloadError(f"unknown workload {name!r}; known: {known}") from None


def names() -> list[str]:
    """Registry names in the paper's Table I row order."""
    return list(WORKLOADS)


def kronecker_names() -> list[str]:
    """The Figure 1 scaling family, ascending."""
    return [f"kron{k}" for k in sorted(_KRON_ROWS)]

"""The edge-array graph format (paper Section III-A).

An :class:`EdgeArray` is an array of *arcs*.  The format contract is the
paper's: no self-loops, no multi-edges, and each undirected edge appears
exactly twice, once in each direction.  No particular arc order is
assumed — the counting pipeline's first real step is a device-side sort.

Two memory layouts matter to the paper:

* **AoS** (array of structures) — arcs interleaved ``u0 v0 u1 v1 …``,
  the natural on-disk / on-wire layout;
* **SoA** (structure of arrays, "unzipped", Section III-D1) — all first
  endpoints contiguous, then all second endpoints, which is what the
  counting kernel wants for coalesced reads.

This class stores SoA internally (two int32 vectors) and converts on
demand; :meth:`as_aos` / :meth:`from_aos` round-trip the interleaved
layout and :meth:`as_packed` produces the 64-bit words used by the
radix-sort optimization (Section III-D2).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import GraphFormatError
from repro.types import VERTEX_DTYPE, pack_edges, unpack_edges
from repro.utils import as_int_array, rng_from


class EdgeArray:
    """An undirected graph stored as a symmetric directed arc list.

    Parameters
    ----------
    first, second : array-like of int32
        Arc endpoints; arc ``i`` goes ``first[i] -> second[i]``.
    num_nodes : int, optional
        Number of vertices.  Defaults to ``1 + max(id)`` (the paper
        computes exactly this on device with ``thrust::reduce`` /
        ``thrust::maximum`` in preprocessing step 2).
    check : bool
        If true (default), validate the format contract eagerly.
    """

    __slots__ = ("first", "second", "_num_nodes")

    def __init__(self, first, second, num_nodes: int | None = None, check: bool = True):
        self.first = as_int_array(first, VERTEX_DTYPE)
        self.second = as_int_array(second, VERTEX_DTYPE)
        if self.first.shape != self.second.shape:
            raise GraphFormatError(
                f"endpoint arrays differ in length: {len(self.first)} vs {len(self.second)}"
            )
        if num_nodes is None:
            if len(self.first) == 0:
                num_nodes = 0
            else:
                num_nodes = int(max(self.first.max(), self.second.max())) + 1
        self._num_nodes = int(num_nodes)
        if check:
            self.validate()

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_undirected(cls, u, v, num_nodes: int | None = None) -> "EdgeArray":
        """Build from undirected edges given once; both arc directions are added.

        Self-loops and duplicate edges (in either orientation) are removed,
        so any raw edge list becomes a valid edge array.
        """
        u = as_int_array(u, VERTEX_DTYPE)
        v = as_int_array(v, VERTEX_DTYPE)
        if u.shape != v.shape:
            raise GraphFormatError("endpoint arrays differ in length")
        # Canonicalize each edge as (min, max), drop loops, dedupe.
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        keep = lo != hi
        lo, hi = lo[keep], hi[keep]
        if len(lo):
            packed = pack_edges(lo, hi)
            packed = np.unique(packed)
            lo, hi = unpack_edges(packed)
        first = np.concatenate([lo, hi])
        second = np.concatenate([hi, lo])
        return cls(first, second, num_nodes=num_nodes, check=False)

    @classmethod
    def from_aos(cls, interleaved, num_nodes: int | None = None, check: bool = True) -> "EdgeArray":
        """Build from the interleaved AoS layout ``[u0, v0, u1, v1, ...]``."""
        flat = as_int_array(interleaved, VERTEX_DTYPE)
        if len(flat) % 2:
            raise GraphFormatError("AoS edge buffer has odd length")
        return cls(flat[0::2].copy(), flat[1::2].copy(), num_nodes=num_nodes, check=check)

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[int, int]], num_nodes: int | None = None) -> "EdgeArray":
        """Build from an iterable of undirected ``(u, v)`` pairs (convenience)."""
        pairs = np.asarray(list(edges), dtype=VERTEX_DTYPE)
        if pairs.size == 0:
            return cls(np.empty(0, VERTEX_DTYPE), np.empty(0, VERTEX_DTYPE),
                       num_nodes=num_nodes or 0, check=False)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise GraphFormatError(f"expected (k, 2) pairs, got shape {pairs.shape}")
        return cls.from_undirected(pairs[:, 0], pairs[:, 1], num_nodes=num_nodes)

    @classmethod
    def empty(cls, num_nodes: int = 0) -> "EdgeArray":
        """An edge array with ``num_nodes`` isolated vertices."""
        z = np.empty(0, VERTEX_DTYPE)
        return cls(z, z.copy(), num_nodes=num_nodes, check=False)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        """Number of vertices (ids run ``0 .. num_nodes-1``)."""
        return self._num_nodes

    @property
    def num_arcs(self) -> int:
        """Number of directed arcs — the paper's *m* (twice the edge count)."""
        return len(self.first)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (``num_arcs / 2``)."""
        return self.num_arcs // 2

    @property
    def nbytes(self) -> int:
        """Host memory footprint of the arc arrays in bytes."""
        return self.first.nbytes + self.second.nbytes

    def degrees(self) -> np.ndarray:
        """Per-vertex degree (int64 array of length ``num_nodes``)."""
        return np.bincount(self.first, minlength=self.num_nodes).astype(np.int64)

    # ------------------------------------------------------------------ #
    # layout conversions
    # ------------------------------------------------------------------ #

    def as_aos(self) -> np.ndarray:
        """Interleaved AoS buffer ``[u0, v0, u1, v1, ...]`` (copies)."""
        out = np.empty(2 * self.num_arcs, VERTEX_DTYPE)
        out[0::2] = self.first
        out[1::2] = self.second
        return out

    def as_packed(self) -> np.ndarray:
        """Arcs as uint64 words, low 32 bits = first endpoint (Section III-D2)."""
        return pack_edges(self.first, self.second)

    def copy(self) -> "EdgeArray":
        return EdgeArray(self.first.copy(), self.second.copy(),
                         num_nodes=self._num_nodes, check=False)

    def shuffled(self, seed=None) -> "EdgeArray":
        """Return a copy with arcs in random order.

        The format makes no ordering promise, so tests and benches use
        this to prove order independence of the pipeline.
        """
        rng = rng_from(seed)
        perm = rng.permutation(self.num_arcs)
        return EdgeArray(self.first[perm], self.second[perm],
                         num_nodes=self._num_nodes, check=False)

    def relabeled(self, seed=None) -> "EdgeArray":
        """Return a copy with vertex ids permuted uniformly at random.

        Triangle counts are isomorphism invariants; property tests use
        this to check the counters are too.
        """
        rng = rng_from(seed)
        perm = rng.permutation(self._num_nodes).astype(VERTEX_DTYPE)
        return EdgeArray(perm[self.first], perm[self.second],
                         num_nodes=self._num_nodes, check=False)

    # ------------------------------------------------------------------ #
    # contract
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Raise :class:`GraphFormatError` unless the format contract holds."""
        from repro.graphs.validate import validate_edge_array

        validate_edge_array(self)

    # ------------------------------------------------------------------ #
    # dunder
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:
        return (f"EdgeArray(num_nodes={self.num_nodes}, "
                f"num_edges={self.num_edges}, num_arcs={self.num_arcs})")

    def __eq__(self, other) -> bool:
        """Structural equality: same vertex set and same *edge set*.

        Arc order is irrelevant (the format makes no ordering promise), so
        equality compares the sorted packed-arc sets.
        """
        if not isinstance(other, EdgeArray):
            return NotImplemented
        if self._num_nodes != other._num_nodes or self.num_arcs != other.num_arcs:
            return False
        return bool(np.array_equal(np.sort(self.as_packed()), np.sort(other.as_packed())))

    def __hash__(self):  # mutable arrays → unhashable, like ndarray
        raise TypeError("EdgeArray is unhashable; compare with == instead")

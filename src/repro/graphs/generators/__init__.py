"""Synthetic graph generators (all NumPy-vectorized, seed-deterministic).

These provide both the paper's synthetic workloads (Kronecker R-MAT,
Barabási–Albert, Watts–Strogatz) and the degree-skew-matched stand-ins
for the SNAP / DIMACS10 real-world graphs that are unavailable offline
(see DESIGN.md §2).
"""

from repro.graphs.generators.rmat import rmat, RMATParams
from repro.graphs.generators.barabasi_albert import barabasi_albert
from repro.graphs.generators.watts_strogatz import watts_strogatz
from repro.graphs.generators.erdos_renyi import erdos_renyi_gnm
from repro.graphs.generators.configuration import configuration_model, powerlaw_degree_sequence
from repro.graphs.generators.clique_cover import clique_cover
from repro.graphs.generators.misc import complete_graph, cycle_graph, star_graph, path_graph

__all__ = [
    "rmat",
    "RMATParams",
    "barabasi_albert",
    "watts_strogatz",
    "erdos_renyi_gnm",
    "configuration_model",
    "powerlaw_degree_sequence",
    "clique_cover",
    "complete_graph",
    "cycle_graph",
    "star_graph",
    "path_graph",
]

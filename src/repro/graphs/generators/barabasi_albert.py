"""Barabási–Albert preferential-attachment generator.

One of the paper's synthetic workloads (Table I row "Barabási–Albert":
0.2 M nodes, 20 M arcs, only 3 M triangles — a *low*-triangle graph that
stresses the merge loop's miss path; note its Table II cache hit rate is
the worst of all workloads at 64%).

Uses the standard repeated-nodes trick: attachment targets are drawn
uniformly from the array of all edge endpoints so far, which realizes
preferential attachment without per-node weight bookkeeping.  The
endpoint pool is preallocated once, so the generation loop does O(m)
work per vertex.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.graphs.edgearray import EdgeArray
from repro.utils import rng_from


def barabasi_albert(n: int, m: int, seed=None) -> EdgeArray:
    """Generate a BA graph: ``n`` vertices, each new vertex attaching ``m`` edges.

    Parameters
    ----------
    n : int
        Final vertex count.
    m : int
        Edges added per new vertex (also the minimum degree).  Must
        satisfy ``1 <= m < n``.
    seed : int or numpy.random.Generator, optional
        Randomness source (deterministic under a fixed seed).
    """
    if n < 1:
        raise WorkloadError(f"n must be >= 1, got {n}")
    if not (1 <= m < n):
        raise WorkloadError(f"need 1 <= m < n, got m={m}, n={n}")
    rng = rng_from(seed)

    num_new = n - (m + 1)
    # Seed graph: a star centred on vertex m over vertices 0..m-1, so the
    # endpoint pool is non-empty and early vertices can be attached to.
    src = np.empty(m + num_new * m, dtype=np.int64)
    dst = np.empty_like(src)
    src[:m] = m
    dst[:m] = np.arange(m)

    pool = np.empty(2 * (m + num_new * m), dtype=np.int64)
    pool[:m] = m
    pool[m:2 * m] = np.arange(m)
    pool_size = 2 * m

    fill = m
    for v in range(m + 1, n):
        targets = np.unique(pool[rng.integers(0, pool_size, size=m)])
        while len(targets) < m:
            extra = pool[rng.integers(0, pool_size, size=m - len(targets))]
            targets = np.unique(np.concatenate([targets, extra]))
        src[fill:fill + m] = v
        dst[fill:fill + m] = targets
        pool[pool_size:pool_size + m] = v
        pool[pool_size + m:pool_size + 2 * m] = targets
        pool_size += 2 * m
        fill += m

    return EdgeArray.from_undirected(src[:fill], dst[:fill], num_nodes=n)

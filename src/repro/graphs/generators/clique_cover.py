"""Clique-cover generator — stand-in for co-paper/co-authorship networks.

The paper's Citeseer and DBLP workloads are DIMACS10 *co-paper* networks:
each paper induces a clique over its authors, so the graph is a union of
overlapping cliques — few edges, enormous triangle counts (Citeseer:
32 M arcs but 872 M triangles).  This generator reproduces that regime:
sample groups with a heavy-tailed size distribution, assign members with
preferential repetition (prolific authors), and union the cliques.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.graphs.edgearray import EdgeArray
from repro.utils import rng_from


def clique_cover(n: int,
                 num_groups: int,
                 mean_group_size: float = 5.0,
                 max_group_size: int = 60,
                 repeat_bias: float = 0.6,
                 seed=None) -> EdgeArray:
    """Union of random cliques over ``n`` vertices.

    Parameters
    ----------
    n : int
        Vertex count (authors).
    num_groups : int
        Number of cliques (papers).
    mean_group_size : float
        Mean clique size; sizes are ``2 + Poisson(mean - 2)`` capped at
        ``max_group_size`` (paper author lists are small but heavy-ish).
    repeat_bias : float
        Fraction of group members drawn from previously active vertices
        (models prolific authors and gives clique *overlap*, which is
        what pushes triangle density up).
    """
    if n < 2:
        raise WorkloadError(f"need n >= 2, got {n}")
    if num_groups < 1:
        raise WorkloadError(f"need num_groups >= 1, got {num_groups}")
    if not (0.0 <= repeat_bias < 1.0):
        raise WorkloadError(f"repeat_bias must be in [0, 1), got {repeat_bias}")
    rng = rng_from(seed)

    sizes = 2 + rng.poisson(max(mean_group_size - 2.0, 0.0), size=num_groups)
    sizes = np.minimum(sizes, min(max_group_size, n))
    total = int(sizes.sum())

    # Draw all members at once: with prob repeat_bias reuse an endpoint of
    # an earlier draw (approximated by drawing from a small "active pool"
    # of vertex ids), otherwise a fresh uniform vertex.
    pool_size = max(int(n * 0.15), 1)
    active_pool = rng.permutation(n)[:pool_size]
    reuse = rng.random(total) < repeat_bias
    members = np.where(
        reuse,
        active_pool[rng.integers(0, pool_size, size=total)],
        rng.integers(0, n, size=total),
    )

    # Expand each group into its clique's edge list, vectorized per group
    # size class (groups of equal size share one triu index template).
    bounds = np.concatenate([[0], np.cumsum(sizes)])
    us, vs = [], []
    for size in np.unique(sizes):
        group_idx = np.flatnonzero(sizes == size)
        if size < 2 or len(group_idx) == 0:
            continue
        iu, iv = np.triu_indices(size, k=1)
        # (groups, size) matrix of member ids for this size class
        starts = bounds[group_idx]
        rows = members[starts[:, None] + np.arange(size)]
        us.append(rows[:, iu].ravel())
        vs.append(rows[:, iv].ravel())

    if not us:
        return EdgeArray.empty(num_nodes=n)
    return EdgeArray.from_undirected(np.concatenate(us), np.concatenate(vs),
                                     num_nodes=n)

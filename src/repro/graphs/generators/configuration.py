"""Configuration-model generator and power-law degree sequences.

Used to build degree-skew-matched stand-ins for the paper's real-world
graphs (SNAP / DIMACS10 are unreachable offline; see DESIGN.md §2): we
target each graph's node count, edge count and an approximate power-law
exponent, then wire stubs uniformly at random.

The simple-graph projection (drop loops and multi-edges) is the standard
"erased configuration model"; the edge deficit it introduces is a few
percent for the exponents used here and is reported by the caller.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.graphs.edgearray import EdgeArray
from repro.utils import rng_from


def powerlaw_degree_sequence(n: int,
                             target_edges: int,
                             exponent: float = 2.5,
                             min_degree: int = 1,
                             seed=None) -> np.ndarray:
    """Draw a degree sequence ~ Zipf(``exponent``) scaled to sum ≈ 2·edges.

    The raw Zipf draw is rescaled multiplicatively, then adjusted by ±1
    on random entries so the sum is exactly even and close to the target
    stub count.  Degrees are capped at ``n - 1`` (simple-graph bound).
    """
    if n <= 1:
        raise WorkloadError(f"need n > 1, got {n}")
    if exponent <= 1.0:
        raise WorkloadError(f"power-law exponent must be > 1, got {exponent}")
    rng = rng_from(seed)
    target_stubs = 2 * target_edges

    raw = rng.zipf(exponent, size=n).astype(np.float64)
    raw = np.minimum(raw, n - 1)
    scale = target_stubs / raw.sum()
    deg = np.maximum(np.round(raw * scale).astype(np.int64), min_degree)
    deg = np.minimum(deg, n - 1)

    # Nudge the total to exactly target_stubs (and even), respecting caps.
    # Vectorized: each round spreads the remaining difference over distinct
    # random eligible vertices, ±1 each.
    diff = target_stubs - int(deg.sum())
    guard = 0
    while diff != 0 and guard < 64:
        step = 1 if diff > 0 else -1
        eligible = np.flatnonzero(deg < n - 1) if step > 0 else np.flatnonzero(deg > min_degree)
        if len(eligible) == 0:
            break
        take = min(abs(diff), len(eligible))
        idx = rng.choice(eligible, size=take, replace=False)
        deg[idx] += step
        diff -= step * take
        guard += 1
    if deg.sum() % 2:  # force even stub count
        i = int(np.argmax(deg < n - 1))
        deg[i] += 1
    return deg


def configuration_model(degrees, seed=None) -> EdgeArray:
    """Erased configuration model: random matching of degree stubs.

    Parameters
    ----------
    degrees : array-like of int
        Desired degree per vertex; the sum must be even.

    Returns
    -------
    EdgeArray
        Simple graph; loops/multi-edges created by the matching are
        erased, so realized degrees can fall slightly short.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    if degrees.ndim != 1:
        raise WorkloadError("degrees must be a 1-D sequence")
    if (degrees < 0).any():
        raise WorkloadError("degrees must be non-negative")
    total = int(degrees.sum())
    if total % 2:
        raise WorkloadError(f"degree sum must be even, got {total}")
    n = len(degrees)
    rng = rng_from(seed)

    stubs = np.repeat(np.arange(n, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    half = total // 2
    return EdgeArray.from_undirected(stubs[:half], stubs[half:], num_nodes=n)

"""Erdős–Rényi G(n, m) generator.

Not a paper workload, but the canonical null model: tests use it for
property checks (the expected triangle count of G(n, m) is known in
closed form) and benches use it as a degree-uniform contrast to R-MAT.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.graphs.edgearray import EdgeArray
from repro.utils import rng_from


def erdos_renyi_gnm(n: int, num_edges: int, seed=None) -> EdgeArray:
    """Sample a simple graph with ``n`` vertices and exactly ``num_edges`` edges.

    Pairs are drawn by batched rejection on packed 64-bit codes, keeping
    first occurrences in draw order — O(num_edges) expected work below
    ~50% density; above it we enumerate all pairs and subsample.
    """
    if n < 0:
        raise WorkloadError(f"n must be >= 0, got {n}")
    max_edges = n * (n - 1) // 2
    if num_edges > max_edges:
        raise WorkloadError(f"{num_edges} edges impossible on {n} vertices "
                            f"(max {max_edges})")
    rng = rng_from(seed)
    if num_edges == 0:
        return EdgeArray.empty(num_nodes=n)

    if num_edges > max_edges // 2:
        # Dense regime: choose directly among all pairs without replacement.
        iu, iv = np.triu_indices(n, k=1)
        pick = rng.choice(max_edges, size=num_edges, replace=False)
        return EdgeArray.from_undirected(iu[pick], iv[pick], num_nodes=n)

    accepted = np.empty(0, dtype=np.uint64)
    while len(accepted) < num_edges:
        need = num_edges - len(accepted)
        batch = int(need * 1.2) + 16
        u = rng.integers(0, n, size=batch, dtype=np.int64)
        v = rng.integers(0, n, size=batch, dtype=np.int64)
        keep = u != v
        u, v = u[keep], v[keep]
        lo = np.minimum(u, v).astype(np.uint64)
        hi = np.maximum(u, v).astype(np.uint64)
        codes = np.concatenate([accepted, (hi << np.uint64(32)) | lo])
        # np.unique(return_index) keeps each code's first position; sorting
        # those positions restores draw order so truncation is unbiased.
        _, first_pos = np.unique(codes, return_index=True)
        accepted = codes[np.sort(first_pos)][:num_edges]

    lo = (accepted & np.uint64(0xFFFFFFFF)).astype(np.int64)
    hi = (accepted >> np.uint64(32)).astype(np.int64)
    return EdgeArray.from_undirected(lo, hi, num_nodes=n)

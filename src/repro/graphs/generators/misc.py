"""Deterministic toy graphs with closed-form triangle counts.

These anchor the test suite: ``K_n`` has C(n,3) triangles, cycles and
paths have none (C_3 aside), stars have none.  Every counting backend is
validated against these before anything stochastic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.graphs.edgearray import EdgeArray


def complete_graph(n: int) -> EdgeArray:
    """K_n — exactly ``n·(n-1)·(n-2)/6`` triangles."""
    if n < 0:
        raise WorkloadError(f"n must be >= 0, got {n}")
    if n < 2:
        return EdgeArray.empty(num_nodes=n)
    u, v = np.triu_indices(n, k=1)
    return EdgeArray.from_undirected(u, v, num_nodes=n)


def cycle_graph(n: int) -> EdgeArray:
    """C_n — one triangle when ``n == 3``, zero otherwise."""
    if n < 3:
        raise WorkloadError(f"cycle needs n >= 3, got {n}")
    u = np.arange(n, dtype=np.int64)
    return EdgeArray.from_undirected(u, (u + 1) % n, num_nodes=n)


def path_graph(n: int) -> EdgeArray:
    """P_n — zero triangles."""
    if n < 1:
        raise WorkloadError(f"path needs n >= 1, got {n}")
    u = np.arange(n - 1, dtype=np.int64)
    return EdgeArray.from_undirected(u, u + 1, num_nodes=n) if n > 1 else EdgeArray.empty(1)


def star_graph(n: int) -> EdgeArray:
    """Star with one hub and ``n - 1`` leaves — zero triangles, maximal
    degree skew (the forward orientation sends every edge leaf→hub)."""
    if n < 1:
        raise WorkloadError(f"star needs n >= 1, got {n}")
    if n == 1:
        return EdgeArray.empty(1)
    leaves = np.arange(1, n, dtype=np.int64)
    hub = np.zeros(n - 1, dtype=np.int64)
    return EdgeArray.from_undirected(hub, leaves, num_nodes=n)

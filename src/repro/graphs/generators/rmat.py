"""Kronecker R-MAT generator (Graph500 style).

The paper's synthetic scaling workloads are the Kronecker R-MAT graphs of
the 10th DIMACS Implementation Challenge, themselves produced by the
Graph500 reference generator: each edge picks one of the four quadrants
of the adjacency matrix independently at every one of ``scale`` recursion
levels with probabilities ``(a, b, c, d)``, giving a graph on ``2**scale``
vertices with a skewed, community-like degree distribution and a very
high triangles-to-edges ratio — the property that makes them the paper's
best case for GPU speedup (Section III-E).

The implementation draws all ``scale`` levels for all edges at once as a
``(edges, scale)`` Bernoulli matrix per bit — fully vectorized, no Python
loop over edges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.graphs.edgearray import EdgeArray
from repro.types import VERTEX_DTYPE
from repro.utils import rng_from


@dataclass(frozen=True)
class RMATParams:
    """R-MAT quadrant probabilities.

    ``GRAPH500`` is the standard (0.57, 0.19, 0.19, 0.05) used by the
    DIMACS10 ``kron_g500`` instances the paper evaluates on.
    """

    a: float = 0.57
    b: float = 0.19
    c: float = 0.19
    d: float = 0.05

    def __post_init__(self):
        total = self.a + self.b + self.c + self.d
        if not np.isclose(total, 1.0, atol=1e-9):
            raise WorkloadError(f"R-MAT probabilities must sum to 1, got {total}")
        if min(self.a, self.b, self.c, self.d) < 0:
            raise WorkloadError("R-MAT probabilities must be non-negative")


GRAPH500 = RMATParams()


def rmat(scale: int,
         edge_factor: float = 16.0,
         params: RMATParams = GRAPH500,
         seed=None,
         noise: float = 0.1) -> EdgeArray:
    """Generate an R-MAT graph on ``2**scale`` vertices.

    Parameters
    ----------
    scale : int
        log2 of the vertex count (the paper's "Kronecker *k*" label).
    edge_factor : float
        Target undirected edges per vertex *before* dedup/loop removal;
        the returned graph has somewhat fewer edges because R-MAT
        produces collisions (exactly as the DIMACS10 instances do).
    params : RMATParams
        Quadrant probabilities.
    seed : int or Generator
        Randomness source.
    noise : float
        Graph500-style multiplicative noise applied to the probabilities
        per recursion level, which smooths the otherwise lock-step degree
        staircase.  ``0`` disables it.

    Returns
    -------
    EdgeArray
        Simple symmetric graph (loops and duplicate edges removed).
    """
    if scale < 0:
        raise WorkloadError(f"scale must be >= 0, got {scale}")
    if scale > 31:
        raise WorkloadError(f"scale {scale} exceeds 32-bit vertex ids")
    rng = rng_from(seed)
    n = 1 << scale
    target = int(round(edge_factor * n))
    if target == 0 or n == 1:
        return EdgeArray.empty(num_nodes=n)

    u = np.zeros(target, dtype=np.int64)
    v = np.zeros(target, dtype=np.int64)
    ab = params.a + params.b
    a_norm = params.a / ab if ab > 0 else 0.0
    cd = params.c + params.d
    c_norm = params.c / cd if cd > 0 else 0.0

    for level in range(scale):
        if noise:
            # Graph500 noise: perturb the quadrant split per level.
            jitter = 1.0 + noise * (2.0 * rng.random() - 1.0)
            ab_l = min(max(ab * jitter, 0.0), 1.0)
            jitter = 1.0 + noise * (2.0 * rng.random() - 1.0)
            a_l = min(max(a_norm * jitter, 0.0), 1.0)
            jitter = 1.0 + noise * (2.0 * rng.random() - 1.0)
            c_l = min(max(c_norm * jitter, 0.0), 1.0)
        else:
            ab_l, a_l, c_l = ab, a_norm, c_norm
        # For each edge choose row-half and column-half of this level.
        r = rng.random(target)
        row_bit = (r >= ab_l).astype(np.int64)          # 1 => bottom half (c+d)
        r2 = rng.random(target)
        col_given_top = (r2 >= a_l).astype(np.int64)    # within a+b: 1 => b
        col_given_bot = (r2 >= c_l).astype(np.int64)    # within c+d: 1 => d
        col_bit = np.where(row_bit == 0, col_given_top, col_given_bot)
        u = (u << 1) | row_bit
        v = (v << 1) | col_bit

    # Graph500 permutes vertex labels so degree is independent of id.
    perm = rng.permutation(n)
    u = perm[u]
    v = perm[v]
    return EdgeArray.from_undirected(u.astype(VERTEX_DTYPE), v.astype(VERTEX_DTYPE),
                                     num_nodes=n)

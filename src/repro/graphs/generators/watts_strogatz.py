"""Watts–Strogatz small-world generator.

The paper's second low-variance synthetic workload (Table I row
"Watts–Strogatz": 1 M nodes, 50 M arcs, 219 M triangles).  A ring lattice
where every vertex connects to its ``k`` nearest neighbours and each
lattice edge is rewired to a random endpoint with probability ``p`` —
high clustering (many triangles), near-uniform degrees, which is the
regime where *edge-iterator* and *forward* perform alike (Section II-A).

Fully vectorized: the lattice is built with broadcast arithmetic and the
rewiring pass is a single masked redraw loop.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.graphs.edgearray import EdgeArray
from repro.utils import rng_from


def watts_strogatz(n: int, k: int, p: float, seed=None) -> EdgeArray:
    """Generate a WS graph on ``n`` vertices, ``k`` lattice neighbours, rewiring ``p``.

    Parameters
    ----------
    n : int
        Vertex count.
    k : int
        Each vertex is joined to its ``k`` nearest ring neighbours; must
        be even and ``< n`` (the standard constraint).
    p : float
        Probability that each lattice edge's far endpoint is replaced by
        a uniform random vertex.
    """
    if n < 3:
        raise WorkloadError(f"n must be >= 3, got {n}")
    if k % 2 or not (0 < k < n):
        raise WorkloadError(f"k must be even and 0 < k < n, got k={k}, n={n}")
    if not (0.0 <= p <= 1.0):
        raise WorkloadError(f"p must be in [0, 1], got {p}")
    rng = rng_from(seed)

    # Ring lattice: vertex v -> v + offset (mod n) for offset in 1..k/2.
    offsets = np.arange(1, k // 2 + 1, dtype=np.int64)
    u = np.repeat(np.arange(n, dtype=np.int64), len(offsets))
    v = (u + np.tile(offsets, n)) % n

    # Rewire: each lattice edge independently redirects its far endpoint.
    rewire = rng.random(len(u)) < p
    if rewire.any():
        idx = np.flatnonzero(rewire)
        new_far = rng.integers(0, n, size=len(idx))
        # Avoid self-loops; duplicates collapse in from_undirected, which
        # mirrors how a hand-rolled WS implementation discards clashes.
        clash = new_far == u[idx]
        while clash.any():
            new_far[clash] = rng.integers(0, n, size=int(clash.sum()))
            clash = new_far == u[idx]
        v[idx] = new_far

    return EdgeArray.from_undirected(u, v, num_nodes=n)

"""Graph I/O: edge-list text, raw binary AoS, and compressed ``.npz``.

The text format is the SNAP convention the paper's graphs ship in —
one ``u v`` pair per line, ``#`` comments — listing each undirected edge
once.  The binary format is the AoS edge array itself (what the paper's
tools feed to the GPU), and ``.npz`` is the library-native round-trip
format.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.edgearray import EdgeArray
from repro.types import VERTEX_DTYPE


def write_edge_list(graph: EdgeArray, path: str | os.PathLike) -> None:
    """Write in SNAP text format (each undirected edge once, ``u < v``)."""
    mask = graph.first < graph.second
    pairs = np.column_stack([graph.first[mask], graph.second[mask]])
    header = (f"Undirected graph: {graph.num_nodes} nodes, "
              f"{graph.num_edges} edges")
    np.savetxt(path, pairs, fmt="%d", header=header)


def read_edge_list(path: str | os.PathLike, num_nodes: int | None = None) -> EdgeArray:
    """Read SNAP text format; tolerates comments, blank lines, either
    one-direction or both-direction listings (duplicates collapse)."""
    import warnings

    with warnings.catch_warnings():
        warnings.filterwarnings("ignore", message=".*no data.*",
                                category=UserWarning)
        pairs = np.loadtxt(path, comments="#", dtype=np.int64, ndmin=2)
    if pairs.size == 0:
        return EdgeArray.empty(num_nodes or 0)
    if pairs.shape[1] != 2:
        raise GraphFormatError(
            f"edge list must have two columns, got {pairs.shape[1]} in {path}")
    return EdgeArray.from_undirected(pairs[:, 0], pairs[:, 1], num_nodes=num_nodes)


def write_binary(graph: EdgeArray, path: str | os.PathLike) -> None:
    """Write the raw little-endian int32 AoS buffer (``u0 v0 u1 v1 …``)."""
    graph.as_aos().astype("<i4").tofile(path)


def read_binary(path: str | os.PathLike, num_nodes: int | None = None) -> EdgeArray:
    """Read the raw AoS buffer written by :func:`write_binary`."""
    flat = np.fromfile(path, dtype="<i4").astype(VERTEX_DTYPE)
    return EdgeArray.from_aos(flat, num_nodes=num_nodes)


def write_npz(graph: EdgeArray, path: str | os.PathLike) -> None:
    """Write the library-native compressed format."""
    np.savez_compressed(path, first=graph.first, second=graph.second,
                        num_nodes=np.int64(graph.num_nodes))


def read_npz(path: str | os.PathLike) -> EdgeArray:
    """Read the format written by :func:`write_npz`."""
    with np.load(path) as data:
        return EdgeArray(data["first"], data["second"],
                         num_nodes=int(data["num_nodes"]), check=False)

"""METIS graph format — the format of the DIMACS10 challenge files.

The paper's Citeseer, DBLP and Kronecker inputs come from the 10th
DIMACS Implementation Challenge, which distributes graphs in METIS
format: a header line ``<num_nodes> <num_edges> [fmt]`` followed by one
line per vertex listing its (1-based) neighbors.  Supporting it makes
the library a drop-in consumer of the challenge's archives.

Only the unweighted variant (``fmt`` 0/omitted) is supported — that is
what the paper's instances use.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.csr import edge_array_to_csr
from repro.graphs.edgearray import EdgeArray


def write_metis(graph: EdgeArray, path: str | os.PathLike) -> None:
    """Write in unweighted METIS format (1-based adjacency lines)."""
    csr, _ = edge_array_to_csr(graph)
    with open(path, "w") as fh:
        fh.write(f"{graph.num_nodes} {graph.num_edges}\n")
        for v in range(graph.num_nodes):
            neigh = csr.neighbors(v) + 1
            fh.write(" ".join(map(str, neigh.tolist())) + "\n")


def read_metis(path: str | os.PathLike) -> EdgeArray:
    """Read an unweighted METIS file into an edge array."""
    with open(path) as fh:
        header = None
        while header is None:
            line = fh.readline()
            if not line:
                raise GraphFormatError(f"{path}: empty METIS file")
            stripped = line.strip()
            if stripped and not stripped.startswith("%"):
                header = stripped
        parts = header.split()
        if len(parts) < 2:
            raise GraphFormatError(
                f"{path}: METIS header needs >= 2 fields, got {header!r}")
        num_nodes = int(parts[0])
        num_edges = int(parts[1])
        if len(parts) >= 3 and parts[2] not in ("0", "00", "000"):
            raise GraphFormatError(
                f"{path}: weighted METIS (fmt={parts[2]}) not supported")

        sources: list[np.ndarray] = []
        targets: list[np.ndarray] = []
        v = 0
        for line in fh:
            stripped = line.strip()
            if stripped.startswith("%"):
                continue
            if v >= num_nodes:
                if stripped:
                    raise GraphFormatError(
                        f"{path}: more adjacency lines than {num_nodes} nodes")
                continue
            if stripped:
                neigh = np.array(stripped.split(), dtype=np.int64)
                if neigh.min(initial=1) < 1 or neigh.max(initial=1) > num_nodes:
                    raise GraphFormatError(
                        f"{path}: neighbor id out of range on line for "
                        f"vertex {v + 1}")
                sources.append(np.full(len(neigh), v, dtype=np.int64))
                targets.append(neigh - 1)
            v += 1
        if v != num_nodes:
            raise GraphFormatError(
                f"{path}: header promises {num_nodes} vertices, "
                f"found {v} adjacency lines")

    if not sources:
        return EdgeArray.empty(num_nodes)
    graph = EdgeArray.from_undirected(np.concatenate(sources),
                                      np.concatenate(targets),
                                      num_nodes=num_nodes)
    if graph.num_edges != num_edges:
        raise GraphFormatError(
            f"{path}: header promises {num_edges} edges, adjacency lines "
            f"encode {graph.num_edges}")
    return graph

"""Matrix Market (``.mtx``) graph I/O.

The SuiteSparse collection redistributes the paper's real-world graphs
(com-Orkut, soc-LiveJournal1, coPapers*) as Matrix Market files; this
reader/writer makes the library a drop-in consumer of those archives.
Only the ``matrix coordinate pattern symmetric`` flavor is handled —
that is how undirected unweighted graphs ship; ``general`` symmetric
pairs and ``integer``/``real`` weights (ignored) are tolerated on read.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.edgearray import EdgeArray


def write_mtx(graph: EdgeArray, path: str | os.PathLike,
              comment: str = "written by repro") -> None:
    """Write as ``coordinate pattern symmetric`` (lower triangle, 1-based)."""
    mask = graph.first > graph.second          # lower-triangular entries
    rows = graph.first[mask] + 1
    cols = graph.second[mask] + 1
    with open(path, "w") as fh:
        fh.write("%%MatrixMarket matrix coordinate pattern symmetric\n")
        fh.write(f"% {comment}\n")
        fh.write(f"{graph.num_nodes} {graph.num_nodes} {len(rows)}\n")
        for r, c in zip(rows.tolist(), cols.tolist()):
            fh.write(f"{r} {c}\n")


def read_mtx(path: str | os.PathLike) -> EdgeArray:
    """Read a Matrix Market graph into an edge array.

    Accepts pattern/integer/real coordinate matrices, symmetric or
    general; weights and the diagonal are dropped, duplicate entries and
    both-orientation listings collapse.
    """
    with open(path) as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise GraphFormatError(f"{path}: missing MatrixMarket banner")
        fields = header.strip().lower().split()
        if len(fields) < 5 or fields[1] != "matrix" or fields[2] != "coordinate":
            raise GraphFormatError(
                f"{path}: only 'matrix coordinate' files are supported, "
                f"got {header.strip()!r}")
        value_type = fields[3]
        if value_type not in ("pattern", "integer", "real"):
            raise GraphFormatError(
                f"{path}: unsupported value type {value_type!r}")

        size_line = None
        while size_line is None:
            line = fh.readline()
            if not line:
                raise GraphFormatError(f"{path}: no size line")
            stripped = line.strip()
            if stripped and not stripped.startswith("%"):
                size_line = stripped
        parts = size_line.split()
        if len(parts) != 3:
            raise GraphFormatError(
                f"{path}: size line must be 'rows cols nnz', got "
                f"{size_line!r}")
        rows, cols, nnz = map(int, parts)
        if rows != cols:
            raise GraphFormatError(
                f"{path}: adjacency matrices must be square, got "
                f"{rows}x{cols}")

        data = np.loadtxt(fh, comments="%", ndmin=2)
    if data.size == 0:
        return EdgeArray.empty(rows)
    if data.shape[0] != nnz:
        raise GraphFormatError(
            f"{path}: header promises {nnz} entries, found {data.shape[0]}")
    u = data[:, 0].astype(np.int64) - 1
    v = data[:, 1].astype(np.int64) - 1
    if u.min() < 0 or v.min() < 0 or u.max() >= rows or v.max() >= rows:
        raise GraphFormatError(f"{path}: entry index out of range")
    return EdgeArray.from_undirected(u, v, num_nodes=rows)

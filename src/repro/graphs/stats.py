"""Graph statistics: degrees, wedges, per-vertex triangles, clustering.

The clustering coefficient and the transitivity ratio are the paper's
motivating applications (Section I): both reduce to triangle counts plus
wedge (two-edge path) counts, so this module is the "downstream user" of
the counting library.

Per-vertex triangle counts are computed with sparse matrix algebra
(``(A·A) ∘ A`` row sums) — an independent method from the merge-based
counters, which makes these functions double as a cross-check oracle in
the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.graphs.edgearray import EdgeArray


def adjacency_matrix(graph: EdgeArray) -> sp.csr_matrix:
    """The symmetric 0/1 adjacency matrix as ``scipy.sparse.csr_matrix``."""
    n = graph.num_nodes
    data = np.ones(graph.num_arcs, dtype=np.int64)
    return sp.csr_matrix((data, (graph.first, graph.second)), shape=(n, n))


def local_triangles(graph: EdgeArray) -> np.ndarray:
    """Number of triangles through each vertex (int64, length num_nodes).

    ``t(v) = ((A @ A) ∘ A) row-sum / 2`` — each triangle at ``v`` is
    counted once per ordered pair of its other two vertices.
    """
    if graph.num_nodes == 0:
        return np.zeros(0, dtype=np.int64)
    a = adjacency_matrix(graph)
    paths = (a @ a).multiply(a)
    return np.asarray(paths.sum(axis=1)).ravel().astype(np.int64) // 2


def triangle_count_matmul(graph: EdgeArray) -> int:
    """Total triangles via ``trace(A³)/6`` — the Alon–Yuster–Zwick method
    the paper cites as its future-work hybrid ingredient [21]."""
    return int(local_triangles(graph).sum()) // 3


def wedge_counts(graph: EdgeArray) -> np.ndarray:
    """Number of wedges (two-edge paths) centred at each vertex: C(deg, 2)."""
    deg = graph.degrees()
    return deg * (deg - 1) // 2


def local_clustering(graph: EdgeArray) -> np.ndarray:
    """Per-vertex clustering coefficient ``t(v) / C(deg(v), 2)``.

    Vertices of degree < 2 get coefficient 0 (the usual convention).
    """
    wedges = wedge_counts(graph)
    tri = local_triangles(graph)
    out = np.zeros(graph.num_nodes, dtype=np.float64)
    mask = wedges > 0
    out[mask] = tri[mask] / wedges[mask]
    return out


def average_clustering(graph: EdgeArray) -> float:
    """Watts–Strogatz average clustering coefficient."""
    if graph.num_nodes == 0:
        return 0.0
    return float(local_clustering(graph).mean())


def transitivity(graph: EdgeArray) -> float:
    """Transitivity ratio: ``3 · triangles / wedges`` (0 if no wedges)."""
    wedges = int(wedge_counts(graph).sum())
    if wedges == 0:
        return 0.0
    return 3.0 * triangle_count_matmul(graph) / wedges


def degree_skew(graph: EdgeArray) -> float:
    """Tail heaviness of the degree distribution (Hill-style estimate).

    The mean log-ratio of the top-``k`` degrees to the largest of them,
    ``k = max(2, ⌊√(#vertices with degree > 0)⌋)`` — the (negated) Hill
    estimator's summand, used here as a cheap scale-free-ness score
    rather than a tail-index fit.  Regular graphs (complete, ring
    lattices before rewiring) score exactly ``0.0``; heavier tails score
    higher (BA/R-MAT generators land well above Watts–Strogatz or
    G(n,m) at the same size).  Degree-0 vertices are excluded so padding
    isolated vertices cannot dilute the score.

    This is one of the two coordinates of the kernel auto-pick
    (:mod:`repro.core.autopick`): skew predicts how unbalanced the
    per-edge ``|adj(u)| vs |adj(v)|`` split is, which is what separates
    the merge kernel (linear in both) from binary-search/hash probing
    (loops over the shorter side only).
    """
    deg = graph.degrees()
    deg = deg[deg > 0]
    if len(deg) == 0:
        return 0.0
    k = max(2, int(np.sqrt(len(deg))))
    k = min(k, len(deg))
    top = np.sort(deg)[-k:][::-1].astype(np.float64)
    return float(np.mean(np.log(top[0]) - np.log(top)))


def density(graph: EdgeArray) -> float:
    """Fraction of possible edges present: ``2E / (n·(n-1))``.

    ``1.0`` for complete graphs, ``0.0`` for edgeless or trivial ones.
    The second auto-pick coordinate: density bounds the expected
    adjacency overlap, which sets merge's streaming advantage against
    the probing kernels' O(short side) work.
    """
    n = graph.num_nodes
    if n < 2:
        return 0.0
    return 2.0 * graph.num_edges / (n * (n - 1))


@dataclass(frozen=True)
class GraphSummary:
    """Table-I-style one-line description of a graph.

    ``degree_skew`` and ``density`` are the auto-pick coordinates
    (cheap, degree-only); they default to ``0.0`` so summaries decoded
    from older artifacts stay constructible.
    """

    num_nodes: int
    num_edges: int
    num_arcs: int
    max_degree: int
    mean_degree: float
    triangles: int
    degree_skew: float = 0.0
    density: float = 0.0

    @classmethod
    def of(cls, graph: EdgeArray) -> "GraphSummary":
        deg = graph.degrees()
        return cls(
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            num_arcs=graph.num_arcs,
            max_degree=int(deg.max()) if len(deg) else 0,
            mean_degree=float(deg.mean()) if len(deg) else 0.0,
            triangles=triangle_count_matmul(graph),
            degree_skew=degree_skew(graph),
            density=density(graph),
        )


def degree_histogram(graph: EdgeArray) -> np.ndarray:
    """``hist[d]`` = number of vertices with degree ``d``."""
    deg = graph.degrees()
    if len(deg) == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(deg)

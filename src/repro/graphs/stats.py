"""Graph statistics: degrees, wedges, per-vertex triangles, clustering.

The clustering coefficient and the transitivity ratio are the paper's
motivating applications (Section I): both reduce to triangle counts plus
wedge (two-edge path) counts, so this module is the "downstream user" of
the counting library.

Per-vertex triangle counts are computed with sparse matrix algebra
(``(A·A) ∘ A`` row sums) — an independent method from the merge-based
counters, which makes these functions double as a cross-check oracle in
the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.graphs.edgearray import EdgeArray


def adjacency_matrix(graph: EdgeArray) -> sp.csr_matrix:
    """The symmetric 0/1 adjacency matrix as ``scipy.sparse.csr_matrix``."""
    n = graph.num_nodes
    data = np.ones(graph.num_arcs, dtype=np.int64)
    return sp.csr_matrix((data, (graph.first, graph.second)), shape=(n, n))


def local_triangles(graph: EdgeArray) -> np.ndarray:
    """Number of triangles through each vertex (int64, length num_nodes).

    ``t(v) = ((A @ A) ∘ A) row-sum / 2`` — each triangle at ``v`` is
    counted once per ordered pair of its other two vertices.
    """
    if graph.num_nodes == 0:
        return np.zeros(0, dtype=np.int64)
    a = adjacency_matrix(graph)
    paths = (a @ a).multiply(a)
    return np.asarray(paths.sum(axis=1)).ravel().astype(np.int64) // 2


def triangle_count_matmul(graph: EdgeArray) -> int:
    """Total triangles via ``trace(A³)/6`` — the Alon–Yuster–Zwick method
    the paper cites as its future-work hybrid ingredient [21]."""
    return int(local_triangles(graph).sum()) // 3


def wedge_counts(graph: EdgeArray) -> np.ndarray:
    """Number of wedges (two-edge paths) centred at each vertex: C(deg, 2)."""
    deg = graph.degrees()
    return deg * (deg - 1) // 2


def local_clustering(graph: EdgeArray) -> np.ndarray:
    """Per-vertex clustering coefficient ``t(v) / C(deg(v), 2)``.

    Vertices of degree < 2 get coefficient 0 (the usual convention).
    """
    wedges = wedge_counts(graph)
    tri = local_triangles(graph)
    out = np.zeros(graph.num_nodes, dtype=np.float64)
    mask = wedges > 0
    out[mask] = tri[mask] / wedges[mask]
    return out


def average_clustering(graph: EdgeArray) -> float:
    """Watts–Strogatz average clustering coefficient."""
    if graph.num_nodes == 0:
        return 0.0
    return float(local_clustering(graph).mean())


def transitivity(graph: EdgeArray) -> float:
    """Transitivity ratio: ``3 · triangles / wedges`` (0 if no wedges)."""
    wedges = int(wedge_counts(graph).sum())
    if wedges == 0:
        return 0.0
    return 3.0 * triangle_count_matmul(graph) / wedges


@dataclass(frozen=True)
class GraphSummary:
    """Table-I-style one-line description of a graph."""

    num_nodes: int
    num_edges: int
    num_arcs: int
    max_degree: int
    mean_degree: float
    triangles: int

    @classmethod
    def of(cls, graph: EdgeArray) -> "GraphSummary":
        deg = graph.degrees()
        return cls(
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            num_arcs=graph.num_arcs,
            max_degree=int(deg.max()) if len(deg) else 0,
            mean_degree=float(deg.mean()) if len(deg) else 0.0,
            triangles=triangle_count_matmul(graph),
        )


def degree_histogram(graph: EdgeArray) -> np.ndarray:
    """``hist[d]`` = number of vertices with degree ``d``."""
    deg = graph.degrees()
    if len(deg) == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(deg)

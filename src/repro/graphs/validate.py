"""Validation of the edge-array format contract (paper Section III-A).

The contract: vertex ids in range, no self-loops, no duplicate arcs, and
perfect symmetry — arc ``(u, v)`` present iff ``(v, u)`` present.  The
counting pipeline silently assumes all of this (e.g. the forward
orientation step relies on every edge being seen from both endpoints), so
violations must be caught at the boundary, not deep inside a kernel.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.types import pack_edges


def validate_edge_array(graph) -> None:
    """Raise :class:`GraphFormatError` unless ``graph`` satisfies the contract.

    Runs in O(m log m) (one sort); cheap relative to any counting run.
    """
    first, second, n = graph.first, graph.second, graph.num_nodes

    if len(first) != len(second):
        raise GraphFormatError("endpoint arrays differ in length")

    if len(first) == 0:
        return

    if first.min() < 0 or second.min() < 0:
        raise GraphFormatError("negative vertex id")
    if first.max() >= n or second.max() >= n:
        raise GraphFormatError(
            f"vertex id out of range: max id {int(max(first.max(), second.max()))} "
            f"with num_nodes={n}"
        )

    if np.any(first == second):
        bad = int(np.argmax(first == second))
        raise GraphFormatError(f"self-loop at arc index {bad}: ({int(first[bad])}, {int(second[bad])})")

    packed = np.sort(pack_edges(first, second))
    if len(packed) > 1 and np.any(packed[1:] == packed[:-1]):
        raise GraphFormatError("duplicate arc (multi-edge)")

    # Symmetry: the multiset of (u,v) must equal the multiset of (v,u).
    reverse = np.sort(pack_edges(second, first))
    if not np.array_equal(packed, reverse):
        raise GraphFormatError(
            "edge array is not symmetric: some undirected edge does not "
            "appear in both directions"
        )


def is_valid_edge_array(graph) -> bool:
    """Boolean form of :func:`validate_edge_array`."""
    try:
        validate_edge_array(graph)
    except GraphFormatError:
        return False
    return True

"""repro.runtime — the unified kernel runtime.

One launch protocol for every counting kernel: kernels are registered
as :class:`KernelSpec`\\ s (name, per-engine bodies, buffer facts) and
every pipeline goes through :func:`launch`, which owns device
allocation, H2D/D2H transfer events on a :class:`StreamTimeline`,
engine construction from :class:`~repro.core.options.GpuOptions`,
sanitizer attachment, hostprof phases, and report/timeline assembly.

Layering (see docs/architecture.md)::

    graphs -> preprocess -> runtime -> gpusim
                               |
                    core pipelines / serve / bench
"""

from repro.runtime.launch import (PHASE_D2H, PHASE_FREE, PHASE_H2D,
                                  PHASE_KERNEL, KernelLaunch, LaunchPlan,
                                  build_engine, dispatch_kernel, launch)
from repro.runtime.pipeline import (PipelinedPlan, pipelined_cpu_preprocess,
                                    pipelined_launch)
from repro.runtime.spec import (BINARY_SEARCH, HASH, LOCAL, MERGE,
                                WARP_INTERSECT, KernelSpec, get_kernel,
                                kernel_names, kernel_option_field,
                                kernel_option_fields, register,
                                resolve_kernel, spec_for_options)
from repro.runtime.stream import (DEFAULT_STREAM, StreamDep, StreamEvent,
                                  StreamTimeline)

__all__ = [
    "KernelSpec", "register", "get_kernel", "kernel_names",
    "resolve_kernel", "spec_for_options", "kernel_option_field",
    "kernel_option_fields",
    "MERGE", "WARP_INTERSECT", "BINARY_SEARCH", "HASH", "LOCAL",
    "LaunchPlan", "KernelLaunch", "launch", "dispatch_kernel",
    "build_engine",
    "PipelinedPlan", "pipelined_launch", "pipelined_cpu_preprocess",
    "PHASE_H2D", "PHASE_KERNEL", "PHASE_D2H", "PHASE_FREE",
    "StreamTimeline", "StreamEvent", "StreamDep", "DEFAULT_STREAM",
]

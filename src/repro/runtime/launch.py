"""``LaunchPlan`` / ``launch()`` — the one kernel-launch lifecycle.

Every counting pipeline used to hand-roll the same dozen steps; they
now live here, written once, in the order that keeps results and every
:class:`~repro.gpusim.simt.KernelReport` counter bit-identical to the
historical pipelines (device addresses feed the cache model, so even
*allocation order* is part of the contract):

1. validate the plan (memory/device match, engine choice — eagerly,
   with typed errors naming the valid values);
2. attach the sanitizer to :class:`~repro.gpusim.memory.DeviceMemory`
   *before* the first allocation (initcheck must see every buffer);
3. construct the :class:`~repro.gpusim.simt.SimtEngine` from
   :class:`~repro.core.options.GpuOptions` (the only construction site
   outside ``gpusim`` — enforced by repro-lint SAN104);
4. allocate the per-thread result buffer (before preprocessing, so the
   Section III-D6 fallback logic sees the full footprint), then the
   per-vertex accumulator for ``per_vertex`` specs;
5. run preprocessing (H2D copy events land on the stream timeline)
   unless the plan supplies device-resident structures;
6. dispatch the kernel body for ``options.engine``, time it with the
   roofline model, and record the kernel event;
7. device-reduce the result buffer, cross-check against the kernel's
   own count, and record the D2H readback event(s);
8. free device memory and detach the sanitizer (always, via finally).

Host-side wall-clock is attributed to the unified hostprof phases
``h2d`` / ``kernel`` / ``d2h`` / ``free`` whenever a
:class:`~repro.gpusim.hostprof.HostProfiler` is installed, so
``==SERVE==`` sheets and bench phase totals are comparable across
kernels and pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.core.options import GpuOptions
from repro.core.preprocess import PreprocessResult, preprocess
from repro.errors import ReproError
from repro.graphs.edgearray import EdgeArray
from repro.gpusim import thrustlike
from repro.gpusim.device import DeviceSpec, GTX_980
from repro.gpusim.hostprof import current_host_profiler
from repro.gpusim.memory import DeviceBuffer, DeviceMemory
from repro.gpusim.simt import KernelReport, SimtEngine
from repro.gpusim.timing import KernelTiming, Timeline, time_kernel
from repro.runtime.spec import KernelResult, KernelSpec, resolve_kernel
from repro.runtime.stream import DEFAULT_STREAM, StreamTimeline
from repro.types import COUNT_DTYPE

if TYPE_CHECKING:
    from repro.sanitize import Sanitizer

#: The unified hostprof phase vocabulary (see module docstring).  The
#: kernel-tick sections (``setup``/``merge``/``chunk``) and the engine
#: subsets (``cache-model``/``accounting``) nest inside ``kernel``.
PHASE_H2D = "h2d"
PHASE_KERNEL = "kernel"
PHASE_D2H = "d2h"
PHASE_FREE = "free"


def build_engine(device: DeviceSpec, options: GpuOptions,
                 sanitizer: "Sanitizer | None" = None) -> SimtEngine:
    """The one :class:`SimtEngine` construction point outside gpusim.

    Centralizing it keeps launch-config validation, read-only-cache
    wiring and sanitizer attachment uniform (repro-lint SAN104 flags
    direct constructions elsewhere).
    """
    return SimtEngine(device, options.launch,
                      use_ro_cache=options.use_readonly_cache,
                      sanitizer=sanitizer)


def dispatch_kernel(kernel: KernelSpec | str, engine: SimtEngine,
                    pre: PreprocessResult,
                    options: GpuOptions = GpuOptions(), *,
                    lo: int = 0, hi: int | None = None,
                    result_buf: DeviceBuffer | None = None,
                    per_vertex_buf: DeviceBuffer | None = None,
                    memory: DeviceMemory | None = None) -> KernelResult:
    """Run one kernel body on an already-built engine (the inner step of
    :func:`launch`; the wall-clock bench times exactly this).

    Selects the body for ``options.engine`` via
    :meth:`KernelSpec.body_for` — an unknown engine string is a typed
    error naming the valid choices, never a silent fallback.

    ``memory`` is the launch's allocator, forwarded to bodies whose
    strategy builds device-resident tables (the ``hash`` kernel); those
    bodies raise a typed error without it.
    """
    spec = resolve_kernel(kernel)
    body = spec.body_for(options.engine)
    prof = current_host_profiler()
    t0 = perf_counter() if prof is not None else 0.0
    result: KernelResult = body(engine, pre, options, lo=lo, hi=hi,
                                result_buf=result_buf,
                                per_vertex_buf=per_vertex_buf,
                                memory=memory)
    if prof is not None:
        prof.add(PHASE_KERNEL, perf_counter() - t0)
    return result


@dataclass
class LaunchPlan:
    """Declarative request for one kernel launch.

    The defaults describe the full single-GPU pipeline; the multi-GPU
    driver turns off the pieces its own aggregation owns (sanitizer,
    per-slice timeline events, teardown).
    """

    kernel: KernelSpec | str
    graph: EdgeArray | None = None
    device: DeviceSpec = GTX_980
    options: GpuOptions = field(default_factory=GpuOptions)
    #: Pre-built device memory (bench passes a capacity-scaled one).
    memory: DeviceMemory | None = None
    #: Timeline to append to; a fresh :class:`StreamTimeline` if None.
    timeline: Timeline | None = None
    #: Device-resident structures; skips preprocessing when given
    #: (multi-GPU slices run against broadcast copies).
    preprocessed: PreprocessResult | None = None
    lo: int = 0
    hi: int | None = None
    #: Length of the per-vertex accumulator (default: the graph's /
    #: preprocessed result's node count).
    num_vertices: int | None = None
    result_name: str = "result"
    attach_sanitizer: bool = True
    record_kernel_event: bool = True
    #: Record the device reduce on the timeline (the multi-GPU driver
    #: aggregates its own overlapped reduce event instead).
    reduce_timeline: bool = True
    d2h_events: bool = True
    free_all: bool = True
    #: Alternative preprocessing entry point with the same signature as
    #: :func:`repro.core.preprocess.preprocess` (graph, device, memory,
    #: timeline, options).  The executed pipeline
    #: (:mod:`repro.runtime.pipeline`) swaps in its chunked ``†``
    #: scheduler here; allocation order — result buffer first, then the
    #: preprocessing buffers — is preserved either way, which is what
    #: keeps device addresses (and cache counters) bit-identical.
    preprocess_fn: Callable[..., PreprocessResult] | None = None
    #: Stamp the result readback on this stream (after a ``wait_for``
    #: join edge on the default stream) instead of inline on stream 0.
    #: Needs a :class:`StreamTimeline`; ``None`` keeps the serial
    #: protocol's placement.
    d2h_stream: int | None = None


@dataclass
class KernelLaunch:
    """Everything one launch produced."""

    spec: KernelSpec
    device: DeviceSpec
    options: GpuOptions
    engine: SimtEngine
    pre: PreprocessResult
    result: Any                     # the body's result object
    timing: KernelTiming
    timeline: Timeline
    triangles: int                  # device-reduced total
    per_vertex: np.ndarray | None   # host copy, ``per_vertex`` specs only
    sanitizer: "Sanitizer | None"

    @property
    def report(self) -> KernelReport:
        return self.engine.report

    @property
    def sanitizer_reports(self) -> list:
        return self.sanitizer.reports if self.sanitizer is not None else []


def launch(plan: LaunchPlan) -> KernelLaunch:
    """Execute one kernel launch end to end (see module docstring for
    the lifecycle and its ordering constraints)."""
    spec = resolve_kernel(plan.kernel)
    options = plan.options
    spec.body_for(options.engine)   # eager engine validation
    device = plan.device
    memory = plan.memory if plan.memory is not None else DeviceMemory(device)
    if memory.spec.name != device.name:
        raise ReproError(
            f"memory belongs to {memory.spec.name!r}, not {device.name!r}")
    pre = plan.preprocessed
    if pre is None and plan.graph is None:
        raise ReproError("LaunchPlan needs a graph or a preprocessed result")
    if spec.requires_soa and pre is None and not options.unzip:
        raise ReproError(f"kernel {spec.name!r} requires the SoA layout "
                         "(GpuOptions.unzip=True)")
    timeline = plan.timeline if plan.timeline is not None else StreamTimeline()

    sanitizer: "Sanitizer | None" = None
    if plan.attach_sanitizer and options.sanitize != "off":
        from repro.sanitize import Sanitizer

        sanitizer = Sanitizer(mode=options.sanitize)
        # Attach before the first allocation so initcheck sees the
        # result buffer below and every preprocessing buffer.
        memory.sanitizer = sanitizer
    prof = current_host_profiler()
    try:
        engine = build_engine(device, options, sanitizer)
        # The per-thread result array lives for the whole run;
        # allocating it up front makes it part of the footprint the
        # Section III-D6 fallback logic sees (otherwise preprocessing
        # could "fit" and the run still die at the kernel launch).
        result_buf = memory.alloc_empty(plan.result_name, engine.num_threads,
                                        COUNT_DTYPE)
        per_vertex_buf = None
        num_vertices = 0
        if spec.per_vertex:
            if plan.num_vertices is not None:
                num_vertices = plan.num_vertices
            elif plan.graph is not None:
                num_vertices = plan.graph.num_nodes
            else:
                num_vertices = pre.num_nodes if pre is not None else 0
            per_vertex_buf = memory.alloc(
                "per_vertex", np.zeros(max(num_vertices, 1), np.int64))
        if pre is None:
            t0 = perf_counter() if prof is not None else 0.0
            assert plan.graph is not None
            pre_fn = plan.preprocess_fn if plan.preprocess_fn is not None \
                else preprocess
            pre = pre_fn(plan.graph, device, memory, timeline, options)
            if prof is not None:
                prof.add(PHASE_H2D, perf_counter() - t0)

        kres = dispatch_kernel(spec, engine, pre, options,
                               lo=plan.lo, hi=plan.hi,
                               result_buf=result_buf,
                               per_vertex_buf=per_vertex_buf,
                               memory=memory)
        timing = time_kernel(engine.report)
        if plan.record_kernel_event:
            timeline.add(spec.display_name, timing.kernel_ms, phase="count")

        t0 = perf_counter() if prof is not None else 0.0
        total = thrustlike.reduce_sum(
            device, result_buf,
            timeline if plan.reduce_timeline else None, phase="reduce")
        if total != kres.triangles:
            raise ReproError("device reduce disagrees with kernel counts "
                             f"({total} vs {kres.triangles})")
        d2h_stream = plan.d2h_stream
        if d2h_stream is not None and not isinstance(timeline,
                                                     StreamTimeline):
            raise ReproError("LaunchPlan.d2h_stream needs a StreamTimeline "
                             f"(got {type(timeline).__name__})")

        def record_d2h(name: str, ms: float) -> None:
            # Same event name/phase either way — serial totals stay the
            # paper's protocol; only the stream placement differs.
            if d2h_stream is None:
                timeline.add(name, ms, phase="reduce")
                return
            assert isinstance(timeline, StreamTimeline)
            # The readback depends on the reduce that just landed on
            # the default stream; the join edge records it.
            timeline.wait_for(d2h_stream, DEFAULT_STREAM)
            timeline.add_on(name, ms, phase="reduce", stream=d2h_stream)

        per_vertex_host = None
        if per_vertex_buf is not None:
            # d2h readback of the accumulator (host phase, not kernel code).
            per_vertex_host = per_vertex_buf.data[:num_vertices].copy()  # san-ok: SAN101
            if plan.d2h_events:
                record_d2h("d2h per-vertex counts",
                           memory.d2h_ms(per_vertex_host.nbytes))
        elif plan.d2h_events:
            record_d2h("d2h result",
                       memory.d2h_ms(np.dtype(COUNT_DTYPE).itemsize))
        if prof is not None:
            prof.add(PHASE_D2H, perf_counter() - t0)
        if plan.free_all:
            t0 = perf_counter() if prof is not None else 0.0
            memory.free_all()
            if prof is not None:
                prof.add(PHASE_FREE, perf_counter() - t0)
    finally:
        if sanitizer is not None:
            memory.sanitizer = None

    return KernelLaunch(spec=spec, device=device, options=options,
                        engine=engine, pre=pre, result=kres, timing=timing,
                        timeline=timeline, triangles=total,
                        per_vertex=per_vertex_host, sanitizer=sanitizer)

"""Executed async pipeline — chunked double-buffered ``†`` execution.

:class:`~repro.runtime.stream.StreamTimeline` has always *modeled* the
double-buffering what-if (:meth:`~repro.runtime.stream.StreamTimeline.
pipelined_ms`); this module *executes* the schedule.  A
:class:`PipelinedPlan` chunks the Section III-D6 ``†`` protocol into
``chunks`` slices of the arc range and issues, on three real streams
with :meth:`~repro.runtime.stream.StreamTimeline.wait_for` dependency
edges:

* **stream 0 (compute / host order)** — the CPU degree+filter pass,
  chunk by chunk, then (after a cross-stream join on the copy stream)
  the device-side sort, node array, layout conversion, the counting
  kernel, and the device reduce;
* **copy stream** — the H2D upload of each chunk's forward arcs, which
  starts as soon as that chunk's host pass has finished: upload ``n``
  flies while the host filters chunk ``n+1`` (real double buffering,
  recorded as executed events, not a phase-sum what-if);
* **d2h stream** — the result readback, issued after the reduce via a
  join edge.

The counting kernel itself stays ONE dispatch.  This is deliberate and
load-bearing twice over: (a) the kernel's adjacency-list merges walk
the *whole* ``adj`` column, so no chunk of the kernel could correctly
start before the last H2D chunk lands — the join edge is the real
dependency, not a modeling shortcut; and (b) the stateful LRU cache
model makes per-SM counters depend on warp interleaving order, so a
chunked dispatch would (measurably) perturb ``l1_hits``/``l2_hits``
even with aligned boundaries.  A single dispatch keeps triangle counts
*and* every :class:`~repro.gpusim.simt.KernelReport` counter
bit-identical to the serial path by construction — the acceptance
contract ``repro-bench overlap`` pins.

Convergence to the model: with host pass ``H``, copy ``C`` and ``N``
chunks, the executed makespan is ``total - C·(1-1/N)`` for a
host-bound row (``H >= C``), which approaches the modeled
``pipelined_ms = total - C`` from above as ``N`` grows — the drift gate
in ``BENCH_overlap.json`` keeps the two within 10%.

Serial totals are untouched: the chunked events sum to exactly the
serial protocol's phase totals, so ``total_ms`` / ``breakdown()``
still report the paper's measurement protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.options import GpuOptions
from repro.core.preprocess import (PreprocessResult, _finalize_layout,
                                   device_sort, forward_mask)
from repro.errors import ReproError
from repro.graphs.edgearray import EdgeArray
from repro.gpusim.device import CpuSpec, DeviceSpec, XEON_X5650
from repro.gpusim.memory import DeviceMemory
from repro.gpusim.timing import Timeline
from repro.runtime.launch import KernelLaunch, LaunchPlan, launch
from repro.runtime.stream import DEFAULT_STREAM, StreamTimeline
from repro.types import pack_edges, unpack_edges


@dataclass(frozen=True)
class PipelinedPlan:
    """Schedule parameters of the executed async pipeline.

    Attributes
    ----------
    chunks : int
        Slices of the arc range; more chunks converge the measured
        makespan closer to the modeled ``pipelined_ms`` (the first
        chunk's host pass is the only un-overlapped copy exposure).
    copy_stream, d2h_stream : int
        Stream ids for the H2D double buffer and the result readback
        (stream 0 is host program order / compute).
    """

    chunks: int = 8
    copy_stream: int = 1
    d2h_stream: int = 2

    def __post_init__(self) -> None:
        if self.chunks < 1:
            raise ReproError(f"chunks must be >= 1, got {self.chunks}")
        streams = (DEFAULT_STREAM, self.copy_stream, self.d2h_stream)
        if len(set(streams)) != 3:
            raise ReproError(
                "copy_stream and d2h_stream must be distinct non-default "
                f"streams, got copy={self.copy_stream} "
                f"d2h={self.d2h_stream}")


def pipelined_cpu_preprocess(graph: EdgeArray, device: DeviceSpec,
                             memory: DeviceMemory, timeline: Timeline,
                             options: GpuOptions,
                             cpu: CpuSpec = XEON_X5650,
                             pipe: PipelinedPlan = PipelinedPlan(),
                             ) -> PreprocessResult:
    """The ``†`` path with the host pass double-buffered against H2D.

    Numerically and allocation-order identical to
    :func:`repro.core.preprocess._preprocess_cpu_fallback` — same
    degrees, same forward filter, same device buffers at the same
    addresses — only the *timeline events* differ: the host pass and the
    H2D copy are each split into ``pipe.chunks`` slices, interleaved on
    stream 0 and ``pipe.copy_stream`` with dependency edges, and the
    device-side tail runs after a join edge on the last upload.  Every
    chunked event carries the serial event's name as a prefix and the
    serial phase, so phase totals (the paper's protocol) are unchanged.
    """
    if not isinstance(timeline, StreamTimeline):
        raise ReproError("pipelined preprocessing needs a StreamTimeline "
                         f"(got {type(timeline).__name__})")
    m = graph.num_arcs
    num_nodes = graph.num_nodes
    chunks = min(pipe.chunks, m) if m else 1

    # Host side, computed once (bit-identical to the serial path); the
    # *schedule* below is what changes.
    degrees = graph.degrees()
    keep = forward_mask(graph.first, graph.second, degrees)
    first_fwd = graph.first[keep]
    second_fwd = graph.second[keep]

    packed = memory.alloc("edges_packed_fwd",
                          pack_edges(first_fwd, second_fwd))

    # Chunked host pass || chunked H2D.  Chunk n's upload is issued
    # right after chunk n's host pass: the wait_for edge pins it to the
    # host clock, while the copy stream's own cursor serializes uploads
    # — upload n rides the PCIe link while the host filters chunk n+1.
    bounds = np.linspace(0, m, chunks + 1).astype(np.int64)
    itemsize = np.dtype(np.uint64).itemsize   # packed {u, v} words
    for n in range(chunks):
        lo, hi = int(bounds[n]), int(bounds[n + 1])
        host_ms = 2 * (hi - lo) * cpu.ns_per_pass_element * 1e-6
        timeline.add(f"cpu degrees + remove backward "
                     f"[chunk {n + 1}/{chunks}]", host_ms)
        kept = int(np.count_nonzero(keep[lo:hi]))
        timeline.wait_for(pipe.copy_stream, DEFAULT_STREAM)
        timeline.add_on(f"h2d edge array (forward only) "
                        f"[chunk {n + 1}/{chunks}]",
                        memory.h2d_ms(kept * itemsize), phase="copy",
                        stream=pipe.copy_stream)

    # Join: the device-side sort reads the full forward array, so it
    # cannot start before the last chunk has landed.
    timeline.wait_for(DEFAULT_STREAM, pipe.copy_stream)

    device_sort(device, memory, timeline, options, packed)

    # Thrust-style host view of the sorted words (the same spelling the
    # serial † path uses in preprocess.py, under its module-wide waiver).
    first_s, second_s = unpack_edges(packed.data)  # san-ok: SAN101
    result = _finalize_layout(device, memory, timeline, options,
                              first_s, second_s, num_nodes,
                              used_cpu_fallback=True)
    memory.free(packed)
    return result


def pipelined_launch(plan: LaunchPlan,
                     pipe: PipelinedPlan = PipelinedPlan()) -> KernelLaunch:
    """Execute one counting run under the chunked async schedule.

    Wraps :func:`repro.runtime.launch` with the pipelined ``†``
    preprocessor and the d2h stream: same lifecycle, same allocation
    order (result buffer first, then preprocessing buffers), same
    single kernel dispatch — bit-identical results and counters, a
    different (measured) stream schedule.

    The ``†`` protocol is forced (``cpu_preprocess="always"``): the
    executed overlap is the Section III-D6 host pass against the
    forward-arc upload, exactly what ``pipelined_ms`` models.  A plan
    with ``cpu_preprocess="never"`` is a contradiction and a typed
    error.
    """
    if plan.graph is None:
        raise ReproError("pipelined_launch needs a LaunchPlan with a graph "
                         "(preprocessed structures already paid the serial "
                         "protocol)")
    if plan.options.cpu_preprocess == "never":
        raise ReproError(
            "pipelined execution schedules the † host preprocessing pass; "
            "options.cpu_preprocess must be 'auto' or 'always', not 'never'")
    options = plan.options.but(cpu_preprocess="always")
    timeline = plan.timeline if plan.timeline is not None else StreamTimeline()
    if not isinstance(timeline, StreamTimeline):
        raise ReproError("pipelined_launch needs a StreamTimeline "
                         f"(got {type(timeline).__name__})")

    def pre_fn(graph: EdgeArray, device: DeviceSpec, memory: DeviceMemory,
               tl: Timeline, opts: GpuOptions) -> PreprocessResult:
        return pipelined_cpu_preprocess(graph, device, memory, tl, opts,
                                        pipe=pipe)

    return launch(replace(plan, options=options, timeline=timeline,
                          preprocess_fn=pre_fn,
                          d2h_stream=pipe.d2h_stream))

"""``KernelSpec`` — the declarative contract every counting kernel meets.

A kernel, to the runtime, is: a registry name, a display label for the
simulated timeline, one host *body* per execution engine, two
buffer-shape facts (does it need the SoA layout, does it accumulate a
per-vertex array), and the ``GpuOptions.kernel`` value that selects it
in the pipelines.  Everything else — device allocation, H2D/D2H
transfer events, engine construction, sanitizer wiring, hostprof
phases, report/timeline assembly — is owned by
:func:`repro.runtime.launch` and written exactly once.

Kernel authors add a strategy by writing the body (a function of
``(engine, pre, options, *, lo, hi, result_buf, per_vertex_buf,
memory)``) and registering a spec; every pipeline (single-GPU,
local-counts, multi-GPU, serving, the wall-clock bench) can then
launch it with no new harness code.  For thread-per-edge intersection
kernels there is no new body to write at all: implement one
:class:`~repro.core.intersect.IntersectionStrategy` and register a
spec over the shared drivers (see the ``binary_search`` / ``hash``
registrations below and ``docs/architecture.md``).

The registry is also the **single source of truth for kernel names**:
``GpuOptions`` validates its ``kernel`` field against the registered
``option_field`` values (plus ``"auto"``), so registering a kernel is
one spec — not a spec plus an options-module edit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Protocol

import numpy as np

from repro.core.options import GpuOptions
from repro.core.preprocess import PreprocessResult
from repro.errors import ReproError
from repro.gpusim.memory import DeviceBuffer, DeviceMemory
from repro.gpusim.simt import SimtEngine


class KernelResult(Protocol):
    """What every kernel body returns (duck-typed; the concrete classes
    are :class:`~repro.core.count_kernel.CountKernelResult` and
    :class:`~repro.core.warp_intersect_kernel.WarpIntersectResult`)."""

    thread_counts: np.ndarray
    triangles: int
    ticks: int


#: A host execution body: runs the kernel over arcs ``[lo, hi)`` on an
#: already-constructed engine against already-resident structures.
KernelBody = Callable[..., Any]


@dataclass(frozen=True)
class KernelSpec:
    """Declarative description of one counting kernel.

    Attributes
    ----------
    name : str
        Registry key (``repro-bench wallclock --kernel <name>``).
    display_name : str
        Timeline event label of the launch (e.g. ``"CountTriangles"``).
    bodies : mapping engine-name -> body
        One host execution body per :data:`repro.core.options.ENGINES`
        entry it supports; all bodies of a spec are bit-identical in
        results and :class:`~repro.gpusim.simt.KernelReport` counters.
    requires_soa : bool
        The body assumes unzipped (SoA) columns; launching against an
        AoS layout is a typed error instead of wrong counters.
    per_vertex : bool
        The body accumulates per-vertex corner counts; ``launch()``
        allocates the ``num_nodes``-long accumulator before
        preprocessing and reads it back after the reduce.
    option_field : str | None
        The ``GpuOptions.kernel`` value that selects this spec in the
        pipelines (``None`` for specs selected by an entry point
        instead, like the per-vertex ``local`` kernel).  These values —
        plus ``"auto"`` — are the legal ``GpuOptions.kernel`` choices.
    """

    name: str
    display_name: str
    bodies: Mapping[str, KernelBody] = field(repr=False)
    requires_soa: bool = False
    per_vertex: bool = False
    option_field: str | None = None

    def body_for(self, engine: str) -> KernelBody:
        """The host body for ``engine``, or a typed error naming the
        valid choices — never a silent fallback."""
        body = self.bodies.get(engine)
        if body is None:
            raise ReproError(
                f"kernel {self.name!r} has no body for engine "
                f"{engine!r}; valid engines: {tuple(sorted(self.bodies))}")
        return body


_REGISTRY: dict[str, KernelSpec] = {}


def register(spec: KernelSpec) -> KernelSpec:
    """Add ``spec`` to the registry (idempotent for the same object)."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing is not spec:
        raise ReproError(f"kernel {spec.name!r} is already registered")
    for other in _REGISTRY.values():
        if (spec.option_field is not None and other is not spec
                and other.option_field == spec.option_field):
            raise ReproError(
                f"kernel {spec.name!r} claims GpuOptions.kernel="
                f"{spec.option_field!r}, already taken by {other.name!r}")
    _REGISTRY[spec.name] = spec
    return spec


def kernel_names() -> tuple[str, ...]:
    """Registered kernel names, sorted (CLI choices)."""
    return tuple(sorted(_REGISTRY))


def kernel_option_fields() -> tuple[str, ...]:
    """Every ``GpuOptions.kernel`` value with a registered spec, sorted.

    This — plus ``"auto"`` — is what ``GpuOptions`` validates against:
    the registry is the single source of truth for kernel names.
    """
    return tuple(sorted(spec.option_field for spec in _REGISTRY.values()
                        if spec.option_field is not None))


def get_kernel(name: str) -> KernelSpec:
    """Look up a registered spec, naming the valid choices on a miss."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ReproError(
            f"unknown kernel {name!r}; registered: {kernel_names()}")
    return spec


def resolve_kernel(kernel: KernelSpec | str) -> KernelSpec:
    """Accept either a spec object or a registry name."""
    if isinstance(kernel, KernelSpec):
        return kernel
    return get_kernel(kernel)


def kernel_option_field(name: str) -> str:
    """The ``GpuOptions.kernel`` field value that selects registry kernel
    ``name`` in the pipelines (the inverse of :func:`spec_for_options`).

    Per-vertex specs (``local``) are selected by the pipeline entry
    point, not an options field, so asking for their field is a typed
    error rather than a silent wrong answer.
    """
    spec = get_kernel(name)
    if spec.option_field is None:
        raise ReproError(
            f"kernel {name!r} is selected by the local-counts pipeline, "
            f"not GpuOptions.kernel; sweepable kernels: "
            f"{tuple(n for n in kernel_names() if get_kernel(n).option_field is not None)}")
    return spec.option_field


def spec_for_options(options: GpuOptions, per_vertex: bool = False) -> KernelSpec:
    """Map ``GpuOptions.kernel`` to its registered spec.

    ``per_vertex=True`` selects the local-counts variant (the merge
    kernel with the ``atomicAdd``-per-corner extension); the other
    kernels have no such path.  ``kernel="auto"`` must be resolved
    against a graph before reaching the registry — pipelines that see
    the graph (:func:`repro.core.forward_gpu.gpu_count_triangles`) do
    this via :func:`repro.core.autopick.resolve_options`.
    """
    if per_vertex:
        return get_kernel("local")
    if options.kernel == "auto":
        raise ReproError(
            "GpuOptions.kernel='auto' must be resolved against a graph "
            "before launch (repro.core.autopick.resolve_options); "
            "graph-level pipelines do this automatically")
    for spec in _REGISTRY.values():
        if spec.option_field == options.kernel:
            return spec
    raise ReproError(
        f"no registered kernel for GpuOptions.kernel={options.kernel!r}; "
        f"valid: {kernel_option_fields() + ('auto',)}")


def _count_body(engine_name: str, option_field: str) -> KernelBody:
    """A thread-per-edge driver body bound to one engine + one strategy.

    The drivers resolve the strategy from ``options.kernel``; the bound
    check here turns a spec/options mismatch (e.g. dispatching the
    ``binary_search`` spec with merge options) into a typed error
    instead of silently running the wrong algorithm.
    """

    def body(engine: SimtEngine, pre: PreprocessResult,
             options: GpuOptions, *, lo: int = 0, hi: int | None = None,
             result_buf: DeviceBuffer | None = None,
             per_vertex_buf: DeviceBuffer | None = None,
             memory: DeviceMemory | None = None) -> KernelResult:
        if options.kernel != option_field:
            raise ReproError(
                f"this kernel spec runs GpuOptions.kernel="
                f"{option_field!r}, got {options.kernel!r} — dispatch "
                "through spec_for_options or fix the options")
        if engine_name == "lockstep":
            from repro.core.count_kernel import count_triangles_lockstep
            fn = count_triangles_lockstep
        else:
            from repro.core.count_kernel_compacted import \
                count_triangles_compacted
            fn = count_triangles_compacted
        return fn(engine, pre, options, lo=lo, hi=hi, result_buf=result_buf,
                  per_vertex_buf=per_vertex_buf, memory=memory)

    return body


def _warp_intersect(engine: SimtEngine, pre: PreprocessResult,
                    options: GpuOptions, *, lo: int = 0, hi: int | None = None,
                    result_buf: DeviceBuffer | None = None,
                    per_vertex_buf: DeviceBuffer | None = None,
                    memory: DeviceMemory | None = None) -> KernelResult:
    from repro.core.warp_intersect_kernel import warp_intersect_kernel

    if per_vertex_buf is not None:
        raise ReproError("the warp_intersect kernel has no per-vertex "
                         "accumulation path; use kernel 'local'")
    # The body branches on ``options.engine`` internally (its chunk
    # gathers need the per-warp lane counts either way).
    return warp_intersect_kernel(engine, pre, lo=lo, hi=hi,
                                 result_buf=result_buf, options=options)


#: The paper's thread-per-edge two-pointer merge (Section III-C).
MERGE = register(KernelSpec(
    name="merge", display_name="CountTriangles",
    bodies={"lockstep": _count_body("lockstep", "two_pointer"),
            "compacted": _count_body("compacted", "two_pointer")},
    option_field="two_pointer"))

#: The Green et al. warp-per-edge comparator (Section V).
WARP_INTERSECT = register(KernelSpec(
    name="warp_intersect", display_name="WarpIntersect",
    bodies={"lockstep": _warp_intersect, "compacted": _warp_intersect},
    requires_soa=True, option_field="warp_intersect"))

#: Binary-search intersection: log-probes of the longer list
#: (Wang/Owens comparative study; shared drivers, new strategy).
BINARY_SEARCH = register(KernelSpec(
    name="binary_search", display_name="BinarySearchIntersect",
    bodies={"lockstep": _count_body("lockstep", "binary_search"),
            "compacted": _count_body("compacted", "binary_search")},
    option_field="binary_search"))

#: Hash intersection: TRUST-style per-vertex bucket tables built on
#: device per launch, probed O(1) expected per candidate.
HASH = register(KernelSpec(
    name="hash", display_name="HashIntersect",
    bodies={"lockstep": _count_body("lockstep", "hash"),
            "compacted": _count_body("compacted", "hash")},
    option_field="hash"))

#: The merge kernel with one ``atomicAdd`` per triangle corner — exact
#: local counts for the clustering-coefficient application.
LOCAL = register(KernelSpec(
    name="local", display_name="CountTriangles+local",
    bodies={"lockstep": _count_body("lockstep", "two_pointer"),
            "compacted": _count_body("compacted", "two_pointer")},
    per_vertex=True))

"""Stream/event timeline — the runtime's transfer-and-compute schedule.

The base :class:`~repro.gpusim.timing.Timeline` records *durations* in
host program order; every reported total is the serial sum, which is
exactly the paper's measurement protocol.  This module keeps that
contract bit-for-bit (``total_ms``/``phase_ms``/``breakdown`` are
inherited unchanged) while additionally stamping every event with a
``(start, end)`` interval on a numbered *stream*, CUDA-style:

* stream 0 is the default stream — host program order, where every
  event lands unless the caller says otherwise;
* :meth:`StreamTimeline.add_on` places an event on another stream.  A
  stream's clock starts at the default-stream time of its first use
  (the fork point — you cannot overlap with work that has not been
  issued yet) and advances serially within the stream;
* :meth:`StreamTimeline.barrier` is ``cudaDeviceSynchronize``: every
  stream's clock jumps to the makespan.

This is what "modeled compute/transfer overlap" means here: the
*reported* numbers stay the paper's serial protocol, and the stream
schedule answers the what-if — :attr:`makespan_ms` is the end-to-end
time if concurrent streams really ran concurrently, and
:attr:`overlap_savings_ms` the gap.  The multi-GPU pipeline places each
destination card's broadcast copies on stream ``1 + d`` (they share no
resource in the model — each card has its own PCIe lane), and
:meth:`pipelined_ms` models double-buffering the ``†`` CPU-preprocessing
host passes against the H2D copies without re-running anything.

Executed schedules (``repro.runtime.pipeline``, the multi-GPU ring
exchange) additionally record cross-stream *dependency edges* via
:meth:`StreamTimeline.wait_for` — the ``cudaStreamWaitEvent`` analogue.
An edge advances the waiting stream's clock to everything already
issued on the upstream stream, so :attr:`makespan_ms` of such a
timeline is the measured end-to-end time of the actual dependency
schedule, not a phase-sum what-if.  Every recorded edge is kept in
:attr:`StreamTimeline.stream_deps` for inspection.

The cursor dict itself is an internal invariant (fork points, barrier
advancement); outside ``repro/runtime`` use :meth:`stream_time` /
:meth:`wait_for` — repro-lint SAN105 flags direct ``_cursors`` access.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.timing import Timeline

#: The default stream (host program order).
DEFAULT_STREAM = 0


@dataclass(frozen=True)
class StreamEvent:
    """One timeline event stamped onto a stream's clock."""

    name: str
    ms: float
    phase: str
    stream: int
    start_ms: float

    @property
    def end_ms(self) -> float:
        return self.start_ms + self.ms


@dataclass(frozen=True)
class StreamDep:
    """One cross-stream dependency edge (``cudaStreamWaitEvent``):
    ``stream``'s next event starts no earlier than ``at_ms``, the
    ``upstream`` clock when the edge was recorded."""

    stream: int
    upstream: int
    at_ms: float


@dataclass
class StreamTimeline(Timeline):
    """A :class:`Timeline` that also keeps a stream/event schedule.

    Drop-in compatible: every ``add`` goes to the inherited event list
    (so serial totals are unchanged) *and* is stamped on stream 0.
    """

    stream_events: list[StreamEvent] = field(default_factory=list)
    stream_deps: list[StreamDep] = field(default_factory=list)
    _cursors: dict[int, float] = field(default_factory=dict)

    def add(self, name: str, ms: float, phase: str = "preprocess") -> None:
        self.add_on(name, ms, phase=phase, stream=DEFAULT_STREAM)

    def add_on(self, name: str, ms: float, phase: str = "preprocess",
               stream: int = DEFAULT_STREAM) -> None:
        """Record an event on ``stream`` (0 = host program order)."""
        super().add(name, ms, phase=phase)
        start = self.stream_time(stream)
        self.stream_events.append(StreamEvent(
            name=name, ms=ms, phase=phase, stream=stream, start_ms=start))
        self._cursors[stream] = start + ms

    def stream_time(self, stream: int = DEFAULT_STREAM) -> float:
        """Current clock of ``stream``.

        A stream that has never been used reads at its fork point — the
        default stream's current time (you cannot overlap with work the
        host has not issued yet).  This is the sanctioned accessor;
        ``_cursors`` itself is internal (repro-lint SAN105).
        """
        if stream in self._cursors:
            return self._cursors[stream]
        return self._cursors.get(DEFAULT_STREAM, 0.0)

    def wait_for(self, stream: int, upstream: int) -> StreamDep:
        """Record a dependency edge: ``stream`` waits for everything
        already issued on ``upstream`` (``cudaStreamWaitEvent`` on an
        event recorded at the upstream's current position).

        Advances ``stream``'s clock to ``max(own, upstream)`` — later
        ``add_on`` calls on ``stream`` start after the upstream work —
        and returns the recorded :class:`StreamDep`.
        """
        at = self.stream_time(upstream)
        self._cursors[stream] = max(self.stream_time(stream), at)
        dep = StreamDep(stream=stream, upstream=upstream, at_ms=at)
        self.stream_deps.append(dep)
        return dep

    def barrier(self) -> None:
        """Synchronize every stream's clock to the makespan.

        The default stream's cursor is advanced even when it was never
        explicitly used — otherwise a stream forked *after* the barrier
        would start at the pre-barrier default clock (frozen at 0.0 for
        a timeline whose events all sat on named streams)."""
        high = self.makespan_ms
        self._cursors[DEFAULT_STREAM] = high
        for stream in self._cursors:
            self._cursors[stream] = high

    @property
    def makespan_ms(self) -> float:
        """End-to-end time of the stream schedule (streams concurrent,
        events within a stream serial).  Equals :attr:`total_ms` when
        everything sits on the default stream."""
        return max((e.end_ms for e in self.stream_events), default=0.0)

    @property
    def overlap_savings_ms(self) -> float:
        """Serial total minus the stream makespan — what concurrent
        copies/kernels would save.  Zero for a single-stream run."""
        return self.total_ms - self.makespan_ms

    def pipelined_ms(self, phase_a: str = "preprocess",
                     phase_b: str = "copy") -> float:
        """What-if total with ``phase_a`` perfectly double-buffered
        against ``phase_b`` (chunked host preprocessing overlapping the
        H2D copies of already-finished chunks — the ``†`` rows): the two
        phases cost ``max`` instead of sum, everything else unchanged."""
        a = self.phase_ms(phase_a)
        b = self.phase_ms(phase_b)
        return self.total_ms - (a + b) + max(a, b)

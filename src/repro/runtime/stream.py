"""Stream/event timeline — the runtime's transfer-and-compute schedule.

The base :class:`~repro.gpusim.timing.Timeline` records *durations* in
host program order; every reported total is the serial sum, which is
exactly the paper's measurement protocol.  This module keeps that
contract bit-for-bit (``total_ms``/``phase_ms``/``breakdown`` are
inherited unchanged) while additionally stamping every event with a
``(start, end)`` interval on a numbered *stream*, CUDA-style:

* stream 0 is the default stream — host program order, where every
  event lands unless the caller says otherwise;
* :meth:`StreamTimeline.add_on` places an event on another stream.  A
  stream's clock starts at the default-stream time of its first use
  (the fork point — you cannot overlap with work that has not been
  issued yet) and advances serially within the stream;
* :meth:`StreamTimeline.barrier` is ``cudaDeviceSynchronize``: every
  stream's clock jumps to the makespan.

This is what "modeled compute/transfer overlap" means here: the
*reported* numbers stay the paper's serial protocol, and the stream
schedule answers the what-if — :attr:`makespan_ms` is the end-to-end
time if concurrent streams really ran concurrently, and
:attr:`overlap_savings_ms` the gap.  The multi-GPU pipeline places each
destination card's broadcast copies on stream ``1 + d`` (they share no
resource in the model — each card has its own PCIe lane), and
:meth:`pipelined_ms` models double-buffering the ``†`` CPU-preprocessing
host passes against the H2D copies without re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.timing import Timeline

#: The default stream (host program order).
DEFAULT_STREAM = 0


@dataclass(frozen=True)
class StreamEvent:
    """One timeline event stamped onto a stream's clock."""

    name: str
    ms: float
    phase: str
    stream: int
    start_ms: float

    @property
    def end_ms(self) -> float:
        return self.start_ms + self.ms


@dataclass
class StreamTimeline(Timeline):
    """A :class:`Timeline` that also keeps a stream/event schedule.

    Drop-in compatible: every ``add`` goes to the inherited event list
    (so serial totals are unchanged) *and* is stamped on stream 0.
    """

    stream_events: list[StreamEvent] = field(default_factory=list)
    _cursors: dict[int, float] = field(default_factory=dict)

    def add(self, name: str, ms: float, phase: str = "preprocess") -> None:
        self.add_on(name, ms, phase=phase, stream=DEFAULT_STREAM)

    def add_on(self, name: str, ms: float, phase: str = "preprocess",
               stream: int = DEFAULT_STREAM) -> None:
        """Record an event on ``stream`` (0 = host program order)."""
        super().add(name, ms, phase=phase)
        if stream not in self._cursors:
            # Fork point: a stream cannot start before the issuing host
            # reaches it, i.e. the default stream's current time.
            self._cursors[stream] = self._cursors.get(DEFAULT_STREAM, 0.0)
        start = self._cursors[stream]
        self.stream_events.append(StreamEvent(
            name=name, ms=ms, phase=phase, stream=stream, start_ms=start))
        self._cursors[stream] = start + ms

    def barrier(self) -> None:
        """Synchronize every stream's clock to the makespan."""
        high = self.makespan_ms
        for stream in self._cursors:
            self._cursors[stream] = high

    @property
    def makespan_ms(self) -> float:
        """End-to-end time of the stream schedule (streams concurrent,
        events within a stream serial).  Equals :attr:`total_ms` when
        everything sits on the default stream."""
        return max((e.end_ms for e in self.stream_events), default=0.0)

    @property
    def overlap_savings_ms(self) -> float:
        """Serial total minus the stream makespan — what concurrent
        copies/kernels would save.  Zero for a single-stream run."""
        return self.total_ms - self.makespan_ms

    def pipelined_ms(self, phase_a: str = "preprocess",
                     phase_b: str = "copy") -> float:
        """What-if total with ``phase_a`` perfectly double-buffered
        against ``phase_b`` (chunked host preprocessing overlapping the
        H2D copies of already-finished chunks — the ``†`` rows): the two
        phases cost ``max`` instead of sum, everything else unchanged."""
        a = self.phase_ms(phase_a)
        b = self.phase_ms(phase_b)
        return self.total_ms - (a + b) + max(a, b)

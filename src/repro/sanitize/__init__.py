"""``repro.sanitize`` — compute-sanitizer-style checkers for the SIMT simulator.

NVIDIA pairs every CUDA kernel with ``compute-sanitizer`` (memcheck /
racecheck / initcheck); this package grows the same safety net for the
simulated substrate:

* :class:`Sanitizer` — a dynamic layer that observes every
  :class:`~repro.gpusim.simt.SimtEngine` access and every
  :class:`~repro.gpusim.memory.DeviceMemory` allocation event, emitting
  structured :class:`SanitizerReport` records (and typed errors from
  :mod:`repro.errors` in strict mode).  Opt in with
  ``GpuOptions(sanitize="report")`` or ``"strict"``; the default
  ``"off"`` keeps the hot paths at a single ``None`` check.
* :mod:`repro.sanitize.lint` — the ``repro-lint`` static AST lint that
  enforces simulator invariants across ``src/`` (rule catalog in
  ``docs/sanitizer.md``).
* :mod:`repro.sanitize.matrix` — the ``repro-bench sanitize`` clean
  kernel matrix: every engine × merge variant under all three checkers,
  with a sanitize-off identity comparison.

The dynamic layer is identity-preserving by contract: a clean kernel
produces bit-identical :class:`~repro.gpusim.simt.KernelReport`
counters with sanitize on or off (the checkers only observe).
"""

from repro.sanitize.sanitizer import (CHECKERS, SANITIZE_MODES, Sanitizer,
                                      SanitizerReport)

__all__ = ["CHECKERS", "SANITIZE_MODES", "Sanitizer", "SanitizerReport"]

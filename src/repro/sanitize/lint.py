"""``repro-lint`` — backward-compatible shim over :mod:`repro.analyze`.

The flat AST walker that used to live here grew into a real analysis
subsystem: per-function CFGs, a dataflow engine, a plugin check
registry, SARIF output and committed baselines.  That stack is
:mod:`repro.analyze`; the rules this module historically implemented
(SAN101–SAN105, plus the SAN100 bare-suppression diagnostic) are now
plugins in :mod:`repro.analyze.checks.invariants` with the same ids,
the same ``# san-ok: SANxxx`` / ``# repro-lint: allow=SANxxx``
suppressions, and the same ``path:line:col: RULE message`` findings.

This shim keeps the old import surface (``lint_source`` /
``lint_file`` / ``lint_paths`` / ``LintFinding`` / ``RULES``) and the
``repro-lint`` console script alive, restricted to the legacy rules —
the new path-sensitive checks (SAN201–SAN205b), output formats and
baseline gating are ``repro-analyze``'s job.  Exit codes follow the
shared contract: 0 clean, 1 findings, 2 usage/parse error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analyze import LEGACY_RULES, analyze_paths, analyze_source
from repro.analyze.findings import Finding
from repro.analyze.registry import rule_catalog

#: Back-compat alias — findings are the structured analyzer records.
LintFinding = Finding

#: Rule catalog (id -> one-line summary), mirrored in docs/analysis.md.
RULES = {rule: summary for rule, summary in rule_catalog().items()
         if rule in LEGACY_RULES}


def lint_source(source: str, path: str) -> list[Finding]:
    """Lint one module's source text with the legacy rules (``path``
    is for reporting and the package-based exemptions)."""
    result = analyze_source(source, path, checks=LEGACY_RULES)
    return sorted(result.errors + result.findings)


def lint_file(path: str | Path) -> list[Finding]:
    path = Path(path)
    return lint_source(path.read_text(), str(path))


def lint_paths(paths: list[str]) -> list[Finding]:
    """Lint every ``.py`` under each path (files are linted directly)."""
    result = analyze_paths(paths, checks=LEGACY_RULES)
    return sorted(result.errors + result.findings)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static simulator-invariant checks (SAN100-SAN105); "
                    "see repro-analyze for the full rule set.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    ns = parser.parse_args(argv)
    if ns.list_rules:
        for rule, summary in sorted(RULES.items()):
            print(f"{rule}  {summary}")
        return 0
    result = analyze_paths(ns.paths, checks=LEGACY_RULES)
    for finding in sorted(result.errors + result.findings):
        print(finding.format())
    if result.errors:
        print(f"repro-lint: {len(result.errors)} file(s) failed to parse",
              file=sys.stderr)
        return 2
    if result.findings:
        print(f"repro-lint: {len(result.findings)} finding(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

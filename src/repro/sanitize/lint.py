"""``repro-lint`` — static AST checks for simulator invariants.

The dynamic sanitizer (:mod:`repro.sanitize.sanitizer`) catches bugs at
run time; this module catches the *patterns that create them* at review
time.  Three rules, each encoding a contract the simulator's fidelity
rests on:

SAN101
    Direct ``.data`` (NumPy payload) access on a :class:`DeviceBuffer`
    outside ``repro/gpusim``.  Kernel and pipeline code must go through
    ``SimtEngine.read``/``write``/``atomic_add`` (modeled, counted) or
    the thrust-like wrappers — touching the backing array bypasses the
    cache/coalescing model and silently produces counters that no real
    GPU would show.  The ``gpusim`` package itself is exempt (it *is*
    the model), as is ``sanitize`` (shadow state is sized and checked
    against the payload by construction).

SAN102
    A kernel scope that issues ``engine.read``/``read_compacted`` calls
    but never calls ``end_step``/``end_step_warps``.  Reads only enter
    the timing model when a step is closed; a scope that reads without
    closing steps produces traffic the profiler never prices.  The rule
    resolves aliases (``read = engine.read_compacted``, including the
    conditional ``x if c else y`` form) and treats each outermost
    function (or the module top level) as one scope.

SAN103
    Legacy ``np.random.*`` API (``np.random.seed``, ``np.random.rand``,
    global-state draws) outside ``repro/graphs/generators``.  Every
    experiment in the repro must be replayable from a seed; the safe
    spellings are ``np.random.default_rng`` / ``Generator`` /
    ``SeedSequence`` / ``BitGenerator``.

SAN104
    Direct ``SimtEngine(...)`` construction outside ``repro/gpusim``
    (the model itself) and ``repro/runtime`` (the one sanctioned
    owner).  Pipelines that build engines by hand bypass the unified
    launch lifecycle — sanitizer attachment, ``GpuOptions`` plumbing
    (``use_readonly_cache``), hostprof phases — and drift from the
    dispatch contract.  Use :func:`repro.runtime.launch` for the full
    lifecycle or :func:`repro.runtime.build_engine` when a harness
    times the kernel body itself.

SAN105
    Direct ``._cursors`` access outside ``repro/runtime``.  The stream
    cursor dict is :class:`~repro.runtime.stream.StreamTimeline`'s
    internal invariant (fork-point semantics, barrier advancement,
    dependency-edge bookkeeping); code that reads or pokes it directly
    can silently break the executed schedules' measured ``makespan_ms``.
    Use :meth:`~repro.runtime.stream.StreamTimeline.stream_time` to read
    a stream clock and :meth:`~repro.runtime.stream.StreamTimeline.
    wait_for` to record ordering.

Suppressions
------------
``# san-ok: SAN101`` on the flagged line waives that rule there;
``# repro-lint: allow=SAN101`` in any comment waives the rule for the
whole module (used by ``preprocess.py``, whose thrust-style host phase
legitimately manipulates payloads).
"""

from __future__ import annotations

import argparse
import ast
import io
import re
import sys
import tokenize
from dataclasses import dataclass
from pathlib import Path

#: Rule catalog (id -> one-line summary), mirrored in docs/sanitizer.md.
RULES = {
    "SAN101": "DeviceBuffer payload (.data) accessed outside repro.gpusim",
    "SAN102": "engine read without end_step/end_step_warps in its scope",
    "SAN103": "legacy np.random API outside repro.graphs.generators",
    "SAN104": "direct SimtEngine construction outside repro.gpusim/runtime",
    "SAN105": "StreamTimeline._cursors accessed outside repro.runtime",
}

_ALLOC_METHODS = {"alloc", "alloc_empty", "try_alloc"}
_READ_ATTRS = {"read", "read_compacted"}
_END_ATTRS = {"end_step", "end_step_warps"}
_SAFE_RANDOM = {"default_rng", "Generator", "SeedSequence", "BitGenerator"}
_RULE_RE = re.compile(r"SAN\d{3}")


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


# --------------------------------------------------------------------- #
# suppression comments
# --------------------------------------------------------------------- #

def _suppressions(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """``(line -> waived rules, module-wide waived rules)`` from comments."""
    per_line: dict[int, set[str]] = {}
    module: set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            text = tok.string
            if "repro-lint:" in text and "allow=" in text:
                module.update(_RULE_RE.findall(text.split("allow=", 1)[1]))
            elif "san-ok:" in text:
                rules = _RULE_RE.findall(text.split("san-ok:", 1)[1])
                per_line.setdefault(tok.start[0], set()).update(rules)
    except tokenize.TokenError:
        pass  # syntax problems surface via ast.parse instead
    return per_line, module


# --------------------------------------------------------------------- #
# scope discovery
# --------------------------------------------------------------------- #

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _outermost_functions(tree: ast.Module) -> list[ast.AST]:
    """Functions with no enclosing function (methods count as outermost)."""
    found: list[ast.AST] = []

    def visit(node: ast.AST, in_func: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNC_NODES):
                if not in_func:
                    found.append(child)
                visit(child, True)
            else:
                visit(child, in_func)

    visit(tree, False)
    return found


def _module_scope_roots(tree: ast.Module) -> list[ast.AST]:
    """Every node reachable from the module without entering a function
    body — the module pseudo-scope (functions form their own scopes)."""
    roots: list[ast.AST] = []
    stack: list[ast.AST] = [tree]
    while stack:
        for child in ast.iter_child_nodes(stack.pop()):
            if isinstance(child, _FUNC_NODES):
                continue
            roots.append(child)
            stack.append(child)
    return roots


def _scope_nodes(scope: ast.AST | list[ast.AST]) -> list[ast.AST]:
    """Flat node list of one scope, pruning nested function re-scoping
    only for the module pseudo-scope (a function scope keeps its nested
    helpers — ``end_step`` in the outer loop covers reads in an inner
    ``_adj_read``)."""
    if isinstance(scope, list):  # module pseudo-scope, already pruned
        return scope
    return list(ast.walk(scope))


# --------------------------------------------------------------------- #
# rule implementations
# --------------------------------------------------------------------- #

def _annotation_mentions_devicebuffer(ann: ast.AST | None) -> bool:
    if ann is None:
        return False
    try:
        text = ast.unparse(ann)
    except Exception:
        return False
    return "DeviceBuffer" in text


def _buffer_names(nodes: list[ast.AST], scope: ast.AST | list[ast.AST]) -> set[str]:
    """Names bound to DeviceBuffers in this scope, by dataflow:
    results of allocator calls, and parameters annotated DeviceBuffer."""
    names: set[str] = set()
    if isinstance(scope, _FUNC_NODES):
        args = scope.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs
                    + [a for a in (args.vararg, args.kwarg) if a]):
            if _annotation_mentions_devicebuffer(arg.annotation):
                names.add(arg.arg)
    for node in nodes:
        value = None
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        elif isinstance(node, ast.NamedExpr):
            value, targets = node.value, [node.target]
        if value is None:
            continue
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in _ALLOC_METHODS):
            for tgt in targets:
                if isinstance(tgt, ast.Name):
                    names.add(tgt.id)
    return names


def _check_san101(path: str, nodes: list[ast.AST],
                  scope: ast.AST | list[ast.AST]) -> list[LintFinding]:
    buffers = _buffer_names(nodes, scope)
    if not buffers:
        return []
    out = []
    for node in nodes:
        if (isinstance(node, ast.Attribute) and node.attr == "data"
                and isinstance(node.value, ast.Name)
                and node.value.id in buffers):
            out.append(LintFinding(
                path, node.lineno, node.col_offset, "SAN101",
                f"direct payload access {node.value.id}.data bypasses the "
                "memory model; use engine.read/write or gpusim.thrustlike"))
    return out


def _is_read_attr(node: ast.AST) -> bool:
    return isinstance(node, ast.Attribute) and node.attr in _READ_ATTRS


def _check_san102(path: str, nodes: list[ast.AST]) -> list[LintFinding]:
    read_aliases: set[str] = set()
    end_aliases: set[str] = set()
    for node in nodes:
        if not isinstance(node, (ast.Assign, ast.NamedExpr)):
            continue
        value = node.value
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        candidates = [value]
        if isinstance(value, ast.IfExp):  # read = a.read_compacted if c else a.read
            candidates = [value.body, value.orelse]
        for cand in candidates:
            if _is_read_attr(cand):
                read_aliases.update(t.id for t in targets
                                    if isinstance(t, ast.Name))
            elif (isinstance(cand, ast.Attribute)
                  and cand.attr in _END_ATTRS):
                end_aliases.update(t.id for t in targets
                                   if isinstance(t, ast.Name))

    reads: list[ast.Call] = []
    has_end = False
    for node in nodes:
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            # file.read() / stream.read(n) are not engine reads — the
            # engine signature is read(buf, indices, thread_ids).
            if func.attr in _READ_ATTRS and len(node.args) >= 2:
                reads.append(node)
            elif func.attr in _END_ATTRS:
                has_end = True
        elif isinstance(func, ast.Name):
            if func.id in read_aliases and len(node.args) >= 2:
                reads.append(node)
            elif func.id in end_aliases:
                has_end = True

    if not reads or has_end:
        return []
    first = min(reads, key=lambda c: (c.lineno, c.col_offset))
    return [LintFinding(
        path, first.lineno, first.col_offset, "SAN102",
        "engine read(s) in a scope that never calls end_step/"
        "end_step_warps — this traffic is invisible to the timing model")]


def _check_san104(path: str, tree: ast.Module) -> list[LintFinding]:
    out = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None)
        if name != "SimtEngine":
            continue
        out.append(LintFinding(
            path, node.lineno, node.col_offset, "SAN104",
            "direct SimtEngine construction bypasses the unified runtime; "
            "use repro.runtime.launch (full lifecycle) or "
            "repro.runtime.build_engine (harness timing)"))
    return out


def _check_san105(path: str, tree: ast.Module) -> list[LintFinding]:
    out = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Attribute)
                and node.attr == "_cursors"):
            continue
        out.append(LintFinding(
            path, node.lineno, node.col_offset, "SAN105",
            "._cursors is StreamTimeline-internal state; use "
            "stream_time() to read a stream clock and wait_for() to "
            "record ordering"))
    return out


def _check_san103(path: str, tree: ast.Module) -> list[LintFinding]:
    out = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == "random"
                and isinstance(node.value.value, ast.Name)
                and node.value.value.id in ("np", "numpy")):
            continue
        if node.attr in _SAFE_RANDOM:
            continue
        out.append(LintFinding(
            path, node.lineno, node.col_offset, "SAN103",
            f"np.random.{node.attr} draws from global state; use a "
            "seeded np.random.default_rng passed down explicitly"))
    return out


# --------------------------------------------------------------------- #
# driver
# --------------------------------------------------------------------- #

def lint_source(source: str, path: str) -> list[LintFinding]:
    """Lint one module's source text (``path`` is for reporting and the
    package-based exemptions)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintFinding(path, exc.lineno or 1, exc.offset or 0,
                            "SAN000", f"syntax error: {exc.msg}")]
    per_line, module_allow = _suppressions(source)
    parts = Path(path).parts
    skip_san101 = "gpusim" in parts or "sanitize" in parts
    skip_san103 = "generators" in parts
    skip_san104 = "gpusim" in parts or "runtime" in parts
    skip_san105 = "runtime" in parts

    findings: list[LintFinding] = []
    scopes: list[ast.AST | list[ast.AST]] = [_module_scope_roots(tree)]
    scopes += _outermost_functions(tree)
    for scope in scopes:
        nodes = _scope_nodes(scope)
        if not skip_san101:
            findings += _check_san101(path, nodes, scope)
        findings += _check_san102(path, nodes)
    if not skip_san103:
        findings += _check_san103(path, tree)
    if not skip_san104:
        findings += _check_san104(path, tree)
    if not skip_san105:
        findings += _check_san105(path, tree)

    findings = [f for f in findings
                if f.rule not in module_allow
                and f.rule not in per_line.get(f.line, set())]
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def lint_file(path: str | Path) -> list[LintFinding]:
    path = Path(path)
    return lint_source(path.read_text(), str(path))


def lint_paths(paths: list[str]) -> list[LintFinding]:
    """Lint every ``.py`` under each path (files are linted directly)."""
    findings: list[LintFinding] = []
    for spec in paths:
        p = Path(spec)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            findings += lint_file(f)
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static simulator-invariant checks (SAN101-SAN105).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    ns = parser.parse_args(argv)
    if ns.list_rules:
        for rule, summary in sorted(RULES.items()):
            print(f"{rule}  {summary}")
        return 0
    findings = lint_paths(ns.paths)
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"repro-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

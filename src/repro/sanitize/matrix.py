"""The clean-kernel sanitize matrix (``repro-bench sanitize``).

Runs every kernel configuration — both engines x both merge variants of
the two-pointer kernel, both engines of the binary-search and hash
intersection strategies and of the warp-intersect comparator, plus the
atomicAdd-heavy local-counts pipeline — on small skewed graphs with all
three checkers armed, and asserts two things per cell:

* **zero findings** — the shipped kernels are memcheck/initcheck/
  racecheck-clean (any finding is a kernel bug or a checker false
  positive; either fails the matrix);
* **identity** — triangles and every :class:`KernelReport` counter are
  bit-identical to a sanitize-off run of the same cell (the sanitizer
  observes, never perturbs).

Across cells the matrix also asserts **cross-kernel agreement**: every
counting configuration of a graph reports the same triangle total
(every registered intersection strategy is exact; a disagreement is a
kernel bug even if each cell is individually clean).

``--strict`` runs the sanitized leg in strict mode, so a finding
surfaces as the typed :mod:`repro.errors` exception path (the mode CI
exercises) rather than a recorded report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.forward_gpu import gpu_count_triangles
from repro.core.local_counts import gpu_local_counts
from repro.core.options import GpuOptions
from repro.errors import SanitizerError
from repro.gpusim.device import GTX_980
from repro.graphs.generators import barabasi_albert, rmat
from repro.sanitize.sanitizer import CHECKERS

#: (label, graph builder) pairs — one heavy-tailed, one Kronecker-like,
#: both small enough for the full matrix to run in seconds.
_GRAPHS = (
    ("ba300", lambda seed: barabasi_albert(300, 8, seed=seed)),
    ("rmat8", lambda seed: rmat(8, 10.0, seed=seed)),
)

#: (kernel, merge_variant, engine) cells.  merge_variant only applies
#: to the two-pointer merge strategy; the probing strategies
#: (binary_search, hash) and the warp comparator keep "final".
_CONFIGS = tuple(
    [("two_pointer", mv, eng)
     for mv in ("final", "preliminary")
     for eng in ("lockstep", "compacted")]
    + [(kernel, "final", eng)
       for kernel in ("binary_search", "hash", "warp_intersect")
       for eng in ("lockstep", "compacted")]
)


@dataclass
class SanitizeCell:
    """One (graph, config) cell of the matrix."""

    graph: str
    kernel: str
    merge_variant: str
    engine: str
    pipeline: str                    # "count" or "local"
    triangles: int
    findings: int
    counts: dict = field(default_factory=dict)
    identical: bool = True           # counters + triangles vs sanitize-off
    error: str = ""                  # strict-mode exception, if any

    @property
    def ok(self) -> bool:
        return self.findings == 0 and self.identical and not self.error

    def summary(self) -> str:
        cfg = f"{self.kernel}/{self.merge_variant}/{self.engine}"
        status = "clean" if self.ok else "FAIL"
        text = (f"{self.graph:<7} {self.pipeline:<6} {cfg:<34} "
                f"findings={self.findings} identical={self.identical} "
                f"[{status}]")
        if self.error:
            text += f" error={self.error}"
        return text


@dataclass
class SanitizeMatrixReport:
    """All cells plus the aggregate verdict."""

    cells: list
    mode: str
    seed: int

    @property
    def ok(self) -> bool:
        return (all(c.ok for c in self.cells)
                and not self.cross_kernel_disagreements)

    @property
    def findings(self) -> int:
        return sum(c.findings for c in self.cells)

    @property
    def cross_kernel_disagreements(self) -> list:
        """Graphs where the counting cells did not all report the same
        triangle count — every registered strategy is exact, so any
        disagreement is a kernel bug the matrix must surface even when
        each cell is individually sanitizer-clean."""
        by_graph: dict[str, set] = {}
        for c in self.cells:
            if c.pipeline == "count":
                by_graph.setdefault(c.graph, set()).add(c.triangles)
        return [f"{g}: kernels disagree on triangles {sorted(seen)}"
                for g, seen in sorted(by_graph.items()) if len(seen) > 1]

    def format_report(self) -> str:
        lines = [f"==SANITIZE== kernel matrix mode={self.mode} "
                 f"cells={len(self.cells)} findings={self.findings} "
                 f"ok={self.ok}"]
        for cell in self.cells:
            lines.append("  " + cell.summary())
        for problem in self.cross_kernel_disagreements:
            lines.append("  cross-kernel: " + problem)
        return "\n".join(lines) + "\n"


def _run_cell(graph, label: str, options: GpuOptions, mode: str,
              pipeline: str = "count") -> SanitizeCell:
    run_of = gpu_local_counts if pipeline == "local" else gpu_count_triangles
    base = run_of(graph, device=GTX_980, options=options)
    base_counters = None
    if pipeline == "count":
        base_counters = base.kernel_report.counters()

    cell = SanitizeCell(graph=label, kernel=options.kernel,
                        merge_variant=options.merge_variant,
                        engine=options.engine, pipeline=pipeline,
                        triangles=base.triangles, findings=0)
    try:
        san = run_of(graph, device=GTX_980,
                     options=options.but(sanitize=mode))
    except SanitizerError as exc:
        cell.error = type(exc).__name__
        cell.findings = 1
        cell.counts = ({exc.report.checker: 1}
                       if exc.report is not None else {})
        return cell
    reports = san.sanitizer_reports
    cell.findings = sum(rep.occurrences for rep in reports)
    cell.counts = {c: sum(r.occurrences for r in reports if r.checker == c)
                   for c in CHECKERS}
    cell.identical = san.triangles == base.triangles
    if pipeline == "count":
        cell.identical = (cell.identical
                          and san.kernel_report.counters() == base_counters)
    else:
        cell.identical = (cell.identical
                          and (san.local_triangles
                               == base.local_triangles).all())
    return cell


def run_sanitize_matrix(strict: bool = False, seed: int = 0,
                        progress=None) -> SanitizeMatrixReport:
    """Run the full clean-kernel matrix; see the module docstring."""
    mode = "strict" if strict else "report"
    cells: list[SanitizeCell] = []
    for label, build in _GRAPHS:
        graph = build(seed)
        for kernel, mv, eng in _CONFIGS:
            options = GpuOptions(kernel=kernel, merge_variant=mv, engine=eng)
            cell = _run_cell(graph, label, options, mode)
            if progress is not None:
                progress(cell)
            cells.append(cell)
    # atomic_add coverage: the local-counts pipeline on the BA graph,
    # both engines (per-vertex accumulator hammered by every match).
    graph = _GRAPHS[0][1](seed)
    for eng in ("lockstep", "compacted"):
        options = GpuOptions(engine=eng)
        cell = _run_cell(graph, _GRAPHS[0][0], options, mode,
                         pipeline="local")
        if progress is not None:
            progress(cell)
        cells.append(cell)
    return SanitizeMatrixReport(cells=cells, mode=mode, seed=seed)

"""The dynamic sanitizer: memcheck, initcheck and racecheck.

The :class:`Sanitizer` sits behind two hook points, both a single
``is not None`` check on the hot paths:

* :class:`~repro.gpusim.memory.DeviceMemory` reports allocation events
  (``on_alloc`` / ``on_free``), giving every buffer a *shadow*: its
  valid-bytes bitmap (initcheck) and its free status (memcheck's
  use-after-free attribution by buffer name);
* :class:`~repro.gpusim.simt.SimtEngine` reports every lane-level
  access (``on_access``) and every instruction-block boundary
  (``on_step_end``), which is the racecheck window — the simulator's
  "tick" is the unit inside which the hardware gives no ordering
  guarantee between warps.

Checker semantics (see ``docs/sanitizer.md`` for the full catalog):

* **memcheck** — out-of-bounds index (``oob-read`` / ``oob-write`` /
  ``oob-atomic``), use of a freed :class:`DeviceBuffer`
  (``use-after-free``), and misaligned base addresses
  (``misaligned``, possible only for raw views built outside the
  256-byte-aligned allocator).
* **initcheck** — a read (or atomic read-modify-write) touching
  elements of an ``alloc_empty`` region that no prior ``write`` /
  ``atomic_add`` covered, tracked via a per-buffer valid bitmap (one
  flag per element — element granularity *is* byte granularity here
  because every engine access moves whole elements).
* **racecheck** — within one step, the same element written
  non-atomically by two different warps (``write-write-race``) or
  written by one warp and read by another (``read-write-race``).
  ``atomic_add`` traffic is exempt: atomics are the sanctioned path.

Modes: ``"report"`` records findings and lets execution continue
(out-of-bounds indices are clamped so the functional gather stays
defined — the simulated analogue of reading garbage); ``"strict"``
raises the matching typed error from :mod:`repro.errors` at the first
finding.  Findings deduplicate per (checker, kind, buffer) — the first
occurrence keeps full step/warp/lane attribution, repeats bump its
``occurrences`` counter (the compute-sanitizer per-PC idiom).

Identity contract: no hook mutates the engine's
:class:`~repro.gpusim.simt.KernelReport`, so clean kernels produce
bit-identical counters with sanitize on or off — enforced by
``repro-bench sanitize`` and ``tests/test_sanitize.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import (InitcheckError, KernelFault, MemcheckError,
                          RacecheckError, ReproError, SanitizerError)
from repro.gpusim.memory import DeviceBuffer

#: Valid sanitize modes of :class:`GpuOptions.sanitize` ("off" disables
#: the layer entirely — no Sanitizer is constructed).
SANITIZE_MODES = ("off", "report", "strict")

#: The three checkers, compute-sanitizer naming.
CHECKERS = ("memcheck", "initcheck", "racecheck")

_ERROR_OF = {"memcheck": MemcheckError,
             "initcheck": InitcheckError,
             "racecheck": RacecheckError}

#: Bits reserved for the warp id when packing (element, warp) race keys.
_WARP_BITS = 22


@dataclass
class SanitizerReport:
    """One structured finding.

    Attributes
    ----------
    checker : str
        ``"memcheck"`` / ``"initcheck"`` / ``"racecheck"``.
    kind : str
        Violation class, e.g. ``"oob-read"``, ``"use-after-free"``,
        ``"uninit-read"``, ``"write-write-race"``.
    buffer : str
        Name of the :class:`DeviceBuffer` involved.
    step : int
        Kernel step index (instruction blocks completed when the access
        was issued — the engine's ``end_step`` counter).
    step_kind : str or None
        Instruction-block kind of that step (``"setup"``, ``"merge"``,
        ...), stamped retroactively when the block ends.
    warp, lane : int
        The offending warp and its global lane id.
    index : int
        Element index within the buffer.
    address : int
        Simulated device byte address of the element.
    count : int
        Elements involved in this access's violation.
    occurrences : int
        Times this (checker, kind, buffer) fired in total (only the
        first occurrence is stored).
    detail : str
        Extra human-readable context (e.g. the second warp of a race).
    """

    checker: str
    kind: str
    buffer: str
    step: int
    step_kind: str | None
    warp: int
    lane: int
    index: int
    address: int
    count: int = 1
    occurrences: int = 1
    detail: str = ""

    def message(self) -> str:
        where = (f"step {self.step}"
                 + (f" ({self.step_kind})" if self.step_kind else ""))
        text = (f"{self.checker}: {self.kind} on buffer {self.buffer!r} "
                f"at {where}, warp {self.warp} lane {self.lane}, "
                f"index {self.index} (addr 0x{self.address:x})")
        if self.count > 1:
            text += f", {self.count} elements"
        if self.detail:
            text += f" — {self.detail}"
        if self.occurrences > 1:
            text += f" [x{self.occurrences}]"
        return text

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.message()


class _Shadow:
    """Sanitizer-side state of one device buffer."""

    __slots__ = ("buf", "name", "valid", "freed_at_step", "misalign_seen")

    def __init__(self, buf: DeviceBuffer, initialized: bool):
        self.buf = buf
        self.name = buf.name
        # ``None`` means "assume fully valid": buffers placed with real
        # payload (``alloc``) or adopted lazily (allocated before the
        # sanitizer attached) never false-positive.
        self.valid: np.ndarray | None
        self.valid = None if initialized else np.zeros(len(buf.data), bool)
        self.freed_at_step: int | None = None
        self.misalign_seen = False


class _RaceWindow:
    """Per-buffer access log of the current step (racecheck)."""

    __slots__ = ("writes", "reads")

    def __init__(self):
        self.writes: list[tuple[np.ndarray, np.ndarray]] = []
        self.reads: list[tuple[np.ndarray, np.ndarray]] = []


class Sanitizer:
    """Dynamic checker state for one pipeline run.

    Parameters
    ----------
    mode : str
        ``"report"`` (record and continue) or ``"strict"`` (raise the
        typed :mod:`repro.errors` exception at the first finding).
    memcheck, initcheck, racecheck : bool
        Individual checker toggles (all on by default, like running
        ``compute-sanitizer`` with every tool).
    max_reports : int
        Stored-findings cap; further findings only bump ``dropped``.
    """

    def __init__(self, mode: str = "report", *, memcheck: bool = True,
                 initcheck: bool = True, racecheck: bool = True,
                 max_reports: int = 200):
        if mode not in ("report", "strict"):
            raise ReproError(
                f"sanitizer mode must be 'report' or 'strict', got {mode!r}")
        self.mode = mode
        self.memcheck = memcheck
        self.initcheck = initcheck
        self.racecheck = racecheck
        self.max_reports = max_reports
        self.reports: list[SanitizerReport] = []
        self.dropped = 0
        self.step = 0
        self.warp_size = 32
        self._shadows: dict[int, _Shadow] = {}
        self._dedup: dict[tuple, SanitizerReport] = {}
        self._window: dict[int, _RaceWindow] = {}
        self._pending_kind: list[SanitizerReport] = []

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #

    def bind_engine(self, engine) -> None:
        """Adopt the engine's (possibly simulated) warp size for warp
        attribution; called by ``SimtEngine.__init__``."""
        self.warp_size = engine.warp_size

    def counts(self) -> dict[str, int]:
        """Findings per checker (occurrences, not just stored reports)."""
        out = {c: 0 for c in CHECKERS}
        for rep in self.reports:
            out[rep.checker] += rep.occurrences
        return out

    @property
    def findings(self) -> int:
        return sum(self.counts().values()) + self.dropped

    # ------------------------------------------------------------------ #
    # memory hooks
    # ------------------------------------------------------------------ #

    def on_alloc(self, buf: DeviceBuffer, initialized: bool) -> None:
        self._shadows[id(buf)] = _Shadow(buf, initialized)

    def on_free(self, buf: DeviceBuffer) -> None:
        shadow = self._shadows.get(id(buf))
        if shadow is None:
            shadow = self._adopt(buf)
        shadow.freed_at_step = self.step
        self._window.pop(id(buf), None)

    def _adopt(self, buf: DeviceBuffer) -> _Shadow:
        """Register a buffer first seen mid-run (allocated before the
        sanitizer attached, or a raw view): assumed initialized."""
        shadow = _Shadow(buf, initialized=True)
        self._shadows[id(buf)] = shadow
        return shadow

    # ------------------------------------------------------------------ #
    # engine hooks
    # ------------------------------------------------------------------ #

    def on_access(self, buf: DeviceBuffer, indices: np.ndarray,
                  thread_ids: np.ndarray, op: str) -> np.ndarray:
        """Check one lane-level access batch; returns the index array the
        engine should proceed with (clamped in report mode if any index
        was out of bounds, otherwise the input unchanged)."""
        shadow = self._shadows.get(id(buf))
        if shadow is None:
            shadow = self._adopt(buf)
        indices = np.asarray(indices)
        tids = np.asarray(thread_ids)
        size = len(buf.data)

        # ---- memcheck -------------------------------------------------- #
        if buf.freed or shadow.freed_at_step is not None:
            freed_at = shadow.freed_at_step
            self._emit("memcheck", "use-after-free", shadow,
                       pos=0, indices=indices, tids=tids,
                       detail=(f"freed at step {freed_at}"
                               if freed_at is not None else "freed"))
        if not shadow.misalign_seen and buf.device_addr % max(buf.itemsize, 1):
            shadow.misalign_seen = True
            self._emit("memcheck", "misaligned", shadow,
                       pos=0, indices=indices, tids=tids,
                       detail=(f"base address 0x{buf.device_addr:x} not "
                               f"aligned to itemsize {buf.itemsize}"))
        lo = int(indices.min())
        hi = int(indices.max())
        if lo < 0 or hi >= size:
            if not self.memcheck:
                # Checker disabled: behave like the bare engine.
                raise KernelFault(
                    f"out-of-bounds {op} on {buf.name!r}: index range "
                    f"[{lo}, {hi}] outside [0, {size})")
            bad = (indices < 0) | (indices >= size)
            pos = int(np.flatnonzero(bad)[0])
            self._emit("memcheck", f"oob-{op}", shadow,
                       pos=pos, indices=indices, tids=tids,
                       count=int(bad.sum()),
                       detail=f"index range [{lo}, {hi}] outside [0, {size})")
            # Report mode continues with a defined (clamped) access — the
            # simulated analogue of the hardware reading garbage.
            indices = np.clip(indices, 0, max(size - 1, 0))

        # ---- initcheck ------------------------------------------------- #
        if shadow.valid is not None:
            if self.initcheck and op in ("read", "atomic"):
                ok = shadow.valid[indices]
                if not ok.all():
                    pos = int(np.flatnonzero(~ok)[0])
                    self._emit("initcheck", "uninit-read", shadow,
                               pos=pos, indices=indices, tids=tids,
                               count=int((~ok).sum()),
                               detail="allocated with alloc_empty, never "
                                      "written")
            if op in ("write", "atomic"):
                shadow.valid[indices] = True

        # ---- racecheck ------------------------------------------------- #
        if self.racecheck and op != "atomic":
            window = self._window.get(id(buf))
            if window is None:
                window = self._window[id(buf)] = _RaceWindow()
            record = (indices.astype(np.int64, copy=True),
                      tids.astype(np.int64) // self.warp_size)
            (window.writes if op == "write" else window.reads).append(record)

        return indices

    def on_step_end(self, kind: str) -> None:
        """Close the racecheck window of one instruction block and stamp
        the block kind onto findings recorded during it."""
        if self.racecheck and self._window:
            # Flush before stamping: race findings belong to the block
            # that just ended and must pick up its kind too.
            for key, window in self._window.items():
                if window.writes:
                    shadow = self._shadows.get(key)
                    if shadow is not None:
                        self._flush_races(shadow, window)
            self._window.clear()
        for rep in self._pending_kind:
            rep.step_kind = kind
        self._pending_kind.clear()
        self.step += 1

    # ------------------------------------------------------------------ #
    # racecheck analysis
    # ------------------------------------------------------------------ #

    def _flush_races(self, shadow: _Shadow, window: _RaceWindow) -> None:
        w_idx = np.concatenate([w[0] for w in window.writes])
        w_warp = np.concatenate([w[1] for w in window.writes])
        # Pack (element, warp) so one sort finds both duplicate levels.
        key = (w_idx << _WARP_BITS) | w_warp
        order = np.argsort(key, kind="stable")
        uniq = key[order][np.concatenate(
            ([True], np.diff(key[order]) != 0))] if len(key) else key
        elems = uniq >> _WARP_BITS
        if len(elems) > 1:
            dup = np.flatnonzero(elems[1:] == elems[:-1])
            if len(dup):
                e = int(elems[dup[0]])
                warps = np.unique(uniq[(elems == e)] & ((1 << _WARP_BITS) - 1))
                pos = int(np.flatnonzero(w_idx == e)[0])
                self._emit(
                    "racecheck", "write-write-race", shadow,
                    pos=pos, indices=w_idx, tids=w_warp * self.warp_size,
                    detail=f"warps {sorted(int(w) for w in warps[:4])} all "
                           f"wrote element {e} without atomic_add")
        if not window.reads:
            return
        writers: dict[int, int] = {}
        multi = set()
        for e, w in zip(w_idx.tolist(), w_warp.tolist()):
            prev = writers.setdefault(e, w)
            if prev != w:
                multi.add(e)
        r_idx = np.concatenate([r[0] for r in window.reads])
        r_warp = np.concatenate([r[1] for r in window.reads])
        written = np.isin(r_idx, w_idx)
        for pos in np.flatnonzero(written):
            e = int(r_idx[pos])
            rw = int(r_warp[pos])
            if e in multi or writers[e] != rw:
                self._emit(
                    "racecheck", "read-write-race", shadow,
                    pos=int(pos), indices=r_idx,
                    tids=r_warp * self.warp_size,
                    detail=f"warp {rw} read element {e} while warp "
                           f"{writers[e]} wrote it in the same step")
                break

    # ------------------------------------------------------------------ #
    # emission
    # ------------------------------------------------------------------ #

    def _emit(self, checker: str, kind: str, shadow: _Shadow, *,
              pos: int, indices: np.ndarray, tids: np.ndarray,
              count: int = 1, detail: str = "") -> None:
        dedup_key = (checker, kind, shadow.name)
        first = self._dedup.get(dedup_key)
        if first is not None:
            first.occurrences += 1
            if self.mode == "strict":
                raise _ERROR_OF[checker](first.message(), report=first)
            return
        index = int(indices[pos]) if len(indices) else 0
        tid = int(tids[pos]) if len(tids) else 0
        rep = SanitizerReport(
            checker=checker, kind=kind, buffer=shadow.name,
            step=self.step, step_kind=None,
            warp=tid // self.warp_size, lane=tid,
            index=index,
            address=shadow.buf.device_addr + index * shadow.buf.itemsize,
            count=count, detail=detail)
        self._dedup[dedup_key] = rep
        if len(self.reports) < self.max_reports:
            self.reports.append(rep)
            self._pending_kind.append(rep)
        else:
            self.dropped += 1
        if self.mode == "strict":
            raise _ERROR_OF[checker](rep.message(), report=rep)

    # ------------------------------------------------------------------ #

    def format_report(self) -> str:
        """Human-readable findings sheet (``==SANITIZE==`` idiom)."""
        counts = self.counts()
        head = (f"==SANITIZE== mode={self.mode} "
                + " ".join(f"{c}={counts[c]}" for c in CHECKERS))
        lines = [head]
        for rep in self.reports:
            lines.append("  " + rep.message())
        if self.dropped:
            lines.append(f"  ... {self.dropped} further findings dropped "
                         f"(max_reports={self.max_reports})")
        return "\n".join(lines)

"""repro.serve — a multi-tenant triangle-counting service over a
simulated GPU fleet.

The one-shot pipeline (:func:`repro.core.forward_gpu.gpu_count_triangles`)
answers a single query; this package turns it into a *service*: a job
queue with priorities, deadlines and memory-aware admission control, a
load-aware scheduler with fault retry, a byte-budgeted cache of
preprocessed graphs (the 70–90% of run time the paper's Section III-E
measures), and a deterministic trace generator + metrics sheet for the
``repro-bench serve`` subcommand.
"""

from repro.serve.cache import (CacheEntry, CacheStats, PreprocessCache,
                               graph_fingerprint, preprocessed_nbytes)
from repro.serve.fleet import DEFAULT_CACHE_FRACTION, Fleet, FleetDevice
from repro.serve.metrics import ServeReport
from repro.serve.plane import (ApproxAnswer, Batcher, ControlPlane,
                               DegradedTier, PlaneConfig, ReplicaManager)
from repro.serve.queue import (DONE, LOST, PATH_APPROX, PATH_DISTRIBUTED,
                               PATH_GPU, PENDING, SHED, SHED_DEADLINE,
                               SHED_FLEET_DEAD, SHED_NO_CAPACITY,
                               TIER_APPROX, TIER_EXACT, JobQueue, ServeJob,
                               ShedResponse, admissible_devices,
                               estimate_working_set_bytes, fits_device)
from repro.serve.scheduler import FleetScheduler, serve_trace
from repro.serve.tuned import TunedConfigs, TunedEntry
from repro.serve.workload import (TraceConfig, build_graph_pool,
                                  generate_trace, size_fleet_memory)

__all__ = [
    "CacheEntry", "CacheStats", "PreprocessCache", "graph_fingerprint",
    "preprocessed_nbytes",
    "DEFAULT_CACHE_FRACTION", "Fleet", "FleetDevice",
    "ServeReport",
    "ApproxAnswer", "Batcher", "ControlPlane", "DegradedTier",
    "PlaneConfig", "ReplicaManager",
    "PENDING", "DONE", "LOST", "SHED",
    "PATH_GPU", "PATH_DISTRIBUTED", "PATH_APPROX",
    "TIER_EXACT", "TIER_APPROX",
    "SHED_DEADLINE", "SHED_FLEET_DEAD", "SHED_NO_CAPACITY",
    "JobQueue", "ServeJob", "ShedResponse", "admissible_devices",
    "estimate_working_set_bytes", "fits_device",
    "FleetScheduler", "serve_trace",
    "TunedConfigs", "TunedEntry",
    "TraceConfig", "build_graph_pool", "generate_trace",
    "size_fleet_memory",
]

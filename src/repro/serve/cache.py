"""Keyed preprocessed-graph cache (per device, byte-budgeted LRU).

The paper's pipeline spends most of its time *before* the counting
kernel — the 8-step preprocessing phase is 70–90% of the measurement
window on the evaluation graphs (Section III-E reports preprocessing
fractions up to 0.76).  A service that answers repeated queries over the
same graphs therefore wins far more from keeping the preprocessed
structures resident than from any kernel micro-optimization.

An entry is keyed by ``(graph fingerprint, GpuOptions.cache_key())`` —
two jobs share an entry only when they would produce byte-identical
device-resident structures.  Entries are charged against the owning
device's global memory: the cache's resident bytes are subtracted from
the capacity job working sets may use (see
:meth:`repro.serve.fleet.FleetDevice.job_memory`), and the LRU tail is
evicted whenever the configured byte budget would overflow.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.options import GpuOptions
from repro.graphs.edgearray import EdgeArray
from repro.gpusim.memory import aligned_nbytes
from repro.types import INDEX_DTYPE, VERTEX_DTYPE


def graph_fingerprint(graph: EdgeArray) -> str:
    """Content hash of a graph: invariant under arc order, sensitive to
    the vertex set and edge set (the same identity :meth:`EdgeArray.__eq__`
    compares)."""
    h = hashlib.sha1()
    h.update(np.int64(graph.num_nodes).tobytes())
    h.update(np.sort(graph.as_packed()).tobytes())
    return h.hexdigest()


def preprocessed_nbytes(num_nodes: int, num_forward_arcs: int,
                        options: GpuOptions = GpuOptions()) -> int:
    """Device bytes a cached :class:`~repro.core.preprocess
    .PreprocessResult` occupies between jobs.

    Mirrors ``_finalize_layout``: the node array plus either the SoA
    columns (``adj`` is padded by one sentinel) or the interleaved AoS
    buffer.
    """
    vertex = np.dtype(VERTEX_DTYPE).itemsize
    index = np.dtype(INDEX_DTYPE).itemsize
    total = aligned_nbytes(index * (num_nodes + 1))            # node array
    if options.unzip:
        total += aligned_nbytes(vertex * (num_forward_arcs + 1))  # adj
        total += aligned_nbytes(vertex * max(num_forward_arcs, 1))  # keys
    else:
        total += aligned_nbytes(vertex * (2 * num_forward_arcs + 2))
    return total


@dataclass
class CacheEntry:
    """One resident preprocessed graph.

    Besides the byte charge, the entry memoizes what a hit needs to
    answer without re-running preprocessing: the exact triangle count
    (the simulator is deterministic, so it is the count any re-run would
    produce) and the simulated milliseconds of the post-preprocessing
    phases (kernel + reduce + D2H), which is the service time of a hit.
    """

    key: tuple
    nbytes: int
    triangles: int
    hit_service_ms: float
    inserted_ms: float
    last_used_ms: float
    hits: int = 0
    #: pinned entries (replica-group residents) are exempt from LRU
    #: eviction; :meth:`PreprocessCache.clear` still drops them.
    pinned: bool = False


@dataclass
class CacheStats:
    """Lookup counters (the serving metrics sheet reads these)."""

    lookups: int = 0
    hits: int = 0
    insertions: int = 0
    evictions: int = 0
    rejected: int = 0            # entries larger than the whole budget

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class PreprocessCache:
    """Byte-budgeted LRU map of preprocessed graphs.

    Parameters
    ----------
    budget_bytes : int
        Maximum resident bytes; inserting past it evicts least-recently
        used entries first.  An entry larger than the whole budget is
        refused (recorded in :attr:`stats.rejected`) rather than allowed
        to flush the cache for a single tenant.
    """

    def __init__(self, budget_bytes: int):
        if budget_bytes < 0:
            raise ValueError(f"budget must be >= 0, got {budget_bytes}")
        self.budget_bytes = int(budget_bytes)
        self._entries: OrderedDict[tuple, CacheEntry] = OrderedDict()
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #

    @property
    def bytes_used(self) -> int:
        return sum(e.nbytes for e in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def entries(self) -> list[CacheEntry]:
        """LRU → MRU order (eviction order)."""
        return list(self._entries.values())

    # ------------------------------------------------------------------ #

    def lookup(self, key: tuple, now_ms: float) -> CacheEntry | None:
        """Return the entry for ``key`` (refreshing its recency), or None."""
        self.stats.lookups += 1
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._entries.move_to_end(key)
        entry.last_used_ms = now_ms
        entry.hits += 1
        self.stats.hits += 1
        return entry

    def insert(self, key: tuple, nbytes: int, triangles: int,
               hit_service_ms: float, now_ms: float) -> list[CacheEntry]:
        """Insert (or refresh) an entry, evicting LRU entries as needed.

        Returns the evicted entries so the owner can log / uncharge them.
        """
        if key in self._entries:
            self._entries.move_to_end(key)
            entry = self._entries[key]
            entry.last_used_ms = now_ms
            return []
        if nbytes > self.budget_bytes:
            self.stats.rejected += 1
            return []
        evicted: list[CacheEntry] = []
        overflow = self.bytes_used + nbytes - self.budget_bytes
        if overflow > 0:
            # Pick victims among *unpinned* entries, LRU first.  If the
            # pinned residents alone leave no room, refuse the insert —
            # replica pins must never be flushed by a passing tenant.
            victims: list[tuple] = []
            freed = 0
            for k, e in self._entries.items():
                if e.pinned:
                    continue
                victims.append(k)
                freed += e.nbytes
                if freed >= overflow:
                    break
            if freed < overflow:
                self.stats.rejected += 1
                return []
            for k in victims:
                evicted.append(self._entries.pop(k))
                self.stats.evictions += 1
        self._entries[key] = CacheEntry(
            key=key, nbytes=int(nbytes), triangles=int(triangles),
            hit_service_ms=float(hit_service_ms),
            inserted_ms=now_ms, last_used_ms=now_ms)
        self.stats.insertions += 1
        return evicted

    def pin(self, key: tuple) -> bool:
        """Exempt an entry from LRU eviction (replica-group residency).
        Returns False when the key is not resident."""
        entry = self._entries.get(key)
        if entry is None:
            return False
        entry.pinned = True
        return True

    def unpin(self, key: tuple) -> bool:
        """Return a pinned entry to normal LRU lifetime."""
        entry = self._entries.get(key)
        if entry is None:
            return False
        entry.pinned = False
        return True

    @property
    def pinned_bytes(self) -> int:
        return sum(e.nbytes for e in self._entries.values() if e.pinned)

    def invalidate(self, key: tuple) -> bool:
        """Drop one entry (e.g. the graph's owner updated it)."""
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        self._entries.clear()

    def __repr__(self) -> str:
        return (f"PreprocessCache(entries={len(self)}, "
                f"bytes={self.bytes_used}/{self.budget_bytes})")

"""The simulated device fleet the serving layer schedules over.

A :class:`Fleet` is a heterogeneous pool of :class:`FleetDevice` wrappers
around the :mod:`repro.gpusim.device` catalog.  Each fleet device owns

* a per-device :class:`~repro.serve.cache.PreprocessCache` whose resident
  bytes are *charged against the device's global memory* — jobs placed on
  the device run inside a :class:`~repro.gpusim.memory.DeviceMemory`
  whose capacity is what the cache leaves free;
* a simulated availability clock (``busy_until_ms``) the scheduler uses
  for load-aware placement;
* an injectable failure mode: :meth:`Fleet.inject_failure` marks a
  device as failing permanently at a simulated timestamp.  A job whose
  execution window straddles the failure faults mid-run and is retried
  elsewhere by the scheduler (with exponential backoff).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ReproError
from repro.gpusim.device import DEVICES, DeviceSpec
from repro.gpusim.memory import DeviceMemory
from repro.serve.cache import PreprocessCache

#: Fraction of a device's global memory the preprocessed-graph cache may
#: occupy by default.  The rest stays free for job working sets.
DEFAULT_CACHE_FRACTION = 0.25


@dataclass
class FleetDevice:
    """One simulated device in the pool."""

    index: int
    key: str
    spec: DeviceSpec
    cache: PreprocessCache
    #: simulated time at which the device finishes its current work.
    busy_until_ms: float = 0.0
    #: simulated time at which an injected failure takes the device down
    #: permanently (None = healthy forever).
    fail_at_ms: float | None = None
    #: accumulated busy simulated milliseconds (utilization numerator).
    busy_ms: float = 0.0
    jobs_completed: int = 0
    faults: int = 0

    # ------------------------------------------------------------------ #

    @property
    def free_bytes(self) -> int:
        """Global memory not held by cache residents — the capacity a
        job's working set may use."""
        return self.spec.memory_bytes - self.cache.bytes_used

    def job_memory(self) -> DeviceMemory:
        """A fresh :class:`DeviceMemory` for one job, capacity-limited to
        what the cache leaves free (this is how cache residency is
        charged against device memory)."""
        return DeviceMemory(self.spec.with_memory(max(self.free_bytes, 1)))

    def outstanding_ms(self, t_ms: float) -> float:
        """Simulated work still in flight on the device at ``t_ms`` —
        the control plane's least-outstanding-work balancing key."""
        return max(self.busy_until_ms - t_ms, 0.0)

    def alive_at(self, t_ms: float) -> bool:
        return self.fail_at_ms is None or t_ms < self.fail_at_ms

    def fails_within(self, start_ms: float, end_ms: float) -> bool:
        """Whether the injected failure lands inside ``(start, end]``."""
        return (self.fail_at_ms is not None
                and start_ms < self.fail_at_ms <= end_ms)

    @property
    def throughput_proxy(self) -> float:
        """Relative speed estimate for heterogeneous tie-breaking
        (cores × clock — crude, but only used to order idle devices)."""
        return self.spec.num_cores * self.spec.clock_ghz

    def utilization(self, makespan_ms: float) -> float:
        return self.busy_ms / makespan_ms if makespan_ms > 0 else 0.0

    def __repr__(self) -> str:
        state = "FAILED" if self.fail_at_ms is not None else "ok"
        return (f"FleetDevice(#{self.index} {self.spec.name!r} {state}, "
                f"free={self.free_bytes}, busy_until={self.busy_until_ms:.3f})")


class Fleet:
    """An ordered pool of fleet devices."""

    def __init__(self, devices: list[FleetDevice]):
        if not devices:
            raise ReproError("a fleet needs at least one device")
        self.devices = devices

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_keys(cls, keys: list[str],
                  memory_bytes: int | None = None,
                  cache_fraction: float = DEFAULT_CACHE_FRACTION) -> "Fleet":
        """Build a fleet from catalog keys (``"gtx980"``, ``"c2050"``,
        ``"nvs5200m"``).

        Parameters
        ----------
        memory_bytes : int, optional
            Override every device's global-memory capacity — the serving
            benches size capacity to the workload the same way the paper
            benches do (see ``repro.bench.runner.scaled_device``), so the
            admission / fallback paths trigger at mini scale.
        cache_fraction : float
            Fraction of (possibly overridden) capacity given to the
            preprocessed-graph cache budget.
        """
        if not (0.0 <= cache_fraction < 1.0):
            raise ReproError(
                f"cache_fraction must be in [0, 1), got {cache_fraction}")
        devices = []
        for i, key in enumerate(keys):
            try:
                spec = DEVICES[key]
            except KeyError:
                known = ", ".join(DEVICES)
                raise ReproError(
                    f"unknown device key {key!r}; known: {known}") from None
            if memory_bytes is not None:
                spec = spec.with_memory(memory_bytes)
            budget = int(spec.memory_bytes * cache_fraction)
            devices.append(FleetDevice(index=i, key=key, spec=spec,
                                       cache=PreprocessCache(budget)))
        return cls(devices)

    @classmethod
    def parse(cls, spec: str, **kwargs) -> "Fleet":
        """Build from a compact CLI string, e.g. ``"gtx980x4"`` or
        ``"gtx980x2,c2050"`` (``<key>[xN]`` comma-separated)."""
        keys: list[str] = []
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            m = re.fullmatch(r"([a-z0-9]+?)(?:x(\d+))?", token)
            if not m:
                raise ReproError(f"bad fleet token {token!r}")
            keys.extend([m.group(1)] * int(m.group(2) or 1))
        return cls.from_keys(keys, **kwargs)

    @classmethod
    def homogeneous(cls, key: str, count: int, **kwargs) -> "Fleet":
        return cls.from_keys([key] * count, **kwargs)

    # ------------------------------------------------------------------ #
    # failure injection
    # ------------------------------------------------------------------ #

    def inject_failure(self, index: int, at_ms: float) -> None:
        """Schedule device ``index`` to fail permanently at ``at_ms``
        (simulated).  Work in flight at that instant faults and is
        retried elsewhere by the scheduler."""
        if not (0 <= index < len(self.devices)):
            raise ReproError(f"no device #{index} in a fleet of {len(self)}")
        if at_ms < 0:
            raise ReproError(f"failure time must be >= 0, got {at_ms}")
        self.devices[index].fail_at_ms = float(at_ms)

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #

    def healthy(self, t_ms: float) -> list[FleetDevice]:
        """Devices alive at simulated time ``t_ms``."""
        return [d for d in self.devices if d.alive_at(t_ms)]

    @property
    def total_memory_bytes(self) -> int:
        return sum(d.spec.memory_bytes for d in self.devices)

    @property
    def cache_stats(self):
        """Aggregated cache counters across the fleet."""
        from repro.serve.cache import CacheStats
        agg = CacheStats()
        for d in self.devices:
            s = d.cache.stats
            agg.lookups += s.lookups
            agg.hits += s.hits
            agg.insertions += s.insertions
            agg.evictions += s.evictions
            agg.rejected += s.rejected
        return agg

    def describe(self) -> str:
        """Short fleet composition label, e.g. ``"4x GTX 980"``."""
        counts: dict[str, int] = {}
        for d in self.devices:
            counts[d.spec.name] = counts.get(d.spec.name, 0) + 1
        return ", ".join(f"{n}x {name}" for name, n in counts.items())

    def __iter__(self):
        return iter(self.devices)

    def __len__(self) -> int:
        return len(self.devices)

    def __getitem__(self, index: int) -> FleetDevice:
        return self.devices[index]

    def __repr__(self) -> str:
        return f"Fleet({self.describe()})"

"""Per-job and fleet-level serving metrics.

Every number here is *simulated* time, produced by the same timing model
the one-shot benches use — the serving layer just aggregates it the way
a production dashboard would: tail latency percentiles over the job
population, queue wait, preprocessing-cache hit rate, per-device
utilization, fault/retry/fallback counters.

The report renders through the :mod:`repro.gpusim.profiler` idiom — a
``==SERVE==`` metric sheet that sits next to the ``==PROF==`` kernel
sheets in CLI output.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

import numpy as np

from repro.serve.fleet import Fleet
from repro.serve.queue import (DONE, LOST, PATH_DISTRIBUTED, SHED, TIER_APPROX,
                               ServeJob)
from repro.utils import human_bytes, human_ms


@dataclass
class ServeReport:
    """Outcome of one trace replay.

    ``jobs`` carry their full per-job record (arrival/start/finish,
    device, path, attempts, cache_hit); the properties aggregate them.
    """

    fleet: Fleet
    jobs: list[ServeJob] = field(default_factory=list)
    cache_enabled: bool = True
    #: device-fault events observed (each costs one attempt + backoff).
    faults: int = 0
    #: jobs that ran the partitioned/distributed path.
    fallbacks: int = 0
    #: host-side wall-clock attribution of the replay's simulator work
    #: (see :mod:`repro.gpusim.hostprof`); ``None`` when not collected.
    host_profiler: object | None = None
    #: total sanitizer findings across all pipeline runs (only nonzero
    #: when jobs carry ``options.sanitize != "off"``; a clean fleet
    #: serves every trace at 0).
    sanitizer_findings: int = 0
    #: a :class:`~repro.serve.plane.ControlPlane` drove this replay.
    plane_enabled: bool = False
    #: device launches that served jobs (batched launches count once).
    launches: int = 0
    #: launches that served >= 2 coalesced jobs, and the jobs they served.
    batched_launches: int = 0
    batched_jobs: int = 0
    #: pinned replica copies the plane installed.
    replications: int = 0

    # ------------------------------------------------------------------ #
    # job populations
    # ------------------------------------------------------------------ #

    @property
    def done(self) -> list[ServeJob]:
        return [j for j in self.jobs if j.status == DONE]

    @property
    def lost(self) -> list[ServeJob]:
        return [j for j in self.jobs if j.status == LOST]

    @property
    def retried(self) -> list[ServeJob]:
        return [j for j in self.jobs if j.attempts > 0]

    @property
    def shed(self) -> list[ServeJob]:
        """Jobs shed without an answer (typed ShedResponse attached)."""
        return [j for j in self.jobs if j.status == SHED]

    @property
    def degraded(self) -> list[ServeJob]:
        """Jobs answered on the approximate tier (done, tier="approx")."""
        return [j for j in self.jobs if j.status == DONE
                and j.tier == TIER_APPROX]

    @property
    def approx_mean_rel_error(self) -> float | None:
        """Mean relative error of degraded answers against the exact
        count, over degraded jobs whose graph also completed exactly in
        this replay (``None`` when no pair exists)."""
        truth = {j.fingerprint: j.triangles for j in self.done
                 if j.tier != TIER_APPROX and j.triangles > 0}
        errs = [abs(j.estimate - truth[j.fingerprint]) / truth[j.fingerprint]
                for j in self.degraded
                if j.fingerprint in truth and j.estimate is not None]
        return float(np.mean(errs)) if errs else None

    @property
    def jobs_per_launch(self) -> float:
        served = len([j for j in self.done if j.path not in
                      (PATH_DISTRIBUTED,) and j.tier != TIER_APPROX])
        return served / self.launches if self.launches else 0.0

    # ------------------------------------------------------------------ #
    # latency / throughput
    # ------------------------------------------------------------------ #

    @property
    def makespan_ms(self) -> float:
        """First arrival → last completion (the replay's wall window)."""
        if not self.jobs:
            return 0.0
        start = min(j.arrival_ms for j in self.jobs)
        end = max((j.finish_ms for j in self.done), default=start)
        end = max(end, max(j.arrival_ms for j in self.jobs))
        return end - start

    @property
    def throughput_jobs_per_s(self) -> float:
        span = self.makespan_ms
        return len(self.done) / (span * 1e-3) if span > 0 else 0.0

    def latency_percentile(self, q: float) -> float:
        lat = [j.latency_ms for j in self.done]
        return float(np.percentile(lat, q)) if lat else 0.0

    @property
    def p50_ms(self) -> float:
        return self.latency_percentile(50)

    @property
    def p95_ms(self) -> float:
        return self.latency_percentile(95)

    @property
    def p99_ms(self) -> float:
        return self.latency_percentile(99)

    @property
    def mean_wait_ms(self) -> float:
        waits = [j.wait_ms for j in self.done]
        return float(np.mean(waits)) if waits else 0.0

    @property
    def total_service_ms(self) -> float:
        """Simulated device time spent serving completed jobs — the
        quantity the preprocessing cache shrinks (queue wait excluded)."""
        return sum(j.finish_ms - j.start_ms for j in self.done)

    @property
    def fast_path_service_ms(self) -> float:
        """Service time of single-device jobs only — the population the
        preprocessing cache can actually help (distributed fallback runs
        re-partition every time and never hit the cache)."""
        return sum(j.finish_ms - j.start_ms for j in self.done
                   if j.path != PATH_DISTRIBUTED)

    # ------------------------------------------------------------------ #
    # cache / deadlines
    # ------------------------------------------------------------------ #

    @property
    def cache_hit_rate(self) -> float:
        """Preprocessing-cache hit fraction over completed fast-path jobs."""
        gpu_jobs = [j for j in self.done if j.path != PATH_DISTRIBUTED]
        if not gpu_jobs:
            return 0.0
        return sum(j.cache_hit for j in gpu_jobs) / len(gpu_jobs)

    @property
    def deadline_misses(self) -> int:
        return sum(not j.met_deadline for j in self.jobs)

    # ------------------------------------------------------------------ #
    # report
    # ------------------------------------------------------------------ #

    def summary(self) -> str:
        return (f"{len(self.done)}/{len(self.jobs)} jobs, "
                f"{self.throughput_jobs_per_s:.1f} jobs/s, "
                f"p50/p95/p99 {human_ms(self.p50_ms)} / "
                f"{human_ms(self.p95_ms)} / {human_ms(self.p99_ms)}, "
                f"cache hits {self.cache_hit_rate:.0%}, "
                f"{self.fallbacks} fallback, {self.faults} faults, "
                f"{len(self.shed)} shed, {len(self.lost)} lost")

    def jobs_csv(self) -> str:
        """Per-job records, machine-readable (the ``--csv`` dump)."""
        lines = ["job_id,arrival_ms,start_ms,finish_ms,priority,status,"
                 "path,device,cache_hit,attempts,triangles,tier,shed_reason"]
        for j in sorted(self.jobs, key=lambda j: j.job_id):
            reason = j.shed.reason if j.shed is not None else ""
            lines.append(
                f"{j.job_id},{j.arrival_ms:.3f},{j.start_ms:.3f},"
                f"{j.finish_ms:.3f},{j.priority},{j.status},{j.path},"
                f"{j.device_index},{int(j.cache_hit)},{j.attempts},"
                f"{j.triangles},{j.tier},{reason}")
        return "\n".join(lines) + "\n"

    def format_report(self) -> str:
        """The ``==SERVE==`` metric sheet (profiler idiom)."""
        out = io.StringIO()
        out.write(f"==SERVE== fleet of {len(self.fleet)} "
                  f"({self.fleet.describe()}): "
                  f"{len(self.done)}/{len(self.jobs)} jobs over "
                  f"{human_ms(self.makespan_ms)} simulated"
                  f"{'' if self.cache_enabled else '  [cache disabled]'}\n")

        def metric(label, value):
            out.write(f"  {label:<38} {value}\n")

        metric("throughput", f"{self.throughput_jobs_per_s:.2f} jobs/s")
        metric("latency p50 / p95 / p99",
               f"{human_ms(self.p50_ms)} / {human_ms(self.p95_ms)} / "
               f"{human_ms(self.p99_ms)}")
        metric("mean queue wait", human_ms(self.mean_wait_ms))
        metric("total device service time", human_ms(self.total_service_ms))
        gpu_done = [j for j in self.done if j.path != PATH_DISTRIBUTED]
        hits = sum(j.cache_hit for j in gpu_done)
        metric("preprocessing cache hit rate",
               f"{self.cache_hit_rate:.1%} ({hits} / {len(gpu_done)})")
        stats = self.fleet.cache_stats
        metric("cache insert / evict / reject",
               f"{stats.insertions} / {stats.evictions} / {stats.rejected}")
        metric("fast path / distributed fallback",
               f"{len(gpu_done)} / {self.fallbacks}")
        metric("device faults (jobs retried)",
               f"{self.faults} ({len(self.retried)})")
        metric("deadline misses", f"{self.deadline_misses}")
        metric("lost jobs", f"{len(self.lost)}")
        metric("sanitizer findings", f"{self.sanitizer_findings}")
        if self.plane_enabled:
            metric("shared launches (jobs / launch)",
                   f"{self.batched_launches} batched, "
                   f"{self.batched_jobs} jobs coalesced, "
                   f"{self.jobs_per_launch:.2f} jobs/launch")
            metric("replica copies pinned", f"{self.replications}")
            err = self.approx_mean_rel_error
            metric("shed / degraded-tier answers",
                   f"{len(self.shed)} / {len(self.degraded)}"
                   + (f" (mean rel err {err:.1%})" if err is not None
                      else ""))
        span = self.makespan_ms
        for dev in self.fleet:
            state = ("FAILED @ " + human_ms(dev.fail_at_ms)
                     if dev.fail_at_ms is not None else "ok")
            metric(f"device #{dev.index} {dev.spec.name} [{state}]",
                   f"{dev.utilization(span):.1%} util, "
                   f"{dev.jobs_completed} jobs, cache "
                   f"{human_bytes(dev.cache.bytes_used)} in "
                   f"{len(dev.cache)} entries")
        if self.host_profiler is not None and self.host_profiler.phases:
            from repro.gpusim.hostprof import format_host_profile
            out.write(format_host_profile(
                self.host_profiler,
                header="  host simulator wall-clock (this replay):"))
        return out.getvalue()

"""repro.serve.plane — the serving control plane.

Sits between the :class:`~repro.serve.queue.JobQueue` and the
:class:`~repro.serve.scheduler.FleetScheduler`:

``queue → plane (admission / batcher / replicas) → scheduler → runtime``

Four cooperating components: replica groups pin hot preprocessed graphs
on k devices, continuous batching coalesces same-graph jobs into shared
launches, SLO-aware admission sheds jobs the wait model proves doomed
(with a typed :class:`~repro.serve.queue.ShedResponse`), and the
degraded tier answers shed jobs approximately — ``(estimate,
error_bound, tier="approx")`` — via the existing DOULION / birthday
estimators.  Install with ``serve_trace(..., plane=ControlPlane())``;
``plane=None`` reproduces the seed scheduler exactly.
"""

from repro.serve.plane.admission import (COLD_MODEL_PASSES,
                                         AdmissionController,
                                         ServiceEstimator)
from repro.serve.plane.batcher import Batcher
from repro.serve.plane.control import ControlPlane, PlaneConfig
from repro.serve.plane.degraded import (APPROX_METHODS, ApproxAnswer,
                                        DegradedTier)
from repro.serve.plane.replicas import ReplicaManager, ResidentEntry

__all__ = [
    "AdmissionController", "ServiceEstimator", "COLD_MODEL_PASSES",
    "Batcher",
    "ControlPlane", "PlaneConfig",
    "APPROX_METHODS", "ApproxAnswer", "DegradedTier",
    "ReplicaManager", "ResidentEntry",
]

"""SLO-aware admission: predict queue wait, shed only the doomed.

Two pieces:

* :class:`ServiceEstimator` — per-cache-key service-time predictions.
  Cold keys get a roofline-flavored bound (H2D of the working set at
  PCIe bandwidth plus a streaming term over the preprocessing passes at
  peak DRAM bandwidth — deliberately conservative); once a key has run,
  the observed simulated service replaces the model (the simulator is
  deterministic, so one observation is exact for that path).  Hit and
  miss services are tracked separately: a key resident in some healthy
  device's cache predicts at its hit cost.

* :class:`AdmissionController` — a greedy forecast of the ready queue:
  walk jobs in pop order, assign each to the earliest-available healthy
  device, and predict its finish.  A job whose predicted finish exceeds
  its effective deadline (its own, or the plane's default SLO for
  deadline-less jobs) is *doomed* and returned with a typed
  :class:`~repro.serve.queue.ShedResponse`.  By construction the
  controller never sheds a job the wait model predicts can meet its
  deadline — a property-test invariant, not a comment.
"""

from __future__ import annotations

import heapq

from repro.serve.fleet import Fleet, FleetDevice
from repro.serve.queue import (SHED_DEADLINE, JobQueue, ServeJob,
                               ShedResponse, estimate_working_set_bytes)

#: Streaming passes the cold-start model charges over the working set
#: (the 8 preprocessing steps of Section III-B; an overestimate on
#: cache hits, which is the conservative direction for admission).
COLD_MODEL_PASSES = 8.0


class ServiceEstimator:
    """Predicts one job's device service time in simulated ms."""

    def __init__(self):
        self._full: dict[tuple, float] = {}
        self._hit: dict[tuple, float] = {}

    # -- observations -------------------------------------------------- #

    def observe_full(self, key: tuple, ms: float) -> None:
        self._full[key] = ms

    def observe_hit(self, key: tuple, ms: float) -> None:
        self._hit[key] = ms

    # -- prediction ---------------------------------------------------- #

    def cold_estimate_ms(self, job: ServeJob, device: FleetDevice) -> float:
        """Roofline-flavored bound for a never-seen key."""
        ws = estimate_working_set_bytes(job.graph, job.options, device.spec)
        h2d_ms = ws / (device.spec.pcie_gbs * 1e9) * 1e3
        stream_ms = (ws * COLD_MODEL_PASSES
                     / (device.spec.peak_bandwidth_gbs * 1e9) * 1e3)
        return h2d_ms + stream_ms

    def predict_ms(self, job: ServeJob, fleet: Fleet, t_ms: float) -> float:
        key = job.cache_key()
        cached = any(key in d.cache for d in fleet.healthy(t_ms))
        if cached and key in self._hit:
            return self._hit[key]
        if key in self._full:
            return self._full[key]
        healthy = fleet.healthy(t_ms)
        if not healthy:
            return 0.0
        return self.cold_estimate_ms(job, healthy[0])


class AdmissionController:
    """Greedy wait-model forecast over the ready queue.

    Parameters
    ----------
    estimator : ServiceEstimator
        Shared with the rest of the control plane.
    default_slo_ms : float, optional
        Implicit deadline slack for jobs arriving without one.  ``None``
        leaves deadline-less jobs exempt from shedding (they can queue
        without bound, like the seed scheduler).
    """

    def __init__(self, estimator: ServiceEstimator,
                 default_slo_ms: float | None = None):
        self.estimator = estimator
        self.default_slo_ms = default_slo_ms
        self.shed_count = 0

    def effective_deadline(self, job: ServeJob) -> float | None:
        if job.deadline_ms is not None:
            return job.deadline_ms
        if self.default_slo_ms is None:
            return None
        return job.arrival_ms + self.default_slo_ms

    def doomed(self, t_ms: float, queue: JobQueue,
               fleet: Fleet) -> list[tuple[ServeJob, ShedResponse]]:
        """Jobs in the ready queue whose predicted finish misses their
        effective deadline, with the prediction that doomed them.

        The forecast assigns jobs in pop order to the earliest-available
        healthy device; shed jobs contribute no work to the forecast
        (their service moves to the sidecar), so one hopeless whale does
        not doom the queue behind it.
        """
        ready = queue.ready_in_order(t_ms)
        if not ready:
            return []
        healthy = fleet.healthy(t_ms)
        if not healthy:
            return []          # the fleet-dead path sheds with its own reason
        avail = [max(d.busy_until_ms, t_ms) for d in healthy]
        heapq.heapify(avail)
        doomed: list[tuple[ServeJob, ShedResponse]] = []
        for job in ready:
            service = self.estimator.predict_ms(job, fleet, t_ms)
            start = heapq.heappop(avail)
            finish = start + service
            deadline = self.effective_deadline(job)
            if deadline is not None and finish > deadline:
                doomed.append((job, ShedResponse(
                    job_id=job.job_id, reason=SHED_DEADLINE, at_ms=t_ms,
                    slo_ms=deadline, predicted_start_ms=start,
                    predicted_finish_ms=finish)))
                heapq.heappush(avail, start)   # its slot stays free
            else:
                heapq.heappush(avail, finish)
        self.shed_count += len(doomed)
        return doomed

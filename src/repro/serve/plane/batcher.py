"""Continuous batching: coalesce same-graph jobs into one shared launch.

Under zipf traffic most queries target a handful of hot graphs, and two
jobs with equal cache keys (``(graph fingerprint,
GpuOptions.cache_key())``) are answered by byte-identical device-resident
structures — so when one of them reaches a device, every other ready job
with the same key can ride the *same* launch through
:func:`repro.runtime.launch` and fan its result back out, instead of each
paying its own H2D + preprocessing + launch overhead.

Coalescing is result-preserving by construction: the pipeline is
deterministic, so the shared launch's count is bit-identical to what
each job would have computed alone (a property-test invariant).  The
batcher only ever pulls *ready* jobs (backoff holds are respected) and
only jobs matching the dispatched job's key, so priority inversion is
impossible — batch mates get strictly earlier service than they were
queued for, never later.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.serve.queue import JobQueue, ServeJob


class Batcher:
    """Pulls batch mates out of the queue at dispatch time."""

    def __init__(self, max_batch: int = 8):
        if max_batch < 1:
            raise ReproError(f"max_batch must be >= 1, got {max_batch}")
        self.max_batch = max_batch
        #: launches that served at least two jobs.
        self.batched_launches = 0
        #: jobs served by those shared launches (batch heads included).
        self.batched_jobs = 0

    def collect(self, job: ServeJob, queue: JobQueue,
                t_ms: float) -> list[ServeJob]:
        """Ready jobs sharing ``job``'s cache key, removed from the
        queue (up to ``max_batch − 1`` of them)."""
        if self.max_batch <= 1:
            return []
        key = job.cache_key()
        mates = queue.take_where(t_ms, lambda j: j.cache_key() == key,
                                 limit=self.max_batch - 1)
        if mates:
            self.batched_launches += 1
            self.batched_jobs += 1 + len(mates)
        return mates

"""``ControlPlane`` — the layer between :class:`JobQueue` and
:class:`FleetScheduler`.

The scheduler stays the discrete-event engine it was; the plane is a set
of policy hooks it consults when one is installed (``plane=None``
reproduces the seed scheduler exactly):

* **admission** — at every event time, forecast the ready queue with the
  wait model and shed jobs that cannot meet their effective deadline
  (:mod:`~repro.serve.plane.admission`);
* **batching** — when a job dispatches, pull same-cache-key ready jobs
  into the same launch (:mod:`~repro.serve.plane.batcher`);
* **replica groups** — after completions, pin hot graphs on k devices
  and steer placement toward replica holders
  (:mod:`~repro.serve.plane.replicas`);
* **degraded tier** — shed jobs are answered approximately with an
  explicit error bound instead of dropped
  (:mod:`~repro.serve.plane.degraded`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ReproError
from repro.serve.fleet import Fleet, FleetDevice
from repro.serve.plane.admission import AdmissionController, ServiceEstimator
from repro.serve.plane.batcher import Batcher
from repro.serve.plane.degraded import APPROX_METHODS, DegradedTier
from repro.serve.plane.replicas import ReplicaManager, ResidentEntry
from repro.serve.queue import (DONE, PATH_APPROX, SHED, TIER_APPROX,
                               JobQueue, ServeJob, ShedResponse)


@dataclass(frozen=True)
class PlaneConfig:
    """Policy knobs of one control plane."""

    #: replica-group size for hot graphs (1 disables replication).
    replicas: int = 2
    #: queries of a key before it counts as hot.
    hot_threshold: int = 3
    #: replica-copy schedule: ``"broadcast"`` sources every copy from
    #: the one holder; ``"ring"`` forwards holder-to-holder (each new
    #: replica sources from the previous one as soon as it has the
    #: bytes — the store-and-forward exchange of
    #: :mod:`repro.gpusim.multigpu`, applied to the fleet timing model).
    exchange: str = "broadcast"
    #: coalesce same-key ready jobs into shared launches.
    batching: bool = True
    max_batch: int = 8
    #: SLO-aware admission (shed/downgrade predicted deadline misses).
    admission: bool = True
    #: implicit deadline slack for deadline-less jobs; None exempts them.
    default_slo_ms: float | None = 8_000.0
    #: answer shed jobs on the approximate CPU sidecar.
    degraded: bool = True
    approx_method: str = "doulion"
    approx_p: float = 0.25
    approx_seed: int = 0

    def __post_init__(self):
        if self.replicas < 1:
            raise ReproError(f"replicas must be >= 1, got {self.replicas}")
        if self.max_batch < 1:
            raise ReproError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.approx_method not in APPROX_METHODS:
            raise ReproError(
                f"approx_method must be one of {APPROX_METHODS}, "
                f"got {self.approx_method!r}")
        if self.exchange not in ReplicaManager.EXCHANGE_MODES:
            raise ReproError(
                f"exchange must be one of {ReplicaManager.EXCHANGE_MODES}, "
                f"got {self.exchange!r}")


class ControlPlane:
    """One instance per trace replay (it accumulates counters)."""

    def __init__(self, config: PlaneConfig = PlaneConfig()):
        self.config = config
        self.estimator = ServiceEstimator()
        self.admission = (AdmissionController(self.estimator,
                                              config.default_slo_ms)
                          if config.admission else None)
        self.batcher = Batcher(config.max_batch) if config.batching else None
        self.replicas = ReplicaManager(config.replicas, config.hot_threshold,
                                       exchange=config.exchange)
        self.degraded = (DegradedTier(method=config.approx_method,
                                      p=config.approx_p,
                                      seed=config.approx_seed)
                         if config.degraded else None)

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #

    def admission_pass(self, t_ms: float, queue: JobQueue,
                       fleet: Fleet) -> list[ServeJob]:
        """Shed every ready job the wait model predicts will miss its
        effective deadline; returns the jobs it resolved."""
        if self.admission is None:
            return []
        doomed = self.admission.doomed(t_ms, queue, fleet)
        if not doomed:
            return []
        responses = {j.job_id: resp for j, resp in doomed}
        taken = queue.take_where(t_ms, lambda j: j.job_id in responses)
        for job in taken:
            self.resolve_shed(job, responses[job.job_id])
        return taken

    # ------------------------------------------------------------------ #
    # shed / degraded resolution
    # ------------------------------------------------------------------ #

    def resolve_shed(self, job: ServeJob, resp: ShedResponse) -> None:
        """Answer a shed job on the degraded tier when one is
        configured; otherwise mark it :data:`SHED` with the typed
        response attached."""
        if self.degraded is None:
            job.status = SHED
            job.shed = resp
            return
        answer = self.degraded.answer(job)
        job.status = DONE
        job.tier = TIER_APPROX
        job.path = PATH_APPROX
        job.device_index = -1
        job.start_ms = resp.at_ms
        job.finish_ms = resp.at_ms + answer.service_ms
        job.triangles = answer.estimated_triangles
        job.estimate = answer.estimate
        job.error_bound = answer.error_bound
        job.approx_method = answer.method
        job.shed = replace(resp, degraded=True)

    # ------------------------------------------------------------------ #
    # dispatch-time hooks
    # ------------------------------------------------------------------ #

    def pick_device(self, job: ServeJob, eligible: list[FleetDevice],
                    t_ms: float) -> FleetDevice:
        return self.replicas.pick_device(job.cache_key(), eligible, t_ms)

    def collect_batch(self, job: ServeJob, queue: JobQueue,
                      t_ms: float) -> list[ServeJob]:
        if self.batcher is None:
            return []
        return self.batcher.collect(job, queue, t_ms)

    # ------------------------------------------------------------------ #
    # completion hooks
    # ------------------------------------------------------------------ #

    def on_gpu_complete(self, batch: list[ServeJob], key: tuple,
                        fleet: Fleet, service_ms: float, hit: bool,
                        resident: ResidentEntry | None,
                        end_ms: float) -> None:
        """Observe service, heat the key, and replicate when hot.

        ``resident`` is None when the scheduler runs cache-disabled —
        replication is then off too (there is nothing to pin).
        """
        if hit:
            self.estimator.observe_hit(key, service_ms)
        else:
            self.estimator.observe_full(key, service_ms)
        self.replicas.note_requests(key, len(batch))
        if resident is not None:
            self.replicas.maybe_replicate(key, resident, fleet, end_ms)

    def on_distributed_complete(self, job: ServeJob, key: tuple,
                                total_ms: float) -> None:
        self.estimator.observe_full(key, total_ms)

"""The approximate degraded tier — a CPU sidecar for shed jobs.

When SLO-aware admission decides a job cannot meet its deadline on the
exact GPU tier (or no GPU can ever serve it), the control plane reroutes
it here instead of dropping it.  The sidecar answers with one of the
existing :mod:`repro.cpu.approx` estimators and an **explicit error
bound** — the response payload is ``(estimate, error_bound,
tier="approx")``, never a silently wrong exact-looking number.

Two models, both deterministic per graph fingerprint:

* ``"doulion"`` — Tsourakakis' coin-flip sparsifier; error bound from
  the binomial plug-in analysis (:attr:`DoulionResult.error_bound`);
* ``"birthday"`` — the Jha–Seshadhri–Pinar streaming estimator; bound
  from the closed-wedge binomial term.

Simulated cost: the sidecar is host CPU work outside the device fleet,
modeled as a streaming pass over the arc array at a fixed per-arc cost
plus the estimator's own work term.  Answers are memoized per graph
fingerprint — the estimator is seeded from the fingerprint, so every
query of the same graph receives the identical estimate (replay
determinism is an acceptance criterion, not an aspiration).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.approx import birthday_paradox_count, doulion_count
from repro.errors import ReproError
from repro.serve.queue import TIER_APPROX, ServeJob

#: Valid estimator choices.
APPROX_METHODS = ("doulion", "birthday")

#: Simulated sidecar cost model: one streaming pass over the arc array…
SIDECAR_NS_PER_ARC = 25.0
#: …plus the estimator's own work per retained element (kept edges for
#: DOULION's exact sub-count, reservoir slots for the birthday pass).
SIDECAR_NS_PER_WORK_ITEM = 200.0


@dataclass(frozen=True)
class ApproxAnswer:
    """The degraded tier's response for one graph."""

    estimate: float
    error_bound: float
    method: str
    #: simulated sidecar milliseconds to produce the answer.
    service_ms: float
    tier: str = TIER_APPROX

    @property
    def estimated_triangles(self) -> int:
        return int(round(self.estimate))

    @property
    def relative_error_bound(self) -> float:
        return self.error_bound / self.estimate if self.estimate > 0 else 0.0

    def payload(self) -> dict:
        """The wire-format response a tenant receives."""
        return {"estimate": self.estimate,
                "error_bound": self.error_bound,
                "tier": self.tier,
                "method": self.method}


class DegradedTier:
    """Answers shed jobs approximately, with a bound, off the GPU fleet.

    Parameters
    ----------
    method : str
        ``"doulion"`` (default) or ``"birthday"``.
    p : float
        DOULION edge-keeping probability.
    edge_reservoir, wedge_reservoir : int
        Birthday-paradox reservoir sizes.
    seed : int
        Mixed into the per-fingerprint estimator seed.
    """

    def __init__(self, method: str = "doulion", p: float = 0.25,
                 edge_reservoir: int = 2000, wedge_reservoir: int = 2000,
                 seed: int = 0):
        if method not in APPROX_METHODS:
            raise ReproError(
                f"approx method must be one of {APPROX_METHODS}, "
                f"got {method!r}")
        if not (0.0 < p <= 1.0):
            raise ReproError(f"keep probability must be in (0, 1], got {p}")
        self.method = method
        self.p = p
        self.edge_reservoir = edge_reservoir
        self.wedge_reservoir = wedge_reservoir
        self.seed = seed
        self.answers_served = 0
        self._memo: dict[str, ApproxAnswer] = {}

    # ------------------------------------------------------------------ #

    def _fingerprint_seed(self, fingerprint: str) -> int:
        """Deterministic per-graph seed: same graph → same estimate on
        every query, any replay."""
        return (int(fingerprint[:12], 16) ^ self.seed) & 0x7FFFFFFF

    def answer(self, job: ServeJob) -> ApproxAnswer:
        """Estimate the job's triangle count on the CPU sidecar."""
        self.answers_served += 1
        memo = self._memo.get(job.fingerprint)
        if memo is not None:
            return memo
        sub_seed = self._fingerprint_seed(job.fingerprint)
        m = job.graph.num_arcs
        if self.method == "doulion":
            res = doulion_count(job.graph, p=self.p, seed=sub_seed)
            work_items = res.kept_edges
            answer = ApproxAnswer(estimate=res.estimate,
                                  error_bound=res.error_bound,
                                  method="doulion",
                                  service_ms=self._service_ms(m, work_items))
        else:
            res = birthday_paradox_count(job.graph,
                                         edge_reservoir=self.edge_reservoir,
                                         wedge_reservoir=self.wedge_reservoir,
                                         seed=sub_seed)
            work_items = self.edge_reservoir + self.wedge_reservoir
            answer = ApproxAnswer(estimate=res.triangle_estimate,
                                  error_bound=res.error_bound,
                                  method="birthday",
                                  service_ms=self._service_ms(m, work_items))
        self._memo[job.fingerprint] = answer
        return answer

    @staticmethod
    def _service_ms(num_arcs: int, work_items: int) -> float:
        return (num_arcs * SIDECAR_NS_PER_ARC
                + work_items * SIDECAR_NS_PER_WORK_ITEM) * 1e-6

"""Replica groups: pin hot preprocessed graphs on k devices.

TRUST-style scaling ("Triangle Counting Reloaded on GPUs", PAPERS.md)
comes from replicated/partitioned placement, not from one fast card.
The serving analogue: a graph that is *hot* — queried at least
``hot_threshold`` times — gets its preprocessed cache entry copied to
up to ``k`` devices and **pinned** there (exempt from LRU eviction), so
load balancing can spread its queries across replicas instead of
funnelling every hit to the one device that happens to hold the entry.

Replication is charged honestly: each copy occupies cache budget on the
destination (and therefore shrinks the capacity its jobs may use), and
the destination device is busy for the peer-copy window (entry bytes
over the PCIe link, the same transfer model
:meth:`~repro.gpusim.memory.DeviceMemory.h2d_ms` uses).

Holder state lives in the caches themselves (an entry is a replica iff
it is resident and pinned), so a gang-scheduled distributed job that
clears a device's cache cannot desynchronize the manager — heat
tracking survives and the entry is re-replicated on the next completion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.fleet import Fleet, FleetDevice


@dataclass(frozen=True)
class ResidentEntry:
    """What a replica copy needs to materialize a cache entry."""

    nbytes: int
    triangles: int
    hit_service_ms: float


class ReplicaManager:
    """Tracks per-key heat and maintains the pinned replica set."""

    #: Copy schedules (mirrors :data:`repro.core.multi_gpu.EXCHANGE_MODES`).
    EXCHANGE_MODES = ("broadcast", "ring")

    def __init__(self, k: int = 2, hot_threshold: int = 3,
                 exchange: str = "broadcast"):
        if exchange not in self.EXCHANGE_MODES:
            from repro.errors import ReproError

            raise ReproError(f"exchange must be one of "
                             f"{self.EXCHANGE_MODES}, got {exchange!r}")
        self.k = max(int(k), 1)
        self.hot_threshold = max(int(hot_threshold), 1)
        self.exchange = exchange
        self._requests: dict[tuple, int] = {}
        #: replica copies installed (the ``==SERVE==`` sheet reports it).
        self.replications = 0

    # ------------------------------------------------------------------ #

    def note_requests(self, key: tuple, n: int = 1) -> None:
        self._requests[key] = self._requests.get(key, 0) + n

    def heat(self, key: tuple) -> int:
        return self._requests.get(key, 0)

    def is_hot(self, key: tuple) -> bool:
        return self.heat(key) >= self.hot_threshold

    @staticmethod
    def holders(key: tuple, fleet: Fleet) -> list[FleetDevice]:
        return [d for d in fleet if key in d.cache]

    # ------------------------------------------------------------------ #

    def maybe_replicate(self, key: tuple, entry: ResidentEntry,
                        fleet: Fleet, t_ms: float) -> int:
        """Bring a hot key up to ``k`` pinned replicas.

        Called after a completed exact run at simulated time ``t_ms``.
        Destinations are the healthy devices with the least outstanding
        work; each pays the peer-copy busy window and charges the entry
        against its cache budget (a budget rejection skips that device).
        Returns the number of copies installed.

        In ``"broadcast"`` mode (default) every copy sources from the
        one holder and may start at ``t_ms`` — the one-source scheme.
        In ``"ring"`` mode each new replica sources from the *previous*
        one (store-and-forward): copy ``i+1`` cannot start before copy
        ``i``'s bytes have arrived, but the source link is never asked
        to feed two destinations at once — the fleet analogue of
        :meth:`repro.gpusim.multigpu.MultiGpuContext.ring_broadcast`.
        """
        if self.k <= 1 or not self.is_hot(key):
            return 0
        holders = self.holders(key, fleet)
        for d in holders:                     # heat reached: pin residents
            d.cache.pin(key)
        have = {d.index for d in holders}
        need = self.k - len(holders)
        if need <= 0:
            return 0
        candidates = sorted(
            (d for d in fleet.healthy(t_ms) if d.index not in have),
            key=lambda d: (d.outstanding_ms(t_ms), d.index))
        installed = 0
        prev_arrival = t_ms        # ring mode: when the upstream copy lands
        for dev in candidates[:need]:
            dev.cache.insert(key, entry.nbytes, triangles=entry.triangles,
                             hit_service_ms=entry.hit_service_ms,
                             now_ms=t_ms)
            if key not in dev.cache:          # budget rejected the copy
                continue
            dev.cache.pin(key)
            copy_ms = entry.nbytes / (dev.spec.pcie_gbs * 1e9) * 1e3
            earliest = prev_arrival if self.exchange == "ring" else t_ms
            start = max(dev.busy_until_ms, earliest)
            dev.busy_until_ms = start + copy_ms
            dev.busy_ms += copy_ms
            prev_arrival = start + copy_ms
            installed += 1
            self.replications += 1
        return installed

    # ------------------------------------------------------------------ #

    def pick_device(self, key: tuple, eligible: list[FleetDevice],
                    t_ms: float) -> FleetDevice:
        """Least-outstanding-work balancing with replica affinity:
        prefer devices already holding the key's entry (a cache hit),
        then the seed scheduler's ordering (fastest card, most free
        memory, stable index)."""
        holders = [d for d in eligible if key in d.cache]
        pool = holders or eligible
        return min(pool, key=lambda d: (d.outstanding_ms(t_ms),
                                        -d.throughput_proxy,
                                        -d.free_bytes, d.index))

"""Job queue with priorities, deadlines and admission control.

Ordering
--------
The queue pops jobs by ``(priority desc, deadline asc, estimated arcs
desc, arrival asc)``: strict priority tiers, earliest-deadline-first
inside a tier, and longest-job-first among equals — the last key is what
makes a burst dispatch follow the LPT discipline the distributed layer
already uses (:func:`repro.core.distributed.lpt_assign`).

Admission
---------
A job's *working set* is the peak device allocation its pipeline will
make; :func:`estimate_working_set_bytes` mirrors the allocation sequence
of :mod:`repro.core.preprocess` exactly (including the radix sort's
double buffer and the Section III-D6 CPU-fallback halving).  Admission
probes the target device with the non-raising
:meth:`DeviceMemory.try_alloc` reservation — no exception-driven control
flow — and a job that fits *no* device in the fleet is not failed but
routed to the partitioned/distributed path, which splits the graph into
subgraphs that do fit (the paper's Section VI direction).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from math import inf

import numpy as np

from repro.core.options import GpuOptions
from repro.core.preprocess import SORT_TEMP_FACTOR
from repro.graphs.edgearray import EdgeArray
from repro.gpusim.device import DeviceSpec
from repro.gpusim.memory import aligned_nbytes
from repro.serve.cache import graph_fingerprint
from repro.serve.fleet import Fleet, FleetDevice
from repro.types import COUNT_DTYPE, INDEX_DTYPE, PACKED_DTYPE, VERTEX_DTYPE

_PACKED = np.dtype(PACKED_DTYPE).itemsize
_VERTEX = np.dtype(VERTEX_DTYPE).itemsize
_INDEX = np.dtype(INDEX_DTYPE).itemsize
_COUNT = np.dtype(COUNT_DTYPE).itemsize


def _sort_temp_nbytes(packed_nbytes: int) -> int:
    """Radix scratch exactly as ``preprocess`` allocates it."""
    return aligned_nbytes(_PACKED * (int(packed_nbytes * SORT_TEMP_FACTOR)
                                     // _PACKED + 1))


def _finalize_nbytes(num_nodes: int, m_fwd: int, options: GpuOptions) -> int:
    """Peak of steps 7–8 (node array + output layout)."""
    total = aligned_nbytes(_INDEX * (num_nodes + 1))
    if options.unzip:
        total += aligned_nbytes(_VERTEX * (m_fwd + 1))
        total += aligned_nbytes(_VERTEX * max(m_fwd, 1))
    else:
        total += aligned_nbytes(_VERTEX * (2 * m_fwd + 2))
    return total


def estimate_working_set_bytes(graph: EdgeArray,
                               options: GpuOptions,
                               device: DeviceSpec) -> int:
    """Upper bound on the peak device allocation of one counting job.

    Follows the pipeline's allocation order: the per-thread result
    buffer lives for the whole run; during preprocessing the peak is the
    packed edge array plus the larger of (sort scratch, full node array,
    final layout).  With ``cpu_preprocess`` in (``"auto"``, ``"always"``)
    the bound is the Section III-D6 fallback path's — the direct path may
    OOM and the pipeline degrades to the halved working set instead of
    failing, so admission only has to guarantee *that* path fits.
    """
    m = graph.num_arcs
    n = graph.num_nodes
    m_fwd = m // 2
    result = aligned_nbytes(_COUNT * options.launch.total_threads(device))
    if options.cpu_preprocess == "never":
        packed = aligned_nbytes(_PACKED * max(m, 1))
        node_full = aligned_nbytes(_INDEX * (n + 1))
        peak = packed + max(_sort_temp_nbytes(packed), node_full,
                            _finalize_nbytes(n, m_fwd, options))
    else:
        packed = aligned_nbytes(_PACKED * max(m_fwd, 1))
        peak = packed + max(_sort_temp_nbytes(packed),
                            _finalize_nbytes(n, m_fwd, options))
    return result + peak


# ---------------------------------------------------------------------- #
# jobs
# ---------------------------------------------------------------------- #

#: Job lifecycle states.  Every job ends in exactly one of
#: {DONE, SHED, LOST}: DONE carries an answer (exact or approximate),
#: SHED carries a typed :class:`ShedResponse`, and LOST is reserved for
#: jobs whose retry budget was exhausted by device faults.
PENDING, DONE, LOST, SHED = "pending", "done", "lost", "shed"

#: Execution paths.
PATH_GPU, PATH_DISTRIBUTED, PATH_APPROX = "gpu", "distributed", "approx"

#: Answer tiers: exact GPU counts vs the degraded approximate tier.
TIER_EXACT, TIER_APPROX = "exact", "approx"

#: Typed shed reasons (:attr:`ShedResponse.reason`).
SHED_DEADLINE = "deadline-unmeetable"   # wait model predicts an SLO miss
SHED_NO_CAPACITY = "no-capacity"        # fits no device, even split 16 ways
SHED_FLEET_DEAD = "fleet-dead"          # no healthy device can ever serve it


@dataclass(frozen=True)
class ShedResponse:
    """Typed record of why a job was shed (or downgraded) — the answer a
    tenant gets instead of a silent loss.

    When the degraded tier answers the job, ``degraded`` is True and the
    job itself still ends :data:`DONE` (``tier="approx"``) with the
    estimate payload on the job record; the response then documents the
    admission decision that rerouted it.
    """

    job_id: int
    reason: str                            # one of the SHED_* constants
    at_ms: float                           # simulated decision time
    #: effective deadline the admission controller enforced (the job's
    #: own, or the plane's default SLO for deadline-less jobs).
    slo_ms: float | None = None
    predicted_start_ms: float | None = None
    predicted_finish_ms: float | None = None
    #: True when the approximate tier answered instead of dropping.
    degraded: bool = False


@dataclass
class ServeJob:
    """One tenant query: count the triangles of ``graph``.

    ``priority`` is a strict tier (higher preempts lower in the queue —
    running jobs are never preempted); ``deadline_ms`` is advisory and
    only drives EDF ordering + the deadline-miss metric.
    """

    job_id: int
    graph: EdgeArray
    options: GpuOptions = field(default_factory=GpuOptions)
    priority: int = 0
    arrival_ms: float = 0.0
    deadline_ms: float | None = None

    # derived at submit time
    fingerprint: str = ""
    est_arcs: int = 0

    # runtime state
    attempts: int = 0
    not_before_ms: float = 0.0     # earliest restart after a fault (backoff)
    status: str = PENDING
    path: str = PATH_GPU
    cache_hit: bool = False
    device_index: int = -1
    start_ms: float = -1.0
    finish_ms: float = -1.0
    triangles: int = -1
    #: answer tier: exact GPU count vs degraded approximate estimate.
    tier: str = TIER_EXACT
    #: the typed admission record for shed / degraded jobs.
    shed: ShedResponse | None = None
    # approximate-tier payload (``tier == TIER_APPROX`` only)
    estimate: float | None = None
    error_bound: float | None = None
    approx_method: str = ""

    def __post_init__(self):
        if not self.fingerprint:
            self.fingerprint = graph_fingerprint(self.graph)
        if not self.est_arcs:
            # The distributed layer's cost estimator: subgraph arc count.
            self.est_arcs = self.graph.num_arcs

    # ------------------------------------------------------------------ #

    @property
    def latency_ms(self) -> float:
        """Arrival → completion (simulated)."""
        return self.finish_ms - self.arrival_ms if self.status == DONE else inf

    @property
    def wait_ms(self) -> float:
        """Arrival → start of the successful attempt."""
        return self.start_ms - self.arrival_ms if self.status == DONE else inf

    @property
    def met_deadline(self) -> bool:
        return (self.deadline_ms is None
                or (self.status == DONE and self.finish_ms <= self.deadline_ms))

    def sort_key(self) -> tuple:
        return (-self.priority,
                self.deadline_ms if self.deadline_ms is not None else inf,
                -self.est_arcs,
                self.arrival_ms)

    def cache_key(self) -> tuple:
        """The preprocessed-cache identity this job hits — two jobs with
        equal keys are answered by the same device-resident structures
        (and may therefore share one launch, see the control plane's
        batcher)."""
        return (self.fingerprint, self.options.cache_key())


# ---------------------------------------------------------------------- #
# admission control
# ---------------------------------------------------------------------- #

def fits_device(job: ServeJob, device: FleetDevice) -> bool:
    """Probe whether the job's working set fits the device *right now*
    (cache residents already charged) — no exceptions on the OOM path."""
    est = estimate_working_set_bytes(job.graph, job.options, device.spec)
    memory = device.job_memory()
    probe = memory.try_alloc("admission probe", est)
    if probe is None:
        return False
    memory.free(probe)
    return True


def admissible_devices(job: ServeJob, fleet: Fleet,
                       t_ms: float) -> list[FleetDevice]:
    """Healthy devices whose free memory can hold the job's working set."""
    return [d for d in fleet.healthy(t_ms) if fits_device(job, d)]


# ---------------------------------------------------------------------- #
# the queue
# ---------------------------------------------------------------------- #

class JobQueue:
    """Priority queue with deadline/LPT ordering and fault backoff holds.

    Jobs re-queued after a device fault carry ``not_before_ms``; they are
    held off the ready heap until the backoff expires.
    """

    def __init__(self):
        self._ready: list[tuple] = []      # (sort_key, seq, job)
        self._delayed: list[tuple] = []    # (not_before_ms, seq, job)
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._ready) + len(self._delayed)

    def push(self, job: ServeJob) -> None:
        seq = next(self._seq)
        if job.not_before_ms > 0:
            heapq.heappush(self._delayed, (job.not_before_ms, seq, job))
        else:
            heapq.heappush(self._ready, (job.sort_key(), seq, job))

    def _promote(self, t_ms: float) -> None:
        while self._delayed and self._delayed[0][0] <= t_ms:
            _, seq, job = heapq.heappop(self._delayed)
            heapq.heappush(self._ready, (job.sort_key(), seq, job))

    def pop(self, t_ms: float) -> ServeJob | None:
        """Highest-priority job startable at ``t_ms`` (None if all held)."""
        self._promote(t_ms)
        if not self._ready:
            return None
        _, _, job = heapq.heappop(self._ready)
        return job

    def peek_ready(self, t_ms: float) -> ServeJob | None:
        self._promote(t_ms)
        return self._ready[0][2] if self._ready else None

    def next_release_ms(self, t_ms: float) -> float | None:
        """Earliest future time a held job becomes ready (backoff expiry)."""
        self._promote(t_ms)
        return self._delayed[0][0] if self._delayed else None

    def ready_in_order(self, t_ms: float) -> list[ServeJob]:
        """Non-destructive snapshot of the ready jobs in pop order (the
        admission controller's forecast walks this)."""
        self._promote(t_ms)
        return [job for _, _, job in sorted(self._ready)]

    def take_where(self, t_ms: float, pred, limit: int | None = None
                   ) -> list[ServeJob]:
        """Remove and return up to ``limit`` ready jobs matching ``pred``
        (pop order).  Held (backoff) jobs are never taken.

        The batcher uses this to coalesce same-cache-key jobs into one
        shared launch; the admission controller uses it to pull doomed
        jobs out of the queue."""
        self._promote(t_ms)
        taken: list[ServeJob] = []
        taken_ids: set[int] = set()
        for _, _, job in sorted(self._ready):
            if limit is not None and len(taken) >= limit:
                break
            if pred(job):
                taken.append(job)
                taken_ids.add(id(job))
        if taken:
            self._ready = [item for item in self._ready
                           if id(item[2]) not in taken_ids]
            heapq.heapify(self._ready)
        return taken

    def drain(self) -> list[ServeJob]:
        """Remove and return everything (end-of-run accounting)."""
        jobs = [j for _, _, j in self._ready] + [j for _, _, j in self._delayed]
        self._ready.clear()
        self._delayed.clear()
        return jobs

"""Memory- and load-aware placement with fault retry.

A discrete-event loop over simulated time: jobs arrive open-loop from a
trace, wait in the :class:`~repro.serve.queue.JobQueue`, and dispatch
whenever a device is idle.  Placement follows the distributed layer's
LPT discipline — the queue orders same-priority jobs longest-first (by
estimated arc count, the :mod:`repro.core.distributed` cost estimator)
and each dispatch picks the least-loaded device that can hold the job's
working set.

Three paths out of the queue:

* **fast path** — the job fits a healthy device: one
  :func:`gpu_count_triangles` run, preceded by a preprocessed-graph
  cache lookup (a hit skips the copy + preprocessing phases entirely);
* **distributed fallback** — the working set fits *no* device: the
  partitioned/distributed pipeline splits the graph across the healthy
  fleet instead of failing the job (Section VI);
* **fault retry** — an injected device failure inside the job's
  execution window aborts the attempt; the job re-queues with
  exponential backoff and runs on another device, producing an identical
  count (the counting pipeline is exact on every device).

Wall-clock note: the simulator is deterministic, so re-running an
identical (graph, options, device, path) job must produce identical
results — the scheduler memoizes those runs and replays the *simulated*
cost without repeating the *host* work.  This is a pure wall-time
optimization; every simulated number is what a fresh run would report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.distributed import distributed_count_triangles
from repro.core.forward_gpu import gpu_count_triangles
from repro.errors import OutOfDeviceMemoryError, ReproError
from repro.gpusim.hostprof import HostProfiler, host_profiling
from repro.serve.cache import preprocessed_nbytes
from repro.serve.fleet import Fleet, FleetDevice
from repro.serve.metrics import ServeReport
from repro.serve.plane.replicas import ResidentEntry
from repro.serve.queue import (DONE, LOST, PATH_DISTRIBUTED, PATH_GPU, SHED,
                               SHED_FLEET_DEAD, SHED_NO_CAPACITY, JobQueue,
                               ServeJob, ShedResponse,
                               estimate_working_set_bytes, fits_device)

if TYPE_CHECKING:
    from repro.serve.plane import ControlPlane
    from repro.serve.tuned import TunedConfigs

#: Escalation ladder for the fallback path: smallest part count whose
#: subgraphs fit the device wins (more parts = more redundant work).
FALLBACK_PART_LADDER = (4, 6, 8, 12, 16)


@dataclass
class _GpuRunMemo:
    """Memoized outcome of one (graph, options, device, path) pipeline run."""

    triangles: int
    total_ms: float
    hit_service_ms: float        # count + reduce phases (a cache hit's cost)
    resident_nbytes: int         # what a cache entry of it occupies
    used_cpu_fallback: bool
    sanitizer_findings: int = 0  # nonzero only with options.sanitize on


class FleetScheduler:
    """Replays a job trace against a fleet.

    Parameters
    ----------
    fleet : Fleet
        The device pool (failure injections already configured).
    cache_enabled : bool
        Toggle the per-device preprocessed-graph caches (the serving
        bench replays the same trace both ways to measure the win).
    max_attempts : int
        Attempts per job before it is declared lost.
    backoff_ms : float
        Base of the exponential retry backoff: attempt *k* waits
        ``backoff_ms · 2^(k-1)`` simulated milliseconds after the fault.
    plane : ControlPlane, optional
        The serving control plane (:mod:`repro.serve.plane`).  When
        installed it adds SLO-aware admission, continuous batching,
        replica groups and the approximate degraded tier; ``None``
        (default) reproduces the seed scheduler exactly.
    tuned : TunedConfigs, optional
        Per-device autotuned configs (``configs/tuned.json``, see
        :mod:`repro.serve.tuned`).  Each GPU run applies the entry of
        the device it lands on — launch geometry / kernel / engine
        overrides that change simulated timing and host speed, never
        triangle counts.  Job identity (cache keys, batching) stays on
        the job's own options.
    """

    def __init__(self, fleet: Fleet, cache_enabled: bool = True,
                 max_attempts: int = 4, backoff_ms: float = 25.0,
                 plane: "ControlPlane | None" = None,
                 tuned: "TunedConfigs | None" = None):
        if max_attempts < 1:
            raise ReproError(f"need >= 1 attempt, got {max_attempts}")
        if backoff_ms < 0:
            raise ReproError(f"backoff must be >= 0, got {backoff_ms}")
        self.fleet = fleet
        self.cache_enabled = cache_enabled
        self.max_attempts = max_attempts
        self.backoff_ms = backoff_ms
        self.plane = plane
        self.tuned = tuned
        self._gpu_memo: dict[tuple, _GpuRunMemo] = {}
        self._dist_memo: dict[tuple, object] = {}

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #

    def run(self, jobs: list[ServeJob]) -> ServeReport:
        """Replay ``jobs`` (an arrival-stamped trace) to completion.

        The whole replay runs under an ambient
        :class:`~repro.gpusim.hostprof.HostProfiler`, so every launch
        (jobs run through :func:`repro.runtime.launch` via
        ``gpu_count_triangles``) attributes its host wall-clock in the
        unified phase vocabulary — ``h2d`` / ``kernel`` / ``d2h`` /
        ``free``, plus the kernel-section subsets (setup / merge /
        cache-model / accounting) — to the report's ``host_profiler``;
        the ``==SERVE==`` sheet prints the breakdown.
        """
        profiler = HostProfiler()
        with host_profiling(profiler):
            report = self._run_profiled(jobs)
        report.host_profiler = profiler
        return report

    def _run_profiled(self, jobs: list[ServeJob]) -> ServeReport:
        report = ServeReport(fleet=self.fleet, jobs=list(jobs),
                             cache_enabled=self.cache_enabled)
        arrivals = sorted(jobs, key=lambda j: (j.arrival_ms, j.job_id))
        queue = JobQueue()
        ai = 0
        t = arrivals[0].arrival_ms if arrivals else 0.0

        while ai < len(arrivals) or len(queue):
            while ai < len(arrivals) and arrivals[ai].arrival_ms <= t:
                queue.push(arrivals[ai])
                ai += 1

            if self.plane is not None:
                # SLO-aware admission: shed (→ degraded tier) every
                # ready job the wait model predicts will miss its
                # effective deadline, before capacity is spent on it.
                self.plane.admission_pass(t, queue, self.fleet)

            self._dispatch_at(t, queue, report)

            if len(queue) and not self.fleet.healthy(t):
                # Failures are permanent, so an empty healthy set can
                # never recover: shed queued jobs now (typed response;
                # degraded-tier answer when a plane provides one) rather
                # than letting them age to the end of the trace.
                for job in queue.drain():
                    self._shed(job, SHED_FLEET_DEAD, t)

            # Advance to the next event: an arrival, a device completion
            # (something is waiting for capacity), or a backoff expiry.
            candidates = []
            if ai < len(arrivals):
                candidates.append(arrivals[ai].arrival_ms)
            if len(queue):
                busy = [d.busy_until_ms for d in self.fleet.healthy(t)
                        if d.busy_until_ms > t]
                if busy:
                    candidates.append(min(busy))
                release = queue.next_release_ms(t)
                if release is not None and release > t:
                    candidates.append(release)
            if candidates:
                t = min(candidates)
            elif len(queue):
                # No future event can free capacity — every queued job
                # is unservable (e.g. the whole fleet failed).  Route
                # them through the shed path: a typed ShedResponse (and
                # a degraded-tier answer when a plane provides one)
                # instead of a silent loss.
                for job in queue.drain():
                    self._shed(job, SHED_FLEET_DEAD, t)
            # else: loop condition drains naturally

        if self.plane is not None:
            report.plane_enabled = True
            report.replications = self.plane.replicas.replications
        return report

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #

    def _dispatch_at(self, t: float, queue: JobQueue,
                     report: ServeReport) -> None:
        """Start every job that can start at simulated time ``t``."""
        while True:
            idle = [d for d in self.fleet.healthy(t) if d.busy_until_ms <= t]
            if not idle:
                return
            job = queue.pop(t)
            if job is None:
                return
            eligible = [d for d in idle if fits_device(job, d)]
            if eligible:
                dev = (self.plane.pick_device(job, eligible, t)
                       if self.plane is not None
                       else self._pick_device(eligible))
                self._attempt_gpu(job, dev, t, queue, report)
                continue
            if any(fits_device(job, d) for d in self.fleet.healthy(t)):
                # Fits a busy device — hold the queue head until it frees
                # (strict priority: no backfill past a blocked head).
                queue.push(job)
                return
            # Fits no healthy device at any time: split it instead.
            self._attempt_distributed(job, t, queue, report)

    @staticmethod
    def _pick_device(eligible: list[FleetDevice]) -> FleetDevice:
        """Least-loaded first (all idle here, so load ties); prefer the
        faster card, then the one with most free memory (heterogeneous
        fleets), then stable index order."""
        return min(eligible, key=lambda d: (d.busy_until_ms,
                                            -d.throughput_proxy,
                                            -d.free_bytes, d.index))

    # ------------------------------------------------------------------ #
    # fast path
    # ------------------------------------------------------------------ #

    def _attempt_gpu(self, job: ServeJob, dev: FleetDevice, start: float,
                     queue: JobQueue, report: ServeReport) -> None:
        cache_key = job.cache_key()
        entry = (dev.cache.lookup(cache_key, start)
                 if self.cache_enabled else None)
        if entry is not None:
            service, triangles, hit = entry.hit_service_ms, entry.triangles, True
            memo = None
        else:
            memo = self._run_gpu(job, dev)
            service, triangles, hit = memo.total_ms, memo.triangles, False

        # Continuous batching: every ready job with the same cache key
        # rides this launch and fans its (identical, deterministic)
        # result back out — one H2D + launch instead of N.
        batch = [job]
        if self.plane is not None:
            batch += self.plane.collect_batch(job, queue, start)

        end = start + service
        if dev.fails_within(start, end):
            self._fault(batch, dev, start, queue, report)
            return

        dev.busy_until_ms = end
        dev.busy_ms += service
        dev.jobs_completed += len(batch)
        if memo is not None:
            report.sanitizer_findings += memo.sanitizer_findings
        if self.cache_enabled and memo is not None:
            dev.cache.insert(cache_key, memo.resident_nbytes,
                             triangles=memo.triangles,
                             hit_service_ms=memo.hit_service_ms,
                             now_ms=start)
        report.launches += 1
        if len(batch) > 1:
            report.batched_launches += 1
            report.batched_jobs += len(batch)
        for b in batch:
            b.status = DONE
            b.path = PATH_GPU
            b.cache_hit = hit
            b.device_index = dev.index
            b.start_ms = start
            b.finish_ms = end
            b.triangles = triangles
        if self.plane is not None:
            resident = None
            if self.cache_enabled:
                resident = (ResidentEntry(memo.resident_nbytes,
                                          memo.triangles,
                                          memo.hit_service_ms)
                            if memo is not None else
                            ResidentEntry(entry.nbytes, entry.triangles,
                                          entry.hit_service_ms))
            self.plane.on_gpu_complete(batch, cache_key, self.fleet,
                                       service, hit, resident, end)

    def _run_gpu(self, job: ServeJob, dev: FleetDevice) -> _GpuRunMemo:
        """Run (or replay) the single-device pipeline for this job.

        The memo key includes which preprocessing path capacity forces:
        the same graph on the same card yields a different timeline when
        the direct path no longer fits (Section III-D6), so that bit is
        part of the run's identity.
        """
        options = (self.tuned.options_for(dev.spec, job.options)
                   if self.tuned is not None else job.options)
        direct = estimate_working_set_bytes(
            job.graph, options.but(cpu_preprocess="never"), dev.spec)
        key = (job.fingerprint, options.cache_key(), dev.spec.name,
               direct <= dev.free_bytes)
        memo = self._gpu_memo.get(key)
        if memo is None:
            run = gpu_count_triangles(job.graph, device=dev.spec,
                                      options=options,
                                      memory=dev.job_memory())
            memo = _GpuRunMemo(
                triangles=run.triangles,
                total_ms=run.total_ms,
                hit_service_ms=(run.timeline.phase_ms("count")
                                + run.timeline.phase_ms("reduce")),
                resident_nbytes=preprocessed_nbytes(
                    job.graph.num_nodes, run.num_forward_arcs, options),
                used_cpu_fallback=run.used_cpu_fallback,
                sanitizer_findings=sum(r.occurrences
                                       for r in run.sanitizer_reports))
            self._gpu_memo[key] = memo
        return memo

    # ------------------------------------------------------------------ #
    # distributed fallback
    # ------------------------------------------------------------------ #

    def _attempt_distributed(self, job: ServeJob, t: float,
                             queue: JobQueue, report: ServeReport) -> None:
        # Gang-schedule over the healthy fleet: the run starts when every
        # participant is free (dead devices drop out of the wait).
        start = t
        while True:
            participants = [d for d in self.fleet.healthy(start)]
            if not participants:
                self._shed(job, SHED_FLEET_DEAD, start)
                return
            new_start = max([t] + [d.busy_until_ms for d in participants])
            if new_start == start:
                break
            start = new_start

        # A gang job needs every byte: evict the participants' cache
        # residents so the subgraphs split against full device capacity —
        # otherwise a fuller cache forces a higher partition count and the
        # cache *costs* service time on whale-heavy traces.
        for d in participants:
            d.cache.clear()

        # A homogeneous-gang approximation: time the run on the weakest
        # participant with the least memory (conservative on both).
        weakest = min(participants, key=lambda d: d.throughput_proxy)
        capacity = min(d.spec.memory_bytes for d in participants)
        result = self._run_distributed(job, weakest.spec.with_memory(capacity),
                                       len(participants))
        if result is None:
            # Cannot fit even split 16 ways: shed with a typed reason
            # (the degraded tier still answers it when a plane is on).
            self._shed(job, SHED_NO_CAPACITY, start)
            return

        finish = start + result.total_ms
        faulted = [d for d in participants if d.fails_within(start, finish)]
        if faulted:
            fault_ms = min(d.fail_at_ms for d in faulted)
            for d in participants:
                d.busy_until_ms = max(d.busy_until_ms, fault_ms)
                d.busy_ms += fault_ms - start
            for d in faulted:
                d.faults += 1
            self._requeue_or_lose(job, fault_ms, queue, report)
            return

        for i, d in enumerate(participants):
            busy = result.partition_ms + (result.per_device_ms[i]
                                          if i < len(result.per_device_ms)
                                          else 0.0)
            d.busy_until_ms = start + busy
            d.busy_ms += busy
            d.jobs_completed += 1
        job.status = DONE
        job.path = PATH_DISTRIBUTED
        job.device_index = -1
        job.start_ms = start
        job.finish_ms = finish
        job.triangles = result.triangles
        report.fallbacks += 1
        if self.plane is not None:
            self.plane.on_distributed_complete(job, job.cache_key(),
                                               result.total_ms)

    def _run_distributed(self, job: ServeJob, spec, num_gpus: int):
        """Partitioned/distributed run with part-count escalation."""
        key = (job.fingerprint, job.options.cache_key(), spec.name,
               spec.memory_bytes, num_gpus)
        if key in self._dist_memo:
            return self._dist_memo[key]
        result = None
        for parts in FALLBACK_PART_LADDER:
            try:
                result = distributed_count_triangles(
                    job.graph, device=spec, num_gpus=num_gpus,
                    num_parts=parts, options=job.options)
                break
            except OutOfDeviceMemoryError:
                continue
        self._dist_memo[key] = result
        return result

    # ------------------------------------------------------------------ #
    # faults
    # ------------------------------------------------------------------ #

    def _fault(self, batch: list[ServeJob], dev: FleetDevice, start: float,
               queue: JobQueue, report: ServeReport) -> None:
        fault_ms = dev.fail_at_ms
        dev.busy_until_ms = max(dev.busy_until_ms, fault_ms)
        dev.busy_ms += fault_ms - start
        dev.faults += 1
        for job in batch:
            self._requeue_or_lose(job, fault_ms, queue, report)

    def _shed(self, job: ServeJob, reason: str, t_ms: float) -> None:
        """Terminal no-capacity exit: a typed :class:`ShedResponse`
        (status :data:`SHED`), or a degraded-tier answer when the plane
        provides one — never a bare ``lost``."""
        resp = ShedResponse(job_id=job.job_id, reason=reason, at_ms=t_ms)
        if self.plane is not None:
            self.plane.resolve_shed(job, resp)
            return
        job.status = SHED
        job.shed = resp

    def _requeue_or_lose(self, job: ServeJob, fault_ms: float,
                         queue: JobQueue, report: ServeReport) -> None:
        report.faults += 1
        job.attempts += 1
        if job.attempts >= self.max_attempts:
            if self.plane is not None:
                # The degraded tier is the backstop: a retry-exhausted
                # job gets an approximate answer instead of a drop.
                self._shed(job, SHED_NO_CAPACITY, fault_ms)
            else:
                job.status = LOST
            return
        job.not_before_ms = (fault_ms
                             + self.backoff_ms * 2 ** (job.attempts - 1))
        queue.push(job)


def serve_trace(fleet: Fleet, jobs: list[ServeJob],
                cache_enabled: bool = True, **kwargs) -> ServeReport:
    """One-call trace replay (the ``repro-bench serve`` entry point)."""
    return FleetScheduler(fleet, cache_enabled=cache_enabled,
                          **kwargs).run(jobs)

"""Tuned per-device configs: the serve-side consumer of the autotuner.

``configs/tuned.json`` (written by ``repro-bench tune`` /
:meth:`repro.bench.autotune.SweepReport.write_tuned`) records one
winning (kernel, engine, launch geometry) per device.  The
:class:`~repro.serve.scheduler.FleetScheduler` accepts a
:class:`TunedConfigs` and applies the matching device's entry to every
GPU run it launches there.

What a tuned entry may change — and what it may not:

* ``launch`` geometry and ``kernel`` change *simulated timing* only;
  every kernel in the registry is exact, so triangle counts are
  identical under any tuned entry (the bit-identity contract the bench
  suites pin);
* ``engine`` changes *host* wall-clock only (compacted vs lockstep are
  bit-identical by contract);
* job identity — :meth:`ServeJob.cache_key`, batching, the
  preprocessed-graph cache — stays keyed on the job's *own* options:
  tuning is a per-device execution detail, not a new workload.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.core.options import ENGINES, GpuOptions
from repro.errors import SweepConfigError
from repro.gpusim.device import DEVICES, DeviceSpec
from repro.gpusim.simt import LaunchConfig
from repro.runtime import get_kernel, kernel_names, kernel_option_field

#: Formats this loader understands (mirrors repro.bench.autotune —
#: tuned.json is the only thing that crosses the serve/bench boundary,
#: as data; serve/ never imports bench/).
_TUNED_FORMATS = ("repro-tuned/v1",)


def _tunable_kernels() -> tuple[str, ...]:
    """Kernels a tuned entry may select: every non-per-vertex registry
    name (the registry is the single source of truth — a newly
    registered kernel is tunable with no serve-side edit), plus
    ``"auto"`` (per-graph pick by :mod:`repro.core.autopick` at run
    time)."""
    names = tuple(n for n in kernel_names()
                  if get_kernel(n).option_field is not None)
    return names + ("auto",)


@dataclass(frozen=True)
class TunedEntry:
    """One device's winning configuration."""

    device: str
    kernel: str                 # registry name ("merge", ...) or "auto"
    engine: str
    threads_per_block: int
    blocks_per_sm: int

    def apply(self, base: GpuOptions) -> GpuOptions:
        """``base`` with this entry's launch/kernel/engine substituted.

        ``kernel="auto"`` is an options value, not a registry name — it
        passes through directly and resolves per graph inside
        ``gpu_count_triangles`` when the scheduler launches the job.
        """
        kernel = ("auto" if self.kernel == "auto"
                  else kernel_option_field(self.kernel))
        return base.but(
            kernel=kernel,
            engine=self.engine,
            launch=LaunchConfig(self.threads_per_block, self.blocks_per_sm))


def _entry_from(device: str, table: dict) -> TunedEntry:
    prefix = f"devices.{device}"
    if not isinstance(table, dict):
        raise SweepConfigError(prefix, f"expected a table, got {table!r}")
    kernel = table.get("kernel", "merge")
    tunable = _tunable_kernels()
    if kernel not in tunable:
        raise SweepConfigError(
            f"{prefix}.kernel", f"unknown kernel {kernel!r} "
                                f"(valid: {', '.join(tunable)})")
    engine = table.get("engine", "compacted")
    if engine not in ENGINES:
        raise SweepConfigError(
            f"{prefix}.engine", f"unknown engine {engine!r} "
                                f"(valid: {', '.join(ENGINES)})")
    geometry = {}
    for key in ("threads_per_block", "blocks_per_sm"):
        value = table.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
            raise SweepConfigError(f"{prefix}.{key}",
                                   f"expected a positive int, got {value!r}")
        geometry[key] = value
    entry = TunedEntry(device=device, kernel=kernel, engine=engine, **geometry)
    # An entry the device cannot launch is a config error at load time,
    # not a mid-trace crash.
    entry.apply(GpuOptions()).launch.validate(DEVICES[device])
    return entry


class TunedConfigs:
    """The parsed ``configs/tuned.json``: per-device option overrides."""

    def __init__(self, entries: dict[str, TunedEntry],
                 sweep: dict | None = None):
        self.entries = dict(entries)
        #: echo of the sweep that produced the winners (provenance).
        self.sweep = sweep or {}
        # Device short keys and spec display names both resolve.
        self._by_spec_name = {DEVICES[k].name: e
                              for k, e in self.entries.items()}

    @classmethod
    def from_doc(cls, doc: dict, source: str = "<doc>") -> "TunedConfigs":
        if not isinstance(doc, dict):
            raise SweepConfigError(source, f"expected a table, got {doc!r}")
        fmt = doc.get("format")
        if fmt not in _TUNED_FORMATS:
            raise SweepConfigError(
                "format", f"unknown tuned-config format {fmt!r} "
                          f"(valid: {', '.join(_TUNED_FORMATS)})")
        devices = doc.get("devices", {})
        if not isinstance(devices, dict) or not devices:
            raise SweepConfigError(
                "devices", f"expected a non-empty table, got {devices!r}")
        entries = {}
        for device, table in devices.items():
            if device not in DEVICES:
                raise SweepConfigError(
                    f"devices.{device}",
                    f"unknown device (valid: {', '.join(DEVICES)})")
            entries[device] = _entry_from(device, table)
        return cls(entries, sweep=doc.get("sweep"))

    @classmethod
    def load(cls, path: str) -> "TunedConfigs":
        """Load and validate a tuned.json file (typed errors name the
        offending key)."""
        if not os.path.exists(path):
            raise SweepConfigError(path, "tuned config file does not exist")
        with open(path) as fh:
            try:
                doc = json.load(fh)
            except json.JSONDecodeError as exc:
                raise SweepConfigError(path, f"invalid JSON: {exc}") from exc
        return cls.from_doc(doc, source=path)

    # ------------------------------------------------------------------ #

    def entry_for(self, device: DeviceSpec | str) -> TunedEntry | None:
        """The entry for a device (short key, spec name, or spec), or
        ``None`` when the sweep never tuned that device."""
        if isinstance(device, DeviceSpec):
            return self._by_spec_name.get(device.name)
        return self.entries.get(device) or self._by_spec_name.get(device)

    def options_for(self, device: DeviceSpec | str,
                    base: GpuOptions) -> GpuOptions:
        """``base`` with the device's tuned entry applied (or unchanged
        when the device is untuned)."""
        entry = self.entry_for(device)
        return base if entry is None else entry.apply(base)

    def summary(self) -> str:
        lines = [f"tuned configs ({len(self.entries)} device(s), "
                 f"objective {self.sweep.get('objective', '?')})"]
        for device, e in sorted(self.entries.items()):
            lines.append(f"  {device:<9} {e.kernel}/{e.engine} "
                         f"{e.threads_per_block}x{e.blocks_per_sm}")
        return "\n".join(lines)

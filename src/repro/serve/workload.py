"""Deterministic serving traces.

A trace is a list of :class:`~repro.serve.queue.ServeJob` with stamped
arrival times, drawn from a small pool of distinct graphs with a
zipf-ish popularity skew (the property that makes a preprocessed-graph
cache pay off: most queries hit a few hot graphs).  Everything is driven
by one ``numpy`` generator seeded from :attr:`TraceConfig.seed`, so the
same config always yields the same trace — byte-identical counts across
replays are an acceptance criterion, not an aspiration.

The pool optionally includes one *whale*: a graph whose working set
exceeds every device's memory, forcing the scheduler's
partitioned/distributed fallback.  :func:`size_fleet_memory` picks a
per-device capacity between the largest regular graph and the whale so
both admission outcomes occur at mini scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.options import GpuOptions
from repro.errors import ReproError
from repro.graphs.edgearray import EdgeArray
from repro.graphs.generators.rmat import rmat
from repro.gpusim.device import DeviceSpec
from repro.serve.queue import ServeJob, estimate_working_set_bytes

#: RMAT scales of the regular graph pool (repeat = distinct seed).
POOL_SCALES = (7, 7, 8, 8, 9)

#: RMAT scale of the whale (must dwarf the pool's largest).
WHALE_SCALE = 10

#: burst-mode window: every period, the first ``BURST_DUTY`` fraction is
#: the on-window (arrivals at ``burst`` x the base rate).
BURST_PERIOD_MS = 10_000.0
BURST_DUTY = 0.25


@dataclass(frozen=True)
class TraceConfig:
    """Knobs of one deterministic trace."""

    seed: int = 0
    #: simulated length of the arrival window, milliseconds.
    duration_ms: float = 60_000.0
    #: mean arrival rate (Poisson, open loop), jobs per simulated second.
    rate_per_s: float = 2.0
    #: include the oversized graph that forces the distributed fallback.
    include_whale: bool = True
    #: probability that a given arrival queries the whale.
    whale_prob: float = 0.04
    #: fraction of jobs that carry a deadline.
    deadline_prob: float = 0.5
    #: deadline slack, milliseconds past arrival.
    deadline_slack_ms: float = 5_000.0
    #: priority tiers and their weights (higher tier = more urgent).
    priorities: tuple[int, ...] = (0, 1, 2)
    priority_weights: tuple[float, ...] = (0.7, 0.2, 0.1)
    options: GpuOptions = field(default_factory=GpuOptions)
    #: uniform scaling of the arrival rate (overload studies drive the
    #: serve-scale bench at 10x and beyond).  1.0 leaves the rng stream
    #: untouched, so existing traces stay byte-identical.
    rate_multiplier: float = 1.0
    #: burstiness: >1 concentrates arrivals into periodic on-windows
    #: (every :data:`BURST_PERIOD_MS`, the first quarter runs at
    #: ``burst`` x the base rate; off-windows run at the residual rate so
    #: the long-run mean rate is preserved).  1.0 = plain Poisson.
    burst: float = 1.0


def build_graph_pool(config: TraceConfig = TraceConfig()) -> list[EdgeArray]:
    """The distinct graphs a trace queries (whale last, if any)."""
    pool = [rmat(scale, seed=config.seed * 1000 + i)
            for i, scale in enumerate(POOL_SCALES)]
    if config.include_whale:
        pool.append(rmat(WHALE_SCALE, seed=config.seed * 1000 + 99))
    return pool


def size_fleet_memory(pool: list[EdgeArray],
                      config: TraceConfig,
                      spec: DeviceSpec,
                      cache_fraction: float = 0.25) -> int:
    """Per-device memory override sized to the trace's graph pool.

    Picks a capacity such that every regular graph fits a device even
    when its preprocessed-graph cache is at full budget
    (``capacity × (1 − cache_fraction)`` ≥ the largest regular working
    set), while the whale (pool[-1], when present) fits no device and
    must take the distributed fallback.  Without a whale, returns the
    full-cache bound with 50% headroom.
    """
    regular = pool[:-1] if (config.include_whale and len(pool) > 1) else pool
    need = max(estimate_working_set_bytes(g, config.options, spec)
               for g in regular)
    lo = int(need / (1.0 - cache_fraction)) + 1
    if not config.include_whale or len(pool) < 2:
        return int(lo * 1.5)
    hi = estimate_working_set_bytes(pool[-1], config.options, spec)
    if lo >= hi:
        raise ReproError(
            f"no capacity window: regular graphs need {lo} with a full "
            f"cache but the whale fits from {hi}; raise WHALE_SCALE")
    return (lo + hi) // 2


def generate_trace(config: TraceConfig = TraceConfig(),
                   pool: list[EdgeArray] | None = None) -> list[ServeJob]:
    """Stamp a deterministic job trace over ``config.duration_ms``.

    Popularity over the regular pool is zipf-ish (weight ``1/(rank+1)``);
    the whale, when present, is drawn with its own fixed probability so a
    60-second trace reliably exercises the fallback path.
    """
    if config.rate_per_s <= 0:
        raise ReproError(f"rate must be > 0, got {config.rate_per_s}")
    if config.rate_multiplier <= 0:
        raise ReproError(
            f"rate_multiplier must be > 0, got {config.rate_multiplier}")
    if config.burst < 1:
        raise ReproError(f"burst must be >= 1, got {config.burst}")
    if pool is None:
        pool = build_graph_pool(config)
    if not pool:
        raise ReproError("empty graph pool")

    rng = np.random.default_rng(config.seed)
    regular = pool[:-1] if (config.include_whale and len(pool) > 1) else pool
    zipf = np.array([1.0 / (r + 1) for r in range(len(regular))])
    zipf /= zipf.sum()
    pri = np.asarray(config.priority_weights, dtype=float)
    pri /= pri.sum()

    base_rate = config.rate_per_s * config.rate_multiplier
    # Mean-preserving burstiness: on-windows run at `burst` x, the
    # off-windows at the residual rate (floored so gaps stay finite).
    off_factor = max((1.0 - BURST_DUTY * config.burst) / (1.0 - BURST_DUTY),
                     0.02)

    def rate_at(t_ms: float) -> float:
        if config.burst == 1.0:
            return base_rate
        in_burst = (t_ms % BURST_PERIOD_MS) < BURST_PERIOD_MS * BURST_DUTY
        return base_rate * (config.burst if in_burst else off_factor)

    jobs: list[ServeJob] = []
    t = 0.0
    while True:
        # Folding the rate into the exponential's scale keeps the rng
        # stream byte-identical to the seed trace when multiplier and
        # burst are both 1 (determinism is an acceptance criterion).
        t += rng.exponential(1000.0 / rate_at(t))
        if t >= config.duration_ms:
            break
        if (config.include_whale and len(pool) > 1
                and rng.random() < config.whale_prob):
            graph = pool[-1]
        else:
            graph = regular[rng.choice(len(regular), p=zipf)]
        deadline = (t + config.deadline_slack_ms
                    if rng.random() < config.deadline_prob else None)
        jobs.append(ServeJob(
            job_id=len(jobs),
            graph=graph,
            options=config.options,
            priority=int(config.priorities[rng.choice(len(pri), p=pri)]),
            arrival_ms=float(t),
            deadline_ms=deadline))
    return jobs

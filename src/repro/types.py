"""Shared dtype aliases and small value types.

The paper stores vertex identifiers as 32-bit signed integers and packs an
edge into a single 64-bit integer for the radix-sort optimization
(Section III-D2).  Centralizing the dtypes here keeps every module's
arrays layout-compatible and makes the 64-bit packing trick explicit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: dtype of a vertex identifier (CUDA ``int``).
VERTEX_DTYPE = np.int32

#: dtype of an edge index / node-array entry (CUDA ``int``; the paper's
#: graphs stay below 2^31 arcs).
INDEX_DTYPE = np.int32

#: dtype of a packed edge — two vertex ids in one machine word, the
#: Section III-D2 sort representation.
PACKED_DTYPE = np.uint64

#: dtype of the per-thread triangle counters (CUDA ``uint64_t``).
COUNT_DTYPE = np.uint64

#: Bytes per vertex identifier.
VERTEX_BYTES = np.dtype(VERTEX_DTYPE).itemsize


def pack_edges(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Pack two int32 vertex arrays into one uint64 array.

    Matches the layout the paper obtains by reinterpreting an array of
    ``{int u, int v;}`` structs as 64-bit little-endian integers: the
    *first* struct member lands in the low 32 bits, so sorting the packed
    words orders edges **by the second vertex, then by the first** —
    exactly the "slightly different ordering" the paper warns about in
    Section III-D2.
    """
    lo = first.astype(np.uint64) & np.uint64(0xFFFFFFFF)
    hi = second.astype(np.uint64) << np.uint64(32)
    return hi | lo


def unpack_edges(packed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_edges`: return ``(first, second)`` int32 arrays."""
    first = (packed & np.uint64(0xFFFFFFFF)).astype(VERTEX_DTYPE)
    second = (packed >> np.uint64(32)).astype(VERTEX_DTYPE)
    return first, second


@dataclass(frozen=True)
class TriangleCount:
    """Result of a counting run.

    Attributes
    ----------
    triangles : int
        Number of triangles in the undirected input graph (each triangle
        counted exactly once).
    elapsed_ms : float
        Simulated wall-clock milliseconds under the backend's timing
        model, measured with the paper's protocol (host→device copy of the
        edge array through copy-back of the result).  ``0.0`` for backends
        with no timing model.
    breakdown : dict
        Optional per-phase timing/work breakdown (keys are backend
        specific, e.g. ``"preprocess_ms"``, ``"count_ms"``, ``"dram_bytes"``).
    """

    triangles: int
    elapsed_ms: float = 0.0
    breakdown: dict | None = None

    def __int__(self) -> int:  # allow ``int(result)``
        return self.triangles

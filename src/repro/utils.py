"""Small shared helpers: deterministic RNG handling and array utilities."""

from __future__ import annotations

import os

import numpy as np


def rng_from(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed or pass one through.

    Every stochastic entry point in the library takes ``seed`` in this
    form so experiments are reproducible by construction.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def env_scale(default: float = 1.0) -> float:
    """Read the global ``REPRO_SCALE`` workload multiplier (see DESIGN §6)."""
    raw = os.environ.get("REPRO_SCALE", "")
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_SCALE must be a float, got {raw!r}") from exc
    if value <= 0:
        raise ValueError(f"REPRO_SCALE must be positive, got {value}")
    return value


def as_int_array(a, dtype) -> np.ndarray:
    """Convert ``a`` to a contiguous 1-D array of ``dtype`` without copying
    when the input already matches (views-not-copies; see the optimization
    guide's memory advice)."""
    arr = np.ascontiguousarray(a, dtype=dtype)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D array, got shape {arr.shape}")
    return arr


def human_bytes(n: int) -> str:
    """Format a byte count for log/table output (e.g. ``1.5 GiB``)."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    raise AssertionError("unreachable")


def human_ms(ms: float) -> str:
    """Format simulated milliseconds compactly (``123 ms`` / ``12.3 s``)."""
    if ms >= 10_000:
        return f"{ms / 1000.0:.1f} s"
    if ms >= 100:
        return f"{ms:.0f} ms"
    if ms >= 1:
        return f"{ms:.1f} ms"
    return f"{ms:.3f} ms"

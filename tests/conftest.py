"""Shared fixtures: small reference graphs with known triangle counts."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.graphs.edgearray import EdgeArray
from repro.graphs.generators import (barabasi_albert, complete_graph,
                                     cycle_graph, erdos_renyi_gnm,
                                     path_graph, rmat, star_graph,
                                     watts_strogatz)


@pytest.fixture
def k5() -> EdgeArray:
    """K5 — 10 triangles."""
    return complete_graph(5)


@pytest.fixture
def k12() -> EdgeArray:
    """K12 — 220 triangles."""
    return complete_graph(12)


@pytest.fixture
def triangle() -> EdgeArray:
    """A single triangle."""
    return cycle_graph(3)


@pytest.fixture
def two_triangles_shared_edge() -> EdgeArray:
    """Two triangles sharing edge (0,1): K4 minus edge (2,3)."""
    return EdgeArray.from_edges([(0, 1), (0, 2), (1, 2), (0, 3), (1, 3)])


@pytest.fixture
def triangle_free() -> EdgeArray:
    """Petersen graph — girth 5, zero triangles, degree-regular."""
    outer = [(i, (i + 1) % 5) for i in range(5)]
    spokes = [(i, i + 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    return EdgeArray.from_edges(outer + spokes + inner)


@pytest.fixture
def small_rmat() -> EdgeArray:
    """A small but non-trivial skewed graph (deterministic)."""
    return rmat(8, edge_factor=10, seed=42)


@pytest.fixture
def small_ba() -> EdgeArray:
    return barabasi_albert(120, 8, seed=7)


@pytest.fixture
def small_ws() -> EdgeArray:
    return watts_strogatz(150, 8, 0.1, seed=11)


@pytest.fixture
def small_er() -> EdgeArray:
    return erdos_renyi_gnm(100, 400, seed=5)


@pytest.fixture
def star20() -> EdgeArray:
    return star_graph(20)


@pytest.fixture
def path10() -> EdgeArray:
    return path_graph(10)


@pytest.fixture(scope="session")
def medium_rmat() -> EdgeArray:
    """Large enough that fixed launch overheads stop dominating (the
    regime the paper's graphs live in); session-scoped because GPU
    simulations on it take ~a second."""
    return rmat(11, edge_factor=14, seed=13)


@pytest.fixture(params=["k5", "triangle", "two_triangles_shared_edge",
                        "triangle_free", "small_rmat", "small_ba",
                        "small_ws", "small_er", "star20", "path10"])
def any_graph(request) -> EdgeArray:
    """Parametrized sweep over all reference graphs."""
    return request.getfixturevalue(request.param)


def expected_triangles(graph: EdgeArray) -> int:
    """Independent oracle: algebraic count via scipy sparse."""
    return repro.matmul_count(graph).triangles


@pytest.fixture
def oracle():
    return expected_triangles

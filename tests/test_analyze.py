"""The repro.analyze subsystem (ISSUE 9): CFG shapes, the dataflow
fixpoint, the plugin registry, baselines, emitter determinism, and the
path-sensitive checks SAN201-SAN205b (each with a seeded true positive
and a clean negative)."""

import ast
import json
from collections import Counter

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analyze import LEGACY_RULES, analyze_paths, analyze_source
from repro.analyze import baseline as baseline_mod
from repro.analyze import check_ids, get_check
from repro.analyze.cfg import build_cfg
from repro.analyze.dataflow import (ReachingDefinitions, propagate_taint,
                                    walk_shallow)
from repro.analyze.emit import (JSON_FORMAT, SARIF_VERSION, emit_json,
                                emit_sarif, emit_text)
from repro.analyze.findings import Finding
from repro.analyze.registry import CheckSpec, _REGISTRY, register
from repro.errors import AnalysisError, CheckRegistrationError

FIXTURE_PATH = "src/repro/core/fixture.py"


def _rules(source, path=FIXTURE_PATH, checks=None):
    result = analyze_source(source, path, checks=checks)
    return [f.rule for f in result.findings]


def _findings(source, path=FIXTURE_PATH, checks=None):
    return analyze_source(source, path, checks=checks).findings


def _fn_cfg(source):
    node = ast.parse(source).body[0]
    assert isinstance(node, ast.FunctionDef)
    return build_cfg(node)


# ------------------------------------------------------------------- #
# CFG construction
# ------------------------------------------------------------------- #

class TestCfg:
    def test_straight_line_single_block(self):
        cfg = _fn_cfg("def f():\n    a = 1\n    b = a\n")
        entry = cfg.block(cfg.entry_id)
        assert len(entry.stmts) == 2
        assert cfg.exit_id in entry.succs

    def test_if_else_diamond(self):
        cfg = _fn_cfg(
            "def f(c):\n"
            "    if c:\n        a = 1\n"
            "    else:\n        a = 2\n"
            "    return a\n")
        labels = [b.label for b in cfg.blocks.values()]
        assert "if-body" in labels and "if-else" in labels \
            and "if-join" in labels
        entry = cfg.block(cfg.entry_id)
        assert len(entry.succs) == 2  # both arms branch from the test

    def test_if_header_exposes_condition_reads(self):
        cfg = _fn_cfg("def f(c):\n    if c:\n        pass\n")
        header = cfg.block(cfg.entry_id).stmts[-1]
        assert isinstance(header, ast.Expr)
        assert isinstance(header.value, ast.Name)

    def test_early_return_edges_to_exit(self):
        cfg = _fn_cfg(
            "def f(c):\n"
            "    if c:\n        return 1\n"
            "    return 2\n")
        exit_preds = cfg.preds()[cfg.exit_id]
        assert len(exit_preds) == 2

    def test_loop_has_back_edge_and_after_block(self):
        cfg = _fn_cfg(
            "def f(n):\n"
            "    i = 0\n"
            "    while i < n:\n        i = i + 1\n"
            "    return i\n")
        header = next(b for b in cfg.blocks.values()
                      if b.label == "loop-header")
        body = next(b for b in cfg.blocks.values()
                    if b.label == "loop-body")
        assert header.id in body.succs  # the back edge
        after = next(b for b in cfg.blocks.values()
                     if b.label == "loop-after")
        assert after.id in header.succs  # loop may not run

    def test_for_header_binds_loop_target(self):
        cfg = _fn_cfg("def f(xs):\n    for x in xs:\n        pass\n")
        header = next(b for b in cfg.blocks.values()
                      if b.label == "loop-header")
        assign = header.stmts[0]
        assert isinstance(assign, ast.Assign)
        assert isinstance(assign.targets[0], ast.Name)
        assert assign.targets[0].id == "x"

    def test_try_body_edges_into_handler(self):
        cfg = _fn_cfg(
            "def f():\n"
            "    try:\n        a = risky()\n"
            "    except ValueError:\n        a = 0\n"
            "    return a\n")
        handler = next(b for b in cfg.blocks.values()
                       if b.label == "except")
        try_blocks = [b for b in cfg.blocks.values()
                      if b.label == "try-body"]
        assert try_blocks
        assert all(handler.id in b.succs for b in try_blocks)

    def test_unhandled_raise_goes_to_raise_sink_not_exit(self):
        cfg = _fn_cfg("def f():\n    raise ValueError()\n")
        preds = cfg.preds()
        assert preds[cfg.raise_id]
        # Nothing reaches the normal exit through the raise path.
        raising = {b.id for b in cfg.blocks.values()
                   if any(isinstance(s, ast.Raise) for s in b.stmts)}
        assert all(p not in raising for p in preds[cfg.exit_id])

    def test_with_binds_as_name_in_header(self):
        cfg = _fn_cfg(
            "def f(p):\n"
            "    with open(p) as fh:\n        return fh\n")
        entry = cfg.block(cfg.entry_id)
        # The with body flows into the same block: header assign first,
        # then the body's return.
        assign, ret = entry.stmts
        assert isinstance(assign, ast.Assign)
        assert assign.targets[0].id == "fh"
        assert isinstance(ret, ast.Return)

    def test_break_edges_to_loop_after(self):
        cfg = _fn_cfg(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        if x:\n            break\n"
            "    return 0\n")
        after = next(b for b in cfg.blocks.values()
                     if b.label == "loop-after")
        assert len(cfg.preds()[after.id]) >= 2  # header fallout + break


# ------------------------------------------------------------------- #
# dataflow
# ------------------------------------------------------------------- #

class TestDataflow:
    def test_fixpoint_terminates_on_loop(self):
        # A loop with a cyclically reassigned name: the powerset lattice
        # must stabilize instead of oscillating.
        cfg = _fn_cfg(
            "def f(n):\n"
            "    x = 0\n"
            "    for i in range(n):\n"
            "        x = x + i\n"
            "    return x\n")
        rd = ReachingDefinitions(cfg)
        assert rd.sites("x")  # both definitions may reach the exit
        assert len(rd.sites("x")) == 2

    def test_reaching_defs_strong_update(self):
        cfg = _fn_cfg("def f():\n    x = 1\n    x = 2\n    return x\n")
        assert len(cfg.block(cfg.entry_id).stmts) == 3
        rd = ReachingDefinitions(cfg)
        assert rd.sites("x") == frozenset({(cfg.entry_id, 1)})

    def test_taint_strong_update_clears_rebound_name(self):
        cfg = _fn_cfg(
            "def f(tid, data):\n"
            "    x = tid\n"
            "    x = data\n")

        def expr_tainted(expr, tainted):
            return isinstance(expr, ast.Name) and (expr.id in tainted
                                                   or expr.id == "tid")
        state = propagate_taint(cfg, frozenset({"tid"}),
                                expr_tainted)[cfg.exit_id]
        assert "tid" in state and "x" not in state

    def test_taint_joins_over_branches(self):
        cfg = _fn_cfg(
            "def f(tid, data, c):\n"
            "    if c:\n        x = tid\n"
            "    else:\n        x = data\n"
            "    y = x\n")

        def expr_tainted(expr, tainted):
            return isinstance(expr, ast.Name) and (expr.id in tainted
                                                   or expr.id == "tid")
        state = propagate_taint(cfg, frozenset({"tid"}),
                                expr_tainted)[cfg.exit_id]
        assert "x" in state and "y" in state  # may-taint survives joins

    def test_walk_shallow_skips_nested_function_bodies(self):
        tree = ast.parse("visible = 1\n"
                         "def helper():\n    hidden = 2\n")
        names = {n.id for n in walk_shallow(tree)
                 if isinstance(n, ast.Name)}
        assert "visible" in names and "hidden" not in names

    def test_walk_shallow_never_descends_into_opaque_root(self):
        fn = ast.parse("def f():\n    inner = 1\n").body[0]
        names = [n for n in walk_shallow(fn) if isinstance(n, ast.Name)]
        assert names == []  # the unit's body is iterated separately


# ------------------------------------------------------------------- #
# registry
# ------------------------------------------------------------------- #

class TestRegistry:
    def test_all_expected_rules_registered(self):
        assert set(check_ids()) >= set(LEGACY_RULES) | {
            "SAN201", "SAN202", "SAN203b", "SAN204b", "SAN205b"}

    def test_duplicate_id_is_typed_error(self):
        spec = CheckSpec(id="SAN999", name="probe-a", summary="s",
                         severity="error", run=lambda ctx: [])
        register(spec)
        try:
            clone = CheckSpec(id="SAN999", name="probe-b", summary="s",
                              severity="error", run=lambda ctx: [])
            with pytest.raises(CheckRegistrationError) as exc:
                register(clone)
            assert "SAN999" in str(exc.value)
            register(spec)  # same object re-registers fine (idempotent)
        finally:
            _REGISTRY.pop("SAN999", None)

    def test_malformed_rule_id_rejected(self):
        with pytest.raises(CheckRegistrationError):
            CheckSpec(id="BUG7", name="x", summary="s", severity="error",
                      run=lambda ctx: [])

    def test_unknown_severity_rejected(self):
        with pytest.raises(CheckRegistrationError):
            CheckSpec(id="SAN998", name="x", summary="s",
                      severity="fatal", run=lambda ctx: [])

    def test_get_unknown_check_is_typed_error(self):
        with pytest.raises(AnalysisError):
            get_check("SAN000x")

    def test_skip_parts_exempts_package(self):
        spec = get_check("SAN201")
        assert not spec.applies_to(("src", "repro", "gpusim", "x.py"))
        assert spec.applies_to(("src", "repro", "core", "x.py"))


# ------------------------------------------------------------------- #
# baselines
# ------------------------------------------------------------------- #

def _finding(path="src/a.py", rule="SAN201", line=3):
    return Finding(path=path, line=line, col=4, rule=rule, message="m")


class TestBaseline:
    def test_round_trip_matches_everything(self, tmp_path):
        findings = [_finding(line=3), _finding(line=9, rule="SAN202")]
        path = tmp_path / "baseline.json"
        baseline_mod.save(path, findings)
        new, matched, stale = baseline_mod.split(
            findings, baseline_mod.load(path))
        assert new == [] and stale == []
        assert sorted(matched) == sorted(findings)

    def test_new_finding_not_absorbed(self, tmp_path):
        path = tmp_path / "baseline.json"
        baseline_mod.save(path, [_finding(line=3)])
        new, _matched, stale = baseline_mod.split(
            [_finding(line=3), _finding(line=99)],
            baseline_mod.load(path))
        assert [f.line for f in new] == [99]
        assert stale == []

    def test_stale_entry_surfaces(self, tmp_path):
        path = tmp_path / "baseline.json"
        baseline_mod.save(path, [_finding(line=3), _finding(line=9)])
        new, _matched, stale = baseline_mod.split(
            [_finding(line=3)], baseline_mod.load(path))
        assert new == []
        assert stale == [("src/a.py", "SAN201", 9)]

    def test_matching_is_a_multiset(self, tmp_path):
        path = tmp_path / "baseline.json"
        baseline_mod.save(path, [_finding(line=3)])
        new, matched, _stale = baseline_mod.split(
            [_finding(line=3), _finding(line=3)],
            baseline_mod.load(path))
        assert len(matched) == 1 and len(new) == 1

    def test_message_ignored_in_matching(self, tmp_path):
        path = tmp_path / "baseline.json"
        baseline_mod.save(path, [_finding()])
        reworded = Finding(path="src/a.py", line=3, col=4, rule="SAN201",
                           message="entirely different wording")
        new, matched, stale = baseline_mod.split(
            [reworded], baseline_mod.load(path))
        assert new == [] and stale == [] and matched == [reworded]

    @pytest.mark.parametrize("text", [
        "{nope", '{"format": "something/else", "findings": []}',
        '{"format": "repro-analyze-baseline/v1", "findings": "x"}',
        '{"format": "repro-analyze-baseline/v1",'
        ' "findings": [{"path": 3}]}',
    ])
    def test_malformed_baseline_is_typed_error(self, tmp_path, text):
        bad = tmp_path / "bad.json"
        bad.write_text(text)
        with pytest.raises(AnalysisError):
            baseline_mod.load(bad)

    def test_missing_baseline_is_typed_error(self, tmp_path):
        with pytest.raises(AnalysisError):
            baseline_mod.load(tmp_path / "absent.json")


# ------------------------------------------------------------------- #
# emitters
# ------------------------------------------------------------------- #

_FINDING_STRATEGY = st.builds(
    Finding,
    path=st.sampled_from(["src/a.py", "src/b.py", "examples/demo.py"]),
    line=st.integers(min_value=1, max_value=500),
    col=st.integers(min_value=0, max_value=79),
    rule=st.sampled_from(["SAN101", "SAN201", "SAN203b"]),
    message=st.text(min_size=0, max_size=40),
    severity=st.sampled_from(["error", "warning", "note"]),
)


class TestEmitters:
    def test_text_clean(self):
        assert emit_text([]) == "clean: no findings\n"

    def test_text_lists_and_counts(self):
        text = emit_text([_finding(), _finding(rule="SAN202", line=9)])
        assert "src/a.py:3:4: SAN201 m" in text
        assert "2 findings" in text
        assert "SAN201×1" in text and "SAN202×1" in text

    def test_json_schema(self):
        doc = json.loads(emit_json([_finding()], files=7))
        assert doc["format"] == JSON_FORMAT
        assert doc["files"] == 7
        assert doc["counts"] == {"SAN201": 1}
        assert doc["findings"][0]["rule"] == "SAN201"

    def test_sarif_rules_come_from_registry(self):
        doc = json.loads(emit_sarif([_finding()]))
        assert doc["version"] == SARIF_VERSION
        driver = doc["runs"][0]["tool"]["driver"]
        rule_ids = [r["id"] for r in driver["rules"]]
        assert rule_ids == sorted(check_ids())
        result = doc["runs"][0]["results"][0]
        assert result["ruleId"] == "SAN201"
        assert result["ruleIndex"] == rule_ids.index("SAN201")
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region == {"startLine": 3, "startColumn": 5}

    @given(st.lists(
        _FINDING_STRATEGY, max_size=8,
        unique_by=lambda f: (f.path, f.line, f.col, f.rule)))
    def test_emitters_byte_identical_and_order_insensitive(self, findings):
        """Same set of findings -> byte-identical output, in every
        format, regardless of input order."""
        reordered = list(reversed(findings))
        assert emit_text(findings) == emit_text(reordered)
        assert emit_json(findings) == emit_json(reordered)
        assert emit_sarif(findings) == emit_sarif(reordered)
        assert emit_sarif(findings) == emit_sarif(list(findings))


# ------------------------------------------------------------------- #
# driver
# ------------------------------------------------------------------- #

class TestDriver:
    def test_syntax_error_becomes_san000_record(self):
        result = analyze_source("def broken(:\n", "bad.py")
        assert not result.findings
        assert [f.rule for f in result.errors] == ["SAN000"]
        assert result.files == 1

    def test_checks_filter_restricts_rules(self):
        assert "SAN201" not in _rules(_SAN201_BAD, checks=LEGACY_RULES)

    def test_analyze_paths_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text(_SAN201_BAD)
        (tmp_path / "pkg" / "notes.txt").write_text("not python")
        result = analyze_paths([str(tmp_path)])
        assert result.files == 1
        assert [f.rule for f in result.findings] == ["SAN201"]


# ------------------------------------------------------------------- #
# SAN201 — static racecheck
# ------------------------------------------------------------------- #

_SAN201_BAD = """\
def kernel(engine, buf, vertex_ids, tid, vals):
    engine.write(buf, vertex_ids, vals, tid)
"""

_SAN201_GOOD = """\
def kernel(engine, buf, tid, vals):
    idx = tid * 2 + 1
    engine.write(buf, idx, vals, tid)
"""


class TestSan201:
    def test_data_indexed_store_flagged(self):
        findings = _findings(_SAN201_BAD)
        assert [f.rule for f in findings] == ["SAN201"]
        assert "vertex_ids" in findings[0].message

    def test_identity_derived_index_clean(self):
        assert _rules(_SAN201_GOOD) == []

    def test_arange_iteration_space_is_identity(self):
        src = ("def kernel(engine, buf, vals, n):\n"
               "    tids = np.arange(n)\n"
               "    engine.atomic_add(buf, tids, vals, tids)\n")
        assert _rules(src) == []

    def test_taint_lost_through_data_lookup(self):
        # vertex_ids[tid] is *data indexed by identity*, not identity.
        src = ("def kernel(engine, buf, vertex_ids, tid, vals):\n"
               "    dest = vertex_ids[tid]\n"
               "    engine.atomic_add(buf, dest, vals, tid)\n")
        assert _rules(src) == ["SAN201"]

    def test_branch_rebinding_keeps_may_taint(self):
        src = ("def kernel(engine, buf, data, tid, vals, cond):\n"
               "    idx = tid\n"
               "    if cond:\n"
               "        idx = tid + 1\n"
               "    engine.write(buf, idx, vals, tid)\n")
        assert _rules(src) == []

    def test_suppression_at_call_site(self):
        src = _SAN201_BAD.replace(
            "engine.write(buf, vertex_ids, vals, tid)",
            "engine.write(buf, vertex_ids, vals, tid)  # san-ok: SAN201")
        assert _rules(src) == []


# ------------------------------------------------------------------- #
# SAN202 — stream-wait hygiene
# ------------------------------------------------------------------- #

class TestSan202:
    def test_self_wait_flagged(self):
        src = "def f(tl):\n    tl.wait_for(1, 1)\n"
        findings = _findings(src)
        assert [f.rule for f in findings] == ["SAN202"]
        assert "waits on itself" in findings[0].message

    def test_wait_on_unrecorded_stream_flagged(self):
        src = "def f(tl):\n    tl.wait_for(0, 2)\n"
        findings = _findings(src)
        assert [f.rule for f in findings] == ["SAN202"]
        assert "unrecorded" in findings[0].message

    def test_reversed_pair_reported_as_cycle(self):
        src = ("def f(tl):\n"
               "    tl.wait_for(1, 2)\n"
               "    tl.wait_for(2, 1)\n")
        findings = _findings(src)
        assert [f.rule for f in findings] == ["SAN202"]
        assert "cycle" in findings[0].message

    def test_issue_then_wait_is_clean(self):
        src = ("def f(tl):\n"
               "    tl.add_on('h2d', 1.0, 'copy', 1)\n"
               "    tl.wait_for(0, 1)\n")
        assert _rules(src) == []

    def test_arithmetic_stream_ids_out_of_scope(self):
        # The multi-GPU ring's wait_for(d, d - 1) shape.
        src = ("def f(tl, d):\n"
               "    tl.wait_for(d, d - 1)\n")
        assert _rules(src) == []

    def test_symbolic_upstream_in_passive_helper_skipped(self):
        # A helper that merely receives stream ids issues no events of
        # its own; intraprocedural matching cannot judge it.
        src = "def f(tl, upstream):\n    tl.wait_for(0, upstream)\n"
        assert _rules(src) == []

    def test_symbolic_upstream_checked_when_scope_issues(self):
        src = ("def f(tl, copy_stream, kernel_stream):\n"
               "    tl.add_on('h2d', 1.0, 'copy', stream=copy_stream)\n"
               "    tl.wait_for(0, kernel_stream)\n")
        findings = _findings(src)
        assert [f.rule for f in findings] == ["SAN202"]
        assert "kernel_stream" in findings[0].message


# ------------------------------------------------------------------- #
# SAN203b — buffer lifetime
# ------------------------------------------------------------------- #

class TestSan203b:
    def test_use_after_free(self):
        src = ("def f(mem, engine, n):\n"
               "    buf = mem.alloc(n)\n"
               "    mem.free(buf)\n"
               "    return engine.read(buf)\n")
        findings = _findings(src)
        assert [f.rule for f in findings] == ["SAN203b"]
        assert "after it was freed" in findings[0].message

    def test_double_free(self):
        src = ("def f(mem, n):\n"
               "    buf = mem.alloc(n)\n"
               "    mem.free(buf)\n"
               "    mem.free(buf)\n")
        findings = _findings(src)
        assert [f.rule for f in findings] == ["SAN203b"]
        assert "double free" in findings[0].message

    def test_leak_on_early_return(self):
        src = ("def f(mem, n, cond):\n"
               "    buf = mem.alloc(n)\n"
               "    if cond:\n"
               "        return 0\n"
               "    mem.free(buf)\n"
               "    return 1\n")
        findings = _findings(src)
        assert [f.rule for f in findings] == ["SAN203b"]
        assert "leaks on this early return" in findings[0].message
        assert findings[0].line == 4  # the return statement

    def test_maybe_freed_is_not_reported(self):
        # Only *definite* facts fire: freed on one branch, used after
        # the join -> maybe-freed -> silent.
        src = ("def f(mem, engine, n, cond):\n"
               "    buf = mem.alloc(n)\n"
               "    if cond:\n"
               "        mem.free(buf)\n"
               "    engine.read(buf)\n")
        assert _rules(src) == []

    def test_try_alloc_early_return_not_a_leak(self):
        # The queue.fits_device shape: try_alloc may return None, so
        # returning early without freeing is not a definite leak.
        src = ("def fits(mem, n):\n"
               "    probe = mem.try_alloc(n)\n"
               "    if probe is None:\n"
               "        return False\n"
               "    mem.free(probe)\n"
               "    return True\n")
        assert _rules(src) == []

    def test_returned_buffer_escapes_ownership(self):
        src = ("def f(mem, n, cond):\n"
               "    buf = mem.alloc(n)\n"
               "    if cond:\n"
               "        return buf\n"
               "    mem.free(buf)\n"
               "    return None\n")
        assert _rules(src) == []

    def test_free_all_then_use(self):
        src = ("def f(mem, engine, n):\n"
               "    buf = mem.alloc(n)\n"
               "    mem.free_all()\n"
               "    return engine.read(buf)\n")
        assert _rules(src) == ["SAN203b"]


# ------------------------------------------------------------------- #
# SAN204b — launch geometry vs the device catalog
# ------------------------------------------------------------------- #

class TestSan204b:
    def test_catalog_geometry_clean(self):
        src = "cfg = LaunchConfig(64, 8)\n"
        assert _rules(src) == []

    def test_tpb_over_hard_cap_flagged(self):
        findings = _findings("cfg = LaunchConfig(4096 * 4)\n")
        assert [f.rule for f in findings] == ["SAN204b"]
        assert "exceeds the hardware cap" in findings[0].message

    def test_oversubscribed_sm_flagged(self):
        src = "cfg = LaunchConfig(1024, blocks_per_sm=4)\n"
        findings = _findings(src)
        assert [f.rule for f in findings] == ["SAN204b"]
        assert "max_threads_per_sm" in findings[0].message

    def test_nonpositive_geometry_flagged(self):
        assert _rules("cfg = LaunchConfig(threads_per_block=0)\n") \
            == ["SAN204b"]
        assert _rules("cfg = LaunchConfig(64, -1)\n") == ["SAN204b"]

    def test_non_constant_dimension_skipped(self):
        src = ("def f(tpb):\n"
               "    return LaunchConfig(tpb, 8)\n")
        assert _rules(src) == []

    def test_non_warp_multiple_flagged(self):
        findings = _findings("cfg = LaunchConfig(50, 1)\n")
        assert [f.rule for f in findings] == ["SAN204b"]
        assert "warp" in findings[0].message


# ------------------------------------------------------------------- #
# SAN205b — untimed transfers
# ------------------------------------------------------------------- #

class TestSan205b:
    def test_discarded_transfer_cost_flagged(self):
        src = "def f(mem, nbytes):\n    mem.h2d_ms(nbytes)\n"
        findings = _findings(src)
        assert [f.rule for f in findings] == ["SAN205b"]
        assert "discarded" in findings[0].message

    def test_assigned_but_never_read_flagged(self):
        src = ("def f(mem, nbytes):\n"
               "    cost = mem.d2h_ms(nbytes)\n"
               "    return 0\n")
        findings = _findings(src)
        assert [f.rule for f in findings] == ["SAN205b"]
        assert "never" in findings[0].message

    def test_stamped_on_timeline_clean(self):
        src = ("def f(tl, mem, nbytes):\n"
               "    cost = mem.h2d_ms(nbytes)\n"
               "    tl.add_on('h2d', cost, 'copy', 1)\n")
        assert _rules(src) == []

    def test_cost_as_argument_clean(self):
        src = ("def f(tl, mem, nbytes):\n"
               "    tl.add_on('h2d', mem.h2d_ms(nbytes), 'copy', 1)\n")
        assert _rules(src) == []

    def test_cost_in_arithmetic_clean(self):
        src = ("def f(mem, nbytes):\n"
               "    return 2.0 + mem.h2d_ms(nbytes)\n")
        assert _rules(src) == []

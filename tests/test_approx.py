"""Unit tests for the approximate counters (Section V related work)."""

import pytest

from repro.cpu.approx import birthday_paradox_count, doulion_count
from repro.cpu.matmul import matmul_count
from repro.errors import ReproError
from repro.graphs.generators import clique_cover, complete_graph


@pytest.fixture(scope="module")
def dense_graph():
    """Triangle-rich graph where relative estimation error is small."""
    return clique_cover(400, 120, mean_group_size=14, seed=3)


class TestDoulion:
    def test_p_one_is_exact(self, small_ba, oracle):
        res = doulion_count(small_ba, p=1.0, seed=1)
        assert res.estimated_triangles == oracle(small_ba)

    def test_unbiased_ballpark(self, dense_graph):
        truth = matmul_count(dense_graph).triangles
        estimates = [doulion_count(dense_graph, p=0.5, seed=s).estimate
                     for s in range(5)]
        mean = sum(estimates) / len(estimates)
        assert mean == pytest.approx(truth, rel=0.25)

    def test_sparsification_reduces_edges(self, small_ba):
        res = doulion_count(small_ba, p=0.3, seed=2)
        assert res.kept_edges < small_ba.num_edges * 0.45
        assert res.kept_edges > small_ba.num_edges * 0.15

    def test_invalid_p(self, k5):
        with pytest.raises(ReproError):
            doulion_count(k5, p=0.0)
        with pytest.raises(ReproError):
            doulion_count(k5, p=1.5)

    def test_scaling_factor(self, k5):
        res = doulion_count(k5, p=0.5, seed=4)
        assert res.estimate == pytest.approx(res.sparsified_triangles / 0.125)


class TestBirthdayParadox:
    def test_complete_graph_transitivity(self):
        """K_n has transitivity exactly 1; the estimator must see ~1."""
        g = complete_graph(40)
        res = birthday_paradox_count(g, edge_reservoir=300,
                                     wedge_reservoir=300, seed=1)
        assert res.transitivity_estimate == pytest.approx(1.0, abs=0.15)

    def test_triangle_estimate_ballpark(self, dense_graph):
        truth = matmul_count(dense_graph).triangles
        res = birthday_paradox_count(dense_graph, edge_reservoir=800,
                                     wedge_reservoir=800, seed=2)
        assert truth / 4 < res.triangle_estimate < truth * 4

    def test_triangle_free_graph(self, triangle_free):
        res = birthday_paradox_count(triangle_free, edge_reservoir=100,
                                     wedge_reservoir=100, seed=3)
        assert res.transitivity_estimate == 0.0
        assert res.estimated_triangles == 0

    def test_tiny_stream(self, triangle):
        res = birthday_paradox_count(triangle, seed=4)
        assert res.triangle_estimate >= 0.0

    def test_invalid_reservoirs(self, k5):
        with pytest.raises(ReproError):
            birthday_paradox_count(k5, edge_reservoir=1)

"""Unit tests for the approximate counters (Section V related work)."""

import pytest

from repro.cpu.approx import birthday_paradox_count, doulion_count
from repro.cpu.matmul import matmul_count
from repro.errors import ReproError
from repro.graphs.generators import clique_cover, complete_graph


@pytest.fixture(scope="module")
def dense_graph():
    """Triangle-rich graph where relative estimation error is small."""
    return clique_cover(400, 120, mean_group_size=14, seed=3)


class TestDoulion:
    def test_p_one_is_exact(self, small_ba, oracle):
        res = doulion_count(small_ba, p=1.0, seed=1)
        assert res.estimated_triangles == oracle(small_ba)

    def test_unbiased_ballpark(self, dense_graph):
        truth = matmul_count(dense_graph).triangles
        estimates = [doulion_count(dense_graph, p=0.5, seed=s).estimate
                     for s in range(5)]
        mean = sum(estimates) / len(estimates)
        assert mean == pytest.approx(truth, rel=0.25)

    def test_sparsification_reduces_edges(self, small_ba):
        res = doulion_count(small_ba, p=0.3, seed=2)
        assert res.kept_edges < small_ba.num_edges * 0.45
        assert res.kept_edges > small_ba.num_edges * 0.15

    def test_invalid_p(self, k5):
        with pytest.raises(ReproError):
            doulion_count(k5, p=0.0)
        with pytest.raises(ReproError):
            doulion_count(k5, p=1.5)

    def test_scaling_factor(self, k5):
        res = doulion_count(k5, p=0.5, seed=4)
        assert res.estimate == pytest.approx(res.sparsified_triangles / 0.125)

    def test_error_bound_is_zero_for_exact_runs(self, small_ba):
        res = doulion_count(small_ba, p=1.0, seed=1)
        assert res.error_bound == 0.0
        assert res.relative_error_bound == 0.0

    def test_error_bound_brackets_truth(self, dense_graph):
        # A 2-sigma plug-in bound: allow the occasional 3-sigma escape
        # but demand the bracket holds for the large majority of seeds.
        truth = matmul_count(dense_graph).triangles
        hits = sum(
            abs(doulion_count(dense_graph, p=0.5, seed=s).estimate - truth)
            <= doulion_count(dense_graph, p=0.5, seed=s).error_bound
            for s in range(10))
        assert hits >= 8

    def test_error_bound_shrinks_with_p(self, dense_graph):
        loose = doulion_count(dense_graph, p=0.25, seed=1)
        tight = doulion_count(dense_graph, p=0.75, seed=1)
        assert tight.relative_error_bound < loose.relative_error_bound


class TestBirthdayParadox:
    def test_complete_graph_transitivity(self):
        """K_n has transitivity exactly 1; the estimator must see ~1."""
        g = complete_graph(40)
        res = birthday_paradox_count(g, edge_reservoir=300,
                                     wedge_reservoir=300, seed=1)
        assert res.transitivity_estimate == pytest.approx(1.0, abs=0.15)

    def test_triangle_estimate_ballpark(self, dense_graph):
        truth = matmul_count(dense_graph).triangles
        res = birthday_paradox_count(dense_graph, edge_reservoir=800,
                                     wedge_reservoir=800, seed=2)
        assert truth / 4 < res.triangle_estimate < truth * 4

    def test_triangle_free_graph(self, triangle_free):
        res = birthday_paradox_count(triangle_free, edge_reservoir=100,
                                     wedge_reservoir=100, seed=3)
        assert res.transitivity_estimate == 0.0
        assert res.estimated_triangles == 0

    def test_tiny_stream(self, triangle):
        res = birthday_paradox_count(triangle, seed=4)
        assert res.triangle_estimate >= 0.0

    def test_invalid_reservoirs(self, k5):
        with pytest.raises(ReproError):
            birthday_paradox_count(k5, edge_reservoir=1)

    def test_error_bound_zero_on_triangle_free(self, triangle_free):
        res = birthday_paradox_count(triangle_free, edge_reservoir=100,
                                     wedge_reservoir=100, seed=3)
        assert res.closed_wedges == 0
        assert res.relative_error_bound in (0.0,) or res.error_bound >= 0.0

    def test_error_bound_positive_when_sampling(self, dense_graph):
        res = birthday_paradox_count(dense_graph, edge_reservoir=800,
                                     wedge_reservoir=800, seed=2)
        assert 0 < res.closed_wedges <= res.wedge_reservoir_fill
        assert res.error_bound > 0.0
        assert res.relative_error_bound > 0.0

    def test_error_bound_brackets_truth_usually(self, dense_graph):
        truth = matmul_count(dense_graph).triangles
        hits = 0
        for s in range(10):
            res = birthday_paradox_count(dense_graph, edge_reservoir=800,
                                         wedge_reservoir=800, seed=s)
            hits += abs(res.triangle_estimate - truth) <= res.error_bound
        assert hits >= 7

"""Unit tests for the engine's atomicAdd path."""

import numpy as np
import pytest

from repro.errors import KernelFault
from repro.gpusim.device import GTX_980
from repro.gpusim.memory import DeviceMemory
from repro.gpusim.simt import LaunchConfig, SimtEngine


@pytest.fixture
def setup():
    mem = DeviceMemory(GTX_980)
    buf = mem.alloc("acc", np.zeros(32, np.int64))
    engine = SimtEngine(GTX_980, LaunchConfig(64, 1))
    return engine, buf


class TestAtomicAdd:
    def test_functional_scatter_add(self, setup):
        engine, buf = setup
        engine.atomic_add(buf, np.array([3, 3, 5]), np.array([1, 1, 4]),
                          np.array([0, 1, 2]))
        assert buf.data[3] == 2
        assert buf.data[5] == 4

    def test_out_of_bounds_faults(self, setup):
        engine, buf = setup
        with pytest.raises(KernelFault, match="atomic"):
            engine.atomic_add(buf, np.array([32]), np.array([1]),
                              np.array([0]))

    def test_traffic_accounted(self, setup):
        engine, buf = setup
        before = engine.report.dram_bytes
        engine.atomic_add(buf, np.arange(8) * 4, np.ones(8, np.int64),
                          np.arange(8))
        assert engine.report.dram_bytes > before
        assert engine.report.transactions > 0

    def test_colliding_lanes_cost_more_transactions(self, setup):
        """Lanes hitting distinct addresses serialize into more
        transactions than lanes sharing one (atomic contention model)."""
        engine, buf = setup
        distinct = SimtEngine(GTX_980, LaunchConfig(64, 1))
        distinct.atomic_add(buf, np.arange(16), np.ones(16, np.int64),
                            np.arange(16))
        shared = SimtEngine(GTX_980, LaunchConfig(64, 1))
        shared.atomic_add(buf, np.zeros(16, np.int64),
                          np.ones(16, np.int64), np.arange(16))
        assert distinct.report.transactions > shared.report.transactions

    def test_empty(self, setup):
        engine, buf = setup
        engine.atomic_add(buf, np.zeros(0, np.int64), np.zeros(0, np.int64),
                          np.zeros(0, np.int64))
        assert engine.report.transactions == 0

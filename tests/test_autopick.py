"""The stats-driven kernel auto-pick (``GpuOptions(kernel="auto")``):
calibration loading, nearest-cell lookup, layout-aware candidate sets,
pipeline resolution, and determinism.

The acceptance contract — the pick on a calibration graph equals that
graph's committed measured winner — is pinned in
``tests/test_kernelzoo.py`` (where the zoo graphs are rebuilt); here
the lookup itself is exercised against both the committed artifact and
small synthetic calibrations.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.autopick import (KERNELZOO_ENV, KERNELZOO_FORMAT,
                                 KernelZooCalibration, allowed_kernels,
                                 find_calibration_file, pick_kernel,
                                 resolve_options)
from repro.core.forward_gpu import gpu_count_triangles
from repro.core.options import GpuOptions
from repro.cpu.forward import forward_count_cpu
from repro.errors import ReproError

REPO = Path(__file__).resolve().parent.parent
COMMITTED = REPO / "BENCH_kernelzoo.json"


def _calibration(cells) -> KernelZooCalibration:
    return KernelZooCalibration.from_doc({
        "format": KERNELZOO_FORMAT,
        "device": "gtx980",
        "cells": cells,
    }, source="<test>")


def _cell(graph, skew, dens, winner="two_pointer", **ms):
    timings = {"two_pointer": 1.0, "binary_search": 2.0, "hash": 3.0,
               "warp_intersect": 4.0}
    timings.update(ms)
    timings[winner] = min(timings.values()) / 2
    return {"graph": graph, "family": "synthetic", "degree_skew": skew,
            "density": dens,
            "kernels": {k: {"kernel_ms": v} for k, v in timings.items()},
            "winner": winner}


class TestCalibrationLoading:
    def test_committed_artifact_parses(self):
        cal = KernelZooCalibration.load(COMMITTED)
        assert cal.cells
        for cell in cal.cells:
            assert cell.winner in dict(cell.kernel_ms)

    def test_bad_format_is_typed_error(self):
        with pytest.raises(ReproError, match="repro-kernelzoo"):
            KernelZooCalibration.from_doc({"format": "nope"})

    def test_no_cells_is_typed_error(self):
        with pytest.raises(ReproError, match="no cells"):
            KernelZooCalibration.from_doc(
                {"format": KERNELZOO_FORMAT, "cells": []})

    def test_malformed_cell_names_regeneration(self):
        with pytest.raises(ReproError, match="kernelzoo"):
            KernelZooCalibration.from_doc(
                {"format": KERNELZOO_FORMAT,
                 "cells": [{"graph": "x"}]})

    def test_env_override_wins(self, monkeypatch, tmp_path):
        target = tmp_path / "cal.json"
        target.write_text("{}")
        monkeypatch.setenv(KERNELZOO_ENV, str(target))
        assert find_calibration_file() == target

    def test_missing_file_error_names_the_bench(self, monkeypatch,
                                                tmp_path):
        monkeypatch.delenv(KERNELZOO_ENV, raising=False)
        monkeypatch.chdir(tmp_path)
        monkeypatch.setattr("repro.core.autopick.find_calibration_file",
                            lambda: None)
        with pytest.raises(ReproError, match="repro-bench kernelzoo"):
            KernelZooCalibration.load(None)


class TestNearestCell:
    def test_exact_coordinates_hit_their_cell(self):
        cal = _calibration([
            _cell("skewed", 1.0, 0.01, winner="binary_search"),
            _cell("flat", 0.0, 0.02),
            _cell("dense", 0.0, 1.0, winner="warp_intersect"),
        ])
        assert cal.nearest(1.0, 0.01).graph == "skewed"
        assert cal.nearest(0.0, 1.0).graph == "dense"

    def test_range_normalization_balances_axes(self):
        # skew spans [0, 10], density [0, 0.1]: without normalization a
        # density gap of 0.05 would be invisible next to skew units.
        cal = _calibration([
            _cell("a", 0.0, 0.0),
            _cell("b", 10.0, 0.1, winner="hash"),
        ])
        assert cal.nearest(4.0, 0.09).graph == "b"
        assert cal.nearest(4.0, 0.01).graph == "a"

    def test_tie_breaks_to_first_cell(self):
        cal = _calibration([
            _cell("first", 0.0, 0.0),
            _cell("second", 2.0, 0.0),
        ])
        assert cal.nearest(1.0, 0.0).graph == "first"


class TestPick:
    def test_pick_respects_layout(self, small_rmat):
        cal = _calibration([
            _cell("dense", 0.0, 1.0, winner="warp_intersect",
                  two_pointer=2.0, binary_search=3.0, hash=4.0)])
        soa = pick_kernel(small_rmat, GpuOptions(kernel="auto"), cal)
        aos = pick_kernel(small_rmat,
                          GpuOptions(kernel="auto", unzip=False), cal)
        assert soa == "warp_intersect"
        assert aos == "two_pointer"   # next-fastest AoS-capable kernel

    def test_allowed_kernels_drop_warp_intersect_under_aos(self):
        assert "warp_intersect" in allowed_kernels(GpuOptions())
        assert "warp_intersect" not in allowed_kernels(
            GpuOptions(unzip=False))
        assert "two_pointer" in allowed_kernels(GpuOptions(unzip=False))

    def test_resolve_options_is_a_noop_for_explicit_kernels(self,
                                                            small_rmat):
        options = GpuOptions(kernel="hash")
        assert resolve_options(small_rmat, options) is options

    def test_resolve_options_never_returns_auto(self, small_rmat):
        cal = _calibration([_cell("only", 0.5, 0.05)])
        resolved = resolve_options(small_rmat, GpuOptions(kernel="auto"),
                                   cal)
        assert resolved.kernel == "two_pointer"

    def test_pick_is_deterministic(self, small_ba):
        cal = KernelZooCalibration.load(COMMITTED)
        picks = {pick_kernel(small_ba, GpuOptions(kernel="auto"), cal)
                 for _ in range(5)}
        assert len(picks) == 1


class TestPipelineIntegration:
    def test_gpu_count_triangles_resolves_auto(self, small_ba):
        want = forward_count_cpu(small_ba).triangles
        run = gpu_count_triangles(small_ba,
                                  options=GpuOptions(kernel="auto"))
        assert run.triangles == want
        assert run.options.kernel != "auto"
        assert run.options.kernel in allowed_kernels(GpuOptions())

    def test_auto_runs_are_reproducible(self, small_rmat):
        runs = [gpu_count_triangles(small_rmat,
                                    options=GpuOptions(kernel="auto"))
                for _ in range(2)]
        assert runs[0].options.kernel == runs[1].options.kernel
        assert (runs[0].kernel_report.counters()
                == runs[1].kernel_report.counters())

    def test_launch_rejects_unresolved_auto(self, small_rmat):
        from repro.runtime import spec_for_options
        with pytest.raises(ReproError, match="resolved against a graph"):
            spec_for_options(GpuOptions(kernel="auto"))

    def test_committed_calibration_is_current_format(self):
        doc = json.loads(COMMITTED.read_text())
        assert doc["format"] == KERNELZOO_FORMAT
